# Development commands. `just ci` is the gate every change must pass;
# scripts/ci.sh is the same thing for environments without `just`.

# Run the full CI gate: format check, determinism lint, lints, tests,
# rustdoc gate.
ci: fmt-check lint-det clippy test doc

fmt-check:
    cargo fmt --check

fmt:
    cargo fmt

# The determinism & safety static-analysis pass (DESIGN.md §8.4): the
# two-phase (token + structural) workspace scan must come back clean,
# the allowlist audit must find no dead suppressions, and a SARIF 2.1.0
# artifact lands at target/detlint.sarif for CI upload. The fixture
# corpus must still trip every rule (detlint's own self-test enforces
# the exact counts).
lint-det:
    cargo run -q -p livescope-detlint --bin detlint -- --sarif-out target/detlint.sarif

# Explain one detlint rule, e.g. `just lint-det-explain span-balance`.
lint-det-explain rule:
    cargo run -q -p livescope-detlint --bin detlint -- --explain {{rule}}

# Dump the brace-matched scope tree detlint builds for one file — the
# debugging view for the structural rules, e.g.
# `just lint-det-scopes crates/core/src/scheduler.rs`.
lint-det-scopes file:
    cargo run -q -p livescope-detlint --bin detlint -- --list-scopes {{file}}

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

test:
    cargo test --workspace -q

# The sim crate's wall-clock event profiler is feature-gated; make sure
# it keeps compiling.
test-profile:
    cargo test -p livescope-sim --features profile -q

# The determinism suite again with worker-thread lanes on: observable
# results must be identical with or without real threads.
test-parallel:
    cargo test -p livescope-core --features parallel --test sharded_determinism -q

# Rustdoc gate: every public item documented, no broken intra-doc links.
# Targets the livescope crates explicitly — vendor/* members are exempt.
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
        -p livescope-sim -p livescope-telemetry -p livescope-net \
        -p livescope-proto -p livescope-graph -p livescope-workload \
        -p livescope-cdn -p livescope-client -p livescope-crawler \
        -p livescope-security -p livescope-analysis -p livescope-overlay \
        -p livescope-core -p livescope-bench -p livescope-detlint \
        -p livescope-examples

# Lane-count wall-clock sweep over the sharded fan-out workload; writes
# BENCH_shards.json (per-lane timings, checksum invariance, speedup).
bench-shards:
    cargo run --release -q -p livescope-bench --features parallel --bin bench_shards

# The same sweep on a tiny workload: asserts the cross-lane checksum
# invariant but writes nothing. This is the CI variant.
bench-shards-smoke:
    cargo run --release -q -p livescope-bench --features parallel --bin bench_shards -- --smoke

# Streaming-replay scale sweep (divisors 1000/100/10/1 of the Periscope
# study): wall time, broadcasts/sec, and the peak tracked replay state
# per divisor, plus the worker scaling curve (K ∈ {1,2,4,6} at divisor
# 10) and the profile-feature top-5 handler histograms under the
# celebrity fan-out. Writes BENCH_replay.json.
bench-replay:
    cargo run --release -q -p livescope-bench --features "profile parallel" --bin bench_replay

# Divisor-1000 only: asserts the streaming record checksum matches the
# materializing path but writes nothing. This is the CI variant.
bench-replay-smoke:
    cargo run --release -q -p livescope-bench --bin bench_replay -- --smoke

# Data-parallel worker sweep only (DESIGN.md §13): replays the
# divisor-10 campaign through K ∈ {1,2,4,6} worker shards on real
# threads, asserts every K is digest-identical to the sequential
# streaming path, and prints the wall/merge/barrier curve. Pass
# `--smoke` for the CI variant (divisor 1000, K ∈ {1,2,6}).
bench-replay-workers *flags="":
    cargo run --release -q -p livescope-bench --features parallel --bin bench_replay -- --workers {{flags}}

# Graph-build worker sweep only (DESIGN.md §12): rebuilds the
# divisor-10 follow graph with K ∈ {1,2,4,6} assembly shards on real
# threads, asserts every K is checksum-identical to the sequential
# build, and prints the wall/peak curve. Pass `--smoke` for the CI
# variant (divisor 1000, K ∈ {1,2,6}, asserts the committed pins).
bench-graph *flags="":
    cargo run --release -q -p livescope-bench --features parallel --bin bench_replay -- --graph-only {{flags}}

# Capture a JSONL trace of the breakdown experiment and summarize it.
trace out="results/trace.jsonl":
    cargo run --release --bin trace_summary -- --capture {{out}}

# The causal observability report (DESIGN.md §11): per-POP six-component
# delay distributions, QoE session metrics, and the top-5 slowest
# chunk-journey waterfalls over the breakdown + celebrity workloads.
# Writes results/OBS_report.json.
obs:
    cargo run --release -q -p livescope-bench --bin obs_report

# Determinism contract of the report itself: identical bytes across the
# legacy and sharded backends at lanes {1, 2, 6}. This is the CI variant.
obs-smoke:
    cargo run --release -q -p livescope-bench --bin obs_report -- --smoke

# Bench-regression gate: regenerate the deterministic observability
# artifact and compare it metric-by-metric against baselines/.
bench-check:
    cargo run --release -q -p livescope-bench --bin bench_check

# Refresh the committed baseline after a reviewed, intentional change.
bench-check-write:
    cargo run --release -q -p livescope-bench --bin bench_check -- --write-baselines

# Hot-path perf baseline: the fanout/poll criterion benches plus the
# celebrity-fan-out wall-clock run recorded in BENCH_hotpath.json
# (label defaults to "current"; pass one to keep before/after pairs).
bench-hotpath label="current":
    cargo bench -p livescope-bench --bench fanout_cpu -- --bench
    cargo bench -p livescope-bench --bench poll_interval -- --bench
    cargo run --release -p livescope-bench --bin hotpath_baseline -- BENCH_hotpath.json {{label}}
