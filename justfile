# Development commands. `just ci` is the gate every change must pass;
# scripts/ci.sh is the same thing for environments without `just`.

# Run the full CI gate: format check, lints, tests.
ci: fmt-check clippy test

fmt-check:
    cargo fmt --check

fmt:
    cargo fmt

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

test:
    cargo test --workspace -q

# The sim crate's wall-clock event profiler is feature-gated; make sure
# it keeps compiling.
test-profile:
    cargo test -p livescope-sim --features profile -q

# Capture a JSONL trace of the breakdown experiment and summarize it.
trace out="results/trace.jsonl":
    cargo run --release --bin trace_summary -- --capture {{out}}
