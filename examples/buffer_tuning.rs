//! The §6 optimization, as an operator would run it: sweep the HLS
//! pre-buffer over trace-driven playback simulations and find the smallest
//! P that keeps playback as smooth as the production 9 s setting.
//!
//! ```sh
//! cargo run -p livescope-examples --release --bin buffer_tuning
//! ```

#![forbid(unsafe_code)]

use livescope_core::buffering::{run, BufferingConfig};

fn main() {
    let config = BufferingConfig {
        broadcasts: 4_000,
        hls_prebuffers_s: vec![0.0, 3.0, 4.5, 6.0, 7.5, 9.0, 12.0],
        ..BufferingConfig::default()
    };
    println!(
        "sweeping HLS pre-buffer over {} trace-driven broadcasts…\n",
        config.broadcasts
    );
    let report = run(&config);
    println!(
        "{:>6}  {:>16}  {:>16}  {:>10}",
        "P (s)", "p90 stall ratio", "median buffering", "verdict"
    );
    let baseline = report.hls_at(9.0).expect("9s is in the sweep");
    let target_stall = baseline.stall_ratio.quantile(0.9) + 0.005;
    let mut best: Option<f64> = None;
    for curves in &report.hls {
        let stall = curves.stall_ratio.quantile(0.9);
        let buffering = curves.avg_buffering.median();
        let smooth = stall <= target_stall;
        if smooth && best.is_none_or(|b| curves.prebuffer_s < b) {
            best = Some(curves.prebuffer_s);
        }
        println!(
            "{:>6.1}  {:>16.4}  {:>15.2}s  {:>10}",
            curves.prebuffer_s,
            stall,
            buffering,
            if smooth { "smooth" } else { "stalls" }
        );
    }
    let best = best.expect("the production setting itself is smooth");
    let saving =
        baseline.avg_buffering.median() - report.hls_at(best).unwrap().avg_buffering.median();
    println!(
        "\nsmallest pre-buffer matching the 9s setting's smoothness: {best:.1}s \
         → {saving:.1}s less buffering delay\n(paper: 6s achieves similar stalling \
         and cuts buffering delay by ~50%)"
    );
}
