//! Celebrity broadcast: the scenario from the paper's introduction — a
//! heavily-followed account goes live, thousands pile in, the first 100
//! get RTMP + comment rights, everyone else is handed to the HLS CDN, and
//! hearts keep flowing from everyone.
//!
//! Shows the interactivity consequence the paper leads with: the HLS
//! audience reacts ~10 s late, so their hearts land on the wrong moment.
//!
//! ```sh
//! cargo run -p livescope-examples --release --bin celebrity_broadcast
//! # per-POP delivery on 6 worker lanes (same output as any other lane count):
//! cargo run -p livescope-examples --release --features parallel \
//!     --bin celebrity_broadcast -- --backend sharded --lanes 6
//! ```

#![forbid(unsafe_code)]

use livescope_cdn::control::ControlError;
use livescope_cdn::ids::UserId;
use livescope_cdn::{run_fanout, Cluster, FanoutConfig};
use livescope_net::datacenters;
use livescope_net::geo::GeoPoint;
use livescope_proto::message::{ChatEvent, EventKind, COMMENTER_CAP};
use livescope_sim::{BackendChoice, RngPool, SimDuration, SimTime};
use livescope_telemetry::Telemetry;

/// Parses `--backend single|sharded` and `--lanes N` (defaults: sharded, 1).
fn parse_cli() -> BackendChoice {
    let args: Vec<String> = std::env::args().collect();
    let mut backend = "sharded".to_string();
    let mut lanes = 1usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" if i + 1 < args.len() => {
                backend = args[i + 1].clone();
                i += 2;
            }
            "--lanes" if i + 1 < args.len() => {
                lanes = args[i + 1].parse().expect("--lanes takes a number");
                i += 2;
            }
            other => {
                eprintln!("usage: celebrity_broadcast [--backend single|sharded] [--lanes N]");
                panic!("unknown argument {other:?}");
            }
        }
    }
    BackendChoice::parse(&backend, lanes).expect("valid backend")
}

fn main() {
    let choice = parse_cli();
    let pool = RngPool::new(7);
    let mut cluster = Cluster::new(&pool, SimDuration::from_secs(3), COMMENTER_CAP as u64);

    // The celebrity broadcasts from Los Angeles.
    let la = GeoPoint::new(34.05, -118.24);
    let grant = cluster.create_broadcast(SimTime::ZERO, UserId(1), &la);
    cluster
        .connect_publisher(SimTime::ZERO, grant.id, &grant.token)
        .unwrap();

    // 2 500 fans join from around the world in arrival order.
    let cities = [
        ("Los Angeles", 34.05, -118.24),
        ("New York", 40.71, -74.01),
        ("London", 51.51, -0.13),
        ("Tokyo", 35.68, 139.65),
        ("Sydney", -33.87, 151.21),
        ("Rio", -22.91, -43.17),
    ];
    let mut rtmp = 0u64;
    let mut hls_by_pop = std::collections::BTreeMap::<u16, u64>::new();
    let mut commenters = Vec::new();
    for v in 0..2_500u64 {
        let (_, lat, lon) = cities[v as usize % cities.len()];
        let viewer = UserId(100 + v);
        let grant_v = cluster
            .join_viewer(SimTime::ZERO, grant.id, viewer, &GeoPoint::new(lat, lon))
            .expect("live broadcast admits viewers");
        if grant_v.rtmp.is_some() {
            rtmp += 1;
            commenters.push(viewer);
        } else {
            *hls_by_pop.entry(grant_v.hls_url.dc).or_default() += 1;
        }
    }
    println!(
        "audience: {rtmp} on RTMP (can comment), {} on HLS",
        2_500 - rtmp
    );
    println!("HLS viewers by anycast POP:");
    for (&dc, count) in &hls_by_pop {
        let city = datacenters::datacenter(livescope_net::datacenters::DatacenterId(dc)).city;
        println!("  {city:<12} {count}");
    }

    // Comments: only the RTMP cohort may post; an HLS viewer is refused.
    for &c in commenters.iter().take(5) {
        cluster.control.record_comment(grant.id, c).unwrap();
    }
    let late_viewer = UserId(100 + 2_400);
    assert_eq!(
        cluster.control.record_comment(grant.id, late_viewer),
        Err(ControlError::NotACommenter)
    );
    println!(
        "\ncomment cap: viewer #2401 was refused (paper: only the first ~{COMMENTER_CAP} may comment)"
    );

    // Everyone interested in reactions subscribes to the broadcast's
    // message channel (here: the broadcaster plus the comment cohort).
    for &c in commenters.iter().chain([&UserId(1)]) {
        let link = livescope_net::Link::device_path(
            &la,
            &datacenters::datacenter(grant.wowza_dc).location,
            livescope_net::AccessLink::StableWifi,
        );
        cluster.pubnub.subscribe(grant.id, c, link);
    }

    // Hearts flow from everyone — but arrive aligned to each cohort's
    // playback position. An RTMP fan reacts ~1.4 s after the moment; an
    // HLS fan ~11.7 s after. At a real moment t=30 s:
    let rtmp_lag = 1.4f64;
    let hls_lag = 11.7f64;
    let moment = 30.0;
    for (who, lag) in [("RTMP fan", rtmp_lag), ("HLS fan", hls_lag)] {
        let heart = ChatEvent {
            broadcast_id: grant.id.0,
            user_id: 0,
            ts_us: ((moment + lag) * 1e6) as u64,
            kind: EventKind::Heart,
        };
        let deliveries = cluster.publish_chat(SimTime::from_secs_f64(moment + lag), heart);
        println!(
            "{who}: sees the t={moment:.0}s moment at t={:.1}s; heart reaches {} subscribers",
            moment + lag,
            deliveries.len()
        );
    }
    println!(
        "\nThe broadcaster polls the audience at t=30s and closes voting 10s later:\n\
         every HLS vote arrives after the poll already closed — the paper's\n\
         interactivity-vs-scalability tension in action."
    );

    // The HLS delivery itself: every anycast POP the audience landed on
    // becomes one scheduler shard, and viewers roaming between POPs travel
    // through the inter-lane mailboxes. `--backend single` runs the same
    // shards on one lane; the per-seed output below is byte-identical for
    // either backend and any `--lanes` value.
    let lanes = match choice {
        BackendChoice::Single => 1,
        BackendChoice::Sharded { lanes } => lanes,
    };
    let config = FanoutConfig {
        pops: hls_by_pop
            .keys()
            .map(|&dc| livescope_net::datacenters::DatacenterId(dc))
            .collect(),
        viewers_per_pop: 100,
        stream_secs: 60,
        roam_every: 5,
        seed: 7,
        ..FanoutConfig::default()
    };
    let report = run_fanout(&config, lanes, &Telemetry::disabled());
    println!(
        "\nHLS delivery, {} POPs as scheduler shards ({choice}):",
        config.pops.len()
    );
    print!("{}", report.render());
}
