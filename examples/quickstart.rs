//! Quickstart: stand up the simulated Periscope-like delivery system,
//! run one broadcast with an RTMP viewer and an HLS viewer, and print the
//! end-to-end delay each one experiences.
//!
//! ```sh
//! cargo run -p livescope-examples --bin quickstart
//! ```

#![forbid(unsafe_code)]

use livescope_cdn::ids::UserId;
use livescope_cdn::Cluster;
use livescope_client::broadcaster::{capture_schedule, FrameSource, UplinkClass, UplinkModel};
use livescope_client::playback::simulate_playback;
use livescope_client::viewer::{HlsViewer, RtmpViewer};
use livescope_net::datacenters::{self, Provider};
use livescope_net::geo::GeoPoint;
use livescope_net::AccessLink;
use livescope_proto::rtmp::RtmpMessage;
use livescope_sim::{RngPool, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let pool = RngPool::new(42);
    let mut rng = SmallRng::seed_from_u64(pool.stream_seed("demo"));

    // 1. The delivery system: control plane + 8 Wowza DCs + 23 Fastly POPs.
    let mut cluster = Cluster::new(&pool, SimDuration::from_secs(3), 100);

    // 2. A broadcaster in San Francisco starts a stream.
    let sf = GeoPoint::new(37.77, -122.42);
    let grant = cluster.create_broadcast(SimTime::ZERO, UserId(1), &sf);
    println!("broadcast {} created", grant.id);
    println!(
        "  ingest: {} ({})",
        grant.rtmp_url,
        datacenters::datacenter(grant.wowza_dc).city
    );
    cluster
        .connect_publisher(SimTime::ZERO, grant.id, &grant.token)
        .unwrap();

    // 3. An early viewer gets RTMP (and comment rights); a later viewer
    //    would be handed to HLS once 100 slots fill. We force one HLS
    //    viewer the way the paper did for its controlled experiments.
    cluster
        .join_viewer(SimTime::ZERO, grant.id, UserId(2), &sf)
        .unwrap();
    cluster
        .subscribe_rtmp(
            SimTime::ZERO,
            grant.id,
            UserId(2),
            &sf,
            AccessLink::StableWifi,
        )
        .unwrap();
    let mut rtmp_viewer = RtmpViewer::new(UserId(2));
    let pop = datacenters::nearest(Provider::Fastly, &sf).id;
    let mut hls_viewer = HlsViewer::new(UserId(3), grant.id, pop, &sf, AccessLink::StableWifi);

    // 4. Stream 30 seconds of 40 ms frames over a realistic uplink.
    let mut source = FrameSource::new(0);
    let captures = capture_schedule(SimTime::ZERO, 750);
    let uplink = UplinkModel::for_class(UplinkClass::Steady);
    let arrivals = uplink.arrival_times(&captures, 2_500, &mut rng);
    let mut next_poll = SimTime::ZERO;
    for (i, &arrival) in arrivals.iter().enumerate() {
        let frame = source.next_frame();
        let wire = RtmpMessage::Frame(frame.clone()).encode();
        let outcome = cluster.ingest_frame(arrival, grant.id, wire).unwrap();
        for delivery in outcome.deliveries {
            if let Some(delay) = delivery.delay {
                rtmp_viewer.record_push(&frame, captures[i], arrival, delay);
            }
        }
        // The HLS viewer polls its POP every 2.8 s in between frames.
        while next_poll <= arrival {
            hls_viewer.poll(&mut cluster, next_poll, &mut rng);
            next_poll += SimDuration::from_millis(2_800);
        }
    }
    // Drain the tail so the last chunks land.
    for k in 0..8 {
        let t = SimTime::from_secs(30) + SimDuration::from_millis(k * 2_800);
        hls_viewer.poll(&mut cluster, t, &mut rng);
    }

    // 5. Replay both arrival traces through the decompiled client buffer.
    let rtmp_report = simulate_playback(rtmp_viewer.units(), SimDuration::from_secs(1));
    let hls_units = hls_viewer.units();
    let hls_report = simulate_playback(&hls_units, SimDuration::from_secs(9));
    let (upload, last_mile) = rtmp_viewer.mean_delays();

    println!("\nRTMP viewer: {} frames", rtmp_viewer.units().len());
    println!(
        "  upload {upload:.3}s + last-mile {last_mile:.3}s + buffering {:.2}s",
        rtmp_report.avg_buffering_s
    );
    println!(
        "  stalls: {:.2}% of the stream",
        rtmp_report.stall_ratio * 100.0
    );
    println!(
        "\nHLS viewer: {} chunks via the {} POP",
        hls_units.len(),
        datacenters::datacenter(pop).city
    );
    println!(
        "  buffering {:.2}s (9s pre-buffer), stalls {:.2}%",
        hls_report.avg_buffering_s,
        hls_report.stall_ratio * 100.0
    );
    println!(
        "\nThe paper's Fig 11 story in one run: chunking + polling + deep\n\
         client buffers put the HLS audience ~10s behind the RTMP audience."
    );
}
