//! The paper's §8 closing idea, live: replace per-viewer RTMP state and
//! HLS polling with a receiver-driven overlay multicast tree, then watch
//! a 3,000-viewer broadcast get RTMP-grade latency at HLS-grade origin
//! cost.
//!
//! ```sh
//! cargo run -p livescope-examples --release --bin future_architecture
//! ```

#![forbid(unsafe_code)]

use livescope_core::overlay_ext::{run, OverlayConfig, VIEWER_CITIES};
use livescope_net::datacenters::{self, DatacenterId};
use livescope_net::geo::GeoPoint;
use livescope_overlay::{Hierarchy, MulticastTree};

fn main() {
    // 1. Show the forwarding hierarchy the tree grows over.
    let hierarchy = Hierarchy::new();
    println!("forwarding hierarchy (root = broadcast's ingest site):");
    for gw in hierarchy.gateways() {
        let dc = datacenters::datacenter(gw);
        println!("  gateway {:<12} ({})", dc.city, dc.continent);
    }

    // 2. Grow a tree for a 3,000-viewer global broadcast and show how
    //    little of it the origin ever sees.
    let mut tree = MulticastTree::new(DatacenterId(0), hierarchy);
    for v in 0..3_000u64 {
        let (lat, lon) = VIEWER_CITIES[v as usize % VIEWER_CITIES.len()];
        let leaf = Hierarchy::nearest_leaf(&GeoPoint::new(lat, lon));
        tree.join(v, leaf);
    }
    println!(
        "\n3,000 viewers joined: origin fan-out {} children, {} servers hold state",
        tree.root_degree(),
        tree.active_servers()
    );
    for child in tree.children(tree.root()) {
        let dc = datacenters::datacenter(child);
        println!(
            "  root -> {:<12} subtree serves {} leaf attachments downstream",
            dc.city,
            tree.children(child).len()
        );
    }

    // 3. The quantified comparison against the paper's two real paths.
    println!();
    let report = run(&OverlayConfig::default());
    println!("{}", report.render());
    println!(
        "The §8 trade: RTMP-grade delay at any audience size, paid for with\n\
         forwarding state on ~{} interior servers instead of the origin.",
        tree.active_servers()
    );
}
