//! Re-run the paper's measurement campaign end to end: generate the
//! (scaled) Periscope and Meerkat ground truth, crawl both with the
//! §3.1 apparatus, and print the Table 1 the crawler measured — outage
//! and all.
//!
//! ```sh
//! cargo run -p livescope-examples --release --bin crawler_campaign
//! ```

#![forbid(unsafe_code)]

use livescope_core::usage::{run, UsageConfig};
use livescope_crawler::coverage::{run_coverage, CoverageConfig};
use livescope_sim::SimDuration;

fn main() {
    // 1. Calibrate the crawler like the paper did: confirm that an
    //    effective global-list refresh of 0.5 s already captures all
    //    broadcasts before committing to the production 0.25 s.
    println!("crawler calibration (synthetic live service):");
    for accounts in [1usize, 10, 20] {
        let report = run_coverage(&CoverageConfig {
            accounts,
            account_refresh: SimDuration::from_secs(5),
            ..CoverageConfig::paper_production()
        });
        println!(
            "  {accounts:>2} accounts (refresh every {:.2}s): coverage {:>6.2}%, \
             mean discovery latency {:.1}s",
            5.0 / accounts as f64,
            report.coverage * 100.0,
            report.mean_discovery_latency_s
        );
    }

    // 2. The full three-month + one-month campaigns.
    println!("\nrunning the Periscope (97-day) and Meerkat (34-day) campaigns…");
    let report = run(&UsageConfig::default());
    println!("{}", report.tab1());
    println!(
        "Periscope crawler outage (Aug 7-9): {} broadcasts lost ({:.1}% of ground truth)",
        report.periscope.missed,
        report.periscope.missed as f64
            / (report.periscope.broadcasts() + report.periscope.missed) as f64
            * 100.0
    );
    let hls = report.periscope.hls_broadcasts as f64 / report.periscope.broadcasts() as f64;
    println!(
        "broadcasts with at least one HLS viewer: {:.2}% (paper: 5.77%)",
        hls * 100.0
    );
}
