//! The §7 security story as a demo: hijack an unprotected broadcast from
//! the broadcaster's WiFi, show the viewer's screen going black while the
//! broadcaster sees nothing wrong, then replay the same attack against a
//! signed stream and watch the ingest server shut it down.
//!
//! All parties are simulated; this is the paper's responsibly-disclosed
//! proof-of-concept, not a tool. The vulnerability was reported to both
//! vendors in 2015.
//!
//! ```sh
//! cargo run -p livescope-examples --bin stream_hijack
//! ```

#![forbid(unsafe_code)]

use livescope_core::security::{run, AttackSide, SecurityConfig};
use livescope_security::SigningPolicy;

fn main() {
    println!("=== scenario: attacker on the broadcaster's coffee-shop WiFi ===\n");
    let config = SecurityConfig::default();

    let before = run(&config, false);
    println!("without the defense:");
    println!("{}\n", before.render("  broadcaster-side"));
    println!(
        "  -> the attacker read the broadcast token off the plaintext RTMP connect,\n\
         \u{20}    rewrote all {} frames, and every viewer watched black frames while\n\
         \u{20}    the broadcaster's preview showed the real camera feed.\n",
        before.frames_tampered
    );

    let after = run(&config, true);
    println!("with per-frame signatures (§7.2 defense):");
    println!("{}\n", after.render("  broadcaster-side"));
    println!(
        "  -> same interceptor, same rewrite; the ingest server verified each\n\
         \u{20}    frame's signature and rejected all {} tampered frames.\n",
        after.rejected_at_ingest
    );

    println!("=== cost of the defense (viewer-side verification) ===\n");
    for (name, policy) in [
        ("sign every frame  ", SigningPolicy::EveryFrame),
        ("sign every 10th   ", SigningPolicy::EveryKth(10)),
        ("hash-chain of 25  ", SigningPolicy::HashChain(25)),
    ] {
        let report = run(
            &SecurityConfig {
                side: AttackSide::Viewer,
                policy,
                ..SecurityConfig::default()
            },
            true,
        );
        println!(
            "  {name} {:>4} signatures for 250 frames — attack {}",
            report.signatures_produced,
            if report.attack_succeeded() {
                "SUCCEEDED"
            } else {
                "DEFEATED"
            }
        );
    }
    println!(
        "\nhash-chaining gets full coverage at 1/25th the signing cost, at the\n\
         price of detection lagging to the end of each 1-second group —\n\
         exactly the trade-off §7.2 proposes."
    );
}
