//! # livescope-overlay — the §8 alternative architecture, built
//!
//! The paper closes by sketching a way out of the RTMP/HLS dilemma:
//!
//! > "To avoid the costs of managing persistent connections to each
//! > viewer, we can leverage a hierarchy of geographically clustered
//! > forwarding servers. To access a broadcast, a viewer would forward a
//! > request through their local leaf server and up the hierarchy,
//! > setting up a reverse forwarding path in the process. Once built, the
//! > forwarding path can efficiently forward video frames without
//! > per-viewer state or periodic polling. The result is effectively a
//! > receiver-driven overlay multicast tree (similar to Scribe and
//! > Akamai's streaming CDN)."
//!
//! This crate implements exactly that sketch so the `livescope-core`
//! extension experiment can quantify it against RTMP and HLS:
//!
//! * [`hierarchy`] — the static forwarding hierarchy over the paper's
//!   datacenter map: ingest root → one gateway per continent → leaf POPs;
//! * [`tree`] — the per-broadcast receiver-driven multicast tree: joins
//!   graft a reverse path leaf→root (creating state only on the path),
//!   leaves prune it back; frames are pushed once per tree *edge*, never
//!   once per viewer at the origin;
//! * [`deliver`] — frame fan-out through the tree with sampled link
//!   delays, producing per-viewer latencies and per-node work counters.
//!
//! The headline property (tested here, measured in
//! `livescope_core::experiments::overlay_ext`): origin work is bounded by
//! the number of *continents with audience* regardless of audience size,
//! while per-viewer delay stays push-grade — no 3 s chunks, no polling.

#![forbid(unsafe_code)]

pub mod deliver;
pub mod hierarchy;
pub mod tree;

pub use deliver::{DeliveryOutcome, OverlayNetwork};
pub use hierarchy::Hierarchy;
pub use tree::MulticastTree;
