//! The static forwarding hierarchy: ingest roots, continental gateways,
//! leaf servers.
//!
//! Following the Akamai design the paper cites, forwarding servers are
//! organized geographically: every Fastly-class POP can act as a leaf;
//! one POP per continent is designated the continental gateway (the
//! best-connected site — we pick the one minimizing mean distance to its
//! continent's other POPs); the broadcast's ingest datacenter is the
//! root. A leaf's parent is its continental gateway; a gateway's parent
//! is the root.

use livescope_net::datacenters::{self, Datacenter, DatacenterId, Provider};
use livescope_net::geo::Continent;

/// The forwarding hierarchy over the paper's datacenter registry.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// `(continent, gateway datacenter)` pairs.
    gateways: Vec<(Continent, DatacenterId)>,
}

impl Hierarchy {
    /// Builds the hierarchy from the static registry.
    pub fn new() -> Self {
        let mut gateways = Vec::new();
        for continent in [
            Continent::NorthAmerica,
            Continent::Europe,
            Continent::Asia,
            Continent::Oceania,
        ] {
            let members: Vec<&Datacenter> = datacenters::by_provider(Provider::Fastly)
                .filter(|d| d.continent == continent)
                .collect();
            let gateway = members
                .iter()
                .min_by(|a, b| {
                    let mean = |dc: &Datacenter| {
                        members
                            .iter()
                            .map(|m| dc.location.distance_km(&m.location))
                            .sum::<f64>()
                    };
                    mean(a).partial_cmp(&mean(b)).expect("finite distances")
                })
                .expect("every listed continent has POPs");
            gateways.push((continent, gateway.id));
        }
        Hierarchy { gateways }
    }

    /// The gateway for a continent, if the registry covers it.
    pub fn gateway(&self, continent: Continent) -> Option<DatacenterId> {
        self.gateways
            .iter()
            .find(|(c, _)| *c == continent)
            .map(|(_, id)| *id)
    }

    /// All gateways.
    pub fn gateways(&self) -> impl Iterator<Item = DatacenterId> + '_ {
        self.gateways.iter().map(|(_, id)| *id)
    }

    /// The parent of `node` on the path toward `root`:
    ///
    /// * a gateway's parent is the root;
    /// * a leaf's parent is its continental gateway — or, on a continent
    ///   with no gateway (South America in the 2015 registry), the
    ///   nearest gateway overall;
    /// * the root has no parent.
    pub fn parent(&self, node: DatacenterId, root: DatacenterId) -> Option<DatacenterId> {
        if node == root {
            return None;
        }
        if self.gateways.iter().any(|(_, g)| *g == node) {
            return Some(root);
        }
        let dc = datacenters::datacenter(node);
        if let Some(gw) = self.gateway(dc.continent) {
            // A gateway POP of another continent was handled above;
            // ordinary leaves attach to their continental gateway.
            return Some(gw);
        }
        // No gateway on this continent: attach to the nearest one.
        self.gateways
            .iter()
            .min_by(|(_, a), (_, b)| {
                let da = dc
                    .location
                    .distance_km(&datacenters::datacenter(*a).location);
                let db = dc
                    .location
                    .distance_km(&datacenters::datacenter(*b).location);
                da.partial_cmp(&db).expect("finite")
            })
            .map(|(_, id)| *id)
    }

    /// The full path from `leaf` up to `root`, inclusive of both ends.
    ///
    /// Bounded at 4 hops by construction (leaf → gateway → root); the
    /// assert guards against future hierarchy edits introducing cycles.
    pub fn path_to_root(&self, leaf: DatacenterId, root: DatacenterId) -> Vec<DatacenterId> {
        let mut path = vec![leaf];
        let mut current = leaf;
        while let Some(parent) = self.parent(current, root) {
            path.push(parent);
            current = parent;
            assert!(path.len() <= 4, "hierarchy produced an over-long path");
        }
        assert_eq!(
            *path.last().expect("non-empty"),
            root,
            "path must end at root"
        );
        path
    }

    /// The nearest leaf server (any Fastly-class POP) to a viewer.
    pub fn nearest_leaf(location: &livescope_net::geo::GeoPoint) -> DatacenterId {
        datacenters::nearest(Provider::Fastly, location).id
    }
}

impl Default for Hierarchy {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livescope_net::geo::GeoPoint;

    #[test]
    fn four_continental_gateways_exist() {
        let h = Hierarchy::new();
        assert_eq!(h.gateways().count(), 4);
        for continent in [
            Continent::NorthAmerica,
            Continent::Europe,
            Continent::Asia,
            Continent::Oceania,
        ] {
            let gw = h.gateway(continent).expect("gateway exists");
            assert_eq!(datacenters::datacenter(gw).continent, continent);
        }
        assert!(h.gateway(Continent::SouthAmerica).is_none());
    }

    #[test]
    fn paths_are_short_and_end_at_the_root() {
        let h = Hierarchy::new();
        let root = DatacenterId(0); // Ashburn Wowza
        for pop in datacenters::by_provider(Provider::Fastly) {
            let path = h.path_to_root(pop.id, root);
            assert!(path.len() <= 3, "{}: path {path:?}", pop.city);
            assert_eq!(path[0], pop.id);
            assert_eq!(*path.last().unwrap(), root);
            // No repeated nodes.
            let mut dedup = path.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), path.len());
        }
    }

    #[test]
    fn gateway_leaf_attaches_directly_to_root() {
        let h = Hierarchy::new();
        let root = DatacenterId(5); // Frankfurt Wowza
        let gw = h.gateway(Continent::Europe).unwrap();
        assert_eq!(h.path_to_root(gw, root), vec![gw, root]);
    }

    #[test]
    fn nearest_leaf_matches_anycast() {
        let tokyo_viewer = GeoPoint::new(35.68, 139.65);
        let leaf = Hierarchy::nearest_leaf(&tokyo_viewer);
        assert_eq!(datacenters::datacenter(leaf).city, "Tokyo");
    }

    #[test]
    fn hierarchy_construction_is_order_stable() {
        // Determinism-contract regression (DESIGN.md §8): building the
        // same hierarchy and joining the same viewers twice must produce
        // identical gateway order and identical multicast-tree edge
        // lists, with no hash-order dependence anywhere in construction.
        let build = || {
            let h = Hierarchy::new();
            let gateways: Vec<DatacenterId> = h.gateways().collect();
            let mut tree = crate::MulticastTree::new(DatacenterId(0), h);
            for v in 0..200u64 {
                let (lat, lon) = [
                    (40.71, -74.01),
                    (51.51, -0.13),
                    (35.68, 139.65),
                    (-33.87, 151.21),
                ][v as usize % 4];
                let leaf = Hierarchy::nearest_leaf(&GeoPoint::new(lat, lon));
                tree.join(v, leaf);
            }
            (gateways, tree.edges())
        };
        let (gateways_a, edges_a) = build();
        let (gateways_b, edges_b) = build();
        assert_eq!(gateways_a, gateways_b, "gateway iteration order drifted");
        assert_eq!(edges_a, edges_b, "multicast edge list is not order-stable");
        assert!(!edges_a.is_empty());
    }

    #[test]
    fn south_american_root_still_reaches_all_leaves() {
        // São Paulo Wowza as root: no local gateway, but every leaf path
        // must still terminate at the root.
        let h = Hierarchy::new();
        let root = DatacenterId(3);
        for pop in datacenters::by_provider(Provider::Fastly) {
            let path = h.path_to_root(pop.id, root);
            assert_eq!(*path.last().unwrap(), root);
        }
    }
}
