//! The per-broadcast receiver-driven multicast tree.
//!
//! Joining grafts the viewer's leaf-to-root path into the tree (creating
//! forwarding state only on servers along the path, à la Scribe);
//! leaving prunes any branch that no longer serves a viewer. The origin
//! never learns about individual viewers — only about its (at most
//! #gateways) children — which is the whole point of the design.

use std::collections::{BTreeMap, BTreeSet};

use livescope_net::datacenters::DatacenterId;

use crate::hierarchy::Hierarchy;

/// Per-node forwarding state.
#[derive(Clone, Debug, Default)]
struct NodeState {
    children: BTreeSet<DatacenterId>,
    /// Viewers attached at this node (it is their leaf).
    viewers: BTreeSet<u64>,
}

/// One broadcast's multicast tree.
#[derive(Clone, Debug)]
pub struct MulticastTree {
    root: DatacenterId,
    hierarchy: Hierarchy,
    nodes: BTreeMap<DatacenterId, NodeState>,
    /// Viewer → its leaf (for leave()).
    attachment: BTreeMap<u64, DatacenterId>,
}

impl MulticastTree {
    /// An empty tree rooted at the broadcast's ingest datacenter.
    pub fn new(root: DatacenterId, hierarchy: Hierarchy) -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert(root, NodeState::default());
        MulticastTree {
            root,
            hierarchy,
            nodes,
            attachment: BTreeMap::new(),
        }
    }

    /// The root (ingest) datacenter.
    pub fn root(&self) -> DatacenterId {
        self.root
    }

    /// Number of servers currently holding forwarding state.
    pub fn active_servers(&self) -> usize {
        self.nodes.len()
    }

    /// Total attached viewers.
    pub fn viewer_count(&self) -> usize {
        self.attachment.len()
    }

    /// The root's fan-out — the paper's scalability metric: bounded by
    /// the number of gateways, not by viewers.
    pub fn root_degree(&self) -> usize {
        self.nodes[&self.root].children.len()
    }

    /// Children of a node (empty if the node holds no state).
    pub fn children(&self, node: DatacenterId) -> Vec<DatacenterId> {
        self.nodes
            .get(&node)
            .map(|s| s.children.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Viewers attached at a node.
    pub fn viewers_at(&self, node: DatacenterId) -> usize {
        self.nodes.get(&node).map_or(0, |s| s.viewers.len())
    }

    /// Grafts `viewer` at `leaf`: walks leaf→root, creating forwarding
    /// state until it meets the existing tree. Returns the number of
    /// servers whose state was touched (the join cost).
    pub fn join(&mut self, viewer: u64, leaf: DatacenterId) -> usize {
        assert!(
            !self.attachment.contains_key(&viewer),
            "viewer {viewer} joined twice"
        );
        let path = self.hierarchy.path_to_root(leaf, self.root);
        let mut touched = 0;
        // Ensure forwarding state along the path: each node knows its
        // child on the way down to this leaf.
        for pair in path.windows(2) {
            let (child, parent) = (pair[0], pair[1]);
            self.nodes.entry(child).or_default();
            let parent_state = self.nodes.entry(parent).or_default();
            if parent_state.children.insert(child) {
                touched += 1;
            }
        }
        self.nodes.entry(leaf).or_default().viewers.insert(viewer);
        self.attachment.insert(viewer, leaf);
        touched + 1 // the leaf's viewer registration
    }

    /// Prunes `viewer`; forwarding state along its path is removed where
    /// no other subscriber needs it. Returns true if the viewer existed.
    pub fn leave(&mut self, viewer: u64) -> bool {
        let Some(leaf) = self.attachment.remove(&viewer) else {
            return false;
        };
        self.nodes
            .get_mut(&leaf)
            .expect("attached leaf has state")
            .viewers
            .remove(&viewer);
        // Walk up pruning empty branches.
        let path = self.hierarchy.path_to_root(leaf, self.root);
        for pair in path.windows(2) {
            let (child, parent) = (pair[0], pair[1]);
            let prune = {
                let state = &self.nodes[&child];
                state.children.is_empty() && state.viewers.is_empty()
            };
            if !prune {
                break;
            }
            self.nodes.remove(&child);
            self.nodes
                .get_mut(&parent)
                .expect("parent on path has state")
                .children
                .remove(&child);
        }
        true
    }

    /// Depth-first edge list from the root: `(parent, child)` pairs in
    /// forwarding order. Delivery walks exactly these edges once.
    pub fn edges(&self) -> Vec<(DatacenterId, DatacenterId)> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            if let Some(state) = self.nodes.get(&node) {
                for &child in &state.children {
                    out.push((node, child));
                    stack.push(child);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livescope_net::geo::GeoPoint;

    fn tree() -> MulticastTree {
        // Root at Ashburn Wowza (dc 0).
        MulticastTree::new(DatacenterId(0), Hierarchy::new())
    }

    fn leaf_for(lat: f64, lon: f64) -> DatacenterId {
        Hierarchy::nearest_leaf(&GeoPoint::new(lat, lon))
    }

    #[test]
    fn empty_tree_has_root_only() {
        let t = tree();
        assert_eq!(t.active_servers(), 1);
        assert_eq!(t.viewer_count(), 0);
        assert_eq!(t.root_degree(), 0);
        assert!(t.edges().is_empty());
    }

    #[test]
    fn first_join_grafts_a_full_path() {
        let mut t = tree();
        let tokyo = leaf_for(35.68, 139.65);
        let touched = t.join(1, tokyo);
        assert!(touched >= 2);
        assert_eq!(t.viewer_count(), 1);
        assert_eq!(t.viewers_at(tokyo), 1);
        // Path exists root → … → tokyo leaf.
        let edges = t.edges();
        assert!(edges.iter().any(|&(_, c)| c == tokyo));
    }

    #[test]
    fn root_degree_is_bounded_by_gateways_not_viewers() {
        let mut t = tree();
        let spots = [
            (37.77, -122.42),
            (40.71, -74.01),
            (51.51, -0.13),
            (48.86, 2.35),
            (35.68, 139.65),
            (1.35, 103.82),
            (-33.87, 151.21),
            (25.76, -80.19),
        ];
        for v in 0..5_000u64 {
            let (lat, lon) = spots[v as usize % spots.len()];
            t.join(v, leaf_for(lat, lon));
        }
        assert_eq!(t.viewer_count(), 5_000);
        assert!(
            t.root_degree() <= 4,
            "root fan-out {} must be bounded by gateway count",
            t.root_degree()
        );
        // Forwarding state exists on at most all 23 POPs + root.
        assert!(t.active_servers() <= 24);
    }

    #[test]
    fn joins_share_existing_branches() {
        let mut t = tree();
        let tokyo = leaf_for(35.68, 139.65);
        let first = t.join(1, tokyo);
        let second = t.join(2, tokyo);
        assert!(second < first, "second join reuses the grafted path");
        assert_eq!(t.viewers_at(tokyo), 2);
    }

    #[test]
    fn leave_prunes_unused_branches() {
        let mut t = tree();
        let tokyo = leaf_for(35.68, 139.65);
        let london = leaf_for(51.51, -0.13);
        t.join(1, tokyo);
        t.join(2, london);
        let servers_before = t.active_servers();
        assert!(t.leave(1));
        assert!(t.active_servers() < servers_before, "Asia branch pruned");
        assert_eq!(t.viewer_count(), 1);
        // London's branch is untouched.
        assert_eq!(t.viewers_at(london), 1);
        assert!(!t.leave(1), "double leave is a no-op");
    }

    #[test]
    fn leave_keeps_branches_others_still_need() {
        let mut t = tree();
        let tokyo = leaf_for(35.68, 139.65);
        let hk = leaf_for(22.32, 114.17);
        t.join(1, tokyo);
        t.join(2, hk);
        t.leave(1);
        // The Asia gateway still forwards to Hong Kong.
        assert_eq!(t.viewers_at(hk), 1);
        let edges = t.edges();
        assert!(edges.iter().any(|&(_, c)| c == hk));
        assert!(!edges.iter().any(|&(_, c)| c == tokyo));
    }

    #[test]
    #[should_panic(expected = "joined twice")]
    fn double_join_panics() {
        let mut t = tree();
        let leaf = leaf_for(35.68, 139.65);
        t.join(1, leaf);
        t.join(1, leaf);
    }

    #[test]
    fn edges_form_a_tree() {
        let mut t = tree();
        for (v, (lat, lon)) in [
            (1u64, (35.68, 139.65)),
            (2, (51.51, -0.13)),
            (3, (40.71, -74.01)),
        ] {
            t.join(v, leaf_for(lat, lon));
        }
        let edges = t.edges();
        // Each child has exactly one parent.
        let mut children: Vec<DatacenterId> = edges.iter().map(|&(_, c)| c).collect();
        let n = children.len();
        children.sort();
        children.dedup();
        assert_eq!(children.len(), n, "a node appeared under two parents");
    }
}
