//! Frame delivery through the multicast tree: one transmission per tree
//! edge, one per attached viewer at its leaf — with sampled link delays
//! and per-node work accounting.

use std::collections::{BTreeMap, HashMap};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use livescope_net::datacenters::{self, DatacenterId};
use livescope_net::geo::GeoPoint;
use livescope_net::{AccessLink, Link};
use livescope_sim::{RngPool, SimDuration, SimTime};
use livescope_telemetry::{Section, Telemetry};

use crate::tree::MulticastTree;

/// Result of pushing one frame through the tree.
#[derive(Clone, Debug)]
pub struct DeliveryOutcome {
    /// Per-viewer end-to-end delay from the instant the root had the
    /// frame, in viewer-id order of registration.
    pub viewer_delays: Vec<(u64, SimDuration)>,
    /// Transmissions performed by the root (its scalability cost).
    pub root_sends: u64,
    /// Transmissions across all servers, viewer last-miles included.
    pub total_sends: u64,
}

/// The overlay's data plane: inter-server links, per-viewer last miles,
/// and cumulative work counters.
pub struct OverlayNetwork {
    rng: SmallRng,
    links: HashMap<(u16, u16), Link>,
    /// Viewer → (its leaf, its last-mile link), in registration order.
    viewers: Vec<(u64, DatacenterId, Link)>,
    /// Cumulative per-server forward counts (Fig 14-style accounting).
    pub forwards: BTreeMap<DatacenterId, u64>,
    /// Wall-clock sections for the relay path (`handler.overlay.*_ns`);
    /// no-ops unless the `profile` feature is on and a telemetry handle
    /// is attached.
    sec_tree_walk: Section,
    sec_last_mile: Section,
}

impl OverlayNetwork {
    /// A fresh network.
    pub fn new(pool: &RngPool) -> Self {
        OverlayNetwork {
            rng: SmallRng::seed_from_u64(pool.stream_seed("overlay")),
            links: HashMap::new(),
            viewers: Vec::new(),
            forwards: BTreeMap::new(),
            sec_tree_walk: Section::default(),
            sec_last_mile: Section::default(),
        }
    }

    /// Attaches telemetry: wall-clock sections over the two halves of
    /// [`OverlayNetwork::push_frame`] (the inter-server tree walk and the
    /// per-viewer last-mile loop), recorded only in `profile` builds.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.sec_tree_walk = Section::new(telemetry, "overlay", "tree_walk");
        self.sec_last_mile = Section::new(telemetry, "overlay", "last_mile");
    }

    /// Registers a viewer's last-mile link from its leaf server. Call
    /// alongside [`MulticastTree::join`].
    pub fn attach_viewer(&mut self, viewer: u64, leaf: DatacenterId, location: &GeoPoint) {
        let link = Link::device_path(
            location,
            &datacenters::datacenter(leaf).location,
            AccessLink::StableWifi,
        );
        self.viewers.push((viewer, leaf, link));
    }

    /// Removes a viewer's registration (pair with [`MulticastTree::leave`]).
    pub fn detach_viewer(&mut self, viewer: u64) {
        self.viewers.retain(|(v, _, _)| *v != viewer);
    }

    fn server_delay(
        &mut self,
        from: DatacenterId,
        to: DatacenterId,
        bytes: usize,
        now: SimTime,
    ) -> SimDuration {
        let link = self.links.entry((from.0, to.0)).or_insert_with(|| {
            Link::between_datacenters(
                &datacenters::datacenter(from).location,
                &datacenters::datacenter(to).location,
            )
        });
        link.transmit(&mut self.rng, now, bytes)
            .delay()
            .expect("inter-server links are loss-free")
    }

    /// Pushes one frame of `bytes` through `tree` at `now`.
    pub fn push_frame(
        &mut self,
        tree: &MulticastTree,
        now: SimTime,
        bytes: usize,
    ) -> DeliveryOutcome {
        // Frame arrival at each server, walking edges in forwarding order
        // (the DFS guarantees parents precede children).
        let walk_stamp = self.sec_tree_walk.begin();
        let mut at_server: HashMap<DatacenterId, SimTime> = HashMap::new();
        at_server.insert(tree.root(), now);
        let mut root_sends = 0;
        let mut total_sends = 0;
        for (parent, child) in tree.edges() {
            let parent_time = at_server[&parent];
            let delay = self.server_delay(parent, child, bytes, parent_time);
            at_server.insert(child, parent_time + delay);
            *self.forwards.entry(parent).or_default() += 1;
            total_sends += 1;
            if parent == tree.root() {
                root_sends += 1;
            }
        }
        self.sec_tree_walk.end(walk_stamp);
        // Leaf → viewer last miles.
        let last_mile_stamp = self.sec_last_mile.begin();
        let Self {
            rng,
            viewers,
            forwards,
            ..
        } = self;
        let mut viewer_delays = Vec::with_capacity(viewers.len());
        for (viewer, leaf, link) in viewers.iter_mut() {
            let Some(&leaf_time) = at_server.get(leaf) else {
                continue; // leaf not in this tree (viewer of another broadcast)
            };
            let delay = link
                .transmit(rng, leaf_time, bytes)
                .delay()
                // A dropped push is retransmitted by TCP; model as slow.
                .unwrap_or(SimDuration::from_millis(500));
            *forwards.entry(*leaf).or_default() += 1;
            total_sends += 1;
            viewer_delays.push((*viewer, (leaf_time + delay).saturating_since(now)));
        }
        self.sec_last_mile.end(last_mile_stamp);
        DeliveryOutcome {
            viewer_delays,
            root_sends,
            total_sends,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Hierarchy;

    fn world() -> (MulticastTree, OverlayNetwork) {
        let tree = MulticastTree::new(DatacenterId(0), Hierarchy::new());
        let net = OverlayNetwork::new(&RngPool::new(5));
        (tree, net)
    }

    fn join(
        tree: &mut MulticastTree,
        net: &mut OverlayNetwork,
        viewer: u64,
        lat: f64,
        lon: f64,
    ) -> DatacenterId {
        let location = GeoPoint::new(lat, lon);
        let leaf = Hierarchy::nearest_leaf(&location);
        tree.join(viewer, leaf);
        net.attach_viewer(viewer, leaf, &location);
        leaf
    }

    #[test]
    fn every_viewer_receives_each_frame_once() {
        let (mut tree, mut net) = world();
        join(&mut tree, &mut net, 1, 40.71, -74.01); // NYC
        join(&mut tree, &mut net, 2, 51.51, -0.13); // London
        join(&mut tree, &mut net, 3, 35.68, 139.65); // Tokyo
        let outcome = net.push_frame(&tree, SimTime::ZERO, 2_500);
        assert_eq!(outcome.viewer_delays.len(), 3);
        let ids: Vec<u64> = outcome.viewer_delays.iter().map(|(v, _)| *v).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        for (v, d) in &outcome.viewer_delays {
            assert!(d.as_secs_f64() > 0.0, "viewer {v}");
            assert!(d.as_secs_f64() < 1.0, "viewer {v}: {d}");
        }
    }

    #[test]
    fn root_cost_is_constant_in_audience_size() {
        let (mut tree, mut net) = world();
        for v in 0..400u64 {
            let (lat, lon) = [
                (40.71, -74.01),
                (51.51, -0.13),
                (35.68, 139.65),
                (-33.87, 151.21),
            ][v as usize % 4];
            join(&mut tree, &mut net, v, lat, lon);
        }
        let outcome = net.push_frame(&tree, SimTime::ZERO, 2_500);
        assert_eq!(outcome.viewer_delays.len(), 400);
        assert!(
            outcome.root_sends <= 4,
            "root sent {} times for 400 viewers",
            outcome.root_sends
        );
        // Total sends = edges + one last-mile per viewer.
        assert!(outcome.total_sends >= 400);
        assert!(outcome.total_sends <= 400 + 24);
    }

    #[test]
    fn nearby_viewers_hear_sooner_than_far_ones() {
        let (mut tree, mut net) = world(); // root: Ashburn
        join(&mut tree, &mut net, 1, 39.0, -77.5); // DC metro
        join(&mut tree, &mut net, 2, -33.87, 151.21); // Sydney
                                                      // Average over repeated frames to smooth jitter.
        let mut near = 0.0;
        let mut far = 0.0;
        for i in 0..50u64 {
            let outcome = net.push_frame(&tree, SimTime::from_millis(i * 40), 2_500);
            near += outcome.viewer_delays[0].1.as_secs_f64();
            far += outcome.viewer_delays[1].1.as_secs_f64();
        }
        assert!(far > near * 1.5, "far {far} vs near {near}");
    }

    #[test]
    fn detached_viewers_stop_receiving() {
        let (mut tree, mut net) = world();
        join(&mut tree, &mut net, 1, 40.71, -74.01);
        join(&mut tree, &mut net, 2, 51.51, -0.13);
        tree.leave(1);
        net.detach_viewer(1);
        let outcome = net.push_frame(&tree, SimTime::ZERO, 2_500);
        assert_eq!(outcome.viewer_delays.len(), 1);
        assert_eq!(outcome.viewer_delays[0].0, 2);
    }

    #[test]
    fn forward_counters_accumulate_per_server() {
        let (mut tree, mut net) = world();
        join(&mut tree, &mut net, 1, 35.68, 139.65);
        for i in 0..10u64 {
            net.push_frame(&tree, SimTime::from_millis(i * 40), 2_500);
        }
        let root_forwards = net.forwards[&tree.root()];
        assert_eq!(root_forwards, 10, "one send per frame at the root");
        let total: u64 = net.forwards.values().sum();
        assert!(total > root_forwards);
    }
}
