//! Streaming summary statistics and correlation.

/// Welford's online mean/variance accumulator: numerically stable, O(1)
/// memory, works on unbounded streams (per-frame delay feeds).
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN-free ∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (parallel sweeps combine shards).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Pearson correlation of paired samples. Returns 0 when either side is
/// constant or the slices are empty/mismatched-by-truncation.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = xs[..n].iter().sum::<f64>() / nf;
    let my = ys[..n].iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Exact quantile of a mutable sample buffer (sorts in place). `q` in
/// `[0, 1]`; nearest-rank convention.
pub fn quantile_in_place(samples: &mut [f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of empty sample set");
    assert!((0.0..=1.0).contains(&q), "quantile order out of range");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let idx = ((samples.len() - 1) as f64 * q).floor() as usize;
    samples[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        data.iter().for_each(|&x| whole.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        data[..37].iter().for_each(|&x| a.push(x));
        data[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean());
        a.merge(&OnlineStats::new());
        assert_eq!((a.count(), a.mean()), before);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
    }

    #[test]
    fn pearson_detects_perfect_and_inverse_correlation() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases_are_zero() {
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        let constant = vec![5.0; 10];
        let varying: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson(&constant, &varying), 0.0);
    }

    #[test]
    fn quantiles_hit_expected_ranks() {
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile_in_place(&mut v, 0.0), 1.0);
        assert_eq!(quantile_in_place(&mut v, 1.0), 100.0);
        assert_eq!(quantile_in_place(&mut v, 0.5), 50.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        quantile_in_place(&mut [], 0.5);
    }
}
