//! ASCII table and CSV rendering for the `tabN`/`figN` binaries.

use std::fmt::Display;

/// A simple column-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Display>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count — misaligned
    /// tables are always bugs in the experiment code.
    pub fn row<S: Display>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the aligned ASCII form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
            // Trim per-line trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["App", "Broadcasts", "Views"]);
        t.row(["Periscope", "19.6M", "705M"]);
        t.row(["Meerkat", "164K", "3.8M"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("App"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // "Broadcasts" column should align: find its offset in header and rows.
        let offset = lines[0].find("Broadcasts").unwrap();
        assert_eq!(lines[2].find("19.6M").unwrap(), offset);
        assert_eq!(lines[3].find("164K").unwrap(), offset);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["a", "b"]);
        t.row(["plain", "has,comma"]);
        t.row(["has\"quote", "x"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
        assert!(csv.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn row_count_tracks() {
        assert_eq!(sample().row_count(), 2);
    }
}
