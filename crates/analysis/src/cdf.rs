//! Empirical cumulative distribution functions — the paper's favourite
//! plot (ten of its figures are CDFs).

/// An empirical CDF over `f64` samples.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples.
    ///
    /// # Panics
    /// Panics if any sample is NaN — NaNs are unordered and would corrupt
    /// every quantile silently.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "CDF input contains NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("checked non-NaN"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF by nearest rank; `q` in `[0, 1]`.
    ///
    /// # Panics
    /// Panics on an empty CDF or out-of-range `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile order {q} out of range");
        let idx = ((self.sorted.len() - 1) as f64 * q).floor() as usize;
        self.sorted[idx]
    }

    /// Median, `quantile(0.5)`.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Smallest / largest sample (None when empty).
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Downsamples to at most `points` `(x, F(x))` pairs for plotting,
    /// always keeping the first and last sample.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        if n == 0 || points == 0 {
            return Vec::new();
        }
        let points = points.min(n);
        let mut out = Vec::with_capacity(points);
        for k in 0..points {
            let idx = if points == 1 {
                n - 1
            } else {
                k * (n - 1) / (points - 1)
            };
            out.push((self.sorted[idx], (idx + 1) as f64 / n as f64));
        }
        out.dedup_by(|a, b| a == b);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf_1_to_100() -> Cdf {
        Cdf::from_samples((1..=100).map(|i| i as f64).collect())
    }

    #[test]
    fn fractions_are_exact() {
        let c = cdf_1_to_100();
        assert_eq!(c.fraction_at_or_below(0.0), 0.0);
        assert_eq!(c.fraction_at_or_below(50.0), 0.5);
        assert_eq!(c.fraction_at_or_below(100.0), 1.0);
        assert_eq!(c.fraction_at_or_below(1e9), 1.0);
    }

    #[test]
    fn quantiles_invert_fractions() {
        let c = cdf_1_to_100();
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.median(), 50.0);
        assert_eq!(c.quantile(1.0), 100.0);
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(100.0));
    }

    #[test]
    fn mean_is_correct() {
        assert!((cdf_1_to_100().mean() - 50.5).abs() < 1e-12);
        assert_eq!(Cdf::from_samples(vec![]).mean(), 0.0);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let c = Cdf::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(c.median(), 3.0);
    }

    #[test]
    fn duplicate_values_step_correctly() {
        let c = Cdf::from_samples(vec![1.0, 2.0, 2.0, 2.0, 3.0]);
        assert_eq!(c.fraction_at_or_below(1.9), 0.2);
        assert_eq!(c.fraction_at_or_below(2.0), 0.8);
    }

    #[test]
    fn series_is_monotonic_and_bounded() {
        let c = cdf_1_to_100();
        let s = c.series(10);
        assert!(s.len() <= 10);
        assert_eq!(s.first().unwrap().0, 1.0);
        assert_eq!(s.last().unwrap(), &(100.0, 1.0));
        for w in s.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn series_handles_degenerate_requests() {
        let c = cdf_1_to_100();
        assert!(c.series(0).is_empty());
        assert_eq!(c.series(1), vec![(100.0, 1.0)]);
        assert!(Cdf::from_samples(vec![]).series(10).is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_input_panics() {
        Cdf::from_samples(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        Cdf::from_samples(vec![]).quantile(0.5);
    }
}
