//! The end-to-end delay ledger of Figs 10–11.
//!
//! The paper decomposes delivery delay into six components. RTMP paths use
//! three of them (upload, last-mile, client-buffering); HLS paths use all
//! six. Delays are plain `f64` seconds here; the simulation converts from
//! its integer microsecond clock at the boundary.

use std::fmt;

/// One of the six delay components of Fig 10.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DelayComponent {
    /// Broadcaster device → Wowza.
    Upload,
    /// Waiting for a chunk to fill (HLS only; equals chunk duration).
    Chunking,
    /// Fresh chunk ready on Wowza → available on Fastly (HLS only).
    Wowza2Fastly,
    /// Chunk available on Fastly → viewer's poll discovers it (HLS only).
    Polling,
    /// Server → viewer device transfer.
    LastMile,
    /// Arrival on device → playout.
    Buffering,
}

impl DelayComponent {
    /// All components, upstream to downstream.
    pub fn all() -> [DelayComponent; 6] {
        [
            DelayComponent::Upload,
            DelayComponent::Chunking,
            DelayComponent::Wowza2Fastly,
            DelayComponent::Polling,
            DelayComponent::LastMile,
            DelayComponent::Buffering,
        ]
    }

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            DelayComponent::Upload => "Upload",
            DelayComponent::Chunking => "Chunking",
            DelayComponent::Wowza2Fastly => "Wowza2Fastly",
            DelayComponent::Polling => "Polling",
            DelayComponent::LastMile => "Last Mile",
            DelayComponent::Buffering => "Buffering",
        }
    }
}

impl fmt::Display for DelayComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A six-slot delay breakdown in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DelayBreakdown {
    /// Broadcaster upload leg (RTMP ingest).
    pub upload_s: f64,
    /// Transcode/chunking dwell at the media server.
    pub chunking_s: f64,
    /// Wowza-to-Fastly origin fetch leg.
    pub wowza2fastly_s: f64,
    /// CDN edge polling wait.
    pub polling_s: f64,
    /// Edge-to-viewer last-mile leg.
    pub last_mile_s: f64,
    /// Client playout buffering.
    pub buffering_s: f64,
}

impl DelayBreakdown {
    /// All-zero breakdown.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Reads a component.
    pub fn get(&self, c: DelayComponent) -> f64 {
        match c {
            DelayComponent::Upload => self.upload_s,
            DelayComponent::Chunking => self.chunking_s,
            DelayComponent::Wowza2Fastly => self.wowza2fastly_s,
            DelayComponent::Polling => self.polling_s,
            DelayComponent::LastMile => self.last_mile_s,
            DelayComponent::Buffering => self.buffering_s,
        }
    }

    /// Writes a component.
    pub fn set(&mut self, c: DelayComponent, seconds: f64) {
        let slot = match c {
            DelayComponent::Upload => &mut self.upload_s,
            DelayComponent::Chunking => &mut self.chunking_s,
            DelayComponent::Wowza2Fastly => &mut self.wowza2fastly_s,
            DelayComponent::Polling => &mut self.polling_s,
            DelayComponent::LastMile => &mut self.last_mile_s,
            DelayComponent::Buffering => &mut self.buffering_s,
        };
        *slot = seconds;
    }

    /// Adds to a component.
    pub fn add(&mut self, c: DelayComponent, seconds: f64) {
        self.set(c, self.get(c) + seconds);
    }

    /// End-to-end total.
    pub fn total_s(&self) -> f64 {
        DelayComponent::all().iter().map(|&c| self.get(c)).sum()
    }

    /// Component-wise average of many breakdowns (the controlled
    /// experiment "repeated 10 times and averaged", §4.3).
    pub fn average(breakdowns: &[DelayBreakdown]) -> DelayBreakdown {
        let mut avg = DelayBreakdown::zero();
        if breakdowns.is_empty() {
            return avg;
        }
        for b in breakdowns {
            for c in DelayComponent::all() {
                avg.add(c, b.get(c));
            }
        }
        for c in DelayComponent::all() {
            avg.set(c, avg.get(c) / breakdowns.len() as f64);
        }
        avg
    }

    /// Renders an ASCII stacked-bar summary line, e.g. for Fig 11.
    pub fn render_row(&self, name: &str) -> String {
        let mut parts: Vec<String> = Vec::new();
        for c in DelayComponent::all() {
            let v = self.get(c);
            if v > 0.0005 {
                parts.push(format!("{}={:.2}s", c.label(), v));
            }
        }
        format!(
            "{:<6} total={:>6.2}s  [{}]",
            name,
            self.total_s(),
            parts.join(" ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hls_like() -> DelayBreakdown {
        DelayBreakdown {
            upload_s: 0.2,
            chunking_s: 3.0,
            wowza2fastly_s: 0.3,
            polling_s: 1.2,
            last_mile_s: 0.1,
            buffering_s: 6.9,
        }
    }

    #[test]
    fn total_sums_components() {
        assert!((hls_like().total_s() - 11.7).abs() < 1e-12);
        assert_eq!(DelayBreakdown::zero().total_s(), 0.0);
    }

    #[test]
    fn get_set_add_roundtrip_all_components() {
        let mut b = DelayBreakdown::zero();
        for (i, c) in DelayComponent::all().into_iter().enumerate() {
            b.set(c, i as f64);
            assert_eq!(b.get(c), i as f64);
            b.add(c, 1.0);
            assert_eq!(b.get(c), i as f64 + 1.0);
        }
    }

    #[test]
    fn average_is_componentwise() {
        let a = hls_like();
        let mut b = hls_like();
        b.upload_s = 0.4;
        let avg = DelayBreakdown::average(&[a, b]);
        assert!((avg.upload_s - 0.3).abs() < 1e-12);
        assert!((avg.chunking_s - 3.0).abs() < 1e-12);
        assert_eq!(DelayBreakdown::average(&[]), DelayBreakdown::zero());
    }

    #[test]
    fn render_row_omits_zero_components() {
        let rtmp = DelayBreakdown {
            upload_s: 0.2,
            last_mile_s: 0.2,
            buffering_s: 1.0,
            ..DelayBreakdown::zero()
        };
        let row = rtmp.render_row("RTMP");
        assert!(row.contains("Upload"));
        assert!(row.contains("Buffering"));
        assert!(!row.contains("Chunking"));
        assert!(row.contains("1.40s"));
    }

    #[test]
    fn component_labels_match_fig11_legend() {
        let labels: Vec<_> = DelayComponent::all().iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Upload",
                "Chunking",
                "Wowza2Fastly",
                "Polling",
                "Last Mile",
                "Buffering"
            ]
        );
    }
}
