//! Figure artifacts: labeled series, CSV export, and a terminal ASCII
//! chart for eyeballing CDFs and time series without leaving the shell.

use serde::Serialize;

/// One labeled line of a figure.
#[derive(Clone, Debug, Serialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// A new labeled series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// A figure: title, axis labels, one or more series.
#[derive(Clone, Debug, Serialize)]
pub struct Figure {
    /// Figure title (the paper artifact name).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
    /// Render the x-axis in log10 space.
    pub log_x: bool,
}

impl Figure {
    /// A new empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            log_x: false,
        }
    }

    /// Switches the x-axis to log scale (the paper's Figs 4–7 are log-x).
    pub fn with_log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Adds a series.
    pub fn push_series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// CSV with one `series,x,y` row per point.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for &(x, y) in &s.points {
                out.push_str(&format!("{},{},{}\n", s.label, x, y));
            }
        }
        out
    }

    /// JSON dump (for downstream plotting).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("figure serializes")
    }

    /// Renders an ASCII chart of `width × height` characters (plus axes).
    /// Each series gets a distinct glyph; overlapping points show the
    /// later series.
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
        let width = width.max(16);
        let height = height.max(6);
        let transform = |x: f64| -> f64 {
            if self.log_x {
                x.max(1e-12).log10()
            } else {
                x
            }
        };
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, y)| (transform(x), y)))
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        let mut out = format!("{}\n", self.title);
        if all.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in &s.points {
                let (tx, ty) = (transform(x), y);
                if !tx.is_finite() || !ty.is_finite() {
                    continue;
                }
                let col = ((tx - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
                let row = ((ty - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
                grid[height - 1 - row][col.min(width - 1)] = glyph;
            }
        }
        for (i, line) in grid.iter().enumerate() {
            let y_val = y1 - (y1 - y0) * i as f64 / (height - 1) as f64;
            out.push_str(&format!("{y_val:>8.2} |"));
            out.extend(line.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(width)));
        let x_left = if self.log_x {
            format!("10^{x0:.1}")
        } else {
            format!("{x0:.2}")
        };
        let x_right = if self.log_x {
            format!("10^{x1:.1}")
        } else {
            format!("{x1:.2}")
        };
        let pad = (width + 10).saturating_sub(x_left.len().max(10) + x_right.len());
        out.push_str(&format!("{:>10}{}{}\n", x_left, " ".repeat(pad), x_right));
        out.push_str(&format!("x: {}   y: {}\n", self.x_label, self.y_label));
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        let mut f = Figure::new("CDF of things", "value", "CDF");
        f.push_series(Series::new("a", vec![(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)]));
        f.push_series(Series::new("b", vec![(0.5, 0.2), (1.5, 0.9)]));
        f
    }

    #[test]
    fn csv_lists_every_point() {
        let csv = sample_figure().to_csv();
        assert_eq!(csv.lines().count(), 1 + 3 + 2);
        assert!(csv.starts_with("series,x,y"));
        assert!(csv.contains("a,1,0.5"));
    }

    #[test]
    fn json_is_valid_and_roundtrippable() {
        let json = sample_figure().to_json();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["series"].as_array().unwrap().len(), 2);
        assert_eq!(value["title"], "CDF of things");
    }

    #[test]
    fn ascii_render_contains_title_axes_and_legend() {
        let art = sample_figure().render_ascii(40, 10);
        assert!(art.contains("CDF of things"));
        assert!(art.contains("x: value"));
        assert!(art.contains("* a"));
        assert!(art.contains("o b"));
        assert!(art.contains('|'));
        assert!(art.contains('+'));
    }

    #[test]
    fn ascii_render_handles_empty_figure() {
        let f = Figure::new("empty", "x", "y");
        assert!(f.render_ascii(40, 10).contains("(no data)"));
    }

    #[test]
    fn ascii_render_handles_constant_series() {
        let mut f = Figure::new("flat", "x", "y");
        f.push_series(Series::new("c", vec![(1.0, 2.0), (1.0, 2.0)]));
        let art = f.render_ascii(30, 8);
        assert!(art.contains('*'));
    }

    #[test]
    fn log_x_does_not_crash_on_zero() {
        let mut f = Figure::new("log", "x", "y").with_log_x();
        f.push_series(Series::new(
            "z",
            vec![(0.0, 0.0), (10.0, 0.5), (1000.0, 1.0)],
        ));
        let art = f.render_ascii(40, 8);
        assert!(art.contains("10^"));
    }
}
