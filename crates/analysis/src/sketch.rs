//! Mergeable streaming quantile sketch — the bounded-memory counterpart
//! of [`crate::Cdf`] for the longitudinal replay path.
//!
//! [`QuantileSketch`] is a fixed-resolution log-binned histogram: each
//! power-of-two octave of the value range is split into 128 equal-width
//! sub-bins, so any recorded value lands in a bin whose relative
//! half-width is at most `1/256 ≈ 0.39%`. Quantile queries return the
//! bin midpoint (clamped to the exact observed min/max), which keeps the
//! worst-case relative error under the 0.5% budget the paper's reported
//! percentiles (p10/p50/p90/p99) need. Memory is a fixed ~50 KiB per
//! sketch regardless of how many samples stream through, and two
//! sketches merge by adding their bin counts — the property the sharded
//! campaign fold relies on.
//!
//! # Merge semantics
//!
//! [`QuantileSketch::merge`] is *exact*, not approximate: a bin count is
//! a `u64` and addition is associative and commutative, so folding a
//! sample stream through any partition into shard sketches and merging
//! them yields bin-for-bin the state of one sequential fold — same
//! quantiles, same rendered series, byte for byte. The only `f64`
//! accumulator is the running `sum` backing [`QuantileSketch::mean`];
//! the data-parallel replay (DESIGN.md §13) merges shards in fixed
//! shard order so even that float addition happens in one canonical
//! order, and no rendered figure reads `mean()` anyway. Min/max merge
//! by `min`/`max`, which are order-free. The proptests in
//! `tests/sketch_proptest.rs` pin the merge laws (commutativity,
//! associativity, merge-equals-single-fold).
//!
//! Binning is computed from the IEEE-754 bit pattern (exponent plus the
//! top seven mantissa bits), not `log2`, so bin assignment is exact and
//! identical on every platform — a determinism-contract requirement
//! (DESIGN.md §8), since figure bytes are diffed across runs.

/// Sub-bins per power-of-two octave (2^7): bounds relative error at 1/256.
const SUB_BITS: u32 = 7;
/// Sub-bins per octave as a count.
const SUBS: usize = 1 << SUB_BITS;
/// Smallest representable exponent: values in `(0, 2^-10)` clamp into the
/// first bin. Workload metrics are counts and second-scale durations, so
/// nothing meaningful lives below `~0.001`.
const MIN_EXP: i64 = -10;
/// One-past-largest exponent: values at or above `2^40` (~10^12) clamp
/// into the last bin.
const MAX_EXP: i64 = 40;
/// Total bin count: 50 octaves × 128 sub-bins.
const BINS: usize = ((MAX_EXP - MIN_EXP) as usize) << SUB_BITS;

/// A mergeable, fixed-memory quantile sketch over non-negative samples.
///
/// Mirrors the query surface of [`crate::Cdf`] (`quantile`,
/// `fraction_at_or_below`, `series`, `mean`, `min`/`max`) so experiment
/// code can swap the exact CDF for the sketch without changing call
/// sites. Zero is tracked in its own exact bin because the paper's
/// distributions are heavily zero-inflated (90% of Meerkat broadcasts
/// have no viewers).
#[derive(Clone, Debug)]
pub struct QuantileSketch {
    /// Exact count of samples equal to zero.
    zero: u64,
    /// Log-binned counts of positive samples.
    bins: Vec<u64>,
    /// Total samples, including zeros.
    count: u64,
    /// Running sum in push order (deterministic: single fold order).
    sum: f64,
    /// Exact smallest sample (`+inf` when empty).
    min: f64,
    /// Exact largest sample (`-inf` when empty).
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            zero: 0,
            bins: vec![0; BINS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bin index for a positive finite value, derived from its IEEE-754
    /// exponent and top mantissa bits (exact — no floating transcendentals).
    fn bin_index(v: f64) -> usize {
        debug_assert!(v > 0.0 && v.is_finite());
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
        if exp < MIN_EXP {
            return 0;
        }
        if exp >= MAX_EXP {
            return BINS - 1;
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        (((exp - MIN_EXP) as usize) << SUB_BITS) | sub
    }

    /// Exact power of two `2^e` for in-range exponents, via the bit pattern.
    fn pow2(e: i64) -> f64 {
        f64::from_bits(((e + 1023) as u64) << 52)
    }

    /// Midpoint of bin `idx` — the value reported for any sample that
    /// landed there.
    fn representative(idx: usize) -> f64 {
        let octave = (idx >> SUB_BITS) as i64 + MIN_EXP;
        let sub = (idx & (SUBS - 1)) as f64;
        Self::pow2(octave) * (1.0 + (sub + 0.5) / SUBS as f64)
    }

    /// Records one sample.
    ///
    /// # Panics
    /// Panics on NaN, negative, or infinite input — workload metrics are
    /// all finite non-negative counts or durations, so any other value is
    /// a bug upstream.
    pub fn push(&mut self, v: f64) {
        assert!(
            v.is_finite() && v >= 0.0,
            "sketch input must be finite and non-negative, got {v}"
        );
        if v == 0.0 {
            self.zero += 1;
        } else {
            self.bins[Self::bin_index(v)] += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another sketch into this one. `merge(a, b)` is equivalent to
    /// feeding both input streams into a single sketch (bin counts add;
    /// only `mean` can differ in the last ulps from summation order).
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.zero += other.zero;
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Approximate `P(X <= x)`: exact for zeros, within one bin's mass for
    /// positive `x` (a bin is counted when its midpoint is at or below `x`).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.count == 0 || x < 0.0 {
            return 0.0;
        }
        let mut acc = self.zero;
        if x > 0.0 {
            let idx_x = Self::bin_index(x.min(Self::pow2(MAX_EXP)));
            for &c in &self.bins[..idx_x] {
                acc += c;
            }
            if Self::representative(idx_x) <= x {
                acc += self.bins[idx_x];
            }
        }
        acc as f64 / self.count as f64
    }

    /// Inverse CDF by nearest rank, mirroring [`crate::Cdf::quantile`]'s
    /// rank convention; returns the containing bin's midpoint clamped to
    /// the exact observed `[min, max]`.
    ///
    /// # Panics
    /// Panics on an empty sketch or out-of-range `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.count > 0, "quantile of empty sketch");
        assert!((0.0..=1.0).contains(&q), "quantile order {q} out of range");
        let rank = ((self.count - 1) as f64 * q).floor() as u64 + 1;
        if rank <= self.zero {
            return 0.0;
        }
        // Rank-1 and rank-n samples are tracked exactly.
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut cum = self.zero;
        for (idx, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::representative(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median, `quantile(0.5)`.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact smallest sample (None when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample (None when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Downsamples the sketch CDF to at most `points` `(x, F(x))` pairs
    /// for plotting, pinning the first point to the exact minimum and the
    /// last to the exact maximum — the same endpoint convention as
    /// [`crate::Cdf::series`].
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.count == 0 || points == 0 {
            return Vec::new();
        }
        // One point per occupied bin, in value order.
        let mut full: Vec<(f64, f64)> = Vec::new();
        let mut cum = 0u64;
        if self.zero > 0 {
            cum += self.zero;
            full.push((0.0, cum as f64 / self.count as f64));
        }
        for (idx, &c) in self.bins.iter().enumerate() {
            if c > 0 {
                cum += c;
                let x = Self::representative(idx).clamp(self.min, self.max);
                full.push((x, cum as f64 / self.count as f64));
            }
        }
        if let Some(first) = full.first_mut() {
            first.0 = self.min;
        }
        if let Some(last) = full.last_mut() {
            last.0 = self.max;
        }
        let n = full.len();
        let points = points.min(n);
        let mut out = Vec::with_capacity(points);
        for k in 0..points {
            let idx = if points == 1 {
                n - 1
            } else {
                k * (n - 1) / (points - 1)
            };
            out.push(full[idx]);
        }
        out.dedup_by(|a, b| a == b);
        out
    }

    /// Bytes of heap + inline storage this sketch holds — the replay
    /// bench's self-measured memory accounting (DESIGN.md §10).
    pub fn tracked_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.bins.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cdf;

    fn filled(values: &[f64]) -> (QuantileSketch, Cdf) {
        let mut s = QuantileSketch::new();
        for &v in values {
            s.push(v);
        }
        (s, Cdf::from_samples(values.to_vec()))
    }

    #[test]
    fn small_run_matches_exact_cdf() {
        let values: Vec<f64> = (1..=1000).map(|i| (i * i) as f64 / 7.0).collect();
        let (s, c) = filled(&values);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = c.quantile(q);
            let approx = s.quantile(q);
            assert!(
                (approx - exact).abs() / exact <= 0.005,
                "q={q}: sketch {approx} vs exact {exact}"
            );
        }
        assert_eq!(s.min(), c.min());
        assert_eq!(s.max(), c.max());
        assert!((s.mean() - c.mean()).abs() / c.mean() < 1e-9);
    }

    #[test]
    fn zeros_are_exact() {
        let (s, c) = filled(&[0.0, 0.0, 0.0, 1.0, 2.0]);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.median(), c.median());
        assert_eq!(s.fraction_at_or_below(0.0), 0.6);
        assert_eq!(s.fraction_at_or_below(-1.0), 0.0);
        assert_eq!(s.fraction_at_or_below(10.0), 1.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let a_vals: Vec<f64> = (1..500).map(|i| i as f64 * 3.7).collect();
        let b_vals: Vec<f64> = (1..800).map(|i| i as f64 * 0.9 + 12.0).collect();
        let mut merged = QuantileSketch::new();
        let mut single = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for &v in &a_vals {
            merged.push(v);
            single.push(v);
        }
        for &v in &b_vals {
            b.push(v);
            single.push(v);
        }
        merged.merge(&b);
        assert_eq!(merged.len(), single.len());
        assert_eq!(merged.zero, single.zero);
        assert_eq!(merged.bins, single.bins);
        assert_eq!(merged.min(), single.min());
        assert_eq!(merged.max(), single.max());
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(merged.quantile(q), single.quantile(q));
        }
    }

    #[test]
    fn series_is_monotonic_and_pinned() {
        let values: Vec<f64> = (1..=5000).map(|i| (i as f64).powf(1.7)).collect();
        let (s, _) = filled(&values);
        let ser = s.series(120);
        assert!(ser.len() <= 120);
        assert_eq!(ser.first().unwrap().0, 1.0);
        let last = ser.last().unwrap();
        assert_eq!(last.0, 5000f64.powf(1.7));
        assert_eq!(last.1, 1.0);
        for w in ser.windows(2) {
            assert!(w[0].0 <= w[1].0, "x not monotone: {w:?}");
            assert!(w[0].1 <= w[1].1, "F not monotone: {w:?}");
        }
    }

    #[test]
    fn series_handles_degenerate_requests() {
        let (s, _) = filled(&[4.0]);
        assert!(s.series(0).is_empty());
        assert_eq!(s.series(1), vec![(4.0, 1.0)]);
        assert!(QuantileSketch::new().series(10).is_empty());
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut s = QuantileSketch::new();
        s.push(1e-9); // below 2^-10: clamps into the first bin
        s.push(1e15); // above 2^40: clamps into the last bin
        assert_eq!(s.len(), 2);
        // Exact extremes still come from min/max tracking.
        assert_eq!(s.quantile(0.0), 1e-9);
        assert_eq!(s.quantile(1.0), 1e15);
    }

    #[test]
    fn tracked_bytes_is_constant() {
        let mut s = QuantileSketch::new();
        let before = s.tracked_bytes();
        for i in 0..100_000 {
            s.push(i as f64 + 0.5);
        }
        assert_eq!(s.tracked_bytes(), before);
        assert!(before < 64 * 1024, "sketch should stay under 64 KiB");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_input_panics() {
        QuantileSketch::new().push(-1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        QuantileSketch::new().quantile(0.5);
    }
}
