//! # livescope-analysis — statistics and reporting toolkit
//!
//! Everything the paper reports is one of four artifact shapes: a summary
//! table (Tables 1–2), a CDF (Figs 3–6, 12–13, 15–17), a time series
//! (Figs 1–2) or a component breakdown (Fig 11). This crate implements
//! those shapes once so every experiment renders identically:
//!
//! * [`stats`] — streaming summaries (Welford), quantiles, correlation;
//! * [`cdf`] — empirical CDFs with exact quantiles and downsampled series;
//! * [`sketch`] — a mergeable log-binned quantile sketch with the same
//!   query surface as [`Cdf`], for bounded-memory streaming replay;
//! * [`delay`] — the six-component end-to-end delay ledger of Fig 10/11;
//! * [`table`] — ASCII table + CSV rendering;
//! * [`figure`] — labeled series, CSV export, and a terminal ASCII chart
//!   good enough to eyeball a CDF without leaving the shell.
//!
//! The crate is dependency-light (only `serde` for figure dumps) and uses
//! plain `f64` seconds for delays so it never entangles with simulation
//! types.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cdf;
pub mod delay;
pub mod figure;
pub mod sketch;
pub mod stats;
pub mod table;

pub use cdf::Cdf;
pub use delay::{DelayBreakdown, DelayComponent};
pub use figure::{Figure, Series};
pub use sketch::QuantileSketch;
pub use stats::{pearson, OnlineStats};
pub use table::Table;
