//! Property tests for the streaming quantile sketch: agreement with the
//! exact [`Cdf`] at the percentiles the paper reports, and the merge law
//! the sharded campaign fold depends on.

#![forbid(unsafe_code)]

use livescope_analysis::{Cdf, QuantileSketch};
use proptest::collection::vec;
use proptest::{prop_assert, prop_assert_eq, proptest};

/// Percentiles the paper quotes in §4–§5 (Figs 3–6 commentary).
const PAPER_PERCENTILES: [f64; 4] = [0.10, 0.50, 0.90, 0.99];

fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.push(v);
    }
    s
}

/// Zero-inflate a raw sample vector the way broadcast metrics are:
/// a large point mass at exactly zero plus a heavy positive tail.
fn zero_inflate(raw: Vec<f64>) -> Vec<f64> {
    raw.into_iter()
        .map(|v| if v < 2e5 { 0.0 } else { v - 2e5 + 0.01 })
        .collect()
}

proptest! {
    #[test]
    fn sketch_matches_cdf_at_paper_percentiles(raw in vec(0.0f64..1e9, 1..400)) {
        let values = zero_inflate(raw);
        let sketch = sketch_of(&values);
        let cdf = Cdf::from_samples(values);
        for q in PAPER_PERCENTILES {
            let exact = cdf.quantile(q);
            let approx = sketch.quantile(q);
            if exact == 0.0 {
                prop_assert_eq!(approx, 0.0);
            } else {
                let rel = (approx - exact).abs() / exact;
                prop_assert!(
                    rel <= 0.005,
                    "p{}: sketch {} vs exact {} (rel {})",
                    q * 100.0, approx, exact, rel
                );
            }
        }
        prop_assert_eq!(sketch.min(), cdf.min());
        prop_assert_eq!(sketch.max(), cdf.max());
        prop_assert_eq!(sketch.len() as usize, cdf.len());
    }

    #[test]
    fn merge_is_equivalent_to_one_stream(
        left in vec(0.0f64..1e9, 0..200),
        right in vec(0.0f64..1e9, 0..200),
    ) {
        let left = zero_inflate(left);
        let right = zero_inflate(right);
        let mut merged = sketch_of(&left);
        merged.merge(&sketch_of(&right));
        let mut single = sketch_of(&left);
        for &v in &right {
            single.push(v);
        }
        prop_assert_eq!(merged.len(), single.len());
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
        if !merged.is_empty() {
            for q in [0.0, 0.10, 0.50, 0.90, 0.99, 1.0] {
                prop_assert_eq!(merged.quantile(q), single.quantile(q));
            }
            prop_assert_eq!(merged.series(120), single.series(120));
        }
    }

    #[test]
    fn merge_is_associative(
        a in vec(0.0f64..1e9, 0..120),
        b in vec(0.0f64..1e9, 0..120),
        c in vec(0.0f64..1e9, 0..120),
    ) {
        let (a, b, c) = (zero_inflate(a), zero_inflate(b), zero_inflate(c));
        // (a ⊕ b) ⊕ c
        let mut ab_c = sketch_of(&a);
        ab_c.merge(&sketch_of(&b));
        ab_c.merge(&sketch_of(&c));
        // a ⊕ (b ⊕ c)
        let mut bc = sketch_of(&b);
        bc.merge(&sketch_of(&c));
        let mut a_bc = sketch_of(&a);
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c.len(), a_bc.len());
        if !ab_c.is_empty() {
            for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
                prop_assert_eq!(ab_c.quantile(q), a_bc.quantile(q));
            }
            prop_assert_eq!(ab_c.series(150), a_bc.series(150));
        }
    }
}
