//! Simulation clock types.
//!
//! [`SimTime`] is an absolute instant and [`SimDuration`] a span, both in
//! integer microseconds. Integer time keeps the event queue total order
//! exact — two events scheduled "3 s apart" are *exactly* 3,000,000 ticks
//! apart no matter how the span was computed.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Microseconds in one millisecond.
pub const MICROS_PER_MILLI: u64 = 1_000;

/// An absolute simulation instant, counted in microseconds since the start
/// of the simulation (time zero).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulation time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * MICROS_PER_MILLI)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Builds an instant from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`, saturating to zero when `earlier`
    /// is actually later (the caller mixed up its bookkeeping; a saturating
    /// result keeps delay accounting robust instead of panicking mid-run).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Exact span since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier > self`; use [`SimTime::saturating_since`] when the
    /// ordering is not guaranteed.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * MICROS_PER_MILLI)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the span by a non-negative factor, rounding to the nearest
    /// microsecond. Used by jitter models (`latency * 1.3`).
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(
            rhs.0 <= self.0,
            "SimDuration subtraction underflow: {self} - {rhs}"
        );
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(40).as_micros(), 40_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
    }

    #[test]
    fn fractional_seconds_round_to_nearest_microsecond() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(2.8).as_micros(), 2_800_000);
        assert_eq!(SimTime::from_secs_f64(-5.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!(t - d, SimTime::from_secs(7));
        assert_eq!((t + d).since(t), d);
        assert_eq!(d * 3, SimDuration::from_secs(9));
        assert_eq!(d / 2, SimDuration::from_micros(1_500_000));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "since")]
    fn since_panics_on_reversed_order() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn add_saturates_at_max() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn mul_f64_scales_and_clamps() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_secs(3));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", SimDuration::from_millis(2800)), "2.800s");
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
    }
}
