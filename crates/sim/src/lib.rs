//! # livescope-sim — deterministic discrete-event simulation kernel
//!
//! Every experiment in the `livescope` workspace runs on this kernel. The
//! design goals mirror the measurement methodology of the IMC'16 paper this
//! workspace reproduces:
//!
//! * **Determinism.** A run is a pure function of `(initial state, seed)`.
//!   The event queue breaks timestamp ties by insertion sequence, and all
//!   randomness is drawn from named [`rng::RngPool`] streams forked from a
//!   single root seed, so adding a component never perturbs the draws seen
//!   by another.
//! * **Microsecond resolution.** The paper measures delays from tens of
//!   milliseconds (one video frame is 40 ms) up to tens of seconds, and the
//!   crawler polls every 100 ms; [`time::SimTime`] counts microseconds in a
//!   `u64`, giving ~584k years of range with no floating-point drift.
//! * **Simplicity over cleverness.** Following the smoltcp design ethos, the
//!   kernel is a plain binary heap of boxed closures — no macros, no unsafe,
//!   no trait gymnastics.
//!
//! ## Quick tour
//!
//! ```
//! use livescope_sim::{Scheduler, time::SimDuration};
//!
//! let mut sched: Scheduler<Vec<u64>> = Scheduler::new();
//! sched.schedule_in(SimDuration::from_millis(40), |sched, log| {
//!     log.push(sched.now().as_micros());
//! });
//! let mut log = Vec::new();
//! sched.run(&mut log);
//! assert_eq!(log, vec![40_000]);
//! ```

#![forbid(unsafe_code)]

pub mod dist;
pub mod engine;
pub mod process;
pub mod rng;
pub mod time;

pub use engine::{EventId, Scheduler};
pub use process::Ticker;
pub use rng::RngPool;
pub use time::{SimDuration, SimTime};
