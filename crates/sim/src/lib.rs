//! # livescope-sim — deterministic discrete-event simulation kernel
//!
//! Every experiment in the `livescope` workspace runs on this kernel. The
//! design goals mirror the measurement methodology of the IMC'16 paper this
//! workspace reproduces:
//!
//! * **Determinism.** A run is a pure function of `(initial state, seed)`.
//!   The event queue breaks timestamp ties by insertion sequence, and all
//!   randomness is drawn from named [`rng::RngPool`] streams forked from a
//!   single root seed, so adding a component never perturbs the draws seen
//!   by another.
//! * **Microsecond resolution.** The paper measures delays from tens of
//!   milliseconds (one video frame is 40 ms) up to tens of seconds, and the
//!   crawler polls every 100 ms; [`time::SimTime`] counts microseconds in a
//!   `u64`, giving ~584k years of range with no floating-point drift.
//! * **Simplicity over cleverness.** Following the smoltcp design ethos, the
//!   kernel is a plain binary heap of boxed closures — no macros, no unsafe,
//!   no trait gymnastics.
//!
//! ## Quick tour
//!
//! ```
//! use livescope_sim::{Scheduler, time::SimDuration};
//!
//! let mut sched: Scheduler<Vec<u64>> = Scheduler::new();
//! sched.schedule_in(SimDuration::from_millis(40), |sched, log| {
//!     log.push(sched.now().as_micros());
//! });
//! let mut log = Vec::new();
//! sched.run(&mut log);
//! assert_eq!(log, vec![40_000]);
//! ```
//!
//! ## Two backends, one contract
//!
//! The classic [`Scheduler`] runs everything on one lane. The
//! [`ShardedScheduler`] partitions the world into per-datacenter shards
//! with explicit mailboxes and epoch barriers — same determinism contract
//! (same seed ⇒ same trace bytes, any lane count), optionally executed by
//! worker threads behind the `parallel` feature. Workloads target the
//! [`backend::SchedulerBackend`] trait to run on either. See the
//! [`sharded`] module docs for the lane model and merge rules.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod backend;
pub mod dist;
pub mod engine;
pub mod process;
pub mod rng;
pub mod sharded;
pub mod time;

pub use backend::{BackendChoice, BackendEvent, EventCtx, SchedulerBackend, ShardId, SingleLane};
pub use engine::{EventId, Scheduler};
pub use process::Ticker;
pub use rng::RngPool;
pub use sharded::ShardedScheduler;
pub use time::{SimDuration, SimTime};
