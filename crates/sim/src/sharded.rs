//! Multi-lane discrete-event backend with per-datacenter shards.
//!
//! # Lane model
//!
//! A [`ShardedScheduler<S>`] owns a fixed set of shards. Each shard is a
//! complete miniature scheduler: its own `(time, seq)`-ordered event heap,
//! its own clock, its own deterministic RNG pool
//! (`root.child_indexed("shard", i)`), its own outgoing mailbox, and its
//! own trace buffer. During an *epoch* — a half-open window `[k·e, (k+1)·e)`
//! on the simulated clock — every shard runs its local events independently
//! of every other shard; the only cross-shard channel is the mailbox, and
//! mailboxes are drained exclusively at the *epoch barrier*.
//!
//! # The merge contract
//!
//! At each barrier, single-threaded code:
//!
//! 1. collects all outgoing mail and delivers it in
//!    `(delivery time, source shard, source seq)` order — never in map or
//!    thread-completion order — assigning destination-queue sequence
//!    numbers in that deterministic order;
//! 2. merges per-shard trace buffers into the attached telemetry sink in
//!    `(time, shard_id, seq)` order — a total order because `seq` is
//!    monotone per shard.
//!
//! Because every observable (event order within a shard, mail delivery
//! order, trace merge order, RNG streams) is derived from simulated time
//! and shard identity alone, the run is a pure function of
//! `(states, seed, epoch)`: the number of worker lanes — and, with the
//! `parallel` feature, actual thread interleaving — cannot leak into the
//! output. Same seed ⇒ same trace bytes, any lane count.
//!
//! # Worker lanes
//!
//! `lanes` controls how many workers execute shards within an epoch
//! (shards are split into `lanes` contiguous chunks, one worker per
//! chunk). Without the `parallel` feature the lanes are notional and
//! shards run sequentially in shard order; with it, each lane gets a
//! scoped worker thread. Both paths produce identical output — the
//! determinism sweep in `tests/sharded_determinism.rs` asserts byte
//! equality across lane counts.
//!
//! # Barrier cost
//!
//! The barrier itself is engineered to stay off the profile
//! (`handler.sharded.{lane_exec,mail_merge,trace_merge}_ns` measure it):
//! mail and trace merges reuse persistent scratch buffers instead of
//! allocating per epoch, sorts are skipped when at most one shard
//! contributed (a single shard's buffer is already in merged order),
//! each epoch's merged trace block is handed to the telemetry sink in
//! one batch — one sink lock per epoch rather than one per event, with
//! memory bounded by a single epoch's traffic (sound because epochs
//! partition simulated time, so successive blocks are already globally
//! ordered), and when
//! exactly one shard has events due the scheduler *sprints*: it runs that
//! shard across grid cells without intermediate barriers until it drains
//! or emits cross-shard mail — the only thing a barrier exists to order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use livescope_telemetry::{CounterId, GaugeId, Section, Telemetry, TraceEvent};

use crate::backend::{BackendEvent, EventCtx, SchedulerBackend, ShardId};
use crate::rng::RngPool;
use crate::time::{SimDuration, SimTime};

/// One queued event on a shard's local heap.
struct Queued<S> {
    at: SimTime,
    seq: u64,
    run: BackendEvent<S>,
}

// Max-heap; invert so the earliest (time, seq) pops first.
impl<S> PartialEq for Queued<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Queued<S> {}
impl<S> PartialOrd for Queued<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Queued<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A cross-shard message awaiting the next epoch barrier.
struct Mail<S> {
    /// Requested delivery time (clamped to the barrier on delivery).
    at: SimTime,
    src: u16,
    /// Send order within the source shard; the mail-merge tiebreaker.
    src_seq: u64,
    dest: u16,
    run: BackendEvent<S>,
}

/// Everything a shard owns besides its state: heap, clock, RNG, mailbox,
/// trace buffer, and counters.
struct LaneCore<S> {
    id: u16,
    shard_count: u16,
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Queued<S>>,
    pool: RngPool,
    outbox: Vec<Mail<S>>,
    sent: u64,
    tracing: bool,
    trace: Vec<(u64, u64, TraceEvent)>,
    emit_seq: u64,
    fired: u64,
    fired_epoch: u64,
}

impl<S> LaneCore<S> {
    fn push_local(&mut self, at: SimTime, run: BackendEvent<S>) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Queued { at, seq, run });
    }
}

struct ShardSlot<S> {
    core: LaneCore<S>,
    state: S,
}

/// [`EventCtx`] view handed to events firing on a shard.
struct LaneCtx<'a, S> {
    core: &'a mut LaneCore<S>,
}

impl<S> EventCtx<S> for LaneCtx<'_, S> {
    fn now(&self) -> SimTime {
        self.core.now
    }

    fn shard(&self) -> ShardId {
        ShardId(self.core.id)
    }

    fn pool(&self) -> RngPool {
        self.core.pool
    }

    fn schedule_at(&mut self, at: SimTime, event: BackendEvent<S>) {
        self.core.push_local(at, event);
    }

    fn send_to(&mut self, dest: ShardId, at: SimTime, event: BackendEvent<S>) {
        assert!(
            dest.0 < self.core.shard_count,
            "send_to nonexistent {dest} (shard_count {})",
            self.core.shard_count
        );
        if dest.0 == self.core.id {
            // Mail to yourself is an ordinary local event: no barrier
            // clamp, so a one-shard sharded run matches the legacy
            // scheduler event-for-event.
            self.core.push_local(at, event);
            return;
        }
        let at = at.max(self.core.now);
        let src_seq = self.core.sent;
        self.core.sent += 1;
        self.core.outbox.push(Mail {
            at,
            src: self.core.id,
            src_seq,
            dest: dest.0,
            run: event,
        });
    }

    fn emit(&mut self, event: TraceEvent) {
        if self.core.tracing {
            let seq = self.core.emit_seq;
            self.core.emit_seq += 1;
            self.core
                .trace
                .push((self.core.now.as_micros(), seq, event));
        }
    }
}

/// Runs one shard's local events up to the barrier. The shard clock stops
/// at the last fired event (mail delivered at the barrier is clamped
/// forward on insertion, so a lagging clock is harmless). `inclusive` is
/// true only for the final partial epoch of a `run_until`, mirroring the
/// legacy scheduler's inclusive horizon.
fn run_shard<S>(slot: &mut ShardSlot<S>, barrier: SimTime, inclusive: bool) {
    loop {
        let due = matches!(slot.core.queue.peek(),
            Some(head) if head.at < barrier || (inclusive && head.at == barrier));
        if !due {
            break;
        }
        let ev = slot.core.queue.pop().expect("peeked element vanished");
        debug_assert!(ev.at >= slot.core.now, "shard clock went backwards");
        slot.core.now = ev.at;
        slot.core.fired += 1;
        slot.core.fired_epoch += 1;
        let mut ctx = LaneCtx {
            core: &mut slot.core,
        };
        (ev.run)(&mut ctx, &mut slot.state);
    }
}

/// Multi-lane deterministic discrete-event scheduler.
///
/// See the [module docs](self) for the lane model and merge contract. The
/// short version: shards only interact through epoch-barrier mailboxes, and
/// every merge is ordered by `(time, shard_id, seq)` — so the trace is a
/// pure function of `(states, seed, epoch)` regardless of `lanes` or (with
/// the `parallel` feature) thread scheduling.
///
/// # Example
///
/// Two shards exchanging mail across a barrier:
///
/// ```
/// use livescope_sim::{RngPool, SchedulerBackend, ShardedScheduler, ShardId};
/// use livescope_sim::time::{SimDuration, SimTime};
///
/// let pool = RngPool::new(0xF1611);
/// let mut sched = ShardedScheduler::new(pool, vec![0u64, 0u64], SimDuration::from_secs(1));
/// sched.schedule(
///     ShardId(0),
///     SimTime::ZERO,
///     Box::new(|ctx, count| {
///         *count += 1;
///         // Delivered at the next epoch barrier (t = 1s).
///         ctx.send_to(ShardId(1), ctx.now(), Box::new(|_, count| *count += 10));
///     }),
/// );
/// let end = sched.run();
/// assert_eq!(end, SimTime::from_secs(1));
/// assert_eq!(sched.mail_delivered(), 1);
/// assert_eq!(sched.into_states(), vec![1, 10]);
/// ```
pub struct ShardedScheduler<S> {
    shards: Vec<ShardSlot<S>>,
    lanes: usize,
    epoch: SimDuration,
    now: SimTime,
    epochs: u64,
    mail_delivered: u64,
    telemetry: Telemetry,
    c_fired: CounterId,
    c_mail: CounterId,
    c_epochs: CounterId,
    g_depth: GaugeId,
    shard_counters: Vec<(CounterId, CounterId)>,
    /// Persistent mail-merge scratch: reused across barriers so the
    /// steady state allocates nothing per epoch.
    mail_scratch: Vec<Mail<S>>,
    /// Per-epoch trace-merge scratch: each barrier gathers and sorts its
    /// block here, then hands it to the sink in one batch and drains it
    /// (keeping the capacity), so memory stays bounded by one epoch's
    /// traffic and the sink lock is taken once per epoch, not per event.
    trace_pending: Vec<(u64, u16, u64, TraceEvent)>,
    /// Wall-clock profile sections (`handler.sharded.*_ns`); no-ops
    /// without the telemetry crate's `profile` feature. They time the
    /// phases the 0.81×-at-6-lanes result is made of: lane execution,
    /// the mailbox drain, and the trace merge at each epoch barrier.
    sec_lane_exec: Section,
    sec_mail_merge: Section,
    sec_trace_merge: Section,
}

impl<S: Send + 'static> ShardedScheduler<S> {
    /// Builds one shard per entry of `states`, each with the RNG pool
    /// `pool.child_indexed("shard", i)` and a clock at zero. `epoch` is the
    /// barrier spacing; it must be non-zero because barriers at a fixed
    /// grid are what bound cross-shard mail latency.
    ///
    /// The epoch length is part of the run's configuration: a cross-shard
    /// send is never delivered before the next barrier, so changing `epoch`
    /// legitimately changes mail delivery times (it does *not* change
    /// anything shard-local).
    pub fn new(pool: RngPool, states: Vec<S>, epoch: SimDuration) -> Self {
        assert!(!states.is_empty(), "need at least one shard");
        assert!(epoch > SimDuration::ZERO, "epoch must be non-zero");
        let shard_count = u16::try_from(states.len()).expect("at most 65536 shards");
        let shards = states
            .into_iter()
            .enumerate()
            .map(|(i, state)| ShardSlot {
                core: LaneCore {
                    id: i as u16,
                    shard_count,
                    now: SimTime::ZERO,
                    next_seq: 0,
                    queue: BinaryHeap::new(),
                    pool: pool.child_indexed("shard", i as u64),
                    outbox: Vec::new(),
                    sent: 0,
                    tracing: false,
                    trace: Vec::new(),
                    emit_seq: 0,
                    fired: 0,
                    fired_epoch: 0,
                },
                state,
            })
            .collect();
        ShardedScheduler {
            shards,
            lanes: 1,
            epoch,
            now: SimTime::ZERO,
            epochs: 0,
            mail_delivered: 0,
            telemetry: Telemetry::disabled(),
            c_fired: CounterId::INERT,
            c_mail: CounterId::INERT,
            c_epochs: CounterId::INERT,
            g_depth: GaugeId::INERT,
            shard_counters: Vec::new(),
            mail_scratch: Vec::new(),
            trace_pending: Vec::new(),
            sec_lane_exec: Section::default(),
            sec_mail_merge: Section::default(),
            sec_trace_merge: Section::default(),
        }
    }

    /// Sets the worker-lane count (clamped to ≥ 1). Shards are split into
    /// `lanes` contiguous chunks, one worker per chunk. Purely a
    /// throughput knob: output is identical for any value, with or
    /// without the `parallel` feature.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Worker-lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Barrier spacing.
    pub fn epoch(&self) -> SimDuration {
        self.epoch
    }

    /// Attaches telemetry. Counters are kept merged
    /// (`sim.sharded.events_fired`, `sim.sharded.mail_delivered`,
    /// `sim.sharded.epochs`, gauge `sim.sharded.queue_depth`) *and*
    /// per shard (`sim.shard.<i>.events_fired`, `sim.shard.<i>.mail_out`);
    /// trace events emitted by events via [`EventCtx::emit`] are merged
    /// into the sink at each barrier in `(time, shard_id, seq)` order.
    ///
    /// Per-shard metric names are interned with `Box::leak`: registration
    /// is a bounded setup-path cost, never on the hot path.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        // Deferred traces belong to the previous sink; hand them over
        // before swapping handles (a no-op outside `run_until`, which
        // always flushes on exit).
        self.flush_traces();
        self.c_fired = telemetry.counter("sim.sharded.events_fired");
        self.c_mail = telemetry.counter("sim.sharded.mail_delivered");
        self.c_epochs = telemetry.counter("sim.sharded.epochs");
        self.g_depth = telemetry.gauge("sim.sharded.queue_depth");
        self.shard_counters = (0..self.shards.len())
            .map(|i| {
                let fired: &'static str = Box::leak(format!("sim.shard.{i}.events_fired").into());
                let mail: &'static str = Box::leak(format!("sim.shard.{i}.mail_out").into());
                (telemetry.counter(fired), telemetry.counter(mail))
            })
            .collect();
        self.sec_lane_exec = Section::new(telemetry, "sharded", "lane_exec");
        self.sec_mail_merge = Section::new(telemetry, "sharded", "mail_merge");
        self.sec_trace_merge = Section::new(telemetry, "sharded", "trace_merge");
        let enabled = telemetry.is_enabled();
        for slot in &mut self.shards {
            slot.core.tracing = enabled;
        }
        self.telemetry = telemetry.clone();
    }

    /// Events executed on one shard so far.
    pub fn shard_events_fired(&self, shard: ShardId) -> u64 {
        self.shards[shard.index()].core.fired
    }

    /// Cross-shard messages delivered at barriers so far.
    pub fn mail_delivered(&self) -> u64 {
        self.mail_delivered
    }

    /// Epoch barriers processed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Events still queued across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.core.queue.len()).sum()
    }

    /// Runs all shards for the epoch ending at `barrier`, then performs
    /// the single-threaded barrier merge.
    fn run_epoch(&mut self, barrier: SimTime, inclusive: bool) {
        let stamp = self.sec_lane_exec.begin();
        self.execute_lanes(barrier, inclusive);
        self.sec_lane_exec.end(stamp);
        self.barrier_merge(barrier);
    }

    #[cfg(feature = "parallel")]
    fn execute_lanes(&mut self, barrier: SimTime, inclusive: bool) {
        if self.lanes == 1 || self.shards.len() == 1 {
            for slot in &mut self.shards {
                run_shard(slot, barrier, inclusive);
            }
            return;
        }
        // Contiguous chunks, one scoped worker per chunk: no per-epoch
        // bucket allocation, and the scope joins every worker on exit.
        let lanes = self.lanes.min(self.shards.len());
        let chunk = self.shards.len().div_ceil(lanes);
        crossbeam::thread::scope(|scope| {
            for bucket in self.shards.chunks_mut(chunk) {
                scope.spawn(move |_| {
                    for slot in bucket {
                        run_shard(slot, barrier, inclusive);
                    }
                });
            }
        })
        .expect("lane scope failed");
    }

    #[cfg(not(feature = "parallel"))]
    fn execute_lanes(&mut self, barrier: SimTime, inclusive: bool) {
        // Lanes are notional without the `parallel` feature: shards run
        // sequentially in shard order, which produces identical output
        // because shards cannot observe each other within an epoch.
        for slot in &mut self.shards {
            run_shard(slot, barrier, inclusive);
        }
    }

    /// The single-threaded barrier step: deliver mail in
    /// `(time, src shard, src seq)` order, merge traces in
    /// `(time, shard, seq)` order, roll up counters.
    fn barrier_merge(&mut self, barrier: SimTime) {
        // --- mail ---------------------------------------------------------
        let mail_stamp = self.sec_mail_merge.begin();
        let mut mail = std::mem::take(&mut self.mail_scratch);
        for slot in &mut self.shards {
            mail.append(&mut slot.core.outbox);
        }
        // Explicit total order; `(clamped time, src, src_seq)` is unique
        // per message. Iterating a map here instead would be exactly the
        // hash-order bug detlint's `hash-iter` rule exists to catch. A
        // single message is trivially ordered — skip the sort.
        if mail.len() > 1 {
            mail.sort_unstable_by_key(|m| (m.at.max(barrier), m.src, m.src_seq));
        }
        self.mail_delivered += mail.len() as u64;
        self.telemetry.add(self.c_mail, mail.len() as u64);
        for m in mail.drain(..) {
            let deliver_at = m.at.max(barrier);
            self.shards[m.dest as usize]
                .core
                .push_local(deliver_at, m.run);
        }
        self.mail_scratch = mail;
        self.sec_mail_merge.end(mail_stamp);

        // --- traces -------------------------------------------------------
        let trace_stamp = self.sec_trace_merge.begin();
        if self.telemetry.is_enabled() {
            let start = self.trace_pending.len();
            let mut contributors = 0usize;
            for slot in &mut self.shards {
                if slot.core.trace.is_empty() {
                    continue;
                }
                contributors += 1;
                let id = slot.core.id;
                self.trace_pending.extend(
                    slot.core
                        .trace
                        .drain(..)
                        .map(|(t, seq, ev)| (t, id, seq, ev)),
                );
            }
            // One contributor's buffer is already `(time, seq)`-sorted
            // (shard clocks and emit seqs are monotone), which with a
            // single shard id *is* the merge order — only a real merge
            // needs the sort.
            if contributors > 1 {
                self.trace_pending[start..]
                    .sort_unstable_by_key(|(t, shard, seq, _)| (*t, *shard, *seq));
            }
            // Hand the whole epoch block to the sink under one lock and
            // drain it (capacity kept) — memory stays bounded by one
            // epoch's traffic. Blocks from successive barriers are
            // globally ordered: events run before a barrier carry
            // timestamps no later than any event still queued behind it.
            if !self.trace_pending.is_empty() {
                self.telemetry
                    .emit_batch(self.trace_pending.drain(..).map(|(t, _, _, ev)| (t, ev)));
            }
        }
        self.sec_trace_merge.end(trace_stamp);

        // --- counters -----------------------------------------------------
        self.epochs += 1;
        self.telemetry.add(self.c_epochs, 1);
        let mut fired_total = 0;
        for (i, slot) in self.shards.iter_mut().enumerate() {
            fired_total += slot.core.fired_epoch;
            if let Some((c_fired, c_mail)) = self.shard_counters.get(i) {
                self.telemetry.add(*c_fired, slot.core.fired_epoch);
                self.telemetry.add(*c_mail, slot.core.sent);
                slot.core.sent = 0;
            }
            slot.core.fired_epoch = 0;
        }
        self.telemetry.add(self.c_fired, fired_total);
        self.telemetry
            .set_gauge(self.g_depth, self.pending() as i64);
    }

    /// Safety-net flush: barriers normally hand their own block to the
    /// sink and leave `trace_pending` empty, so this is a no-op on the
    /// steady path. It exists so `set_telemetry` and `run_until` exit
    /// can guarantee no merged-and-sorted trace ever outlives the sink
    /// handle it was destined for.
    fn flush_traces(&mut self) {
        if self.trace_pending.is_empty() {
            return;
        }
        let stamp = self.sec_trace_merge.begin();
        self.telemetry
            .emit_batch(self.trace_pending.drain(..).map(|(t, _, _, ev)| (t, ev)));
        self.sec_trace_merge.end(stamp);
    }

    /// Adaptive epoch length: when exactly one shard has events due by
    /// the horizon, barriers have nothing to order — no other shard can
    /// fire, so the only cross-shard channel is this shard's own outbox.
    /// Sprint it across grid cells without intermediate barriers until it
    /// drains (merge once at the horizon) or emits cross-shard mail.
    /// Stopping immediately after the first mail-producing event keeps
    /// delivery byte-identical to the fixed grid: the mail is released at
    /// the barrier closing the *sending event's* epoch cell — exactly
    /// where the non-sprinting scheduler would have released it.
    fn run_sprint(&mut self, idx: usize, horizon: SimTime, epoch_us: u64) {
        let stamp = self.sec_lane_exec.begin();
        let slot = &mut self.shards[idx];
        loop {
            let due = matches!(slot.core.queue.peek(), Some(head) if head.at <= horizon);
            if !due {
                break;
            }
            let ev = slot.core.queue.pop().expect("peeked element vanished");
            debug_assert!(ev.at >= slot.core.now, "shard clock went backwards");
            slot.core.now = ev.at;
            slot.core.fired += 1;
            slot.core.fired_epoch += 1;
            let mut ctx = LaneCtx {
                core: &mut slot.core,
            };
            (ev.run)(&mut ctx, &mut slot.state);
            if !slot.core.outbox.is_empty() {
                break;
            }
        }
        let barrier = if slot.core.outbox.is_empty() {
            horizon
        } else {
            let k = slot.core.now.as_micros() / epoch_us;
            SimTime::from_micros((k + 1).saturating_mul(epoch_us)).min(horizon)
        };
        self.sec_lane_exec.end(stamp);
        self.barrier_merge(barrier);
    }

    /// Drains events up to `horizon` then parks the clock there, like
    /// [`crate::Scheduler::advance_to`].
    pub fn advance_to(&mut self, horizon: SimTime) -> SimTime {
        SchedulerBackend::run_until(self, horizon);
        self.now = self.now.max(horizon);
        for slot in &mut self.shards {
            slot.core.now = slot.core.now.max(horizon);
        }
        self.now
    }
}

impl<S: Send + 'static> SchedulerBackend<S> for ShardedScheduler<S> {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule(&mut self, shard: ShardId, at: SimTime, event: BackendEvent<S>) {
        self.shards[shard.index()].core.push_local(at, event);
    }

    fn run(&mut self) -> SimTime {
        SchedulerBackend::run_until(self, SimTime::MAX)
    }

    fn run_until(&mut self, horizon: SimTime) -> SimTime {
        let epoch_us = self.epoch.as_micros().max(1);
        loop {
            // One scan: the earliest pending event and how many shards
            // have anything due by the horizon.
            let mut next = None::<SimTime>;
            let mut active = 0usize;
            let mut active_idx = 0usize;
            for (i, s) in self.shards.iter().enumerate() {
                if let Some(h) = s.core.queue.peek() {
                    if h.at <= horizon {
                        active += 1;
                        active_idx = i;
                    }
                    next = Some(next.map_or(h.at, |n: SimTime| n.min(h.at)));
                }
            }
            let Some(next) = next else { break };
            if next > horizon {
                break;
            }
            if active == 1 {
                // Adaptive epoch: a lone active shard sprints past grid
                // barriers (see `run_sprint` for the identity argument).
                self.run_sprint(active_idx, horizon, epoch_us);
            } else {
                // The barrier closing the epoch that contains `next`. The
                // final (partial) epoch ends exactly at the horizon and is
                // inclusive, mirroring the legacy `run_until` semantics.
                let k = next.as_micros() / epoch_us;
                let candidate = SimTime::from_micros((k + 1).saturating_mul(epoch_us));
                let (barrier, inclusive) = if candidate >= horizon {
                    (horizon, true)
                } else {
                    (candidate, false)
                };
                self.run_epoch(barrier, inclusive);
            }
            // The backend clock is the max any shard reached: the time of
            // the last fired event, like the legacy scheduler — not the
            // barrier, which may lie beyond the final event.
            let reached = self.shards.iter().map(|s| s.core.now).max();
            self.now = self.now.max(reached.unwrap_or(SimTime::ZERO));
        }
        self.flush_traces();
        self.now
    }

    fn state(&self, shard: ShardId) -> &S {
        &self.shards[shard.index()].state
    }

    fn state_mut(&mut self, shard: ShardId) -> &mut S {
        &mut self.shards[shard.index()].state
    }

    fn into_states(self) -> Vec<S> {
        self.shards.into_iter().map(|slot| slot.state).collect()
    }

    fn events_fired(&self) -> u64 {
        self.shards.iter().map(|s| s.core.fired).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn two_shards(epoch_s: u64) -> ShardedScheduler<Vec<(u64, String)>> {
        ShardedScheduler::new(
            RngPool::new(0xBEEF),
            vec![Vec::new(), Vec::new()],
            SimDuration::from_secs(epoch_s),
        )
    }

    #[test]
    fn local_events_fire_in_time_then_seq_order() {
        let mut s = two_shards(1);
        for (t, tag) in [(3u64, "c"), (1, "a"), (2, "b")] {
            s.schedule(
                ShardId(0),
                SimTime::from_secs(t),
                Box::new(move |ctx, log: &mut Vec<(u64, String)>| {
                    log.push((ctx.now().as_micros(), tag.to_string()));
                }),
            );
        }
        s.run();
        let log = &s.state(ShardId(0));
        let tags: Vec<&str> = log.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(tags, vec!["a", "b", "c"]);
    }

    #[test]
    fn cross_shard_mail_is_deferred_to_the_barrier() {
        let mut s = two_shards(1);
        s.schedule(
            ShardId(0),
            SimTime::from_millis(100),
            Box::new(|ctx, _| {
                // Requested "now" (t=0.1s) but the barrier is at 1s.
                ctx.send_to(
                    ShardId(1),
                    ctx.now(),
                    Box::new(|ctx, log: &mut Vec<(u64, String)>| {
                        log.push((ctx.now().as_micros(), "mail".into()));
                    }),
                );
            }),
        );
        s.run();
        assert_eq!(s.state(ShardId(1)), &vec![(1_000_000, "mail".into())]);
        assert_eq!(s.mail_delivered(), 1);
    }

    #[test]
    fn future_mail_keeps_its_requested_time() {
        let mut s = two_shards(1);
        s.schedule(
            ShardId(0),
            SimTime::ZERO,
            Box::new(|ctx, _| {
                ctx.send_to(
                    ShardId(1),
                    SimTime::from_secs(5),
                    Box::new(|ctx, log: &mut Vec<(u64, String)>| {
                        log.push((ctx.now().as_micros(), "later".into()));
                    }),
                );
            }),
        );
        s.run();
        assert_eq!(s.state(ShardId(1))[0].0, 5_000_000);
    }

    #[test]
    fn send_to_own_shard_is_not_clamped() {
        let mut s = two_shards(10);
        s.schedule(
            ShardId(0),
            SimTime::from_millis(10),
            Box::new(|ctx, _| {
                ctx.send_to(
                    ShardId(0),
                    ctx.now() + SimDuration::from_millis(5),
                    Box::new(|ctx, log: &mut Vec<(u64, String)>| {
                        log.push((ctx.now().as_micros(), "self".into()));
                    }),
                );
            }),
        );
        s.run();
        assert_eq!(s.state(ShardId(0))[0].0, 15_000, "no barrier clamp");
    }

    #[test]
    fn mail_merges_in_time_src_seq_order_not_shard_order() {
        // Shard 1 sends before shard 0 within the same epoch; both ask for
        // the same delivery time. Tie broken by (src, src_seq): shard 0's
        // mail sorts first even though shard 1 sent earlier in sim time.
        let mut s = ShardedScheduler::new(
            RngPool::new(1),
            vec![Vec::new(), Vec::new(), Vec::<(u64, String)>::new()],
            SimDuration::from_secs(1),
        );
        for (src, t_ms, tag) in [(1u16, 10u64, "from1"), (0, 20, "from0")] {
            s.schedule(
                ShardId(src),
                SimTime::from_millis(t_ms),
                Box::new(move |ctx, _| {
                    ctx.send_to(
                        ShardId(2),
                        SimTime::ZERO,
                        Box::new(move |ctx, log: &mut Vec<(u64, String)>| {
                            log.push((ctx.now().as_micros(), tag.to_string()));
                        }),
                    );
                }),
            );
        }
        s.run();
        let tags: Vec<&str> = s
            .state(ShardId(2))
            .iter()
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(tags, vec!["from0", "from1"]);
    }

    #[test]
    fn shard_rng_streams_are_independent_of_shard_count() {
        let draw = |shards: usize| -> u64 {
            let mut s = ShardedScheduler::new(
                RngPool::new(42),
                vec![0u64; shards],
                SimDuration::from_secs(1),
            );
            s.schedule(
                ShardId(0),
                SimTime::ZERO,
                Box::new(|ctx, out: &mut u64| {
                    *out = ctx.pool().fork("jitter").gen();
                }),
            );
            s.run();
            *s.state(ShardId(0))
        };
        assert_eq!(
            draw(1),
            draw(6),
            "shard 0's stream must not depend on siblings"
        );
    }

    #[test]
    fn traces_merge_in_time_shard_seq_order() {
        let t = Telemetry::recording(64);
        let mut s =
            ShardedScheduler::new(RngPool::new(1), vec![(), (), ()], SimDuration::from_secs(1));
        s.set_telemetry(&t);
        // Emit from shards in reverse order at the same instant.
        for shard in [2u16, 1, 0] {
            s.schedule(
                ShardId(shard),
                SimTime::from_millis(500),
                Box::new(move |ctx, _| {
                    ctx.emit(TraceEvent::PollMiss {
                        broadcast: shard as u64,
                        pop: shard,
                    });
                }),
            );
        }
        s.run();
        let pops: Vec<u64> = t
            .events()
            .iter()
            .map(|e| match e.event {
                TraceEvent::PollMiss { broadcast, .. } => broadcast,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pops, vec![0, 1, 2], "shard id breaks same-time ties");
    }

    #[test]
    fn run_until_is_inclusive_and_parks_at_horizon() {
        let mut s = two_shards(1);
        s.schedule(
            ShardId(0),
            SimTime::from_secs(5),
            Box::new(|ctx, log: &mut Vec<(u64, String)>| {
                log.push((ctx.now().as_micros(), "x".into()));
            }),
        );
        s.schedule(ShardId(0), SimTime::from_secs(9), Box::new(|_, _| {}));
        let end = SchedulerBackend::run_until(&mut s, SimTime::from_secs(5));
        assert_eq!(end, SimTime::from_secs(5));
        assert_eq!(s.state(ShardId(0)).len(), 1, "horizon is inclusive");
        assert_eq!(s.pending(), 1);
        s.run();
        assert_eq!(s.events_fired(), 2);
    }

    #[test]
    fn telemetry_counters_roll_up_per_shard_and_merged() {
        let t = Telemetry::recording(64);
        let mut s =
            ShardedScheduler::new(RngPool::new(3), vec![0u64, 0u64], SimDuration::from_secs(1));
        s.set_telemetry(&t);
        for shard in 0..2u16 {
            for i in 0..3u64 {
                s.schedule(
                    ShardId(shard),
                    SimTime::from_millis(i * 10),
                    Box::new(|_, n: &mut u64| *n += 1),
                );
            }
        }
        s.schedule(
            ShardId(0),
            SimTime::ZERO,
            Box::new(|ctx, _| {
                ctx.send_to(ShardId(1), SimTime::ZERO, Box::new(|_, _| {}));
            }),
        );
        s.run();
        let snap = t.snapshot();
        assert_eq!(snap.counter("sim.sharded.events_fired"), Some(8));
        assert_eq!(snap.counter("sim.shard.0.events_fired"), Some(4));
        assert_eq!(snap.counter("sim.shard.1.events_fired"), Some(4));
        assert_eq!(snap.counter("sim.shard.0.mail_out"), Some(1));
        assert_eq!(snap.counter("sim.sharded.mail_delivered"), Some(1));
        assert!(snap.counter("sim.sharded.epochs").unwrap() >= 1);
    }

    #[test]
    fn advance_to_parks_all_clocks() {
        let mut s = two_shards(1);
        s.schedule(ShardId(0), SimTime::from_secs(1), Box::new(|_, _| {}));
        let end = s.advance_to(SimTime::from_secs(30));
        assert_eq!(end, SimTime::from_secs(30));
        assert_eq!(
            SchedulerBackend::<Vec<(u64, String)>>::now(&s),
            SimTime::from_secs(30)
        );
    }

    #[test]
    #[should_panic(expected = "send_to nonexistent")]
    fn send_to_out_of_range_shard_panics() {
        let mut s = two_shards(1);
        s.schedule(
            ShardId(0),
            SimTime::ZERO,
            Box::new(|ctx, _| {
                ctx.send_to(ShardId(9), SimTime::ZERO, Box::new(|_, _| {}));
            }),
        );
        s.run();
    }
}
