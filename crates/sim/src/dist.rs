//! Small sampling library for the distributions the workload and graph
//! generators need. `rand` ships only uniform primitives; everything here
//! is built on them with standard transforms so the whole workspace shares
//! one audited implementation.

use rand::Rng;

/// Samples Exp(mean) by inverse transform. Zero/negative mean yields 0.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Samples N(mu, sigma²) via the Box-Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mu + sigma * z
}

/// Samples LogNormal(mu, sigma) — i.e. `exp(N(mu, sigma²))`.
///
/// Note `mu`/`sigma` parameterize the *underlying normal*: the median is
/// `exp(mu)`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples a Pareto (power-law) value with minimum `x_min > 0` and shape
/// `alpha > 0`. Heavier tails for smaller `alpha`.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    assert!(
        x_min > 0.0 && alpha > 0.0,
        "pareto needs positive parameters"
    );
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    x_min / u.powf(1.0 / alpha)
}

/// Samples an integer from a truncated discrete power law on
/// `[min, max]` with exponent `alpha` (P(k) ∝ k^-alpha). Used for
/// viewers-per-broadcast and per-user activity skew, both of which the
/// paper shows as straight-ish lines on log-log CDFs.
pub fn power_law_integer<R: Rng + ?Sized>(rng: &mut R, min: u64, max: u64, alpha: f64) -> u64 {
    assert!(min >= 1 && max >= min, "bad power-law support");
    if min == max {
        return min;
    }
    // Inverse-CDF of the continuous power law, then floor; exact enough for
    // distribution-shape work and O(1) per sample.
    let u: f64 = rng.gen_range(0.0..1.0);
    let (a, b) = (min as f64, (max + 1) as f64);
    let value = if (alpha - 1.0).abs() < 1e-9 {
        // alpha == 1: CDF is logarithmic.
        a * (b / a).powf(u)
    } else {
        let one_minus = 1.0 - alpha;
        (a.powf(one_minus) + u * (b.powf(one_minus) - a.powf(one_minus))).powf(1.0 / one_minus)
    };
    (value.floor() as u64).clamp(min, max)
}

/// Samples Poisson(lambda). Knuth's method below λ=30, normal
/// approximation above (exact enough for arrival counts in the hundreds).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen_range(0.0..1.0);
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen_range(0.0..1.0_f64);
            count += 1;
        }
        count
    } else {
        normal(rng, lambda, lambda.sqrt()).round().max(0.0) as u64
    }
}

/// Samples Binomial(n, p). Exact Bernoulli loop for small n, Poisson /
/// normal approximations otherwise — the workload generator calls this per
/// broadcast for follower-notification joins.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let p = p.clamp(0.0, 1.0);
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        (0..n).filter(|_| rng.gen_bool(p)).count() as u64
    } else if n as f64 * p < 30.0 {
        poisson(rng, n as f64 * p).min(n)
    } else {
        let mean = n as f64 * p;
        let sd = (mean * (1.0 - p)).sqrt();
        (normal(rng, mean, sd).round().max(0.0) as u64).min(n)
    }
}

/// Geometric-ish positive integer with the given mean (≥ 1): models counts
/// like out-degree where most values are small and the tail decays
/// exponentially.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 1.0 {
        return 1;
    }
    1 + exponential(rng, mean - 1.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_mean_and_sd_converge() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn log_normal_median_is_exp_mu() {
        let mut r = rng();
        let n = 50_001;
        let mut samples: Vec<f64> = (0..n).map(|_| log_normal(&mut r, 1.0, 0.8)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        let expected = 1.0f64.exp();
        assert!(
            (median / expected - 1.0).abs() < 0.05,
            "median {median} vs {expected}"
        );
    }

    #[test]
    fn pareto_respects_minimum_and_tail() {
        let mut r = rng();
        let samples: Vec<f64> = (0..10_000).map(|_| pareto(&mut r, 3.0, 1.5)).collect();
        assert!(samples.iter().all(|&x| x >= 3.0));
        // A power law must actually produce large outliers.
        assert!(samples.iter().cloned().fold(0.0, f64::max) > 30.0);
    }

    #[test]
    fn power_law_integer_stays_in_support() {
        let mut r = rng();
        for _ in 0..10_000 {
            let k = power_law_integer(&mut r, 1, 1000, 2.0);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn power_law_integer_is_heavily_skewed() {
        let mut r = rng();
        let n = 20_000;
        let ones = (0..n)
            .filter(|_| power_law_integer(&mut r, 1, 100_000, 2.0) == 1)
            .count();
        // With alpha=2 roughly half the mass sits at k=1.
        assert!(
            ones as f64 / n as f64 > 0.35,
            "ones fraction {}",
            ones as f64 / n as f64
        );
    }

    #[test]
    fn power_law_integer_alpha_one_works() {
        let mut r = rng();
        for _ in 0..1000 {
            let k = power_law_integer(&mut r, 2, 64, 1.0);
            assert!((2..=64).contains(&k));
        }
    }

    #[test]
    fn power_law_degenerate_support() {
        let mut r = rng();
        assert_eq!(power_law_integer(&mut r, 5, 5, 2.0), 5);
    }

    #[test]
    fn poisson_mean_converges_small_and_large_lambda() {
        let mut r = rng();
        for lambda in [3.0, 100.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| poisson(&mut r, lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.03,
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn binomial_mean_converges_across_regimes() {
        let mut r = rng();
        for (n_trials, p) in [(20u64, 0.3), (500u64, 0.01), (10_000u64, 0.4)] {
            let n = 5_000;
            let expect = n_trials as f64 * p;
            let mean: f64 = (0..n)
                .map(|_| binomial(&mut r, n_trials, p) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - expect).abs() / expect < 0.05,
                "B({n_trials},{p}): mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 10, 0.0), 0);
        assert_eq!(binomial(&mut r, 10, 1.0), 10);
        for _ in 0..100 {
            assert!(binomial(&mut r, 50, 0.5) <= 50);
        }
    }

    #[test]
    fn geometric_mean_converges_and_floors_at_one() {
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| geometric(&mut r, 4.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert_eq!(geometric(&mut r, 0.5), 1);
    }
}
