//! Backend abstraction over the two event-loop implementations.
//!
//! Workloads that want to run on either the classic single-threaded
//! [`Scheduler`] or the multi-lane [`ShardedScheduler`] write their events
//! against two small traits instead of a concrete scheduler type:
//!
//! * [`SchedulerBackend<S>`] is the *driver* view: create shards, schedule
//!   seed events, run, read the states back out.
//! * [`EventCtx<S>`] is the *event* view: what a firing event may do —
//!   look at the clock, draw from the shard's RNG pool, schedule
//!   follow-ups on its own shard, send mail to another shard, and emit
//!   trace events.
//!
//! Both backends hand shard `i` the RNG pool
//! `root.child_indexed("shard", i)`, so a one-shard workload produces the
//! same draws on either backend. That alignment is what the
//! `sharded_determinism` cross-check test relies on.
//!
//! [`Scheduler`]: crate::Scheduler
//! [`ShardedScheduler`]: crate::ShardedScheduler

use livescope_telemetry::{Telemetry, TraceEvent};

use crate::engine::Scheduler;
use crate::rng::RngPool;
use crate::time::{SimDuration, SimTime};

/// Identifies one shard (lane) of a sharded backend.
///
/// In the livescope workloads the shard key is a datacenter: each Wowza
/// ingest site or Fastly POP gets its own lane, following the paper's §5.3
/// observation that delay components decompose per datacenter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u16);

impl ShardId {
    /// The shard's position in the backend's state vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// A backend-agnostic event: fired with the context view and `&mut` access
/// to its shard's state. `Send` so shards can run on worker threads.
pub type BackendEvent<S> = Box<dyn FnOnce(&mut dyn EventCtx<S>, &mut S) + Send>;

/// What a firing event is allowed to do, independent of backend.
///
/// Everything here is shard-local except [`EventCtx::send_to`], which is
/// the *only* way to reach another shard — the sharded backend delivers it
/// through a mailbox at the next epoch barrier, never by direct mutation.
pub trait EventCtx<S> {
    /// Current simulated instant on this shard's clock.
    fn now(&self) -> SimTime;

    /// The shard this event is executing on.
    fn shard(&self) -> ShardId;

    /// This shard's deterministic RNG pool
    /// (`root.child_indexed("shard", i)`).
    fn pool(&self) -> RngPool;

    /// Schedules a follow-up on this shard at absolute time `at`
    /// (clamped to `now`, like [`Scheduler::schedule_at`]).
    fn schedule_at(&mut self, at: SimTime, event: BackendEvent<S>);

    /// Schedules a follow-up on this shard after `delay`.
    fn schedule_in(&mut self, delay: SimDuration, event: BackendEvent<S>) {
        let at = self.now() + delay;
        self.schedule_at(at, event);
    }

    /// Sends an event to `dest`, requesting delivery at `at`.
    ///
    /// Sending to the executing shard is exactly [`EventCtx::schedule_at`].
    /// Sending to another shard goes through the mailbox: delivery is
    /// deferred to `max(at, next epoch barrier)`, so cross-shard causality
    /// never outruns the barrier. Panics if `dest` does not exist.
    fn send_to(&mut self, dest: ShardId, at: SimTime, event: BackendEvent<S>);

    /// Emits a trace event stamped with the shard clock. On the sharded
    /// backend the event is buffered per shard and merged into the attached
    /// telemetry sink in `(time, shard_id, seq)` order at the next barrier.
    fn emit(&mut self, event: TraceEvent);
}

/// Driver-side interface implemented by both schedulers.
pub trait SchedulerBackend<S> {
    /// Number of shards (always 1 for [`SingleLane`]).
    fn shard_count(&self) -> usize;

    /// The backend clock: the maximum time any shard has reached.
    fn now(&self) -> SimTime;

    /// Schedules a seed event on `shard` at absolute time `at`.
    fn schedule(&mut self, shard: ShardId, at: SimTime, event: BackendEvent<S>);

    /// Runs until no events remain. Returns the final instant.
    fn run(&mut self) -> SimTime;

    /// Runs events with firing time `<= horizon`; later events stay
    /// queued. Returns the final instant.
    fn run_until(&mut self, horizon: SimTime) -> SimTime;

    /// Shared access to one shard's state.
    fn state(&self, shard: ShardId) -> &S;

    /// Exclusive access to one shard's state (between runs).
    fn state_mut(&mut self, shard: ShardId) -> &mut S;

    /// Consumes the backend, returning shard states in shard order.
    fn into_states(self) -> Vec<S>
    where
        Self: Sized;

    /// Total events executed across all shards.
    fn events_fired(&self) -> u64;
}

/// Which backend a workload should run on; parsed from CLI flags like
/// `--backend sharded --lanes 6`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendChoice {
    /// The classic single-threaded [`Scheduler`] behind [`SingleLane`].
    Single,
    /// [`crate::ShardedScheduler`] with the given worker-lane count.
    Sharded {
        /// Worker lanes (≥ 1). Purely a throughput knob: observable
        /// behaviour is identical for any value.
        lanes: usize,
    },
}

impl BackendChoice {
    /// Parses a `--backend` value plus a `--lanes` count.
    pub fn parse(backend: &str, lanes: usize) -> Result<Self, String> {
        match backend {
            "single" => Ok(BackendChoice::Single),
            "sharded" => Ok(BackendChoice::Sharded {
                lanes: lanes.max(1),
            }),
            other => Err(format!("unknown backend {other:?} (single|sharded)")),
        }
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendChoice::Single => write!(f, "single"),
            BackendChoice::Sharded { lanes } => write!(f, "sharded(lanes={lanes})"),
        }
    }
}

/// The legacy [`Scheduler`] exposed through the backend traits: one shard,
/// one lane, zero behaviour change.
///
/// Events scheduled through this wrapper fire on the inner scheduler with
/// identical `(time, insertion-seq)` ordering, so a workload ported to
/// [`BackendEvent`] closures reproduces its pre-port trace exactly.
pub struct SingleLane<S> {
    sched: Scheduler<S>,
    state: S,
    pool: RngPool,
    telemetry: Telemetry,
}

impl<S: 'static> SingleLane<S> {
    /// Wraps `state` with a fresh scheduler. `pool` is the workload's root
    /// pool; events see `pool.child_indexed("shard", 0)`.
    pub fn new(pool: RngPool, state: S) -> Self {
        SingleLane {
            sched: Scheduler::new(),
            state,
            pool: pool.child_indexed("shard", 0),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches telemetry: the inner scheduler's counters/queue-depth
    /// samples plus the sink [`EventCtx::emit`] writes through.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.sched.set_telemetry(telemetry);
        self.telemetry = telemetry.clone();
    }

    /// The wrapped scheduler (e.g. to inspect `pending()`).
    pub fn scheduler(&self) -> &Scheduler<S> {
        &self.sched
    }

    fn wrap(&self, event: BackendEvent<S>) -> impl FnOnce(&mut Scheduler<S>, &mut S) + 'static {
        let pool = self.pool;
        let telemetry = self.telemetry.clone();
        move |sched, state| {
            let mut ctx = LegacyCtx {
                sched,
                pool,
                telemetry,
            };
            event(&mut ctx, state);
        }
    }
}

impl<S: 'static> SchedulerBackend<S> for SingleLane<S> {
    fn shard_count(&self) -> usize {
        1
    }

    fn now(&self) -> SimTime {
        self.sched.now()
    }

    fn schedule(&mut self, shard: ShardId, at: SimTime, event: BackendEvent<S>) {
        assert_eq!(shard.0, 0, "SingleLane has exactly one shard");
        let wrapped = self.wrap(event);
        self.sched.schedule_at(at, wrapped);
    }

    fn run(&mut self) -> SimTime {
        self.sched.run(&mut self.state)
    }

    fn run_until(&mut self, horizon: SimTime) -> SimTime {
        self.sched.run_until(horizon, &mut self.state)
    }

    fn state(&self, shard: ShardId) -> &S {
        assert_eq!(shard.0, 0, "SingleLane has exactly one shard");
        &self.state
    }

    fn state_mut(&mut self, shard: ShardId) -> &mut S {
        assert_eq!(shard.0, 0, "SingleLane has exactly one shard");
        &mut self.state
    }

    fn into_states(self) -> Vec<S> {
        vec![self.state]
    }

    fn events_fired(&self) -> u64 {
        self.sched.events_fired()
    }
}

/// [`EventCtx`] adapter handed to events firing on a [`SingleLane`].
struct LegacyCtx<'a, S> {
    sched: &'a mut Scheduler<S>,
    pool: RngPool,
    telemetry: Telemetry,
}

impl<S: 'static> EventCtx<S> for LegacyCtx<'_, S> {
    fn now(&self) -> SimTime {
        self.sched.now()
    }

    fn shard(&self) -> ShardId {
        ShardId(0)
    }

    fn pool(&self) -> RngPool {
        self.pool
    }

    fn schedule_at(&mut self, at: SimTime, event: BackendEvent<S>) {
        let pool = self.pool;
        let telemetry = self.telemetry.clone();
        self.sched.schedule_at(at, move |sched, state| {
            let mut ctx = LegacyCtx {
                sched,
                pool,
                telemetry,
            };
            event(&mut ctx, state);
        });
    }

    fn send_to(&mut self, dest: ShardId, at: SimTime, event: BackendEvent<S>) {
        assert_eq!(dest.0, 0, "SingleLane has exactly one shard");
        self.schedule_at(at, event);
    }

    fn emit(&mut self, event: TraceEvent) {
        self.telemetry.emit(self.sched.now().as_micros(), event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lane_runs_backend_events_in_order() {
        let mut b = SingleLane::new(RngPool::new(1), Vec::<u64>::new());
        b.schedule(
            ShardId(0),
            SimTime::from_secs(2),
            Box::new(|ctx, log: &mut Vec<u64>| log.push(ctx.now().as_micros())),
        );
        b.schedule(
            ShardId(0),
            SimTime::from_secs(1),
            Box::new(|ctx, log: &mut Vec<u64>| {
                log.push(ctx.now().as_micros());
                ctx.schedule_in(
                    SimDuration::from_millis(500),
                    Box::new(|ctx, log: &mut Vec<u64>| log.push(ctx.now().as_micros())),
                );
            }),
        );
        let end = b.run();
        assert_eq!(end, SimTime::from_secs(2));
        assert_eq!(b.into_states(), vec![vec![1_000_000, 1_500_000, 2_000_000]]);
    }

    #[test]
    fn single_lane_send_to_self_is_local_schedule() {
        let mut b = SingleLane::new(RngPool::new(1), 0u64);
        b.schedule(
            ShardId(0),
            SimTime::ZERO,
            Box::new(|ctx, _: &mut u64| {
                ctx.send_to(
                    ShardId(0),
                    ctx.now() + SimDuration::from_secs(1),
                    Box::new(|_, n: &mut u64| *n += 7),
                );
            }),
        );
        b.run();
        assert_eq!(b.events_fired(), 2);
        assert_eq!(*b.state(ShardId(0)), 7);
    }

    #[test]
    fn backend_choice_parses_cli_flags() {
        assert_eq!(BackendChoice::parse("single", 4), Ok(BackendChoice::Single));
        assert_eq!(
            BackendChoice::parse("sharded", 6),
            Ok(BackendChoice::Sharded { lanes: 6 })
        );
        assert_eq!(
            BackendChoice::parse("sharded", 0),
            Ok(BackendChoice::Sharded { lanes: 1 })
        );
        assert!(BackendChoice::parse("tokio", 1).is_err());
    }

    #[test]
    fn pool_is_the_indexed_shard_zero_child() {
        let root = RngPool::new(99);
        let mut b = SingleLane::new(root, 0u64);
        b.schedule(
            ShardId(0),
            SimTime::ZERO,
            Box::new(move |ctx, seen: &mut u64| {
                *seen = ctx.pool().seed();
            }),
        );
        b.run();
        assert_eq!(*b.state(ShardId(0)), root.child_indexed("shard", 0).seed());
    }
}
