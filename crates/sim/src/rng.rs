//! Deterministic, componentized randomness.
//!
//! Every random decision in a livescope experiment flows from a single root
//! seed through a named stream: `pool.fork("wowza.jitter")` always yields
//! the same generator for the same root seed, regardless of what other
//! components were created before it. This is what lets us re-run a figure
//! with one parameter changed and attribute the output delta to the
//! parameter rather than to RNG stream reshuffling.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Forks independent, reproducible [`SmallRng`] streams by label.
#[derive(Clone, Copy, Debug)]
pub struct RngPool {
    root: u64,
}

impl RngPool {
    /// A pool rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        RngPool { root: seed }
    }

    /// Root seed this pool was created with.
    pub fn seed(&self) -> u64 {
        self.root
    }

    /// Deterministically derives the 64-bit seed for a labeled stream.
    pub fn stream_seed(&self, label: &str) -> u64 {
        // FNV-1a over the label, then splitmix64 finalization mixed with the
        // root. FNV alone clusters for short ASCII labels; splitmix64's
        // avalanche destroys that structure.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        splitmix64(h ^ self.root.rotate_left(17))
    }

    /// A generator for the labeled stream.
    pub fn fork(&self, label: &str) -> SmallRng {
        SmallRng::seed_from_u64(self.stream_seed(label))
    }

    /// A generator for a labeled, numbered stream (e.g. one per broadcast).
    pub fn fork_indexed(&self, label: &str, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(splitmix64(self.stream_seed(label) ^ splitmix64(index)))
    }

    /// Derives a child pool, so a subsystem can hand out its own namespaced
    /// streams without colliding with siblings.
    pub fn child(&self, label: &str) -> RngPool {
        RngPool {
            root: self.stream_seed(label),
        }
    }

    /// Derives a child pool for a labeled, numbered subsystem — e.g. one
    /// pool per scheduler shard. The derivation is a stable hash of
    /// `(root, label, index)`, so shard `i`'s streams are identical across
    /// runs and independent of how many other shards exist.
    pub fn child_indexed(&self, label: &str, index: u64) -> RngPool {
        RngPool {
            root: splitmix64(self.stream_seed(label) ^ splitmix64(index)),
        }
    }
}

/// The splitmix64 finalizer: a full-avalanche 64-bit mixing function.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let pool = RngPool::new(42);
        let a: Vec<u64> = pool
            .fork("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = pool
            .fork("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_different_streams() {
        let pool = RngPool::new(42);
        assert_ne!(pool.stream_seed("wowza"), pool.stream_seed("fastly"));
        let a: u64 = pool.fork("wowza").gen();
        let b: u64 = pool.fork("fastly").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_roots_different_streams() {
        assert_ne!(
            RngPool::new(1).stream_seed("x"),
            RngPool::new(2).stream_seed("x")
        );
    }

    #[test]
    fn indexed_forks_are_distinct_and_stable() {
        let pool = RngPool::new(7);
        let a: u64 = pool.fork_indexed("bcast", 0).gen();
        let b: u64 = pool.fork_indexed("bcast", 1).gen();
        let a2: u64 = pool.fork_indexed("bcast", 0).gen();
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn child_pools_namespace_labels() {
        let pool = RngPool::new(7);
        let child = pool.child("cdn");
        // "cdn" then "jitter" must differ from "cdnjitter" in the parent —
        // i.e. namespacing is structural, not string concatenation.
        assert_ne!(child.stream_seed("jitter"), pool.stream_seed("cdnjitter"));
    }

    #[test]
    fn indexed_child_pools_are_distinct_and_stable() {
        let pool = RngPool::new(7);
        let a = pool.child_indexed("shard", 0).stream_seed("jitter");
        let b = pool.child_indexed("shard", 1).stream_seed("jitter");
        let a2 = pool.child_indexed("shard", 0).stream_seed("jitter");
        assert_ne!(a, b);
        assert_eq!(a, a2);
        // An indexed child is aligned with the matching indexed fork seed,
        // so a shard's pool and a per-shard fork never alias by accident.
        assert_ne!(
            pool.child_indexed("shard", 0).seed(),
            pool.child("shard").seed()
        );
    }

    #[test]
    fn splitmix_avalanches_adjacent_inputs() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert!((a ^ b).count_ones() > 16, "poor diffusion: {a:x} vs {b:x}");
    }
}
