//! The event queue and scheduler.
//!
//! A [`Scheduler<S>`] owns simulated time and a priority queue of events.
//! Each event is a boxed `FnOnce(&mut Scheduler<S>, &mut S)`: when it fires
//! it may mutate the shared simulation state `S` and schedule further
//! events. Ties at the same instant fire in insertion order, which is what
//! makes runs reproducible bit-for-bit.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use livescope_telemetry::{CounterId, GaugeId, Telemetry, TraceEvent};

use crate::time::{SimDuration, SimTime};

/// How often (in fired events) the scheduler samples its queue depth into
/// telemetry. A power of two so the check is a mask.
const QUEUE_SAMPLE_EVERY: u64 = 1024;

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EventId(u64);

type EventFn<S> = Box<dyn FnOnce(&mut Scheduler<S>, &mut S)>;

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    run: EventFn<S>,
}

// The heap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Discrete-event scheduler parameterized over the simulation state type.
///
/// The state lives *outside* the scheduler and is passed into
/// [`Scheduler::run`]; this keeps the borrow checker happy when events need
/// `&mut` access to both the queue (to schedule follow-ups) and the world.
pub struct Scheduler<S> {
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Scheduled<S>>,
    cancelled: HashSet<EventId>,
    fired: u64,
    telemetry: Telemetry,
    c_fired: CounterId,
    c_cancelled: CounterId,
    c_cancel_reaped: CounterId,
    g_queue_depth: GaugeId,
    #[cfg(feature = "profile")]
    h_event_wall_ns: livescope_telemetry::HistogramId,
}

impl<S> Default for Scheduler<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Scheduler<S> {
    /// A fresh scheduler at time zero with an empty queue.
    ///
    /// Telemetry starts *inert*: the handle is
    /// [`Telemetry::disabled()`](livescope_telemetry::Telemetry::disabled)
    /// and every metric id is its type's `INERT` constant, so counting,
    /// gauge, and histogram calls are no-ops (not panics, not unattached
    /// registrations) until [`Scheduler::set_telemetry`] replaces them.
    /// `Default` is this constructor. The `inert_defaults_are_noops` test
    /// drives a run through the debug-assertion path to pin this down.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            next_seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            fired: 0,
            telemetry: Telemetry::disabled(),
            c_fired: CounterId::INERT,
            c_cancelled: CounterId::INERT,
            c_cancel_reaped: CounterId::INERT,
            g_queue_depth: GaugeId::INERT,
            #[cfg(feature = "profile")]
            h_event_wall_ns: livescope_telemetry::HistogramId::INERT,
        }
    }

    /// Attaches a telemetry handle. The scheduler counts fired/cancelled
    /// events, samples queue depth every `QUEUE_SAMPLE_EVERY` (1024)
    /// fires, and (with the `profile` feature) histograms wall-clock ns
    /// per event.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.c_fired = telemetry.counter("sim.events_fired");
        self.c_cancelled = telemetry.counter("sim.events_cancelled");
        self.c_cancel_reaped = telemetry.counter("sim.cancel_set_reaped");
        self.g_queue_depth = telemetry.gauge("sim.queue_depth");
        #[cfg(feature = "profile")]
        {
            self.h_event_wall_ns = telemetry.histogram("sim.event_wall_ns");
        }
        self.telemetry = telemetry.clone();
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending (including cancelled ones not yet
    /// reaped).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to fire
    /// "now" rather than silently travelling backwards, because a backwards
    /// queue would corrupt every delay measurement downstream.
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F) -> EventId
    where
        F: FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            run: Box::new(event),
        });
        EventId(seq)
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, event: F) -> EventId
    where
        F: FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a pending event. Cancelling an event that already fired (or
    /// was already cancelled) is a no-op; this mirrors timer APIs where
    /// cancellation races are benign.
    ///
    /// Ids for events that already fired never match anything in the queue,
    /// so they would sit in the cancelled set forever; [`Scheduler::run_until`]
    /// reaps the whole set whenever the queue drains, keeping it bounded by
    /// the number of genuinely pending events across run/cancel cycles.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
        self.telemetry.add(self.c_cancelled, 1);
    }

    /// Number of cancellation tombstones currently held (test/diagnostic
    /// hook for the reaping guarantee documented on [`Scheduler::cancel`]).
    pub fn cancelled_pending(&self) -> usize {
        self.cancelled.len()
    }

    /// Runs events until the queue is empty. Returns the final instant.
    pub fn run(&mut self, state: &mut S) -> SimTime {
        self.run_until(SimTime::MAX, state)
    }

    /// Runs events with firing time `<= horizon`. Events scheduled beyond
    /// the horizon stay queued; the clock stops at the last fired event (or
    /// stays put if nothing fired). Returns the final instant.
    pub fn run_until(&mut self, horizon: SimTime, state: &mut S) -> SimTime {
        while let Some(head) = self.queue.peek() {
            if head.at > horizon {
                break;
            }
            let ev = self.queue.pop().expect("peeked element vanished");
            if self.cancelled.remove(&EventId(ev.seq)) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            self.fired += 1;
            self.telemetry.add(self.c_fired, 1);
            #[cfg(feature = "profile")]
            let started = std::time::Instant::now();
            (ev.run)(self, state);
            #[cfg(feature = "profile")]
            self.telemetry
                .record(self.h_event_wall_ns, started.elapsed().as_nanos() as u64);
            if self.fired.is_multiple_of(QUEUE_SAMPLE_EVERY) && self.telemetry.is_enabled() {
                let depth = self.queue.len() as u64;
                self.telemetry.set_gauge(self.g_queue_depth, depth as i64);
                self.telemetry.emit(
                    self.now.as_micros(),
                    TraceEvent::QueueDepth {
                        depth,
                        fired: self.fired,
                    },
                );
            }
        }
        // The queue is empty (or only the future remains). Once nothing is
        // pending, every tombstone in `cancelled` refers to an event that
        // already fired or was reaped — without this clear, each
        // cancel-after-fire would leak one entry permanently.
        if self.queue.is_empty() && !self.cancelled.is_empty() {
            self.telemetry
                .add(self.c_cancel_reaped, self.cancelled.len() as u64);
            self.cancelled.clear();
        }
        self.now
    }

    /// Advances the clock to `horizon` after draining all events up to it.
    /// Use this when a scenario needs the clock parked at a known boundary
    /// (e.g. "end of day 30") even if the last event fired earlier.
    pub fn advance_to(&mut self, horizon: SimTime, state: &mut S) -> SimTime {
        self.run_until(horizon, state);
        self.now = self.now.max(horizon);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(3), |_, log| log.push(3));
        s.schedule_at(SimTime::from_secs(1), |_, log| log.push(1));
        s.schedule_at(SimTime::from_secs(2), |_, log| log.push(2));
        let mut log = Vec::new();
        s.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(s.events_fired(), 3);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            s.schedule_at(t, move |_, log| log.push(i));
        }
        let mut log = Vec::new();
        s.run(&mut log);
        assert_eq!(log, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut s: Scheduler<Vec<u64>> = Scheduler::new();
        s.schedule_in(SimDuration::from_secs(1), |sched, log| {
            log.push(sched.now().as_micros());
            sched.schedule_in(SimDuration::from_secs(1), |sched, log| {
                log.push(sched.now().as_micros());
            });
        });
        let mut log = Vec::new();
        let end = s.run(&mut log);
        assert_eq!(log, vec![1_000_000, 2_000_000]);
        assert_eq!(end, SimTime::from_secs(2));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let id = s.schedule_at(SimTime::from_secs(1), |_, log| log.push(1));
        s.schedule_at(SimTime::from_secs(2), |_, log| log.push(2));
        s.cancel(id);
        let mut log = Vec::new();
        s.run(&mut log);
        assert_eq!(log, vec![2]);
    }

    #[test]
    fn inert_defaults_are_noops() {
        // `Scheduler::new()` (and `Default`) must leave telemetry fully
        // inert: with debug assertions on (as in this test build), every
        // counter add, gauge set — including the queue-depth sample fired
        // past QUEUE_SAMPLE_EVERY — and cancel-reap count must hit the
        // INERT ids as silent no-ops.
        let mut s: Scheduler<u64> = Scheduler::default();
        for i in 0..(QUEUE_SAMPLE_EVERY + 8) {
            let id = s.schedule_at(SimTime::from_micros(i), |_, n| *n += 1);
            if i % 7 == 0 {
                s.cancel(id);
            }
        }
        let mut fired = 0u64;
        s.run(&mut fired);
        assert!(fired > QUEUE_SAMPLE_EVERY - QUEUE_SAMPLE_EVERY / 7);
        // Nothing was recorded anywhere: attaching a real registry now
        // starts all scheduler metrics from zero.
        let telemetry = Telemetry::recording(16);
        s.set_telemetry(&telemetry);
        assert_eq!(telemetry.snapshot().counter("sim.events_fired"), Some(0));
        assert_eq!(telemetry.snapshot().gauge("sim.queue_depth"), Some(0));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut s: Scheduler<()> = Scheduler::new();
        let id = s.schedule_at(SimTime::from_secs(1), |_, _| {});
        s.run(&mut ());
        s.cancel(id); // must not panic or poison later runs
        s.schedule_at(SimTime::from_secs(2), |_, _| {});
        s.run(&mut ());
        assert_eq!(s.events_fired(), 2);
    }

    #[test]
    fn cancel_after_fire_does_not_leak_tombstones() {
        // Regression: cancelling an already-fired EventId used to leave a
        // permanent entry in the cancelled set, growing without bound in
        // long-lived schedulers that run/cancel repeatedly.
        let mut s: Scheduler<()> = Scheduler::new();
        for cycle in 0..100 {
            let id = s.schedule_in(SimDuration::from_secs(1), |_, _| {});
            s.run(&mut ());
            s.cancel(id); // id already fired: pure tombstone
            s.run(&mut ()); // queue drains -> tombstones reaped
            assert_eq!(
                s.cancelled_pending(),
                0,
                "tombstones leaked after cycle {cycle}"
            );
        }
        // A cancellation for a genuinely pending future event survives a
        // horizon-limited run (it is still needed)...
        let id = s.schedule_at(s.now() + SimDuration::from_secs(10), |_, _| {});
        s.cancel(id);
        s.run_until(s.now() + SimDuration::from_secs(1), &mut ());
        assert_eq!(s.cancelled_pending(), 1);
        // ...and is consumed (not leaked) when the event comes due.
        s.run(&mut ());
        assert_eq!(s.cancelled_pending(), 0);
        assert_eq!(s.events_fired(), 100);
    }

    #[test]
    fn telemetry_counts_fired_and_cancelled() {
        let t = Telemetry::recording(64);
        let mut s: Scheduler<()> = Scheduler::new();
        s.set_telemetry(&t);
        let keep = s.schedule_at(SimTime::from_secs(1), |_, _| {});
        let drop_ = s.schedule_at(SimTime::from_secs(2), |_, _| {});
        let _ = keep;
        s.cancel(drop_);
        s.run(&mut ());
        let snap = t.snapshot();
        assert_eq!(snap.counter("sim.events_fired"), Some(1));
        assert_eq!(snap.counter("sim.events_cancelled"), Some(1));
    }

    #[test]
    fn telemetry_samples_queue_depth() {
        let t = Telemetry::recording(1 << 14);
        let mut s: Scheduler<u64> = Scheduler::new();
        s.set_telemetry(&t);
        for i in 0..(2 * QUEUE_SAMPLE_EVERY + 1) {
            s.schedule_at(SimTime::from_secs(i), |_, n| *n += 1);
        }
        let mut n = 0u64;
        s.run(&mut n);
        let depth_events: Vec<_> = t
            .events()
            .into_iter()
            .filter(|e| matches!(e.event, TraceEvent::QueueDepth { .. }))
            .collect();
        assert_eq!(
            depth_events.len(),
            2,
            "one sample per {QUEUE_SAMPLE_EVERY} fires"
        );
        if let TraceEvent::QueueDepth { fired, .. } = depth_events[0].event {
            assert_eq!(fired, QUEUE_SAMPLE_EVERY);
        }
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), |_, log| log.push(1));
        s.schedule_at(SimTime::from_secs(10), |_, log| log.push(10));
        let mut log = Vec::new();
        s.run_until(SimTime::from_secs(5), &mut log);
        assert_eq!(log, vec![1]);
        assert_eq!(s.pending(), 1);
        s.run(&mut log);
        assert_eq!(log, vec![1, 10]);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut s: Scheduler<Vec<u64>> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(5), |sched, _log| {
            // This "past" event must fire at t=5, not t=1.
            sched.schedule_at(SimTime::from_secs(1), |sched, log| {
                log.push(sched.now().as_micros());
            });
        });
        let mut log = Vec::new();
        s.run(&mut log);
        assert_eq!(log, vec![5_000_000]);
    }

    #[test]
    fn advance_to_parks_the_clock() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), |_, _| {});
        let end = s.advance_to(SimTime::from_secs(30), &mut ());
        assert_eq!(end, SimTime::from_secs(30));
    }
}
