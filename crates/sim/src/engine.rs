//! The event queue and scheduler.
//!
//! A [`Scheduler<S>`] owns simulated time and a priority queue of events.
//! Each event is a boxed `FnOnce(&mut Scheduler<S>, &mut S)`: when it fires
//! it may mutate the shared simulation state `S` and schedule further
//! events. Ties at the same instant fire in insertion order, which is what
//! makes runs reproducible bit-for-bit.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EventId(u64);

type EventFn<S> = Box<dyn FnOnce(&mut Scheduler<S>, &mut S)>;

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    run: EventFn<S>,
}

// The heap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Discrete-event scheduler parameterized over the simulation state type.
///
/// The state lives *outside* the scheduler and is passed into
/// [`Scheduler::run`]; this keeps the borrow checker happy when events need
/// `&mut` access to both the queue (to schedule follow-ups) and the world.
pub struct Scheduler<S> {
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Scheduled<S>>,
    cancelled: HashSet<EventId>,
    fired: u64,
}

impl<S> Default for Scheduler<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Scheduler<S> {
    /// A fresh scheduler at time zero with an empty queue.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            next_seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            fired: 0,
        }
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending (including cancelled ones not yet
    /// reaped).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to fire
    /// "now" rather than silently travelling backwards, because a backwards
    /// queue would corrupt every delay measurement downstream.
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F) -> EventId
    where
        F: FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            run: Box::new(event),
        });
        EventId(seq)
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, event: F) -> EventId
    where
        F: FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a pending event. Cancelling an event that already fired (or
    /// was already cancelled) is a no-op; this mirrors timer APIs where
    /// cancellation races are benign.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Runs events until the queue is empty. Returns the final instant.
    pub fn run(&mut self, state: &mut S) -> SimTime {
        self.run_until(SimTime::MAX, state)
    }

    /// Runs events with firing time `<= horizon`. Events scheduled beyond
    /// the horizon stay queued; the clock stops at the last fired event (or
    /// stays put if nothing fired). Returns the final instant.
    pub fn run_until(&mut self, horizon: SimTime, state: &mut S) -> SimTime {
        while let Some(head) = self.queue.peek() {
            if head.at > horizon {
                break;
            }
            let ev = self.queue.pop().expect("peeked element vanished");
            if self.cancelled.remove(&EventId(ev.seq)) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            self.fired += 1;
            (ev.run)(self, state);
        }
        self.now
    }

    /// Advances the clock to `horizon` after draining all events up to it.
    /// Use this when a scenario needs the clock parked at a known boundary
    /// (e.g. "end of day 30") even if the last event fired earlier.
    pub fn advance_to(&mut self, horizon: SimTime, state: &mut S) -> SimTime {
        self.run_until(horizon, state);
        self.now = self.now.max(horizon);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(3), |_, log| log.push(3));
        s.schedule_at(SimTime::from_secs(1), |_, log| log.push(1));
        s.schedule_at(SimTime::from_secs(2), |_, log| log.push(2));
        let mut log = Vec::new();
        s.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(s.events_fired(), 3);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            s.schedule_at(t, move |_, log| log.push(i));
        }
        let mut log = Vec::new();
        s.run(&mut log);
        assert_eq!(log, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut s: Scheduler<Vec<u64>> = Scheduler::new();
        s.schedule_in(SimDuration::from_secs(1), |sched, log| {
            log.push(sched.now().as_micros());
            sched.schedule_in(SimDuration::from_secs(1), |sched, log| {
                log.push(sched.now().as_micros());
            });
        });
        let mut log = Vec::new();
        let end = s.run(&mut log);
        assert_eq!(log, vec![1_000_000, 2_000_000]);
        assert_eq!(end, SimTime::from_secs(2));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        let id = s.schedule_at(SimTime::from_secs(1), |_, log| log.push(1));
        s.schedule_at(SimTime::from_secs(2), |_, log| log.push(2));
        s.cancel(id);
        let mut log = Vec::new();
        s.run(&mut log);
        assert_eq!(log, vec![2]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut s: Scheduler<()> = Scheduler::new();
        let id = s.schedule_at(SimTime::from_secs(1), |_, _| {});
        s.run(&mut ());
        s.cancel(id); // must not panic or poison later runs
        s.schedule_at(SimTime::from_secs(2), |_, _| {});
        s.run(&mut ());
        assert_eq!(s.events_fired(), 2);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut s: Scheduler<Vec<u32>> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), |_, log| log.push(1));
        s.schedule_at(SimTime::from_secs(10), |_, log| log.push(10));
        let mut log = Vec::new();
        s.run_until(SimTime::from_secs(5), &mut log);
        assert_eq!(log, vec![1]);
        assert_eq!(s.pending(), 1);
        s.run(&mut log);
        assert_eq!(log, vec![1, 10]);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut s: Scheduler<Vec<u64>> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(5), |sched, _log| {
            // This "past" event must fire at t=5, not t=1.
            sched.schedule_at(SimTime::from_secs(1), |sched, log| {
                log.push(sched.now().as_micros());
            });
        });
        let mut log = Vec::new();
        s.run(&mut log);
        assert_eq!(log, vec![5_000_000]);
    }

    #[test]
    fn advance_to_parks_the_clock() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), |_, _| {});
        let end = s.advance_to(SimTime::from_secs(30), &mut ());
        assert_eq!(end, SimTime::from_secs(30));
    }
}
