//! Periodic-process helper.
//!
//! Many livescope actors are periodic: the broadcaster emits a frame every
//! 40 ms, an HLS viewer polls every 2.8 s, the crawler refreshes the global
//! list every 5 s. [`Ticker`] packages the recurring-event idiom so each
//! actor is written as a plain `FnMut` that can stop itself.

use crate::engine::Scheduler;
use crate::time::{SimDuration, SimTime};

/// What a periodic callback wants to happen next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tick {
    /// Fire again after the ticker's configured period.
    Again,
    /// Fire again after a custom delay (lets a poller re-arm with jittered
    /// or back-off intervals).
    AgainAfter(SimDuration),
    /// Stop; the callback is dropped.
    Stop,
}

/// A recurring event: fires `callback` every `period` starting at `start`,
/// until the callback returns [`Tick::Stop`] or the scheduler run ends.
pub struct Ticker;

impl Ticker {
    /// Installs a periodic callback on `sched`.
    ///
    /// The first invocation happens at `start` (clamped to now), then every
    /// `period` — or whatever [`Tick::AgainAfter`] requested.
    ///
    /// # Panics
    /// Panics if `period` is zero: a zero-period ticker would livelock the
    /// event loop at a single instant.
    pub fn spawn<S, F>(sched: &mut Scheduler<S>, start: SimTime, period: SimDuration, callback: F)
    where
        S: 'static,
        F: FnMut(&mut Scheduler<S>, &mut S) -> Tick + 'static,
    {
        assert!(
            !period.is_zero(),
            "Ticker::spawn: zero period would never advance time"
        );
        Self::arm(sched, start, period, callback);
    }

    fn arm<S, F>(sched: &mut Scheduler<S>, at: SimTime, period: SimDuration, mut callback: F)
    where
        S: 'static,
        F: FnMut(&mut Scheduler<S>, &mut S) -> Tick + 'static,
    {
        sched.schedule_at(at, move |sched, state| {
            match callback(sched, state) {
                Tick::Again => {
                    let next = sched.now() + period;
                    Self::arm(sched, next, period, callback);
                }
                Tick::AgainAfter(delay) => {
                    // A zero re-arm delay is clamped to one microsecond for
                    // the same livelock reason as the constructor assert.
                    let delay = delay.max(SimDuration::from_micros(1));
                    let next = sched.now() + delay;
                    Self::arm(sched, next, period, callback);
                }
                Tick::Stop => {}
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticker_fires_periodically_until_stopped() {
        let mut s: Scheduler<Vec<u64>> = Scheduler::new();
        Ticker::spawn(
            &mut s,
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
            |sched, log: &mut Vec<u64>| {
                log.push(sched.now().as_micros());
                if log.len() == 3 {
                    Tick::Stop
                } else {
                    Tick::Again
                }
            },
        );
        let mut log = Vec::new();
        s.run(&mut log);
        assert_eq!(log, vec![1_000_000, 3_000_000, 5_000_000]);
    }

    #[test]
    fn ticker_supports_custom_rearm() {
        let mut s: Scheduler<Vec<u64>> = Scheduler::new();
        Ticker::spawn(
            &mut s,
            SimTime::ZERO,
            SimDuration::from_secs(10),
            |sched, log: &mut Vec<u64>| {
                log.push(sched.now().as_micros());
                if log.len() >= 3 {
                    Tick::Stop
                } else {
                    Tick::AgainAfter(SimDuration::from_millis(100))
                }
            },
        );
        let mut log = Vec::new();
        s.run(&mut log);
        assert_eq!(log, vec![0, 100_000, 200_000]);
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn zero_period_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        Ticker::spawn(&mut s, SimTime::ZERO, SimDuration::ZERO, |_, _| Tick::Again);
    }

    #[test]
    fn zero_rearm_still_advances_time() {
        let mut s: Scheduler<u32> = Scheduler::new();
        Ticker::spawn(
            &mut s,
            SimTime::ZERO,
            SimDuration::from_secs(1),
            |_, count: &mut u32| {
                *count += 1;
                if *count >= 5 {
                    Tick::Stop
                } else {
                    Tick::AgainAfter(SimDuration::ZERO)
                }
            },
        );
        let mut count = 0;
        let end = s.run(&mut count);
        assert_eq!(count, 5);
        assert!(end > SimTime::ZERO, "clock must advance");
    }
}
