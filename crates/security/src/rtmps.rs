//! RTMPS — the alternative defense the paper discusses (§7.2):
//!
//! > "The most straightforward defense is to replace RTMP with RTMPS,
//! > which performs full TLS/SSL encryption (this is the approach chosen
//! > by Facebook Live). Yet encrypting video streams in real time is
//! > computationally costly ... Thus for scalability, Periscope uses
//! > RTMP/HLS for all public broadcasts and only uses RTMPS for private
//! > broadcasts."
//!
//! This module models an RTMPS channel: every wire message is wrapped in
//! an authenticated-encryption envelope under a per-session key (the key
//! exchange rides the sealed control channel, as TLS would). Same toy
//! cipher as [`livescope_proto::control::Sealed`] — the *system*
//! properties are what the experiments use: an on-path attacker can
//! neither read nor undetectably modify RTMPS traffic, and the cost is
//! paid on **every byte of every message for every connection**, which is
//! exactly why the paper calls it expensive at fan-out scale (one
//! encryption per viewer per frame at the server).

use bytes::Bytes;

use livescope_proto::control::Sealed;
use livescope_proto::wire::WireError;

/// One direction of an RTMPS session.
#[derive(Clone, Debug)]
pub struct RtmpsChannel {
    key: u64,
    next_nonce: u64,
    /// Messages protected (cost accounting: each is one full-message
    /// encryption pass).
    pub messages_sealed: u64,
    /// Messages opened and verified.
    pub messages_opened: u64,
    /// Messages rejected (tampered or replayed out of order).
    pub messages_rejected: u64,
    /// Receiver's replay floor: nonces must strictly increase.
    highest_seen: Option<u64>,
}

impl RtmpsChannel {
    /// A channel under a session key (one per connection — the per-viewer
    /// key is what makes server-side fan-out expensive).
    pub fn new(session_key: u64) -> Self {
        RtmpsChannel {
            key: session_key,
            next_nonce: 1,
            messages_sealed: 0,
            messages_opened: 0,
            messages_rejected: 0,
            highest_seen: None,
        }
    }

    /// Protects one plaintext message for the wire.
    pub fn protect(&mut self, plaintext: &[u8]) -> Bytes {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        self.messages_sealed += 1;
        Sealed::seal(plaintext, self.key, nonce).wire().clone()
    }

    /// Opens one wire message, enforcing integrity and anti-replay
    /// (strictly increasing nonces).
    pub fn open(&mut self, wire: Bytes) -> Result<Bytes, WireError> {
        let envelope = Sealed::from_wire(wire);
        let nonce = envelope.peek_nonce()?;
        if self.highest_seen.is_some_and(|h| nonce <= h) {
            self.messages_rejected += 1;
            return Err(WireError::Invalid("replayed or reordered RTMPS record"));
        }
        match envelope.unseal(self.key) {
            Ok(plaintext) => {
                self.highest_seen = Some(nonce);
                self.messages_opened += 1;
                Ok(plaintext)
            }
            Err(e) => {
                self.messages_rejected += 1;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::Interceptor;
    use livescope_proto::rtmp::{RtmpMessage, VideoFrame};

    fn frame_wire(seq: u64) -> Bytes {
        RtmpMessage::Frame(VideoFrame::new(
            seq,
            seq * 40_000,
            false,
            Bytes::from(vec![9u8; 64]),
        ))
        .encode()
    }

    #[test]
    fn protected_stream_roundtrips_in_order() {
        let mut tx = RtmpsChannel::new(0xFEED);
        let mut rx = RtmpsChannel::new(0xFEED);
        for seq in 0..20u64 {
            let wire = tx.protect(&frame_wire(seq));
            let plain = rx.open(wire).unwrap();
            match RtmpMessage::decode(plain).unwrap() {
                RtmpMessage::Frame(f) => assert_eq!(f.meta.sequence, seq),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(tx.messages_sealed, 20);
        assert_eq!(rx.messages_opened, 20);
        assert_eq!(rx.messages_rejected, 0);
    }

    #[test]
    fn interceptor_cannot_parse_rtmps_traffic() {
        let mut tx = RtmpsChannel::new(0xFEED);
        let mut mitm = Interceptor::blackout();
        let wire = tx.protect(&frame_wire(7));
        let (forwarded, action) = mitm.process_rtmp(wire.clone());
        // The attacker sees opaque bytes: no token theft, no tampering.
        assert_eq!(action, crate::attack::InterceptAction::Opaque);
        assert_eq!(forwarded, wire);
        assert!(mitm.stolen_tokens.is_empty());
        assert_eq!(mitm.frames_tampered, 0);
    }

    #[test]
    fn blind_corruption_is_detected() {
        let mut tx = RtmpsChannel::new(0xFEED);
        let mut rx = RtmpsChannel::new(0xFEED);
        let wire = tx.protect(&frame_wire(1));
        let mut corrupted = wire.to_vec();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0x01;
        assert!(rx.open(Bytes::from(corrupted)).is_err());
        assert_eq!(rx.messages_rejected, 1);
        // The untouched original still opens.
        assert!(rx.open(wire).is_ok());
    }

    #[test]
    fn replays_are_rejected() {
        let mut tx = RtmpsChannel::new(0xFEED);
        let mut rx = RtmpsChannel::new(0xFEED);
        let first = tx.protect(&frame_wire(1));
        let second = tx.protect(&frame_wire(2));
        rx.open(first.clone()).unwrap();
        rx.open(second).unwrap();
        let err = rx.open(first).unwrap_err();
        assert!(matches!(err, WireError::Invalid(_)));
        assert_eq!(rx.messages_rejected, 1);
    }

    #[test]
    fn wrong_session_key_cannot_read() {
        let mut tx = RtmpsChannel::new(0xAAAA);
        let mut rx = RtmpsChannel::new(0xBBBB);
        let wire = tx.protect(&frame_wire(1));
        assert!(rx.open(wire).is_err());
    }

    #[test]
    fn per_connection_cost_is_linear_in_audience() {
        // The §7.2 scalability objection in one assertion: protecting a
        // 100-frame stream for N viewers costs N × 100 encryption passes.
        let frames: Vec<Bytes> = (0..100).map(frame_wire).collect();
        let mut total_sealed = 0;
        for viewer in 0..50u64 {
            let mut session = RtmpsChannel::new(0x1000 + viewer);
            for f in &frames {
                session.protect(f);
            }
            total_sealed += session.messages_sealed;
        }
        assert_eq!(total_sealed, 50 * 100);
    }
}
