//! The §7.1 man-in-the-middle stream hijack.
//!
//! The attacker sits on the victim's edge network (the paper used ARP
//! spoofing on shared WiFi — no access-point compromise needed) and
//! rewrites traffic in flight. Against the plaintext RTMP channel it can:
//!
//! 1. **steal the broadcast token** from the connect message (readable
//!    verbatim on the wire);
//! 2. **replace frame content** — the paper's proof of concept swapped the
//!    video for black frames while the broadcaster kept seeing their own
//!    camera view.
//!
//! Against the sealed control channel the same interceptor gets nothing:
//! it can observe ciphertext and corrupt it (detected), but not read or
//! forge it. That asymmetry is the §7 story.

use bytes::Bytes;

use livescope_proto::control::Sealed;
use livescope_proto::rtmp::{RtmpMessage, VideoFrame};
use livescope_proto::wire::WireError;

/// The payload the paper's proof-of-concept injected: black frames.
pub fn black_frame_payload(len: usize) -> Bytes {
    Bytes::from(vec![0u8; len.max(1)])
}

/// What happened to one intercepted message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InterceptAction {
    /// Message passed through untouched.
    Forwarded,
    /// A frame was rewritten.
    Tampered,
    /// A token was harvested (connect message).
    TokenStolen,
    /// Opaque/undecodable traffic forwarded as-is.
    Opaque,
}

/// Frame-rewriting function: mutate the frame in place.
pub type TamperFn = Box<dyn FnMut(&mut VideoFrame)>;

/// An on-path interceptor for one direction of one victim's traffic.
pub struct Interceptor {
    tamper: TamperFn,
    /// Tokens harvested from plaintext connects.
    pub stolen_tokens: Vec<String>,
    /// Frames rewritten.
    pub frames_tampered: u64,
    /// Messages forwarded unmodified.
    pub forwarded: u64,
}

impl Interceptor {
    /// An interceptor that replaces every frame's payload with black
    /// frames of the same size (the paper's PoC).
    pub fn blackout() -> Self {
        Interceptor::with_tamper(Box::new(|frame: &mut VideoFrame| {
            frame.payload = black_frame_payload(frame.payload.len());
        }))
    }

    /// An interceptor with a custom rewrite.
    pub fn with_tamper(tamper: TamperFn) -> Self {
        Interceptor {
            tamper,
            stolen_tokens: Vec::new(),
            frames_tampered: 0,
            forwarded: 0,
        }
    }

    /// Processes one RTMP wire message, returning what goes back on the
    /// wire and what the attacker did.
    ///
    /// Crucially, the attacker does **not** need any key or session state:
    /// the protocol is plaintext, so parse → rewrite → re-encode just
    /// works. Signature fields, if present, are forwarded unchanged — the
    /// attacker cannot regenerate them, which is exactly what the defense
    /// exploits.
    pub fn process_rtmp(&mut self, wire: Bytes) -> (Bytes, InterceptAction) {
        match RtmpMessage::decode(wire.clone()) {
            Ok(RtmpMessage::Connect {
                token,
                role,
                user_id,
            }) => {
                self.stolen_tokens.push(token.clone());
                // Forward the original connect so the session proceeds.
                let msg = RtmpMessage::Connect {
                    token,
                    role,
                    user_id,
                };
                (msg.encode(), InterceptAction::TokenStolen)
            }
            Ok(RtmpMessage::Frame(mut frame)) => {
                (self.tamper)(&mut frame);
                self.frames_tampered += 1;
                (
                    RtmpMessage::Frame(frame).encode(),
                    InterceptAction::Tampered,
                )
            }
            Ok(_) => {
                self.forwarded += 1;
                (wire, InterceptAction::Forwarded)
            }
            Err(_) => {
                // Not RTMP (or encrypted): pass through blind.
                self.forwarded += 1;
                (wire, InterceptAction::Opaque)
            }
        }
    }

    /// What the attacker can do with sealed control traffic: observe bytes
    /// and optionally flip one. Returns the (possibly corrupted) envelope.
    /// It cannot decode it — demonstrated by the error this returns for
    /// any key the attacker might guess.
    pub fn process_sealed(
        &mut self,
        envelope: &Sealed,
        corrupt_at: Option<usize>,
        guessed_key: u64,
    ) -> (Sealed, Result<Bytes, WireError>) {
        let mut wire = envelope.wire().to_vec();
        if let Some(at) = corrupt_at {
            if let Some(b) = wire.get_mut(at) {
                *b ^= 0x01;
            }
        }
        let out = Sealed::from_wire(Bytes::from(wire));
        let read_attempt = out.unseal(guessed_key);
        self.forwarded += 1;
        (out, read_attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livescope_proto::rtmp::Role;

    fn frame(seq: u64, fill: u8) -> VideoFrame {
        VideoFrame::new(seq, seq * 40_000, false, Bytes::from(vec![fill; 100]))
    }

    #[test]
    fn connect_tokens_are_harvested_and_forwarded_intact() {
        let mut mitm = Interceptor::blackout();
        let connect = RtmpMessage::Connect {
            token: "secret-tok".into(),
            role: Role::Publisher,
            user_id: 3,
        };
        let (wire, action) = mitm.process_rtmp(connect.encode());
        assert_eq!(action, InterceptAction::TokenStolen);
        assert_eq!(mitm.stolen_tokens, vec!["secret-tok".to_string()]);
        // Forwarded message is byte-identical: the victim notices nothing.
        assert_eq!(RtmpMessage::decode(wire).unwrap(), connect);
    }

    #[test]
    fn frames_are_blacked_out_but_metadata_preserved() {
        let mut mitm = Interceptor::blackout();
        let original = frame(9, 0xAB);
        let (wire, action) = mitm.process_rtmp(RtmpMessage::Frame(original.clone()).encode());
        assert_eq!(action, InterceptAction::Tampered);
        match RtmpMessage::decode(wire).unwrap() {
            RtmpMessage::Frame(f) => {
                assert_eq!(f.meta, original.meta, "metadata untouched — undetectable");
                assert_eq!(f.payload.len(), original.payload.len());
                assert!(f.payload.iter().all(|&b| b == 0), "payload is black");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(mitm.frames_tampered, 1);
    }

    #[test]
    fn custom_tamper_functions_apply() {
        let mut mitm = Interceptor::with_tamper(Box::new(|f: &mut VideoFrame| {
            f.payload = Bytes::from_static(b"PWNED");
        }));
        let (wire, _) = mitm.process_rtmp(RtmpMessage::Frame(frame(1, 7)).encode());
        match RtmpMessage::decode(wire).unwrap() {
            RtmpMessage::Frame(f) => assert_eq!(&f.payload[..], b"PWNED"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn signature_fields_survive_but_cannot_be_regenerated() {
        // A signed frame passes through the blackout attack: the payload
        // changes but the (now-stale) signature is forwarded verbatim —
        // any verifier will catch the mismatch.
        let mut signed = frame(2, 0x55);
        signed.meta.signature = Some(Bytes::from_static(&[9u8; 8]));
        let mut mitm = Interceptor::blackout();
        let (wire, _) = mitm.process_rtmp(RtmpMessage::Frame(signed.clone()).encode());
        match RtmpMessage::decode(wire).unwrap() {
            RtmpMessage::Frame(f) => {
                assert_eq!(f.meta.signature, signed.meta.signature);
                assert_ne!(f.payload, signed.payload);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_frame_messages_pass_through() {
        let mut mitm = Interceptor::blackout();
        let (wire, action) = mitm.process_rtmp(RtmpMessage::Ack { sequence: 4 }.encode());
        assert_eq!(action, InterceptAction::Forwarded);
        assert_eq!(
            RtmpMessage::decode(wire).unwrap(),
            RtmpMessage::Ack { sequence: 4 }
        );
    }

    #[test]
    fn sealed_control_traffic_is_opaque_and_tamper_evident() {
        let mut mitm = Interceptor::blackout();
        let secret = b"token=very-secret";
        let envelope = Sealed::seal(secret, 0x5EC12E7, 7);
        // Attacker cannot read it with a guessed key.
        let (_fwd, read) = mitm.process_sealed(&envelope, None, 0xBAD);
        assert!(read.is_err(), "attacker read sealed traffic");
        // Attacker can corrupt it, but the receiver detects that.
        let (corrupted, _) = mitm.process_sealed(&envelope, Some(25), 0xBAD);
        assert!(corrupted.unseal(0x5EC12E7).is_err());
        // Untouched envelope still opens for the legitimate key holder.
        assert_eq!(&envelope.unseal(0x5EC12E7).unwrap()[..], secret);
    }
}
