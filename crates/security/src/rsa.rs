//! Textbook RSA-style signatures over small moduli, from scratch:
//! Miller–Rabin primality, modular exponentiation and inverse via the
//! extended Euclid algorithm.
//!
//! **Simulation-strength only.** Keys use two ~31-bit primes (≈62-bit
//! modulus) so signing is cheap inside large experiments. The properties
//! the §7.2 experiments rely on do hold: signatures verify under the
//! public key, fail on any message change, and cannot be produced without
//! the private exponent (within the simulation's threat model — see
//! DESIGN.md for the substitution note).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::sha256;

/// Public verification key `(n, e)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey {
    pub n: u64,
    pub e: u64,
}

/// A full key pair.
#[derive(Clone, Copy, Debug)]
pub struct KeyPair {
    public: PublicKey,
    d: u64,
}

/// A signature value (an integer modulo `n`, serialized big-endian).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature(pub u64);

impl Signature {
    /// Serializes to 8 bytes.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Parses from bytes (exactly 8).
    pub fn from_bytes(bytes: &[u8]) -> Option<Signature> {
        Some(Signature(u64::from_be_bytes(bytes.try_into().ok()?)))
    }
}

/// `base^exp mod modulus` without overflow.
pub fn mod_pow(base: u64, mut exp: u64, modulus: u64) -> u64 {
    assert!(modulus > 1, "modulus must exceed 1");
    let m = modulus as u128;
    let mut result: u128 = 1;
    let mut b = base as u128 % m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * b % m;
        }
        b = b * b % m;
        exp >>= 1;
    }
    result as u64
}

/// Miller–Rabin with the deterministic witness set valid for all `n < 3.3e24`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = (x as u128 * x as u128 % n as u128) as u64;
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Extended Euclid: returns `(g, x)` with `a·x ≡ g (mod m)` — the modular
/// inverse when `g == 1`.
fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    let mut x = old_s % m as i128;
    if x < 0 {
        x += m as i128;
    }
    Some(x as u64)
}

/// Samples a random prime in `[2^30, 2^31)`.
fn random_prime(rng: &mut SmallRng) -> u64 {
    loop {
        let candidate: u64 = rng.gen_range((1u64 << 30)..(1u64 << 31)) | 1;
        if is_prime(candidate) {
            return candidate;
        }
    }
}

impl KeyPair {
    /// Generates a fresh key pair.
    pub fn generate(rng: &mut SmallRng) -> KeyPair {
        loop {
            let p = random_prime(rng);
            let q = random_prime(rng);
            if p == q {
                continue;
            }
            let n = p * q;
            let phi = (p - 1) * (q - 1);
            let e = 65_537;
            let Some(d) = mod_inverse(e, phi) else {
                continue;
            };
            return KeyPair {
                public: PublicKey { n, e },
                d,
            };
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs a message: `sig = H(m)^d mod n` with `H` = SHA-256 truncated
    /// into the modulus.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let m = sha256::digest_u64(message) % self.public.n;
        Signature(mod_pow(m, self.d, self.public.n))
    }
}

impl PublicKey {
    /// Verifies a signature over a message.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let m = sha256::digest_u64(message) % self.n;
        mod_pow(signature.0, self.e, self.n) == m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn mod_pow_matches_known_values() {
        assert_eq!(mod_pow(2, 10, 1_000), 24);
        assert_eq!(mod_pow(3, 0, 7), 1);
        assert_eq!(mod_pow(0, 5, 7), 0);
        // Fermat: a^(p-1) ≡ 1 mod p for prime p.
        assert_eq!(mod_pow(123_456, 1_000_003 - 1, 1_000_003), 1);
        // Large operands must not overflow.
        assert_eq!(
            mod_pow(u64::MAX - 1, 3, u64::MAX - 58),
            mod_pow(u64::MAX - 1, 3, u64::MAX - 58)
        );
    }

    #[test]
    fn primality_known_cases() {
        for p in [2u64, 3, 5, 31, 1_000_003, 2_147_483_647, 4_294_967_291] {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in [0u64, 1, 4, 1_000_001, 2_147_483_649, 4_294_967_295] {
            assert!(!is_prime(c), "{c} is composite");
        }
        // Carmichael numbers must not fool Miller-Rabin.
        for c in [561u64, 41_041, 825_265] {
            assert!(!is_prime(c), "Carmichael {c}");
        }
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut r = rng();
        let keys = KeyPair::generate(&mut r);
        let msg = b"frame 42 payload";
        let sig = keys.sign(msg);
        assert!(keys.public().verify(msg, &sig));
    }

    #[test]
    fn any_message_change_breaks_the_signature() {
        let mut r = rng();
        let keys = KeyPair::generate(&mut r);
        let sig = keys.sign(b"original frame");
        assert!(!keys.public().verify(b"originaL frame", &sig));
        assert!(!keys.public().verify(b"", &sig));
    }

    #[test]
    fn wrong_key_does_not_verify() {
        let mut r = rng();
        let alice = KeyPair::generate(&mut r);
        let eve = KeyPair::generate(&mut r);
        let msg = b"frame";
        let eve_sig = eve.sign(msg);
        assert!(!alice.public().verify(msg, &eve_sig));
    }

    #[test]
    fn signature_serialization_roundtrips() {
        let sig = Signature(0x1234_5678_9ABC_DEF0);
        assert_eq!(Signature::from_bytes(&sig.to_bytes()), Some(sig));
        assert_eq!(Signature::from_bytes(&[1, 2, 3]), None);
    }

    #[test]
    fn distinct_generations_give_distinct_keys() {
        let mut r = rng();
        let a = KeyPair::generate(&mut r);
        let b = KeyPair::generate(&mut r);
        assert_ne!(a.public(), b.public());
    }

    #[test]
    fn signing_is_deterministic_per_key() {
        let mut r = rng();
        let keys = KeyPair::generate(&mut r);
        assert_eq!(keys.sign(b"m"), keys.sign(b"m"));
    }
}
