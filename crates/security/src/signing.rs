//! The §7.2 stream-signing defense: signer and verifier state machines.
//!
//! After obtaining the broadcast token over HTTPS, the broadcaster
//! "securely exchanges a private-public key pair with the server" and then
//! "signs a secure one-way hash of each frame, and embeds the signature
//! into the metadata". The paper adds that overhead can be reduced "by
//! signing only selective frames or signing hashes across multiple
//! frames" — both implemented here as policies:
//!
//! * [`SigningPolicy::EveryFrame`] — one signature per frame, full
//!   coverage, maximal cost;
//! * [`SigningPolicy::EveryKth`] — only every k-th frame signed; the
//!   frames in between are *unprotected* (the cheap-but-leaky option);
//! * [`SigningPolicy::HashChain`] — a running SHA-256 over each group of
//!   k frames, signature embedded in the group's last frame; tampering
//!   with *any* frame in the group is detected when the group closes
//!   (full coverage, amortized cost, bounded detection latency).

use livescope_proto::rtmp::VideoFrame;

use crate::rsa::{KeyPair, PublicKey, Signature};
use crate::sha256::Sha256;

/// How often, and over what, signatures are produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SigningPolicy {
    /// Sign every frame individually.
    EveryFrame,
    /// Sign only frames with `sequence % k == 0`.
    EveryKth(u64),
    /// Accumulate a hash over groups of `k` frames and sign the group.
    HashChain(u64),
}

impl SigningPolicy {
    fn validate(&self) {
        match self {
            SigningPolicy::EveryKth(k) | SigningPolicy::HashChain(k) => {
                assert!(*k >= 1, "signing group size must be at least 1")
            }
            SigningPolicy::EveryFrame => {}
        }
    }
}

/// Verification status of one frame at the receiver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameStatus {
    /// Signature present and valid (covers this frame).
    Verified,
    /// Frame belongs to a hash-chain group whose signature hasn't arrived
    /// yet; the verdict lands when the group closes.
    Pending,
    /// Later confirmed by its group signature.
    VerifiedByGroup,
    /// Policy leaves this frame unsigned (EveryKth gaps).
    Unprotected,
    /// Signature missing where the policy requires one, or invalid.
    Forged,
}

/// The broadcaster-side signer.
pub struct StreamSigner {
    keys: KeyPair,
    policy: SigningPolicy,
    /// Running hash of the open hash-chain group.
    group_hash: Sha256,
    group_len: u64,
    /// Frames signed (cost accounting for the overhead bench).
    pub signatures_produced: u64,
}

impl StreamSigner {
    /// A signer with the given keys and policy.
    pub fn new(keys: KeyPair, policy: SigningPolicy) -> Self {
        policy.validate();
        StreamSigner {
            keys,
            policy,
            group_hash: Sha256::new(),
            group_len: 0,
            signatures_produced: 0,
        }
    }

    /// The public key viewers verify against (distributed via the control
    /// plane).
    pub fn public_key(&self) -> PublicKey {
        self.keys.public()
    }

    /// Signs (or not, per policy) a frame in place.
    pub fn process(&mut self, frame: &mut VideoFrame) {
        match self.policy {
            SigningPolicy::EveryFrame => {
                let sig = self.keys.sign(&frame.signable_bytes());
                frame.meta.signature = Some(bytes::Bytes::copy_from_slice(&sig.to_bytes()));
                self.signatures_produced += 1;
            }
            SigningPolicy::EveryKth(k) => {
                if frame.meta.sequence.is_multiple_of(k) {
                    let sig = self.keys.sign(&frame.signable_bytes());
                    frame.meta.signature = Some(bytes::Bytes::copy_from_slice(&sig.to_bytes()));
                    self.signatures_produced += 1;
                }
            }
            SigningPolicy::HashChain(k) => {
                self.group_hash.update(&frame.signable_bytes());
                self.group_len += 1;
                if self.group_len == k {
                    let digest = std::mem::take(&mut self.group_hash).finalize();
                    let sig = self.keys.sign(&digest);
                    frame.meta.signature = Some(bytes::Bytes::copy_from_slice(&sig.to_bytes()));
                    self.signatures_produced += 1;
                    self.group_len = 0;
                }
            }
        }
    }
}

/// The receiver-side verifier (runs at the ingest server and/or viewers).
pub struct StreamVerifier {
    key: PublicKey,
    policy: SigningPolicy,
    group_hash: Sha256,
    group_len: u64,
    /// Statuses upgraded retroactively when a group closes.
    pub verified: u64,
    pub forged: u64,
    pub unprotected: u64,
}

impl StreamVerifier {
    /// A verifier for `key` under `policy` (policy is negotiated on the
    /// control channel alongside the key).
    pub fn new(key: PublicKey, policy: SigningPolicy) -> Self {
        policy.validate();
        StreamVerifier {
            key,
            policy,
            group_hash: Sha256::new(),
            group_len: 0,
            verified: 0,
            forged: 0,
            unprotected: 0,
        }
    }

    /// Checks one frame, returning its (possibly provisional) status.
    pub fn process(&mut self, frame: &VideoFrame) -> FrameStatus {
        match self.policy {
            SigningPolicy::EveryFrame => self.check_direct(frame),
            SigningPolicy::EveryKth(k) => {
                if frame.meta.sequence.is_multiple_of(k) {
                    self.check_direct(frame)
                } else {
                    self.unprotected += 1;
                    FrameStatus::Unprotected
                }
            }
            SigningPolicy::HashChain(k) => {
                self.group_hash.update(&frame.signable_bytes());
                self.group_len += 1;
                if self.group_len == k {
                    let digest = std::mem::take(&mut self.group_hash).finalize();
                    self.group_len = 0;
                    let ok = frame
                        .meta
                        .signature
                        .as_deref()
                        .and_then(Signature::from_bytes)
                        .is_some_and(|sig| self.key.verify(&digest, &sig));
                    if ok {
                        // The whole group is confirmed.
                        self.verified += k;
                        FrameStatus::Verified
                    } else {
                        self.forged += k;
                        FrameStatus::Forged
                    }
                } else {
                    FrameStatus::Pending
                }
            }
        }
    }

    fn check_direct(&mut self, frame: &VideoFrame) -> FrameStatus {
        let ok = frame
            .meta
            .signature
            .as_deref()
            .and_then(Signature::from_bytes)
            .is_some_and(|sig| self.key.verify(&frame.signable_bytes(), &sig));
        if ok {
            self.verified += 1;
            FrameStatus::Verified
        } else {
            self.forged += 1;
            FrameStatus::Forged
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn keys() -> KeyPair {
        KeyPair::generate(&mut SmallRng::seed_from_u64(5))
    }

    fn frame(seq: u64) -> VideoFrame {
        VideoFrame::new(
            seq,
            seq * 40_000,
            seq.is_multiple_of(50),
            Bytes::from(vec![seq as u8; 64]),
        )
    }

    fn signed_stream(policy: SigningPolicy, n: u64) -> (Vec<VideoFrame>, PublicKey) {
        let mut signer = StreamSigner::new(keys(), policy);
        let frames = (0..n)
            .map(|i| {
                let mut f = frame(i);
                signer.process(&mut f);
                f
            })
            .collect();
        (frames, signer.public_key())
    }

    #[test]
    fn every_frame_policy_verifies_clean_streams() {
        let (frames, pk) = signed_stream(SigningPolicy::EveryFrame, 20);
        let mut verifier = StreamVerifier::new(pk, SigningPolicy::EveryFrame);
        for f in &frames {
            assert_eq!(verifier.process(f), FrameStatus::Verified);
        }
        assert_eq!(verifier.verified, 20);
        assert_eq!(verifier.forged, 0);
    }

    #[test]
    fn every_frame_policy_catches_any_tampering() {
        let (mut frames, pk) = signed_stream(SigningPolicy::EveryFrame, 20);
        frames[7].payload = Bytes::from_static(b"REPLACED CONTENT");
        let mut verifier = StreamVerifier::new(pk, SigningPolicy::EveryFrame);
        for (i, f) in frames.iter().enumerate() {
            let expected = if i == 7 {
                FrameStatus::Forged
            } else {
                FrameStatus::Verified
            };
            assert_eq!(verifier.process(f), expected, "frame {i}");
        }
    }

    #[test]
    fn stripped_signature_is_forgery_not_absence() {
        let (mut frames, pk) = signed_stream(SigningPolicy::EveryFrame, 3);
        frames[1].meta.signature = None;
        let mut verifier = StreamVerifier::new(pk, SigningPolicy::EveryFrame);
        verifier.process(&frames[0]);
        assert_eq!(verifier.process(&frames[1]), FrameStatus::Forged);
    }

    #[test]
    fn every_kth_leaves_gaps_and_attacker_can_slip_through() {
        let (mut frames, pk) = signed_stream(SigningPolicy::EveryKth(10), 30);
        // Tamper an unsigned frame: the cheap policy misses it.
        frames[5].payload = Bytes::from_static(b"EVIL");
        // Tamper a signed frame: caught.
        frames[10].payload = Bytes::from_static(b"EVIL");
        let mut verifier = StreamVerifier::new(pk, SigningPolicy::EveryKth(10));
        let statuses: Vec<FrameStatus> = frames.iter().map(|f| verifier.process(f)).collect();
        assert_eq!(
            statuses[5],
            FrameStatus::Unprotected,
            "gap frame undetected"
        );
        assert_eq!(statuses[10], FrameStatus::Forged);
        assert_eq!(statuses[0], FrameStatus::Verified);
        assert_eq!(verifier.unprotected, 27);
    }

    #[test]
    fn hash_chain_covers_every_frame_at_group_cost() {
        let (frames, pk) = signed_stream(SigningPolicy::HashChain(25), 100);
        // Only 4 signatures produced for 100 frames.
        let signed = frames.iter().filter(|f| f.meta.signature.is_some()).count();
        assert_eq!(signed, 4);
        let mut verifier = StreamVerifier::new(pk, SigningPolicy::HashChain(25));
        let statuses: Vec<FrameStatus> = frames.iter().map(|f| verifier.process(f)).collect();
        assert_eq!(
            statuses
                .iter()
                .filter(|s| **s == FrameStatus::Verified)
                .count(),
            4,
            "one Verified per group close"
        );
        assert_eq!(verifier.verified, 100, "group verdicts cover all frames");
        assert_eq!(verifier.forged, 0);
    }

    #[test]
    fn hash_chain_detects_tampering_anywhere_in_the_group() {
        for victim in [0usize, 12, 24] {
            let (mut frames, pk) = signed_stream(SigningPolicy::HashChain(25), 25);
            frames[victim].payload = Bytes::from_static(b"EVIL");
            let mut verifier = StreamVerifier::new(pk, SigningPolicy::HashChain(25));
            let last_status = frames.iter().map(|f| verifier.process(f)).last().unwrap();
            assert_eq!(last_status, FrameStatus::Forged, "victim {victim}");
            assert_eq!(verifier.forged, 25);
        }
    }

    #[test]
    fn signature_counts_reflect_policy_cost() {
        let mk = |policy| {
            let mut signer = StreamSigner::new(keys(), policy);
            for i in 0..100 {
                let mut f = frame(i);
                signer.process(&mut f);
            }
            signer.signatures_produced
        };
        assert_eq!(mk(SigningPolicy::EveryFrame), 100);
        assert_eq!(mk(SigningPolicy::EveryKth(10)), 10);
        assert_eq!(mk(SigningPolicy::HashChain(10)), 10);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_size_panics() {
        StreamSigner::new(keys(), SigningPolicy::EveryKth(0));
    }
}
