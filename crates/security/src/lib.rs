//! # livescope-security — the §7 stream-hijacking attack and defense
//!
//! The paper found that neither Periscope nor Meerkat authenticated video
//! after connection setup: the broadcast token crosses the wire in
//! plaintext inside the RTMP connect, and frames are neither encrypted nor
//! signed. An on-path attacker (ARP spoofing on shared WiFi) can therefore
//! silently replace stream content at the broadcaster's or a viewer's
//! edge network. §7.2 proposes a lightweight fix: exchange a key pair over
//! the TLS-protected control channel, then embed a signature of each
//! frame's one-way hash in the frame metadata, optionally signing only
//! every k-th frame or a running hash across k frames.
//!
//! Everything cryptographic here is **built from scratch** and sized for
//! simulation, not production:
//!
//! * [`sha256`] — a complete, test-vector-verified SHA-256;
//! * [`rsa`] — Miller–Rabin prime generation and a textbook RSA-style
//!   signature over ~62-bit moduli. The *system* properties the
//!   experiments need (only the key holder can sign; anyone with the
//!   public key can verify; any payload bit-flip breaks the signature)
//!   hold; the key size obviously does not resist real factoring — see
//!   DESIGN.md's substitution table;
//! * [`signing`] — the §7.2 stream-signing policies (every frame, every
//!   k-th frame, hash-chain over k frames) as signer/verifier state
//!   machines;
//! * [`attack`] — the man-in-the-middle interceptor: parses RTMP off the
//!   wire, steals plaintext tokens, rewrites frames, and fails against
//!   sealed control traffic and signed streams.

#![forbid(unsafe_code)]

pub mod attack;
pub mod rsa;
pub mod rtmps;
pub mod sha256;
pub mod signing;

pub use attack::Interceptor;
pub use rsa::{KeyPair, PublicKey};
pub use rtmps::RtmpsChannel;
pub use signing::{FrameStatus, SigningPolicy, StreamSigner, StreamVerifier};
