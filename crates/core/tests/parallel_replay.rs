//! K-shard byte-identity regression (DESIGN.md §13): the sharded
//! data-parallel replay must render Table 1 and every Fig 1–6 artifact
//! byte-for-byte identical to the single-shard streaming path, for
//! K ∈ {1, 2, 6}, run twice each, at both the default divisor-1000
//! scale and divisor 100. CI runs this test with and without the
//! `parallel` feature — worker threads must not change a byte.

#![forbid(unsafe_code)]

use livescope_core::usage::{run, run_sharded, UsageConfig, UsageReport};
use livescope_crawler::streaming::DEFAULT_EXEMPLARS;
use livescope_crawler::{run_campaign_sharded_with_graph, run_campaign_streaming};
use livescope_graph::DiGraph;
use livescope_workload::{
    default_graph_seed, default_graph_spec, generate_streaming_with_graph, ScenarioConfig,
};

/// Every rendered artifact byte the figure bins emit: Table 1 plus each
/// figure's terminal chart, CSV sidecar, and JSON sidecar.
fn render_all(report: &UsageReport) -> Vec<String> {
    let mut out = vec![report.tab1()];
    for fig in [
        report.fig1(),
        report.fig2(),
        report.fig3(),
        report.fig4(),
        report.fig5(),
        report.fig6(),
    ] {
        out.push(fig.render_ascii(84, 20));
        out.push(fig.to_csv());
        out.push(fig.to_json());
    }
    out
}

#[test]
fn divisor_1000_sharded_output_is_byte_identical_for_every_k() {
    let config = UsageConfig::default();
    assert_eq!(config.periscope.scale_divisor, 1000.0);
    let reference = render_all(&run(&config));
    for k in [1usize, 2, 6] {
        for rep in 0..2 {
            let sharded = render_all(&run_sharded(&config, k));
            assert_eq!(sharded, reference, "K={k} rep={rep} diverged");
        }
    }
}

#[test]
fn divisor_100_sharded_output_is_byte_identical_for_every_k() {
    // Periscope rescaled to divisor 100 (~10× the default record count);
    // Meerkat's study preset is divisor 100 already. Graphs are built
    // once and shared across all runs to keep the test honest about what
    // it exercises (the fold, not graph construction).
    let base = ScenarioConfig::periscope_study();
    let rescale = base.scale_divisor / 100.0;
    let periscope = ScenarioConfig {
        users: (base.users as f64 * rescale) as usize,
        base_daily_broadcasts: base.base_daily_broadcasts * rescale,
        scale_divisor: 100.0,
        ..base
    };
    let config = UsageConfig {
        periscope,
        ..UsageConfig::default()
    };
    assert_eq!(config.meerkat.scale_divisor, 100.0);
    let p_graph = DiGraph::generate(
        &default_graph_spec(&config.periscope),
        default_graph_seed(&config.periscope),
    );
    let m_graph = DiGraph::generate(
        &default_graph_spec(&config.meerkat),
        default_graph_seed(&config.meerkat),
    );
    let report = |p, m| UsageReport {
        periscope: p,
        meerkat: m,
        periscope_scale: config.periscope.scale_divisor,
        meerkat_scale: config.meerkat.scale_divisor,
    };
    let reference = render_all(&report(
        run_campaign_streaming(
            generate_streaming_with_graph(&config.periscope, &p_graph),
            &config.periscope_campaign,
            DEFAULT_EXEMPLARS,
        ),
        run_campaign_streaming(
            generate_streaming_with_graph(&config.meerkat, &m_graph),
            &config.meerkat_campaign,
            DEFAULT_EXEMPLARS,
        ),
    ));
    for k in [1usize, 2, 6] {
        for rep in 0..2 {
            let sharded = render_all(&report(
                run_campaign_sharded_with_graph(
                    &config.periscope,
                    &p_graph,
                    &config.periscope_campaign,
                    k,
                    DEFAULT_EXEMPLARS,
                )
                .0,
                run_campaign_sharded_with_graph(
                    &config.meerkat,
                    &m_graph,
                    &config.meerkat_campaign,
                    k,
                    DEFAULT_EXEMPLARS,
                )
                .0,
            ));
            assert_eq!(sharded, reference, "divisor-100 K={k} rep={rep} diverged");
        }
    }
}
