//! Divisor-1000 byte-identity regression: the streaming replay must
//! render Table 1 and every Fig 1–6 artifact byte-for-byte identical to
//! the historical materializing path, at the default study scale
//! (`scale_divisor` 1000 — the acceptance bar in DESIGN.md §10).

#![forbid(unsafe_code)]

use livescope_core::usage::{run, run_materialized, UsageConfig};

#[test]
fn divisor_1000_streaming_output_is_byte_identical() {
    let config = UsageConfig::default();
    assert_eq!(config.periscope.scale_divisor, 1000.0);
    let streamed = run(&config);
    let materialized = run_materialized(&config);

    assert_eq!(streamed.tab1(), materialized.tab1(), "Table 1 diverged");
    for (s, m) in [
        (streamed.fig1(), materialized.fig1()),
        (streamed.fig2(), materialized.fig2()),
        (streamed.fig3(), materialized.fig3()),
        (streamed.fig4(), materialized.fig4()),
        (streamed.fig5(), materialized.fig5()),
        (streamed.fig6(), materialized.fig6()),
    ] {
        // Every artifact shape the bench bins emit: terminal chart, CSV
        // sidecar, JSON sidecar.
        assert_eq!(
            s.render_ascii(84, 20),
            m.render_ascii(84, 20),
            "{}: ascii render diverged",
            s.title
        );
        assert_eq!(s.to_csv(), m.to_csv(), "{}: csv diverged", s.title);
        assert_eq!(s.to_json(), m.to_json(), "{}: json diverged", s.title);
    }

    // The paper's headline invariants hold on the streaming aggregates.
    assert!(streamed.periscope.missed > 0, "outage should lose records");
    assert!(
        streamed.periscope.duration_secs.fraction_at_or_below(600.0) > 0.75,
        "most broadcasts should be under 10 minutes"
    );
}
