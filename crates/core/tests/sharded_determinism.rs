//! The sharded scheduler's determinism contract, end to end:
//!
//! * same seed ⇒ same trace **bytes**, for any lane count — checked on the
//!   single-shard breakdown workload and on the multi-shard (mailbox-
//!   crossing) celebrity fan-out workload, each run twice per lane count;
//! * a one-shard `ShardedScheduler` run equals the legacy `Scheduler`
//!   (`BackendChoice::Single`) event for event.

#![forbid(unsafe_code)]

use livescope_cdn::{run_fanout, FanoutConfig};
use livescope_core::experiments::breakdown::{self, BreakdownConfig};
use livescope_sim::BackendChoice;
use livescope_telemetry::{event, SharedBuffer, Telemetry, TraceEvent};

const LANE_SWEEP: [usize; 3] = [1, 2, 6];

fn breakdown_config() -> BreakdownConfig {
    BreakdownConfig {
        repetitions: 2,
        stream_secs: 20,
        ..BreakdownConfig::default()
    }
}

/// Runs the breakdown experiment with a JSONL sink and returns the raw
/// trace bytes.
fn breakdown_trace(backend: BackendChoice) -> Vec<u8> {
    let buf = SharedBuffer::new();
    let telemetry = Telemetry::to_jsonl(Box::new(buf.clone()));
    breakdown::run_traced_on(&breakdown_config(), &telemetry, backend);
    telemetry.flush();
    buf.contents()
}

fn fanout_config() -> FanoutConfig {
    FanoutConfig {
        viewers_per_pop: 10,
        stream_secs: 20,
        roam_every: 3,
        ..FanoutConfig::default()
    }
}

/// Runs the multi-shard fan-out with a JSONL sink and returns the raw
/// trace bytes.
fn fanout_trace(lanes: usize) -> Vec<u8> {
    let buf = SharedBuffer::new();
    let telemetry = Telemetry::to_jsonl(Box::new(buf.clone()));
    run_fanout(&fanout_config(), lanes, &telemetry);
    telemetry.flush();
    buf.contents()
}

/// Counts `(span_open, span_close)` events in a raw JSONL trace, and
/// checks every close names a previously opened span id.
fn span_counts(bytes: &[u8]) -> (u64, u64) {
    let events = event::parse_jsonl(std::str::from_utf8(bytes).expect("utf8")).expect("parses");
    let mut opened = std::collections::HashSet::new();
    let (mut opens, mut closes) = (0u64, 0u64);
    for e in &events {
        match &e.event {
            TraceEvent::SpanOpen { id, .. } => {
                opened.insert(*id);
                opens += 1;
            }
            TraceEvent::SpanClose { id, .. } => {
                assert!(opened.contains(id), "close of never-opened span {id:#x}");
                closes += 1;
            }
            _ => {}
        }
    }
    (opens, closes)
}

#[test]
fn breakdown_trace_bytes_are_identical_across_lane_counts() {
    let reference = breakdown_trace(BackendChoice::Sharded { lanes: 1 });
    assert!(!reference.is_empty(), "instrumented run must emit events");
    // The byte-compared trace must carry the causal spans — the
    // determinism contract covers them, not just the legacy events.
    let (opens, closes) = span_counts(&reference);
    assert!(opens > 0, "breakdown trace carries no span_open events");
    assert!(closes > 0, "breakdown trace carries no span_close events");
    for lanes in LANE_SWEEP {
        for run in 0..2 {
            let trace = breakdown_trace(BackendChoice::Sharded { lanes });
            assert!(
                trace == reference,
                "trace bytes diverged: lanes={lanes} run={run}"
            );
        }
    }
}

#[test]
fn sharded_lanes_1_matches_the_legacy_scheduler_event_for_event() {
    let legacy = breakdown_trace(BackendChoice::Single);
    let sharded = breakdown_trace(BackendChoice::Sharded { lanes: 1 });
    let legacy_events = event::parse_jsonl(std::str::from_utf8(&legacy).expect("utf8"))
        .expect("legacy trace parses");
    let sharded_events = event::parse_jsonl(std::str::from_utf8(&sharded).expect("utf8"))
        .expect("sharded trace parses");
    assert!(!legacy_events.is_empty());
    assert_eq!(legacy_events.len(), sharded_events.len());
    for (i, (l, s)) in legacy_events.iter().zip(&sharded_events).enumerate() {
        assert_eq!(l, s, "event #{i} differs");
    }
    // And the serialized bytes match too, not just the parsed events.
    assert!(legacy == sharded, "byte-level divergence");
}

#[test]
fn multi_shard_fanout_trace_bytes_are_identical_across_lane_counts() {
    // This workload exercises the mailbox path: viewers roam POP→POP every
    // 3 polls, so cross-shard sends and barrier merges shape the trace.
    let reference = fanout_trace(1);
    assert!(!reference.is_empty(), "instrumented run must emit events");
    // Fan-out spans go through the epoch-barrier merge: open and close
    // land together at delivery time, and both survive the byte compare.
    let (opens, closes) = span_counts(&reference);
    assert!(opens > 0, "fanout trace carries no span_open events");
    assert_eq!(opens, closes, "fanout spans must be balanced");
    for lanes in LANE_SWEEP {
        for run in 0..2 {
            let trace = fanout_trace(lanes);
            assert!(
                trace == reference,
                "fanout trace diverged: lanes={lanes} run={run}"
            );
        }
    }
}
