//! # livescope-core — the experiment suite
//!
//! This crate is the paper, runnable: every table and figure of
//! *Anatomy of a Personalized Livestreaming System* (IMC 2016) has a
//! corresponding experiment here, built on the substrates in the sibling
//! crates. Each experiment follows the same contract:
//!
//! * a `Config` struct whose `Default`/`paper()` constructor encodes the
//!   paper's parameters (scaled where the original is planetary);
//! * a pure `run(&Config) -> Report` function — deterministic in
//!   `(config, seed)`;
//! * a `Report::render()` producing the ASCII table/figure plus
//!   machine-readable series.
//!
//! | Experiment | Paper artifact | Module |
//! |---|---|---|
//! | Usage & growth | Table 1, Figs 1–6 | [`experiments::usage`] |
//! | Social structure | Table 2, Fig 7 | [`experiments::social`] |
//! | Datacenter map | Fig 9 | [`experiments::geolocation`] |
//! | Delay breakdown | Figs 10–11 | [`experiments::breakdown`] |
//! | Polling delay | Figs 12–13 | [`experiments::polling`] |
//! | Server scalability | Fig 14 | [`experiments::scalability`] |
//! | Wowza→Fastly delay | Fig 15 | [`experiments::geolocation`] |
//! | Client buffering | Figs 16–17 | [`experiments::buffering`] |
//! | Hijack & defense | Fig 18, §7 | [`experiments::security`] |
//! | Overlay multicast (extension) | §8 sketch | [`experiments::overlay_ext`] |
//! | Crawler calibration | §3.1 | re-exported from `livescope-crawler` |

#![forbid(unsafe_code)]

pub mod experiments;

pub use experiments::breakdown;
pub use experiments::buffering;
pub use experiments::chunk_tradeoff;
pub use experiments::geolocation;
pub use experiments::interactivity;
pub use experiments::overlay_ext;
pub use experiments::polling;
pub use experiments::scalability;
pub use experiments::security;
pub use experiments::social;
pub use experiments::usage;
