//! §7 / Fig 18: the stream-hijack attack end-to-end, and the signing
//! defense, both run against the full simulated delivery system.
//!
//! Scenario A (broadcaster side): the attacker shares the broadcaster's
//! WiFi, ARP-spoofs the gateway, and rewrites upload traffic. Every viewer
//! sees black frames; the broadcaster's own screen shows the camera feed.
//! Scenario B (viewer side): the attacker sits on one viewer's network and
//! rewrites only that viewer's downlink.
//!
//! With the §7.2 defense on, the same interceptor still rewrites bytes —
//! but the ingest server (scenario A) or the victim's player (scenario B)
//! verifies frame signatures and rejects/flags every tampered frame.

use livescope_cdn::ids::UserId;
use livescope_cdn::wowza::IngestError;
use livescope_cdn::{CdnError, Cluster};
use livescope_client::broadcaster::FrameSource;
use livescope_net::geo::GeoPoint;
use livescope_net::AccessLink;
use livescope_proto::rtmp::{Role, RtmpMessage};
use livescope_security::{FrameStatus, Interceptor, SigningPolicy, StreamSigner, StreamVerifier};
use livescope_sim::{RngPool, SimDuration, SimTime};

/// Where the man-in-the-middle sits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttackSide {
    /// Tampering the broadcaster's uplink: all viewers affected.
    Broadcaster,
    /// Tampering one viewer's downlink: only that viewer affected.
    Viewer,
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct SecurityConfig {
    pub frames: usize,
    pub side: AttackSide,
    /// Signing policy when the defense is enabled.
    pub policy: SigningPolicy,
    pub seed: u64,
}

impl Default for SecurityConfig {
    fn default() -> Self {
        SecurityConfig {
            frames: 250,
            side: AttackSide::Broadcaster,
            policy: SigningPolicy::EveryFrame,
            seed: 0xF1618,
        }
    }
}

/// What happened during one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SecurityReport {
    /// The attacker harvested the broadcast token off the plaintext wire.
    pub token_stolen: bool,
    /// Frames the interceptor rewrote.
    pub frames_tampered: u64,
    /// Frames the victim viewer *played* with tampered content.
    pub tampered_frames_viewed: u64,
    /// Frames delivered clean to the victim.
    pub clean_frames_viewed: u64,
    /// Frames the ingest server rejected (defense, scenario A).
    pub rejected_at_ingest: u64,
    /// Frames the victim's verifier flagged (defense, scenario B).
    pub flagged_at_viewer: u64,
    /// Signatures the broadcaster produced (defense overhead).
    pub signatures_produced: u64,
}

impl SecurityReport {
    /// True when the attack changed what the victim actually watched
    /// without anyone noticing.
    pub fn attack_succeeded(&self) -> bool {
        self.tampered_frames_viewed > 0
            && self.rejected_at_ingest == 0
            && self.flagged_at_viewer == 0
    }

    /// Renders a Fig 18-style before/after summary.
    pub fn render(&self, label: &str) -> String {
        format!(
            "{label}: token_stolen={} tampered={} viewed_tampered={} viewed_clean={} \
             rejected_at_ingest={} flagged_at_viewer={} signatures={}  => attack {}",
            self.token_stolen,
            self.frames_tampered,
            self.tampered_frames_viewed,
            self.clean_frames_viewed,
            self.rejected_at_ingest,
            self.flagged_at_viewer,
            self.signatures_produced,
            if self.attack_succeeded() {
                "SUCCEEDED"
            } else {
                "DEFEATED"
            }
        )
    }
}

/// Runs the scenario. `defended == false` reproduces the paper's §7.1
/// proof-of-concept; `true` replays it against the §7.2 defense.
pub fn run(config: &SecurityConfig, defended: bool) -> SecurityReport {
    let pool = RngPool::new(config.seed);
    let mut cluster = Cluster::new(&pool, SimDuration::from_secs(3), 100);
    let ucsb = GeoPoint {
        lat: 34.41,
        lon: -119.85,
    };
    let grant = cluster.create_broadcast(SimTime::ZERO, UserId(1), &ucsb);

    let mut report = SecurityReport::default();
    let mut mitm = Interceptor::blackout();
    let mut signer = defended.then(|| {
        StreamSigner::new(
            livescope_security::KeyPair::generate(&mut rand::SeedableRng::seed_from_u64(
                pool.stream_seed("keys"),
            )),
            config.policy,
        )
    });
    // The public key travels over the sealed control channel; install the
    // corresponding verifiers.
    let mut viewer_verifier = signer
        .as_ref()
        .map(|s| StreamVerifier::new(s.public_key(), config.policy));
    if let (true, Some(s), AttackSide::Broadcaster) = (defended, signer.as_ref(), config.side) {
        let pk = s.public_key();
        let policy = config.policy;
        let wowza_idx = grant.wowza_dc.0 as usize;
        // Server-side verification: a fresh verifier per ingest stream.
        // EveryFrame policy verifies statelessly, so a shared closure works.
        assert_eq!(
            policy,
            SigningPolicy::EveryFrame,
            "ingest-side verification is per-frame; group policies verify at the viewer"
        );
        cluster.wowza[wowza_idx].set_verifier(Some(Box::new(move |frame| {
            let mut v = StreamVerifier::new(pk, SigningPolicy::EveryFrame);
            v.process(frame) == FrameStatus::Verified
        })));
    }

    // Connect: the publisher's connect message crosses the broadcaster's
    // WiFi, where the attacker reads it.
    let connect = RtmpMessage::Connect {
        token: grant.token.clone(),
        role: Role::Publisher,
        user_id: 1,
    };
    let connect_wire = if config.side == AttackSide::Broadcaster {
        let (wire, _) = mitm.process_rtmp(connect.encode());
        wire
    } else {
        connect.encode()
    };
    report.token_stolen = !mitm.stolen_tokens.is_empty();
    let token = match RtmpMessage::decode(connect_wire).expect("connect survives the wire") {
        RtmpMessage::Connect { token, .. } => token,
        other => panic!("unexpected message {other:?}"),
    };
    cluster
        .connect_publisher(SimTime::ZERO, grant.id, &token)
        .expect("forwarded token is valid — the attack is silent");

    // One victim viewer on RTMP.
    cluster
        .join_viewer(SimTime::ZERO, grant.id, UserId(2), &ucsb)
        .expect("viewer admitted");
    cluster
        .subscribe_rtmp(
            SimTime::ZERO,
            grant.id,
            UserId(2),
            &ucsb,
            AccessLink::StableWifi,
        )
        .expect("subscribed");

    let mut source = FrameSource::new(0);
    for i in 0..config.frames {
        let now = SimTime::from_millis(i as u64 * 40);
        let mut frame = source.next_frame();
        let original_payload = frame.payload.clone();
        if let Some(signer) = signer.as_mut() {
            signer.process(&mut frame);
        }
        let mut wire = RtmpMessage::Frame(frame).encode();
        if config.side == AttackSide::Broadcaster {
            let (tampered, _) = mitm.process_rtmp(wire);
            wire = tampered;
        }
        match cluster.ingest_frame(now, grant.id, wire) {
            Err(CdnError::Ingest(IngestError::VerificationFailed)) => {
                report.rejected_at_ingest += 1;
                continue;
            }
            Err(e) => panic!("unexpected ingest error {e:?}"),
            Ok(outcome) => {
                for delivery in outcome.deliveries {
                    if delivery.viewer != UserId(2) {
                        continue;
                    }
                    let mut down_wire = delivery.wire;
                    if config.side == AttackSide::Viewer {
                        let (tampered, _) = mitm.process_rtmp(down_wire);
                        down_wire = tampered;
                    }
                    let received = match RtmpMessage::decode(down_wire) {
                        Ok(RtmpMessage::Frame(f)) => f,
                        other => panic!("viewer got {other:?}"),
                    };
                    if let Some(verifier) = viewer_verifier.as_mut() {
                        if verifier.process(&received) == FrameStatus::Forged {
                            report.flagged_at_viewer += 1;
                            continue;
                        }
                    }
                    if received.payload == original_payload {
                        report.clean_frames_viewed += 1;
                    } else {
                        report.tampered_frames_viewed += 1;
                    }
                }
            }
        }
    }
    report.frames_tampered = mitm.frames_tampered;
    if let Some(signer) = signer {
        report.signatures_produced = signer.signatures_produced;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undefended_broadcaster_side_attack_succeeds_silently() {
        let report = run(&SecurityConfig::default(), false);
        assert!(report.token_stolen, "plaintext token must leak");
        assert!(report.attack_succeeded());
        assert_eq!(
            report.clean_frames_viewed, 0,
            "viewer sees only black frames"
        );
        assert_eq!(report.tampered_frames_viewed, 250);
        assert_eq!(report.rejected_at_ingest, 0);
    }

    #[test]
    fn undefended_viewer_side_attack_hits_only_that_viewer() {
        let report = run(
            &SecurityConfig {
                side: AttackSide::Viewer,
                ..SecurityConfig::default()
            },
            false,
        );
        assert!(
            !report.token_stolen,
            "viewer-side MITM never sees the connect"
        );
        assert!(report.attack_succeeded());
        assert_eq!(report.tampered_frames_viewed, 250);
    }

    #[test]
    fn defense_at_ingest_rejects_every_tampered_frame() {
        let report = run(&SecurityConfig::default(), true);
        assert!(!report.attack_succeeded());
        assert_eq!(report.rejected_at_ingest, 250);
        assert_eq!(report.tampered_frames_viewed, 0);
        assert_eq!(
            report.clean_frames_viewed, 0,
            "nothing tampered reaches viewers"
        );
        assert_eq!(report.signatures_produced, 250);
    }

    #[test]
    fn defense_at_viewer_flags_downlink_tampering() {
        let report = run(
            &SecurityConfig {
                side: AttackSide::Viewer,
                ..SecurityConfig::default()
            },
            true,
        );
        assert!(!report.attack_succeeded());
        assert_eq!(report.flagged_at_viewer, 250);
        assert_eq!(report.tampered_frames_viewed, 0);
    }

    #[test]
    fn clean_defended_stream_plays_normally() {
        // Defense with no attacker: nothing rejected, everything verifies.
        let mut config = SecurityConfig {
            side: AttackSide::Viewer,
            ..SecurityConfig::default()
        };
        // A viewer-side "attack" that tampers nothing: use a no-op run by
        // checking the defended broadcaster-side path without the MITM is
        // impossible with this API, so verify via viewer-side where the
        // MITM tampers — covered above. Here instead assert determinism.
        config.frames = 50;
        let a = run(&config, true);
        let b = run(&config, true);
        assert_eq!(a.flagged_at_viewer, b.flagged_at_viewer);
    }

    #[test]
    fn hash_chain_policy_defends_viewer_side_cheaper() {
        let report = run(
            &SecurityConfig {
                side: AttackSide::Viewer,
                policy: SigningPolicy::HashChain(25),
                frames: 250,
                ..SecurityConfig::default()
            },
            true,
        );
        assert!(!report.attack_succeeded());
        // 250 frames / groups of 25 = 10 signatures instead of 250.
        assert_eq!(report.signatures_produced, 10);
        // Group verification flags the closing frame of each tampered
        // group; every group contains tampered frames.
        assert_eq!(report.flagged_at_viewer, 10);
        // The non-closing frames of each group were provisionally shown
        // (Pending) — the detection latency the paper's trade-off buys.
        assert!(report.tampered_frames_viewed > 0);
    }
}
