//! One module per paper artifact; see the crate docs for the index.

pub mod breakdown;
pub mod buffering;
pub mod chunk_tradeoff;
pub mod geolocation;
pub mod interactivity;
pub mod overlay_ext;
pub mod polling;
pub mod scalability;
pub mod security;
pub mod social;
pub mod usage;
