//! Figs 12–13: trace-driven polling-delay simulation.
//!
//! §5.2: using chunk-arrival timestamps captured at Fastly by the 0.1 s
//! probe across 16,013 broadcasts, simulate a single HLS viewer polling at
//! a fixed interval with random phase; the polling delay of a chunk is the
//! gap between its availability at the POP and the first poll that sees
//! it. The paper's findings:
//!
//! * 2 s and 4 s intervals → mean delay ≈ interval/2, tightly clustered;
//! * 3 s interval → because the chunk inter-arrival time is *also* ≈3 s,
//!   the poll phase beats against the arrival phase and the per-broadcast
//!   mean spreads widely over ≈1–2 s;
//! * within-broadcast standard deviation is large for every interval —
//!   viewers cannot predict chunk arrivals — which is what client-side
//!   buffering then has to absorb.

use rand::rngs::SmallRng;
use rand::Rng;
#[cfg(test)]
use rand::SeedableRng;

use livescope_analysis::{Cdf, Figure, Series};
use livescope_sim::{dist, RngPool};

/// Trace + sweep parameters.
#[derive(Clone, Debug)]
pub struct PollingConfig {
    /// Number of broadcast traces (paper: 16,013).
    pub broadcasts: usize,
    /// Poll intervals to sweep, seconds (paper plots 2, 3, 4).
    pub intervals_s: Vec<f64>,
    /// Nominal chunk duration, seconds.
    pub chunk_secs: f64,
    /// Std-dev of chunk inter-arrival jitter, seconds (Wowza2Fastly
    /// variance plus upload irregularity as observed by the probe).
    pub arrival_jitter_s: f64,
    /// Broadcast length model (lognormal over seconds; Fig 3 shape).
    pub duration_mu: f64,
    pub duration_sigma: f64,
    pub seed: u64,
}

impl Default for PollingConfig {
    fn default() -> Self {
        PollingConfig {
            broadcasts: 16_013,
            intervals_s: vec![2.0, 3.0, 4.0],
            chunk_secs: 3.0,
            arrival_jitter_s: 0.18,
            duration_mu: 5.05,
            duration_sigma: 1.1,
            seed: 0x12_13,
        }
    }
}

/// Per-interval distributions across broadcasts.
#[derive(Clone, Debug)]
pub struct PollingReport {
    /// `(interval, CDF of per-broadcast mean polling delay)`.
    pub mean_cdfs: Vec<(f64, Cdf)>,
    /// `(interval, CDF of per-broadcast delay standard deviation)`.
    pub std_cdfs: Vec<(f64, Cdf)>,
}

impl PollingReport {
    /// Fig 12 as a figure artifact.
    pub fn fig12(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 12 — CDF of average polling delay per broadcast",
            "average polling delay (s)",
            "CDF of broadcasts",
        );
        for (interval, cdf) in &self.mean_cdfs {
            fig.push_series(Series::new(format!("{interval}s"), cdf.series(120)));
        }
        fig
    }

    /// Fig 13 as a figure artifact.
    pub fn fig13(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 13 — CDF of polling delay std-dev per broadcast",
            "std-dev of polling delay (s)",
            "CDF of broadcasts",
        );
        for (interval, cdf) in &self.std_cdfs {
            fig.push_series(Series::new(format!("{interval}s"), cdf.series(120)));
        }
        fig
    }
}

/// One broadcast's chunk-availability trace (seconds from stream start).
pub fn chunk_arrival_trace(rng: &mut SmallRng, config: &PollingConfig) -> Vec<f64> {
    let duration =
        dist::log_normal(rng, config.duration_mu, config.duration_sigma).clamp(30.0, 1_800.0);
    let chunks = (duration / config.chunk_secs).floor() as usize;
    let mut out = Vec::with_capacity(chunks.max(1));
    let mut t = 0.0;
    for _ in 0..chunks.max(1) {
        let gap = config.chunk_secs + dist::normal(rng, 0.0, config.arrival_jitter_s);
        t += gap.max(0.5);
        out.push(t);
    }
    out
}

/// Simulates one viewer polling a trace; returns per-chunk delays.
pub fn polling_delays(trace: &[f64], interval_s: f64, phase_s: f64) -> Vec<f64> {
    assert!(interval_s > 0.0, "poll interval must be positive");
    trace
        .iter()
        .map(|&arrival| {
            // First poll at time >= arrival: polls are at phase + k*interval.
            let k = ((arrival - phase_s) / interval_s).ceil().max(0.0);
            let poll = phase_s + k * interval_s;
            poll - arrival
        })
        .collect()
}

/// Optimization extension: an **adaptive poller** that learns the chunk
/// cadence instead of polling blind.
///
/// The paper frames polling delay as the price of client-side pull and
/// asks whether "the current system \[can\] be optimized for improved
/// performance". Fixed-interval polling is maximally ignorant: chunks
/// arrive every ≈3 s, yet the viewer polls out of phase and waits
/// interval/2 on average. This poller EWMA-tracks the inter-arrival
/// period, schedules the next poll just before the predicted arrival,
/// and re-probes at a short `guard` interval when it predicted early.
///
/// Returns `(per-chunk delays, polls issued)` so delay can be traded off
/// against request load.
pub fn adaptive_polling_delays(trace: &[f64], guard_s: f64) -> (Vec<f64>, u64) {
    assert!(guard_s > 0.0, "guard interval must be positive");
    let mut period = 3.0f64; // prior: the production chunk duration
    let mut delays = Vec::with_capacity(trace.len());
    let mut polls = 0u64;
    let mut t = guard_s; // first poll shortly after join
    let mut last_hit: Option<f64> = None;
    let mut i = 0;
    // Hard cap prevents a pathological trace from spinning forever.
    let horizon = trace.last().copied().unwrap_or(0.0) + 30.0;
    while i < trace.len() && t < horizon {
        polls += 1;
        if trace[i] <= t {
            // Hit: one or more chunks are waiting.
            while i < trace.len() && trace[i] <= t {
                delays.push(t - trace[i]);
                i += 1;
            }
            if let Some(prev) = last_hit {
                let observed = t - prev;
                if (0.5..10.0).contains(&observed) {
                    period = 0.75 * period + 0.25 * observed;
                }
            }
            last_hit = Some(t);
            // Sleep to just before the predicted next arrival.
            t += (period - guard_s).max(guard_s);
        } else {
            // Predicted early: short re-probe.
            t += guard_s;
        }
    }
    (delays, polls)
}

/// Comparison row of the adaptive-polling optimization study.
#[derive(Clone, Copy, Debug)]
pub struct PollerComparison {
    /// Strategy label index: fixed interval in seconds, or None=adaptive.
    pub fixed_interval_s: Option<f64>,
    /// Mean polling delay across all chunks of all broadcasts, seconds.
    pub mean_delay_s: f64,
    /// Polls issued per chunk delivered (request-load proxy).
    pub polls_per_chunk: f64,
}

/// Runs fixed 2/2.8/3 s pollers and the adaptive poller over the same
/// traces; the optimization claim is a better delay/requests frontier.
pub fn run_adaptive_study(config: &PollingConfig, guard_s: f64) -> Vec<PollerComparison> {
    let pool = RngPool::new(config.seed ^ 0xAD);
    let mut traces = Vec::with_capacity(config.broadcasts);
    let mut rng = pool.fork("traces");
    for _ in 0..config.broadcasts {
        traces.push(chunk_arrival_trace(&mut rng, config));
    }
    let mut out = Vec::new();
    for interval in [2.0f64, 2.8, 3.0] {
        let mut total_delay = 0.0;
        let mut chunks = 0u64;
        let mut polls = 0u64;
        let mut phase_rng = pool.fork(&format!("phase-{interval}"));
        for trace in &traces {
            let phase = phase_rng.gen_range(0.0..interval);
            let delays = polling_delays(trace, interval, phase);
            total_delay += delays.iter().sum::<f64>();
            chunks += delays.len() as u64;
            let span = trace.last().copied().unwrap_or(0.0);
            polls += (span / interval).ceil() as u64 + 1;
        }
        out.push(PollerComparison {
            fixed_interval_s: Some(interval),
            mean_delay_s: total_delay / chunks.max(1) as f64,
            polls_per_chunk: polls as f64 / chunks.max(1) as f64,
        });
    }
    let mut total_delay = 0.0;
    let mut chunks = 0u64;
    let mut polls = 0u64;
    for trace in &traces {
        let (delays, p) = adaptive_polling_delays(trace, guard_s);
        total_delay += delays.iter().sum::<f64>();
        chunks += delays.len() as u64;
        polls += p;
    }
    out.push(PollerComparison {
        fixed_interval_s: None,
        mean_delay_s: total_delay / chunks.max(1) as f64,
        polls_per_chunk: polls as f64 / chunks.max(1) as f64,
    });
    out
}

/// Runs the sweep.
pub fn run(config: &PollingConfig) -> PollingReport {
    let pool = RngPool::new(config.seed);
    let mut mean_cdfs = Vec::new();
    let mut std_cdfs = Vec::new();
    for &interval in &config.intervals_s {
        let mut means = Vec::with_capacity(config.broadcasts);
        let mut stds = Vec::with_capacity(config.broadcasts);
        let mut rng = pool.fork(&format!("interval-{interval}"));
        for _ in 0..config.broadcasts {
            let trace = chunk_arrival_trace(&mut rng, config);
            let phase = rng.gen_range(0.0..interval);
            let delays = polling_delays(&trace, interval, phase);
            let n = delays.len() as f64;
            let mean = delays.iter().sum::<f64>() / n;
            let var = delays.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n;
            means.push(mean);
            stds.push(var.sqrt());
        }
        mean_cdfs.push((interval, Cdf::from_samples(means)));
        std_cdfs.push((interval, Cdf::from_samples(stds)));
    }
    PollingReport {
        mean_cdfs,
        std_cdfs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> PollingConfig {
        PollingConfig {
            broadcasts: 2_000,
            ..PollingConfig::default()
        }
    }

    fn cdf_for(report: &PollingReport, interval: f64) -> &Cdf {
        &report
            .mean_cdfs
            .iter()
            .find(|(i, _)| *i == interval)
            .expect("interval present")
            .1
    }

    #[test]
    fn two_and_four_second_intervals_average_half_the_interval() {
        let report = run(&quick());
        for (interval, expected) in [(2.0, 1.0), (4.0, 2.0)] {
            let median = cdf_for(&report, interval).median();
            assert!(
                (median - expected).abs() < 0.15,
                "{interval}s interval: median mean-delay {median}, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn three_second_interval_spreads_one_to_two_seconds() {
        // The paper's beat effect: per-broadcast means vary "largely
        // between 1s and 2s" at the 3 s interval.
        let report = run(&quick());
        let cdf = cdf_for(&report, 3.0);
        let p10 = cdf.quantile(0.10);
        let p90 = cdf.quantile(0.90);
        let spread_3s = p90 - p10;
        let spread_2s = {
            let c = cdf_for(&report, 2.0);
            c.quantile(0.90) - c.quantile(0.10)
        };
        assert!(
            spread_3s > 2.0 * spread_2s,
            "3s spread {spread_3s} should dwarf 2s spread {spread_2s}"
        );
        assert!(
            p10 > 0.5 && p90 < 2.7,
            "3s means outside ~1-2s: {p10}..{p90}"
        );
    }

    #[test]
    fn delays_are_bounded_by_the_interval_plus_jitter_headroom() {
        let trace = vec![3.0, 6.0, 9.0, 12.0];
        for interval in [2.0, 3.0, 4.0] {
            for phase in [0.0, 0.7, 1.9] {
                for d in polling_delays(&trace, interval, phase) {
                    assert!(
                        (0.0..interval + 1e-9).contains(&d),
                        "delay {d} @ {interval}"
                    );
                }
            }
        }
    }

    #[test]
    fn std_devs_are_substantial_for_all_intervals() {
        // Fig 13's point: within-broadcast variance is high everywhere.
        let report = run(&quick());
        for (interval, cdf) in &report.std_cdfs {
            let median_std = cdf.median();
            assert!(
                median_std > 0.2,
                "interval {interval}: median std {median_std} too small"
            );
        }
    }

    #[test]
    fn traces_are_monotonic_and_plausible() {
        let config = quick();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let t = chunk_arrival_trace(&mut rng, &config);
            assert!(!t.is_empty());
            for w in t.windows(2) {
                assert!(w[1] > w[0]);
                let gap = w[1] - w[0];
                assert!((0.5..6.0).contains(&gap), "gap {gap}");
            }
        }
    }

    #[test]
    fn adaptive_poller_dominates_fixed_intervals() {
        // The optimization claim: lower mean delay than every fixed
        // interval, at a request load between the 2s and 3s pollers'.
        let rows = run_adaptive_study(
            &PollingConfig {
                broadcasts: 500,
                ..PollingConfig::default()
            },
            0.4,
        );
        let adaptive = rows.iter().find(|r| r.fixed_interval_s.is_none()).unwrap();
        for fixed in rows.iter().filter(|r| r.fixed_interval_s.is_some()) {
            assert!(
                adaptive.mean_delay_s < fixed.mean_delay_s * 0.7,
                "adaptive {:.2}s vs fixed({:?}) {:.2}s",
                adaptive.mean_delay_s,
                fixed.fixed_interval_s,
                fixed.mean_delay_s
            );
        }
        let two_s = rows
            .iter()
            .find(|r| r.fixed_interval_s == Some(2.0))
            .unwrap();
        assert!(
            adaptive.polls_per_chunk < two_s.polls_per_chunk * 2.0,
            "adaptive load {:.2} vs 2s poller {:.2} polls/chunk",
            adaptive.polls_per_chunk,
            two_s.polls_per_chunk
        );
    }

    #[test]
    fn adaptive_poller_sees_every_chunk() {
        let config = PollingConfig {
            broadcasts: 50,
            ..PollingConfig::default()
        };
        let pool = RngPool::new(9);
        let mut rng = pool.fork("t");
        for _ in 0..50 {
            let trace = chunk_arrival_trace(&mut rng, &config);
            let (delays, polls) = adaptive_polling_delays(&trace, 0.4);
            assert_eq!(delays.len(), trace.len(), "no chunk may be missed");
            assert!(delays.iter().all(|&d| d >= 0.0));
            assert!(polls >= trace.len() as u64);
        }
    }

    #[test]
    fn adaptive_poller_handles_degenerate_traces() {
        assert_eq!(adaptive_polling_delays(&[], 0.4).0.len(), 0);
        let (delays, _) = adaptive_polling_delays(&[0.1], 0.4);
        assert_eq!(delays.len(), 1);
    }

    #[test]
    #[should_panic(expected = "guard")]
    fn zero_guard_panics() {
        adaptive_polling_delays(&[1.0], 0.0);
    }

    #[test]
    fn figures_render() {
        let report = run(&PollingConfig {
            broadcasts: 200,
            ..PollingConfig::default()
        });
        let f12 = report.fig12();
        assert_eq!(f12.series.len(), 3);
        assert!(f12.render_ascii(60, 16).contains("Fig 12"));
        let f13 = report.fig13();
        assert!(f13.to_csv().lines().count() > 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        polling_delays(&[1.0], 0.0, 0.0);
    }
}
