//! Figs 16–17: trace-driven client-buffering simulation and the §6
//! optimization claim.
//!
//! The paper replays 16,013 broadcast traces through the decompiled
//! buffering strategy while sweeping the pre-buffer size `P`:
//!
//! * **RTMP (Fig 16)**: `P ∈ {0, 0.5, 1}` s. Already smooth — bigger
//!   buffers barely reduce stalling but do add delay; ~10% of broadcasts
//!   show >5 s average buffering, caused by bursty uplinks.
//! * **HLS (Fig 17)**: `P ∈ {0, 3, 6, 9}` s. Polling variance demands
//!   6–9 s of pre-buffer for smooth playback; the paper's headline: the
//!   production `P=9 s` is conservative — **`P=6 s` stalls about the same
//!   while cutting buffering delay by ≈3 s (half)**.

use rand::rngs::SmallRng;
use rand::Rng;

use livescope_analysis::{Cdf, Figure, Series};
use livescope_client::broadcaster::{capture_schedule, UplinkClass, UplinkModel};
use livescope_client::playback::{simulate_playback, ArrivedUnit};
use livescope_sim::{dist, RngPool, SimDuration, SimTime};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct BufferingConfig {
    /// Broadcast traces per protocol (paper: 16,013).
    pub broadcasts: usize,
    /// RTMP pre-buffer sizes, seconds.
    pub rtmp_prebuffers_s: Vec<f64>,
    /// HLS pre-buffer sizes, seconds.
    pub hls_prebuffers_s: Vec<f64>,
    /// HLS poll interval, seconds.
    pub poll_interval_s: f64,
    /// Chunk duration, seconds.
    pub chunk_secs: f64,
    /// Duration model (Fig 3 lognormal) with a simulation cap.
    pub duration_mu: f64,
    pub duration_sigma: f64,
    pub max_duration_s: f64,
    pub seed: u64,
}

impl Default for BufferingConfig {
    fn default() -> Self {
        BufferingConfig {
            broadcasts: 16_013,
            rtmp_prebuffers_s: vec![0.0, 0.5, 1.0],
            hls_prebuffers_s: vec![0.0, 3.0, 6.0, 9.0],
            poll_interval_s: 2.8,
            chunk_secs: 3.0,
            duration_mu: 5.05,
            duration_sigma: 1.1,
            max_duration_s: 1_200.0,
            seed: 0xF1616,
        }
    }
}

/// CDFs for one pre-buffer setting.
#[derive(Clone, Debug)]
pub struct PolicyCurves {
    pub prebuffer_s: f64,
    pub stall_ratio: Cdf,
    pub avg_buffering: Cdf,
}

/// The full sweep result.
#[derive(Clone, Debug)]
pub struct BufferingReport {
    pub rtmp: Vec<PolicyCurves>,
    pub hls: Vec<PolicyCurves>,
}

impl BufferingReport {
    fn curves(set: &[PolicyCurves], p: f64) -> Option<&PolicyCurves> {
        set.iter().find(|c| (c.prebuffer_s - p).abs() < 1e-9)
    }

    /// Curves for an RTMP pre-buffer setting.
    pub fn rtmp_at(&self, p: f64) -> Option<&PolicyCurves> {
        Self::curves(&self.rtmp, p)
    }

    /// Curves for an HLS pre-buffer setting.
    pub fn hls_at(&self, p: f64) -> Option<&PolicyCurves> {
        Self::curves(&self.hls, p)
    }

    fn figure(curves: &[PolicyCurves], title: &str, metric: &str, pick_stall: bool) -> Figure {
        let mut fig = Figure::new(title, metric, "CDF of broadcasts");
        for c in curves {
            let cdf = if pick_stall {
                &c.stall_ratio
            } else {
                &c.avg_buffering
            };
            fig.push_series(Series::new(format!("{}s", c.prebuffer_s), cdf.series(120)));
        }
        fig
    }

    /// Fig 16(a).
    pub fn fig16_stall(&self) -> Figure {
        Self::figure(
            &self.rtmp,
            "Fig 16(a) — RTMP stalling ratio",
            "stalling ratio",
            true,
        )
    }

    /// Fig 16(b).
    pub fn fig16_buffering(&self) -> Figure {
        Self::figure(
            &self.rtmp,
            "Fig 16(b) — RTMP buffering delay",
            "buffering delay (s)",
            false,
        )
    }

    /// Fig 17(a).
    pub fn fig17_stall(&self) -> Figure {
        Self::figure(
            &self.hls,
            "Fig 17(a) — HLS stalling ratio",
            "stalling ratio",
            true,
        )
    }

    /// Fig 17(b).
    pub fn fig17_buffering(&self) -> Figure {
        Self::figure(
            &self.hls,
            "Fig 17(b) — HLS buffering delay",
            "buffering delay (s)",
            false,
        )
    }
}

/// Samples a broadcast duration in seconds.
fn sample_duration(rng: &mut SmallRng, config: &BufferingConfig) -> f64 {
    dist::log_normal(rng, config.duration_mu, config.duration_sigma)
        .clamp(30.0, config.max_duration_s)
}

/// Builds one RTMP frame-arrival trace (at the viewer device).
pub fn rtmp_trace(rng: &mut SmallRng, config: &BufferingConfig) -> Vec<ArrivedUnit> {
    let duration = sample_duration(rng, config);
    let frames = (duration * 25.0) as usize;
    let class = UplinkModel::sample_class(rng);
    let uplink = UplinkModel::for_class(class);
    let captures = capture_schedule(SimTime::ZERO, frames);
    let server_arrivals = uplink.arrival_times(
        &captures,
        livescope_client::broadcaster::DELTA_FRAME_BYTES,
        rng,
    );
    captures
        .iter()
        .zip(server_arrivals)
        .map(|(capture, at_server)| {
            // Server → viewer: WAN base plus light last-mile jitter.
            let last_mile = 0.03 + dist::exponential(rng, 0.008);
            ArrivedUnit {
                media_ts_us: capture.as_micros(),
                duration_us: 40_000,
                arrival: at_server + SimDuration::from_secs_f64(last_mile),
            }
        })
        .collect()
}

/// Builds one HLS chunk-arrival trace (at the viewer device), modelling
/// ready-time irregularity (uplink stalls), the viewer-triggered fetch,
/// the polling loop, and the last-mile transfer.
pub fn hls_trace(rng: &mut SmallRng, config: &BufferingConfig) -> Vec<ArrivedUnit> {
    let duration = sample_duration(rng, config);
    let chunks = ((duration / config.chunk_secs) as usize).max(2);
    let class = UplinkModel::sample_class(rng);
    let (stall_prob, stall_mean) = match class {
        UplinkClass::Steady => (0.015, 1.0),
        UplinkClass::Bursty => (0.09, 2.5),
    };
    let interval = config.poll_interval_s;
    let phase: f64 = rng.gen_range(0.0..interval);
    let poll_after = |t: f64| -> f64 {
        let k = ((t - phase) / interval).ceil().max(0.0);
        phase + k * interval
    };
    let mut out = Vec::with_capacity(chunks);
    let mut stall_until = 0.0f64;
    let mut prev_ready = 0.0f64;
    for i in 0..chunks {
        let nominal = config.chunk_secs * (i + 1) as f64;
        if rng.gen_bool(stall_prob) {
            stall_until = stall_until.max(nominal + dist::exponential(rng, stall_mean));
        }
        let jitter = dist::normal(rng, 0.0, 0.12);
        let ready = (nominal + jitter).max(stall_until).max(prev_ready + 0.3);
        prev_ready = ready;
        // The viewer's own poll triggers the origin fetch (single-viewer
        // trace, like the paper's simulation): available = first poll
        // after ready + transfer.
        let w2f = 0.08 + dist::exponential(rng, 0.08);
        let available = poll_after(ready) + w2f;
        let discovered = poll_after(available);
        let last_mile = 0.06 + dist::exponential(rng, 0.04);
        let arrival = discovered + last_mile;
        out.push(ArrivedUnit {
            media_ts_us: (nominal * 1e6) as u64 - (config.chunk_secs * 1e6) as u64,
            duration_us: (config.chunk_secs * 1e6) as u64,
            arrival: SimTime::from_secs_f64(arrival),
        });
    }
    out
}

/// Runs the full sweep.
///
/// Parallelized with `crossbeam::thread::scope`: each broadcast's trace
/// is generated from an index-forked RNG stream, so the sample *multiset*
/// — and therefore every CDF — is identical regardless of thread count or
/// scheduling. 16,013 traces drop from seconds to well under one on a
/// multicore box.
pub fn run(config: &BufferingConfig) -> BufferingReport {
    let pool = RngPool::new(config.seed);
    let rtmp = sweep_parallel(
        config,
        &pool,
        "rtmp-traces",
        &config.rtmp_prebuffers_s,
        &rtmp_trace,
    );
    let hls = sweep_parallel(
        config,
        &pool,
        "hls-traces",
        &config.hls_prebuffers_s,
        &hls_trace,
    );
    BufferingReport { rtmp, hls }
}

fn sweep_parallel(
    config: &BufferingConfig,
    pool: &RngPool,
    stream_label: &str,
    prebuffers: &[f64],
    trace_fn: &(dyn Fn(&mut SmallRng, &BufferingConfig) -> Vec<ArrivedUnit> + Sync),
) -> Vec<PolicyCurves> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 8);
    let shards = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move |_| {
                    let mut local: Vec<(Vec<f64>, Vec<f64>)> =
                        vec![(Vec::new(), Vec::new()); prebuffers.len()];
                    let mut b = w;
                    while b < config.broadcasts {
                        let mut rng = pool.fork_indexed(stream_label, b as u64);
                        let trace = trace_fn(&mut rng, config);
                        for (slot, &p) in prebuffers.iter().enumerate() {
                            let report = simulate_playback(&trace, SimDuration::from_secs_f64(p));
                            local[slot].0.push(report.stall_ratio);
                            local[slot].1.push(report.avg_buffering_s);
                        }
                        b += workers;
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("crossbeam scope");
    let mut per_policy: Vec<(Vec<f64>, Vec<f64>)> =
        vec![(Vec::new(), Vec::new()); prebuffers.len()];
    for shard in shards {
        for (slot, (stalls, buffering)) in shard.into_iter().enumerate() {
            per_policy[slot].0.extend(stalls);
            per_policy[slot].1.extend(buffering);
        }
    }
    prebuffers
        .iter()
        .zip(per_policy)
        .map(|(&p, (stalls, buffering))| PolicyCurves {
            prebuffer_s: p,
            stall_ratio: Cdf::from_samples(stalls),
            avg_buffering: Cdf::from_samples(buffering),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BufferingConfig {
        BufferingConfig {
            broadcasts: 400,
            max_duration_s: 600.0,
            ..BufferingConfig::default()
        }
    }

    #[test]
    fn rtmp_is_already_smooth_and_buffers_add_little() {
        let report = run(&quick());
        let p0 = report.rtmp_at(0.0).unwrap();
        let p1 = report.rtmp_at(1.0).unwrap();
        // Most broadcasts stall barely at all even with no pre-buffer.
        assert!(
            p0.stall_ratio.quantile(0.8) < 0.1,
            "RTMP p80 stall {}",
            p0.stall_ratio.quantile(0.8)
        );
        // Pre-buffering helps a bit and costs ≈P of delay.
        assert!(p1.stall_ratio.median() <= p0.stall_ratio.median() + 1e-9);
        assert!(
            p1.avg_buffering.median() > p0.avg_buffering.median() + 0.5,
            "P=1 should add ~1s delay: {} vs {}",
            p1.avg_buffering.median(),
            p0.avg_buffering.median()
        );
    }

    #[test]
    fn ten_percent_of_rtmp_broadcasts_have_long_buffering() {
        // Fig 16(b): a small portion (~10%) exceed 5 s, caused by bursty
        // uplinks.
        let report = run(&quick());
        let p1 = report.rtmp_at(1.0).unwrap();
        let over_5s = 1.0 - p1.avg_buffering.fraction_at_or_below(5.0);
        assert!(
            (0.02..0.25).contains(&over_5s),
            "long-buffering fraction {over_5s}"
        );
    }

    #[test]
    fn hls_needs_big_buffers_for_smoothness() {
        let report = run(&quick());
        let stall_median = |p: f64| report.hls_at(p).unwrap().stall_ratio.quantile(0.9);
        assert!(
            stall_median(0.0) > stall_median(6.0) + 0.005,
            "P=0 ({}) must stall more than P=6 ({})",
            stall_median(0.0),
            stall_median(6.0)
        );
        assert!(stall_median(3.0) >= stall_median(9.0));
    }

    #[test]
    fn six_seconds_matches_nine_at_half_the_delay() {
        // The §6 headline: P=6 s ≈ P=9 s stalling, ~3 s (≈50%) less
        // buffering delay.
        let report = run(&quick());
        let p6 = report.hls_at(6.0).unwrap();
        let p9 = report.hls_at(9.0).unwrap();
        let stall_gap = p6.stall_ratio.quantile(0.9) - p9.stall_ratio.quantile(0.9);
        assert!(
            stall_gap < 0.02,
            "P=6 stalls materially more than P=9: gap {stall_gap}"
        );
        let delay_saving = p9.avg_buffering.median() - p6.avg_buffering.median();
        assert!(
            (1.5..4.5).contains(&delay_saving),
            "expected ≈3 s saving, got {delay_saving}"
        );
        let relative = delay_saving / p9.avg_buffering.median();
        assert!(
            relative > 0.3,
            "saving should be a big fraction of the delay: {relative}"
        );
    }

    #[test]
    fn traces_have_sane_structure() {
        let config = quick();
        let pool = RngPool::new(1);
        let mut rng = pool.fork("t");
        for _ in 0..20 {
            let rt = rtmp_trace(&mut rng, &config);
            assert!(rt.len() >= 30 * 25);
            for w in rt.windows(2) {
                assert!(w[1].media_ts_us > w[0].media_ts_us);
            }
            let ht = hls_trace(&mut rng, &config);
            assert!(ht.len() >= 2);
            for (i, u) in ht.iter().enumerate() {
                assert_eq!(u.media_ts_us, i as u64 * 3_000_000);
                assert!(u.arrival.as_secs_f64() > u.media_ts_us as f64 / 1e6);
            }
        }
    }

    #[test]
    fn figures_render_with_all_policies() {
        let report = run(&BufferingConfig {
            broadcasts: 60,
            ..quick()
        });
        assert_eq!(report.fig16_stall().series.len(), 3);
        assert_eq!(report.fig17_buffering().series.len(), 4);
        assert!(report.fig17_stall().render_ascii(60, 12).contains("Fig 17"));
    }

    #[test]
    fn determinism() {
        let a = run(&BufferingConfig {
            broadcasts: 50,
            ..quick()
        });
        let b = run(&BufferingConfig {
            broadcasts: 50,
            ..quick()
        });
        assert_eq!(
            a.hls_at(6.0).unwrap().avg_buffering.median(),
            b.hls_at(6.0).unwrap().avg_buffering.median()
        );
    }
}
