//! Figs 10–11: the controlled end-to-end delay breakdown experiment.
//!
//! The paper's setup (§4.3): one phone broadcasts, one phone watches over
//! RTMP, one phone is forced onto HLS (by deleting the RTMP URL from the
//! join response), all on stable WiFi — while the high-frequency crawler
//! polls Fastly every 0.1 s, which also makes it the "first viewer" that
//! triggers every chunk replication. Each run yields one six-component
//! breakdown per protocol; the experiment repeats 10× and averages.
//!
//! Paper result (Fig 11): RTMP ≈ 1.4 s end-to-end vs HLS ≈ 11.7 s, the
//! difference dominated by client buffering (6.9 s), chunking (3 s) and
//! polling (1.2 s).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use livescope_analysis::{DelayBreakdown, Table};
use livescope_cdn::ids::{BroadcastId, UserId};
use livescope_cdn::Cluster;
use livescope_client::broadcaster::{capture_schedule, FrameSource, UplinkClass, UplinkModel};
use livescope_client::playback::{emit_playout, simulate_playback};
use livescope_client::viewer::{HlsViewer, RtmpViewer};
use livescope_crawler::probe::HighFreqProbe;
use livescope_net::datacenters::{self, DatacenterId, Provider};
use livescope_net::geo::GeoPoint;
use livescope_net::AccessLink;
use livescope_proto::rtmp::VideoFrame;
use livescope_sim::{
    BackendChoice, RngPool, SchedulerBackend, ShardId, ShardedScheduler, SimDuration, SimTime,
    SingleLane,
};
use livescope_telemetry::{Protocol, Telemetry};

/// Controlled-experiment parameters.
#[derive(Clone, Debug)]
pub struct BreakdownConfig {
    /// Repetitions to average over (the paper's 10).
    pub repetitions: usize,
    /// Stream length per run, seconds.
    pub stream_secs: u64,
    /// Chunk duration (3 s in production).
    pub chunk_secs: f64,
    /// RTMP client pre-buffer (decompiled: ≈1 s).
    pub rtmp_prebuffer_s: f64,
    /// HLS client pre-buffer (decompiled: 9 s).
    pub hls_prebuffer_s: f64,
    /// HLS viewer poll interval (observed: 2–2.8 s).
    pub viewer_poll_s: f64,
    /// Run the 0.1 s crawler probe concurrently (the paper's setup). When
    /// off, the viewer's own polls trigger replication and polling delay
    /// roughly doubles.
    pub with_probe: bool,
    pub broadcaster_location: GeoPoint,
    pub viewer_location: GeoPoint,
    pub seed: u64,
}

impl Default for BreakdownConfig {
    fn default() -> Self {
        BreakdownConfig {
            repetitions: 10,
            stream_secs: 60,
            chunk_secs: 3.0,
            rtmp_prebuffer_s: 1.0,
            hls_prebuffer_s: 9.0,
            viewer_poll_s: 2.8,
            with_probe: true,
            // The paper's lab: UC Santa Barbara.
            broadcaster_location: GeoPoint {
                lat: 34.41,
                lon: -119.85,
            },
            viewer_location: GeoPoint {
                lat: 34.42,
                lon: -119.70,
            },
            seed: 0xF1611,
        }
    }
}

/// Averaged breakdowns plus per-run raw values.
#[derive(Clone, Debug)]
pub struct BreakdownReport {
    pub rtmp: DelayBreakdown,
    pub hls: DelayBreakdown,
    pub rtmp_runs: Vec<DelayBreakdown>,
    pub hls_runs: Vec<DelayBreakdown>,
}

impl BreakdownReport {
    /// Fig 11 as text.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 11 — end-to-end delay breakdown (averaged)\n");
        out.push_str(&self.hls.render_row("HLS"));
        out.push('\n');
        out.push_str(&self.rtmp.render_row("RTMP"));
        out.push('\n');
        let mut table = Table::new([
            "protocol",
            "upload",
            "chunking",
            "wowza2fastly",
            "polling",
            "last-mile",
            "buffering",
            "total",
        ]);
        for (name, b) in [("RTMP", &self.rtmp), ("HLS", &self.hls)] {
            table.row([
                name.to_string(),
                format!("{:.3}", b.upload_s),
                format!("{:.3}", b.chunking_s),
                format!("{:.3}", b.wowza2fastly_s),
                format!("{:.3}", b.polling_s),
                format!("{:.3}", b.last_mile_s),
                format!("{:.3}", b.buffering_s),
                format!("{:.3}", b.total_s()),
            ]);
        }
        out.push_str(&table.render());
        out
    }
}

/// Runs the full controlled experiment (telemetry disabled).
pub fn run(config: &BreakdownConfig) -> BreakdownReport {
    run_traced(config, &Telemetry::disabled())
}

/// Runs the full controlled experiment on an explicit scheduler backend
/// (telemetry disabled). `run` is `run_on` with [`BackendChoice::Single`].
pub fn run_on(config: &BreakdownConfig, backend: BackendChoice) -> BreakdownReport {
    run_traced_on(config, &Telemetry::disabled(), backend)
}

/// Runs the full controlled experiment with every component instrumented
/// through `telemetry`. The trace carries enough events
/// (`RtmpUnitDelivered`, `ChunkCompleted`, `ChunkDelivered`,
/// `JoinPlayout`, …) for [`livescope_telemetry::TraceBreakdown`] to
/// re-derive the six-component Fig 10 breakdown independently of the
/// analytic report returned here. A disabled handle makes this identical
/// to [`run`].
pub fn run_traced(config: &BreakdownConfig, telemetry: &Telemetry) -> BreakdownReport {
    run_traced_on(config, telemetry, BackendChoice::Single)
}

/// [`run_traced`] on an explicit scheduler backend.
///
/// The seed events are identical on either backend — all frame arrivals
/// first, then probe ticks, then viewer polls, so `(time, insertion-seq)`
/// ordering reproduces the stable `(time, priority)` merge the experiment
/// historically used — and the workload is single-shard, so the sharded
/// backend produces byte-identical traces to [`BackendChoice::Single`]
/// for any lane count (asserted by `tests/sharded_determinism.rs`).
pub fn run_traced_on(
    config: &BreakdownConfig,
    telemetry: &Telemetry,
    backend: BackendChoice,
) -> BreakdownReport {
    assert!(config.repetitions > 0, "need at least one repetition");
    let mut rtmp_runs = Vec::with_capacity(config.repetitions);
    let mut hls_runs = Vec::with_capacity(config.repetitions);
    for rep in 0..config.repetitions {
        let (rtmp, hls) = run_once(
            config,
            config.seed ^ (rep as u64).wrapping_mul(0x9E37),
            telemetry,
            backend,
        );
        rtmp_runs.push(rtmp);
        hls_runs.push(hls);
    }
    BreakdownReport {
        rtmp: DelayBreakdown::average(&rtmp_runs),
        hls: DelayBreakdown::average(&hls_runs),
        rtmp_runs,
        hls_runs,
    }
}

/// Everything an in-flight run mutates, packaged as the scheduler backend's
/// shard state. The controlled experiment is a one-room lab — a single
/// broadcaster, two viewers, one probe — so it occupies exactly one shard.
struct RunWorld {
    cluster: Cluster,
    rng: SmallRng,
    rtmp_viewer: RtmpViewer,
    hls_viewer: HlsViewer,
    probe: HighFreqProbe,
    frames: Vec<VideoFrame>,
    captures: Vec<SimTime>,
    broadcast: BroadcastId,
}

impl RunWorld {
    fn frame_arrival(&mut self, now: SimTime, i: usize) {
        let frame = self.frames[i].clone();
        let capture = self.captures[i];
        let outcome = self
            .cluster
            .ingest_decoded(now, self.broadcast, frame.clone())
            .expect("publisher session is live");
        for delivery in outcome.deliveries {
            if delivery.viewer == UserId(2) {
                if let Some(delay) = delivery.delay {
                    self.rtmp_viewer.record_push(&frame, capture, now, delay);
                }
            }
        }
    }
}

/// Seeds the three event streams. Insertion order (frames, then probe
/// ticks, then viewer polls) is load-bearing: with `(time, seq)` queue
/// ordering it reproduces the stable `(time, priority)` sort that defined
/// the experiment's event order before the backend port.
fn seed_events<B: SchedulerBackend<RunWorld>>(
    backend: &mut B,
    config: &BreakdownConfig,
    arrivals: &[SimTime],
    poll_phase: SimDuration,
    end: SimTime,
) {
    for (i, &arrival) in arrivals.iter().enumerate() {
        backend.schedule(
            ShardId(0),
            arrival,
            Box::new(move |ctx, w: &mut RunWorld| w.frame_arrival(ctx.now(), i)),
        );
    }
    if config.with_probe {
        let mut t = SimTime::ZERO;
        while t <= end {
            backend.schedule(
                ShardId(0),
                t,
                Box::new(|ctx, w: &mut RunWorld| {
                    let now = ctx.now();
                    w.probe.poll_once(&mut w.cluster, now);
                }),
            );
            t += SimDuration::from_millis(100);
        }
    }
    let mut t = SimTime::ZERO + poll_phase;
    while t <= end {
        backend.schedule(
            ShardId(0),
            t,
            Box::new(|ctx, w: &mut RunWorld| {
                let now = ctx.now();
                w.hls_viewer.poll(&mut w.cluster, now, &mut w.rng);
            }),
        );
        t += SimDuration::from_secs_f64(config.viewer_poll_s);
    }
}

fn run_once(
    config: &BreakdownConfig,
    seed: u64,
    telemetry: &Telemetry,
    backend: BackendChoice,
) -> (DelayBreakdown, DelayBreakdown) {
    let pool = RngPool::new(seed);
    let mut cluster = Cluster::new(&pool, SimDuration::from_secs_f64(config.chunk_secs), 100);
    cluster.attach_telemetry(telemetry);
    let mut rng = SmallRng::seed_from_u64(pool.stream_seed("experiment"));

    let grant = cluster.create_broadcast(SimTime::ZERO, UserId(1), &config.broadcaster_location);
    cluster
        .connect_publisher(SimTime::ZERO, grant.id, &grant.token)
        .expect("fresh broadcast accepts its publisher");

    // RTMP viewer joins first (gets a slot).
    cluster
        .join_viewer(SimTime::ZERO, grant.id, UserId(2), &config.viewer_location)
        .expect("live broadcast admits viewers");
    cluster
        .subscribe_rtmp(
            SimTime::ZERO,
            grant.id,
            UserId(2),
            &config.viewer_location,
            AccessLink::StableWifi,
        )
        .expect("subscription succeeds");
    let mut rtmp_viewer = RtmpViewer::new(UserId(2));
    rtmp_viewer.attach_telemetry(telemetry, grant.id);

    // HLS viewer: joins normally, then ignores the RTMP grant — the paper
    // forced HLS by deleting the RTMP URL from the join response.
    cluster
        .join_viewer(SimTime::ZERO, grant.id, UserId(3), &config.viewer_location)
        .expect("live broadcast admits viewers");
    let pop = datacenters::nearest(Provider::Fastly, &config.viewer_location).id;
    let mut hls_viewer = HlsViewer::new(
        UserId(3),
        grant.id,
        pop,
        &config.viewer_location,
        AccessLink::StableWifi,
    );
    hls_viewer.attach_telemetry(telemetry);
    let mut probe = HighFreqProbe::new(grant.id, pop);
    probe.attach_telemetry(telemetry);

    // Frame pipeline: capture schedule → uplink arrivals.
    let n_frames = (config.stream_secs * 25) as usize;
    let captures = capture_schedule(SimTime::ZERO, n_frames);
    let uplink = UplinkModel::for_class(UplinkClass::Steady);
    let arrivals = uplink.arrival_times(
        &captures,
        livescope_client::broadcaster::DELTA_FRAME_BYTES,
        &mut rng,
    );
    let mut source = FrameSource::new(0);
    let frames: Vec<_> = (0..n_frames).map(|_| source.next_frame()).collect();

    // Drive the three event streams through the chosen scheduler backend.
    let tail = SimDuration::from_secs_f64(config.hls_prebuffer_s + 10.0);
    let end = SimTime::ZERO + SimDuration::from_secs(config.stream_secs) + tail;
    let poll_phase = SimDuration::from_secs_f64(rng.gen_range(0.0..config.viewer_poll_s));
    let world = RunWorld {
        cluster,
        rng,
        rtmp_viewer,
        hls_viewer,
        probe,
        frames,
        captures,
        broadcast: grant.id,
    };
    let world = match backend {
        BackendChoice::Single => {
            let mut lane = SingleLane::new(pool, world);
            seed_events(&mut lane, config, &arrivals, poll_phase, end);
            lane.run();
            lane.into_states().pop().expect("one shard")
        }
        BackendChoice::Sharded { lanes } => {
            // Epoch length only matters for cross-shard mail; this workload
            // is single-shard, so one second is as good as any.
            let mut sharded = ShardedScheduler::new(pool, vec![world], SimDuration::from_secs(1))
                .with_lanes(lanes);
            seed_events(&mut sharded, config, &arrivals, poll_phase, end);
            sharded.run();
            sharded.into_states().pop().expect("one shard")
        }
    };
    let RunWorld {
        cluster,
        rtmp_viewer,
        hls_viewer,
        ..
    } = world;

    // --- Assemble the six components. --------------------------------
    let (upload_s, rtmp_last_mile) = rtmp_viewer.mean_delays();
    let rtmp_playback = simulate_playback(
        rtmp_viewer.units(),
        SimDuration::from_secs_f64(config.rtmp_prebuffer_s),
    );
    emit_playout(telemetry, grant.id.0, 2, Protocol::Rtmp, &rtmp_playback);
    let rtmp = DelayBreakdown {
        upload_s,
        chunking_s: 0.0,
        wowza2fastly_s: 0.0,
        polling_s: 0.0,
        last_mile_s: rtmp_last_mile,
        buffering_s: rtmp_playback.avg_buffering_s,
    };

    let receipts = hls_viewer.receipts();
    let origin_ready: std::collections::HashMap<u64, SimTime> = {
        let state = cluster
            .control
            .broadcast(grant.id)
            .expect("broadcast exists");
        cluster.wowza[state.wowza_dc.0 as usize]
            .origin_chunks(grant.id)
            .iter()
            .map(|rc| (rc.chunk.seq, rc.ready_at))
            .collect()
    };
    let mean = |f: &dyn Fn(&livescope_client::viewer::ChunkReceipt) -> f64| {
        if receipts.is_empty() {
            0.0
        } else {
            receipts.iter().map(f).sum::<f64>() / receipts.len() as f64
        }
    };
    let hls_playback = simulate_playback(
        &hls_viewer.units(),
        SimDuration::from_secs_f64(config.hls_prebuffer_s),
    );
    emit_playout(telemetry, grant.id.0, 3, Protocol::Hls, &hls_playback);
    let hls = DelayBreakdown {
        upload_s,
        chunking_s: mean(&|r| r.duration_us as f64 / 1e6),
        wowza2fastly_s: mean(&|r| {
            r.available_at_pop
                .saturating_since(origin_ready[&r.seq])
                .as_secs_f64()
        }),
        polling_s: mean(&|r| {
            r.discovered_at
                .saturating_since(r.available_at_pop)
                .as_secs_f64()
        }),
        last_mile_s: mean(&|r| r.arrival.saturating_since(r.discovered_at).as_secs_f64()),
        buffering_s: hls_playback.avg_buffering_s,
    };
    (rtmp, hls)
}

/// Convenience accessor: which POP the HLS viewer of the default config
/// lands on (used by docs and tests).
pub fn default_viewer_pop() -> DatacenterId {
    datacenters::nearest(
        Provider::Fastly,
        &BreakdownConfig::default().viewer_location,
    )
    .id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> BreakdownConfig {
        BreakdownConfig {
            repetitions: 2,
            stream_secs: 40,
            ..BreakdownConfig::default()
        }
    }

    #[test]
    fn hls_is_roughly_an_order_slower_than_rtmp() {
        let report = run(&quick_config());
        let rtmp = report.rtmp.total_s();
        let hls = report.hls.total_s();
        assert!(
            hls / rtmp > 4.0,
            "paper shows ~8x (1.4 vs 11.7); got rtmp={rtmp:.2}, hls={hls:.2}"
        );
        assert!((0.5..4.0).contains(&rtmp), "RTMP total {rtmp}");
        assert!((7.0..20.0).contains(&hls), "HLS total {hls}");
    }

    #[test]
    fn hls_components_have_the_paper_shape() {
        let report = run(&quick_config());
        let h = &report.hls;
        // Buffering is the largest component, then chunking, then polling.
        assert!(h.buffering_s > h.chunking_s, "{h:?}");
        assert!(h.chunking_s > h.polling_s, "{h:?}");
        assert!(h.polling_s > h.wowza2fastly_s, "{h:?}");
        // Chunking ≈ the 3 s chunk duration.
        assert!(
            (2.0..4.0).contains(&h.chunking_s),
            "chunking {}",
            h.chunking_s
        );
        // Polling with a 2.8 s interval and the 0.1 s probe ≈ 1.4 s mean.
        assert!((0.5..2.8).contains(&h.polling_s), "polling {}", h.polling_s);
    }

    #[test]
    fn rtmp_has_no_chunk_path_components() {
        let report = run(&quick_config());
        assert_eq!(report.rtmp.chunking_s, 0.0);
        assert_eq!(report.rtmp.wowza2fastly_s, 0.0);
        assert_eq!(report.rtmp.polling_s, 0.0);
        assert!(
            report.rtmp.buffering_s > 0.3,
            "pre-buffer must dominate RTMP"
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run(&quick_config());
        let b = run(&quick_config());
        assert_eq!(a.rtmp, b.rtmp);
        assert_eq!(a.hls, b.hls);
    }

    #[test]
    fn sharded_backend_reproduces_single_backend_exactly() {
        let config = quick_config();
        let single = run_on(&config, BackendChoice::Single);
        for lanes in [1, 3] {
            let sharded = run_on(&config, BackendChoice::Sharded { lanes });
            assert_eq!(single.rtmp_runs, sharded.rtmp_runs, "lanes={lanes}");
            assert_eq!(single.hls_runs, sharded.hls_runs, "lanes={lanes}");
        }
    }

    #[test]
    fn without_the_probe_polling_delay_grows() {
        let with = run(&quick_config());
        let without = run(&BreakdownConfig {
            with_probe: false,
            ..quick_config()
        });
        assert!(
            without.hls.polling_s > with.hls.polling_s,
            "probe-less polling {} should exceed probed {}",
            without.hls.polling_s,
            with.hls.polling_s
        );
    }

    #[test]
    fn report_renders_both_rows() {
        let report = run(&quick_config());
        let text = report.render();
        assert!(text.contains("RTMP"));
        assert!(text.contains("HLS"));
        assert!(text.contains("Buffering"));
    }
}
