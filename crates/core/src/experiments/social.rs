//! Table 2 and Fig 7: social-graph structure and its effect on audience.
//!
//! Table 2 contrasts Periscope's follow graph with reference Facebook and
//! Twitter crawls: Periscope looks like Twitter (asymmetric links,
//! negative assortativity) and unlike Facebook (mutual links, positive
//! assortativity, more clustering). Fig 7 scatter-plots a broadcaster's
//! follower count against its audience and finds a clear positive
//! relationship — notifications give celebrities built-in audiences.

use livescope_analysis::{pearson, Figure, Series, Table};
use livescope_graph::metrics::{compute, GraphMetrics, MetricsConfig};
use livescope_graph::{DiGraph, GraphSpec};
use livescope_workload::{generate_streaming, ScenarioConfig};

/// Scaled graph sizes for the three Table 2 rows.
#[derive(Clone, Debug)]
pub struct SocialConfig {
    pub periscope_nodes: usize,
    pub facebook_nodes: usize,
    pub twitter_nodes: usize,
    pub metrics: MetricsConfig,
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            periscope_nodes: 20_000,
            facebook_nodes: 10_000,
            twitter_nodes: 20_000,
            metrics: MetricsConfig::default(),
            seed: 0x7AB2,
        }
    }
}

/// Paper reference values for Table 2 (reported for comparison columns).
pub const PAPER_TABLE2: [(&str, f64, f64, f64, f64); 3] = [
    // (network, avg degree, clustering, avg path, assortativity)
    ("Periscope", 38.6, 0.130, 3.74, -0.057),
    ("Facebook", 199.6, 0.175, 5.13, 0.17),
    ("Twitter", 13.99, 0.065, 6.49, -0.19),
];

/// Table 2 result: our three generated rows.
#[derive(Clone, Debug)]
pub struct SocialReport {
    pub periscope: GraphMetrics,
    pub facebook: GraphMetrics,
    pub twitter: GraphMetrics,
}

impl SocialReport {
    /// Renders measured-vs-paper Table 2.
    pub fn render(&self) -> String {
        let mut table = Table::new([
            "network",
            "nodes",
            "edges",
            "avg deg",
            "clustering",
            "avg path",
            "assort",
            "paper(deg/clust/path/assort)",
        ]);
        for ((name, p_deg, p_cl, p_path, p_as), m) in
            PAPER_TABLE2
                .iter()
                .zip([&self.periscope, &self.facebook, &self.twitter])
        {
            table.row([
                name.to_string(),
                m.nodes.to_string(),
                m.edges.to_string(),
                format!("{:.1}", m.avg_degree),
                format!("{:.3}", m.clustering),
                format!("{:.2}", m.avg_path),
                format!("{:+.3}", m.assortativity),
                format!("{p_deg}/{p_cl}/{p_path}/{p_as}"),
            ]);
        }
        format!(
            "Table 2 — social graph structure (measured vs paper)\n{}",
            table.render()
        )
    }
}

/// Generates the three graphs and computes Table 2.
pub fn run_table2(config: &SocialConfig) -> SocialReport {
    let periscope = DiGraph::generate(
        &GraphSpec::periscope().with_nodes(config.periscope_nodes),
        config.seed,
    );
    let twitter = DiGraph::generate(
        &GraphSpec::twitter().with_nodes(config.twitter_nodes),
        config.seed ^ 1,
    );
    let facebook = DiGraph::generate(
        &GraphSpec::facebook().with_nodes(config.facebook_nodes),
        config.seed ^ 2,
    );
    SocialReport {
        periscope: compute(&periscope, &config.metrics),
        facebook: compute(&facebook, &config.metrics),
        twitter: compute(&twitter, &config.metrics),
    }
}

/// Fig 7 result: follower/viewer pairs plus summary statistics.
#[derive(Clone, Debug)]
pub struct Fig7Report {
    /// `(followers, viewers)` per broadcast.
    pub points: Vec<(u64, u64)>,
    /// Pearson correlation of `log1p(followers)` vs `log1p(viewers)`.
    pub log_correlation: f64,
    /// Median audience of the top-decile-by-followers vs the bottom half.
    pub top_decile_median: f64,
    pub bottom_half_median: f64,
}

impl Fig7Report {
    /// Fig 7 as a (log-x) scatter figure.
    pub fn fig7(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 7 — broadcaster followers vs viewers per broadcast",
            "# followers of broadcaster",
            "# viewers of broadcast",
        )
        .with_log_x();
        let pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|&(f, v)| (f as f64 + 1.0, (v as f64 + 1.0).log10()))
            .collect();
        fig.push_series(Series::new("broadcasts (log10 viewers)", pts));
        fig
    }
}

/// Runs Fig 7 on a scaled Periscope workload.
pub fn run_fig7(days: u32, users: usize, seed: u64) -> Fig7Report {
    let scenario = ScenarioConfig {
        days,
        users,
        seed,
        ..ScenarioConfig::periscope_study()
    };
    // Stream the workload: Fig 7 only needs the (followers, viewers)
    // pairs, so the full records are never materialized.
    let points: Vec<(u64, u64)> = generate_streaming(&scenario)
        .map(|b| (b.followers, b.viewers))
        .collect();
    let xs: Vec<f64> = points.iter().map(|&(f, _)| (f as f64 + 1.0).ln()).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, v)| (v as f64 + 1.0).ln()).collect();
    let log_correlation = pearson(&xs, &ys);
    let mut by_followers = points.clone();
    by_followers.sort_by_key(|&(f, _)| f);
    let median = |slice: &[(u64, u64)]| -> f64 {
        if slice.is_empty() {
            return 0.0;
        }
        let mut v: Vec<u64> = slice.iter().map(|&(_, v)| v).collect();
        v.sort_unstable();
        v[v.len() / 2] as f64
    };
    let n = by_followers.len();
    Fig7Report {
        top_decile_median: median(&by_followers[9 * n / 10..]),
        bottom_half_median: median(&by_followers[..n / 2]),
        points,
        log_correlation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SocialConfig {
        // Clustering contrasts only stabilize once graphs are a few times
        // larger than the Facebook community size; stay near the preset
        // scale but sample the metrics lightly.
        SocialConfig {
            periscope_nodes: 9_000,
            facebook_nodes: 6_000,
            twitter_nodes: 9_000,
            metrics: MetricsConfig {
                clustering_samples: 600,
                path_samples: 24,
                path_visit_cap: 0,
                seed: 3,
            },
            seed: 0x7AB2,
        }
    }

    #[test]
    fn table2_shape_contrasts_hold() {
        let r = run_table2(&quick_config());
        // Degree ordering: Facebook > Periscope > Twitter.
        assert!(r.facebook.avg_degree > r.periscope.avg_degree);
        assert!(r.periscope.avg_degree > r.twitter.avg_degree);
        // Assortativity: Facebook positive; Periscope mildly negative;
        // Twitter most negative.
        assert!(r.facebook.assortativity > 0.0, "{:?}", r.facebook);
        assert!(r.periscope.assortativity < 0.0, "{:?}", r.periscope);
        assert!(
            r.twitter.assortativity < r.periscope.assortativity,
            "twitter {} vs periscope {}",
            r.twitter.assortativity,
            r.periscope.assortativity
        );
        // Clustering: Facebook highest.
        assert!(r.facebook.clustering > r.periscope.clustering);
        assert!(r.facebook.clustering > r.twitter.clustering);
        // Small worlds all around.
        for m in [&r.periscope, &r.facebook, &r.twitter] {
            assert!((1.5..8.0).contains(&m.avg_path), "{m:?}");
        }
    }

    #[test]
    fn periscope_degree_tracks_the_paper() {
        let r = run_table2(&quick_config());
        assert!(
            (30.0..48.0).contains(&r.periscope.avg_degree),
            "paper 38.6, got {}",
            r.periscope.avg_degree
        );
        assert!(
            (-0.12..0.0).contains(&r.periscope.assortativity),
            "paper -0.057, got {}",
            r.periscope.assortativity
        );
    }

    #[test]
    fn table_renders_measured_and_paper_columns() {
        let text = run_table2(&quick_config()).render();
        assert!(text.contains("Periscope"));
        assert!(text.contains("38.6"));
        assert!(text.contains("assort"));
    }

    #[test]
    fn fig7_correlation_is_positive() {
        let r = run_fig7(14, 3_000, 5);
        assert!(r.points.len() > 500);
        assert!(
            r.log_correlation > 0.1,
            "log-log correlation {}",
            r.log_correlation
        );
        assert!(
            r.top_decile_median >= r.bottom_half_median * 2.0,
            "top {} vs bottom {}",
            r.top_decile_median,
            r.bottom_half_median
        );
    }

    #[test]
    fn fig7_renders() {
        let r = run_fig7(7, 1_500, 5);
        let fig = r.fig7();
        assert!(fig.log_x);
        assert!(fig.render_ascii(60, 14).contains("Fig 7"));
    }
}
