//! §5.2's chunk-size tradeoff, swept end to end.
//!
//! "Using smaller chunks obviously reduces the chunking delay but also
//! increases the number of chunks ... higher server overhead for managing
//! data and handling client polling. ... today's livestreaming services
//! all use ≈3 s chunks ... while Apple's video-on-demand HLS operates on
//! 10 s chunks." And the forward-looking warning: "more streams will
//! require servers to increase chunk sizes, improving scalability at the
//! cost of higher delays."
//!
//! This experiment reruns the full Fig 11 controlled pipeline at each
//! chunk size (with the client pre-buffer scaled to three chunks, the
//! production ratio) and pairs the measured end-to-end delay with the
//! origin's chunk-management load.

use livescope_analysis::Table;

use crate::experiments::breakdown::{run as run_breakdown, BreakdownConfig};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct ChunkTradeoffConfig {
    /// Chunk durations to sweep, seconds.
    pub chunk_sizes_s: Vec<f64>,
    /// Repetitions of the controlled experiment per size.
    pub repetitions: usize,
    /// Stream length per run, seconds.
    pub stream_secs: u64,
    pub seed: u64,
}

impl Default for ChunkTradeoffConfig {
    fn default() -> Self {
        ChunkTradeoffConfig {
            chunk_sizes_s: vec![1.0, 3.0, 10.0],
            repetitions: 5,
            stream_secs: 60,
            seed: 0xF1652,
        }
    }
}

/// One chunk-size measurement.
#[derive(Clone, Copy, Debug)]
pub struct ChunkCell {
    pub chunk_secs: f64,
    /// Mean HLS end-to-end delay, seconds.
    pub hls_total_s: f64,
    /// Chunks the origin manages per stream-minute.
    pub chunks_per_minute: f64,
    /// Chunklist-poll requests per viewer-minute (poll interval tracks
    /// the chunk duration, as Periscope's does).
    pub polls_per_viewer_minute: f64,
}

/// The sweep result.
#[derive(Clone, Debug)]
pub struct ChunkTradeoffReport {
    pub cells: Vec<ChunkCell>,
}

impl ChunkTradeoffReport {
    /// Renders the tradeoff table.
    pub fn render(&self) -> String {
        let mut table = Table::new([
            "chunk size",
            "HLS end-to-end delay",
            "chunks/min at origin",
            "polls/viewer-min",
        ]);
        for c in &self.cells {
            table.row([
                format!("{}s", c.chunk_secs),
                format!("{:.1}s", c.hls_total_s),
                format!("{:.0}", c.chunks_per_minute),
                format!("{:.1}", c.polls_per_viewer_minute),
            ]);
        }
        format!(
            "§5.2 — chunk size: scalability vs latency\n{}\
             smaller chunks: lower delay, more server objects and requests;\n\
             larger chunks: the reverse. 3s (production) sits on the knee;\n\
             10s (Apple VoD) trades ~3x the delay for ~1/3 the request load.\n",
            table.render()
        )
    }
}

/// Runs the sweep.
pub fn run(config: &ChunkTradeoffConfig) -> ChunkTradeoffReport {
    let mut cells = Vec::with_capacity(config.chunk_sizes_s.len());
    for &chunk_secs in &config.chunk_sizes_s {
        // Periscope's production ratios: poll slightly faster than the
        // chunk cadence; pre-buffer three chunks.
        let breakdown = run_breakdown(&BreakdownConfig {
            repetitions: config.repetitions,
            stream_secs: config.stream_secs,
            chunk_secs,
            viewer_poll_s: (chunk_secs * 0.93).max(0.5),
            hls_prebuffer_s: chunk_secs * 3.0,
            seed: config.seed,
            ..BreakdownConfig::default()
        });
        cells.push(ChunkCell {
            chunk_secs,
            hls_total_s: breakdown.hls.total_s(),
            chunks_per_minute: 60.0 / chunk_secs,
            polls_per_viewer_minute: 60.0 / (chunk_secs * 0.93).max(0.5),
        });
    }
    ChunkTradeoffReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ChunkTradeoffReport {
        run(&ChunkTradeoffConfig {
            repetitions: 2,
            stream_secs: 50,
            ..ChunkTradeoffConfig::default()
        })
    }

    #[test]
    fn delay_grows_with_chunk_size() {
        let report = quick();
        let totals: Vec<f64> = report.cells.iter().map(|c| c.hls_total_s).collect();
        assert!(totals[0] < totals[1], "{totals:?}");
        assert!(totals[1] < totals[2], "{totals:?}");
        // 10s chunks cost the better part of half a minute end-to-end.
        assert!(
            totals[2] > 2.0 * totals[1],
            "10s vs 3s should be a multiple: {totals:?}"
        );
    }

    #[test]
    fn request_load_shrinks_with_chunk_size() {
        let report = quick();
        let polls: Vec<f64> = report
            .cells
            .iter()
            .map(|c| c.polls_per_viewer_minute)
            .collect();
        assert!(polls[0] > polls[1] && polls[1] > polls[2], "{polls:?}");
        let chunks: Vec<f64> = report.cells.iter().map(|c| c.chunks_per_minute).collect();
        assert_eq!(chunks, vec![60.0, 20.0, 6.0]);
    }

    #[test]
    fn production_point_matches_fig11() {
        let report = quick();
        let three = report
            .cells
            .iter()
            .find(|c| c.chunk_secs == 3.0)
            .expect("3s in sweep");
        assert!(
            (8.0..14.0).contains(&three.hls_total_s),
            "3s chunk E2E {}",
            three.hls_total_s
        );
    }

    #[test]
    fn report_renders() {
        let text = quick().render();
        assert!(text.contains("chunk size"));
        assert!(text.contains("10s"));
    }
}
