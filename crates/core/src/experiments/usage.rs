//! Table 1 and Figs 1–6: scale, growth and user-activity analyses on the
//! measured (crawled) datasets for both services.
//!
//! Everything here works off the bounded-memory
//! [`livescope_crawler::streaming::DatasetSummary`] the streaming
//! campaign produced — including its imperfections (outage gap) — just
//! like the paper worked off its crawl. The default [`run`] is the
//! single-pass generate → crawl → analyze replay (DESIGN.md §10);
//! [`run_materialized`] is the historical collect-then-scan path, kept so
//! the byte-identity regression test can pin both to the same figures.

use livescope_analysis::{Figure, QuantileSketch, Series, Table};
use livescope_crawler::campaign::{run_campaign, CampaignConfig};
use livescope_crawler::sharded::run_campaign_sharded;
use livescope_crawler::streaming::{run_campaign_streaming, DatasetSummary, DEFAULT_EXEMPLARS};
use livescope_workload::{generate, generate_streaming, ScenarioConfig};

/// Which scenarios to measure.
#[derive(Clone, Debug)]
pub struct UsageConfig {
    pub periscope: ScenarioConfig,
    pub periscope_campaign: CampaignConfig,
    pub meerkat: ScenarioConfig,
    pub meerkat_campaign: CampaignConfig,
}

impl Default for UsageConfig {
    fn default() -> Self {
        UsageConfig {
            periscope: ScenarioConfig::periscope_study(),
            periscope_campaign: CampaignConfig::periscope_study(),
            meerkat: ScenarioConfig::meerkat_study(),
            meerkat_campaign: CampaignConfig::meerkat_study(),
        }
    }
}

/// Both measured datasets, as streaming aggregates.
pub struct UsageReport {
    pub periscope: DatasetSummary,
    pub meerkat: DatasetSummary,
    pub periscope_scale: f64,
    pub meerkat_scale: f64,
}

/// Paper Table 1 anchors (paper-scale numbers).
pub const PAPER_TABLE1: [(&str, u64, u64, u64, u64); 2] = [
    // (app, broadcasts, broadcasters, total views, unique viewers)
    ("Periscope", 19_600_000, 1_850_000, 705_000_000, 7_650_000),
    ("Meerkat", 164_000, 57_000, 3_800_000, 183_000),
];

/// Runs both campaigns on the streaming path: records are generated,
/// filtered and folded one at a time, never materialized.
pub fn run(config: &UsageConfig) -> UsageReport {
    UsageReport {
        periscope: run_campaign_streaming(
            generate_streaming(&config.periscope),
            &config.periscope_campaign,
            DEFAULT_EXEMPLARS,
        ),
        meerkat: run_campaign_streaming(
            generate_streaming(&config.meerkat),
            &config.meerkat_campaign,
            DEFAULT_EXEMPLARS,
        ),
        periscope_scale: config.periscope.scale_divisor,
        meerkat_scale: config.meerkat.scale_divisor,
    }
}

/// Runs both campaigns on the sharded data-parallel path
/// ([`livescope_crawler::run_campaign_sharded`]): the user space is
/// partitioned into `workers` deterministic shards that generate, crawl
/// and fold independently (on worker threads under the `parallel`
/// feature), then merge in fixed shard order. Byte-identical to [`run`]
/// for every worker count — `tests/parallel_replay.rs` and the CI
/// K-sweep smoke pin this.
pub fn run_sharded(config: &UsageConfig, workers: usize) -> UsageReport {
    UsageReport {
        periscope: run_campaign_sharded(
            &config.periscope,
            &config.periscope_campaign,
            workers,
            DEFAULT_EXEMPLARS,
        ),
        meerkat: run_campaign_sharded(
            &config.meerkat,
            &config.meerkat_campaign,
            workers,
            DEFAULT_EXEMPLARS,
        ),
        periscope_scale: config.periscope.scale_divisor,
        meerkat_scale: config.meerkat.scale_divisor,
    }
}

/// Runs both campaigns on the historical materializing path, then folds
/// the full datasets through the same accumulator. Exists so regression
/// tests can assert the two paths render byte-identical output; prefer
/// [`run`] everywhere else.
pub fn run_materialized(config: &UsageConfig) -> UsageReport {
    let p = generate(&config.periscope);
    let m = generate(&config.meerkat);
    let p_ds = run_campaign(&p, &config.periscope_campaign);
    let m_ds = run_campaign(&m, &config.meerkat_campaign);
    UsageReport {
        periscope: DatasetSummary::from_dataset(&p_ds, &config.periscope_campaign),
        meerkat: DatasetSummary::from_dataset(&m_ds, &config.meerkat_campaign),
        periscope_scale: config.periscope.scale_divisor,
        meerkat_scale: config.meerkat.scale_divisor,
    }
}

/// Sketch of the nonzero entries of a per-user tally vector (Fig 6's
/// "users with at least one view/create", in user-id order).
fn nonzero_tally_sketch(tallies: &[u32]) -> QuantileSketch {
    let mut sketch = QuantileSketch::new();
    for &t in tallies {
        if t > 0 {
            sketch.push(t as f64);
        }
    }
    sketch
}

impl UsageReport {
    /// Table 1: measured (scaled) vs paper.
    pub fn tab1(&self) -> String {
        let mut table = Table::new([
            "app",
            "months",
            "broadcasts",
            "broadcasters",
            "total views",
            "unique viewers",
            "scale",
            "paper (bcasts/bcasters/views/viewers)",
        ]);
        for ((name, pb, pc, pv, pu), (ds, months, scale)) in PAPER_TABLE1.iter().zip([
            (&self.periscope, 3, self.periscope_scale),
            (&self.meerkat, 1, self.meerkat_scale),
        ]) {
            table.row([
                name.to_string(),
                months.to_string(),
                ds.broadcasts().to_string(),
                ds.broadcasters().to_string(),
                ds.total_views().to_string(),
                ds.unique_viewers().to_string(),
                format!("1/{scale}"),
                format!("{pb}/{pc}/{pv}/{pu}"),
            ]);
        }
        format!(
            "Table 1 — dataset scale (measured, scaled down, vs paper)\n{}",
            table.render()
        )
    }

    /// Fig 1: daily broadcasts, both apps.
    pub fn fig1(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 1 — # of daily broadcasts",
            "day of study",
            "broadcasts per day (scaled)",
        );
        for (name, ds) in [("Periscope", &self.periscope), ("Meerkat", &self.meerkat)] {
            // Plot what the crawler *recorded* per day, so the outage gap
            // is visible exactly as in the paper's figure. The fold has
            // already bucketed these (out-of-range days excluded).
            let points = ds
                .recorded_per_day
                .iter()
                .enumerate()
                .map(|(d, &c)| (d as f64, c as f64))
                .collect();
            fig.push_series(Series::new(name, points));
        }
        fig
    }

    /// Fig 2: daily active users.
    pub fn fig2(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 2 — # of daily active users",
            "day of study",
            "active users per day (scaled)",
        );
        for (name, ds) in [("Periscope", &self.periscope), ("Meerkat", &self.meerkat)] {
            fig.push_series(Series::new(
                format!("{name} viewers"),
                ds.daily
                    .iter()
                    .map(|d| (d.day as f64, d.active_viewers as f64))
                    .collect(),
            ));
            fig.push_series(Series::new(
                format!("{name} broadcasters"),
                ds.daily
                    .iter()
                    .map(|d| (d.day as f64, d.active_broadcasters as f64))
                    .collect(),
            ));
        }
        fig
    }

    /// Fig 3: CDF of broadcast length, from the streaming sketch.
    pub fn fig3(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 3 — CDF of broadcast length",
            "length of broadcast (s)",
            "CDF of broadcasts",
        )
        .with_log_x();
        for (name, ds) in [("Periscope", &self.periscope), ("Meerkat", &self.meerkat)] {
            fig.push_series(Series::new(name, ds.duration_secs.series(150)));
        }
        fig
    }

    /// Fig 4: CDF of viewers per broadcast, from the streaming sketch.
    pub fn fig4(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 4 — total # of viewers per broadcast",
            "# of viewers per broadcast",
            "CDF of broadcasts",
        )
        .with_log_x();
        for (name, ds) in [("Meerkat", &self.meerkat), ("Periscope", &self.periscope)] {
            fig.push_series(Series::new(name, ds.viewers.series(150)));
        }
        fig
    }

    /// Fig 5: CDFs of comments and hearts per broadcast.
    pub fn fig5(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 5 — total # of comments (hearts) per broadcast",
            "# per broadcast",
            "CDF of broadcasts",
        )
        .with_log_x();
        for (name, ds) in [("Meerkat", &self.meerkat), ("Periscope", &self.periscope)] {
            for (kind, sketch) in [("comment", &ds.comments), ("heart", &ds.hearts)] {
                fig.push_series(Series::new(format!("{name} {kind}"), sketch.series(120)));
            }
        }
        fig
    }

    /// Fig 6: distribution of broadcast views / creations over users.
    pub fn fig6(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 6 — broadcasts viewed/created per user",
            "# of broadcasts viewed/created",
            "CDF of users",
        )
        .with_log_x();
        for (name, ds) in [("Meerkat", &self.meerkat), ("Periscope", &self.periscope)] {
            let creates = nonzero_tally_sketch(&ds.user_creates);
            let views = nonzero_tally_sketch(&ds.user_views);
            fig.push_series(Series::new(format!("{name} create"), creates.series(120)));
            fig.push_series(Series::new(format!("{name} view"), views.series(120)));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livescope_crawler::campaign::{anonymize, Dataset, MeasuredBroadcast};
    use livescope_workload::{BroadcastRecord, DayStats};

    fn quick() -> UsageConfig {
        UsageConfig {
            periscope: ScenarioConfig {
                days: 28,
                users: 3_000,
                base_daily_broadcasts: 60.0,
                android_launch_day: Some(7),
                ..ScenarioConfig::periscope_study()
            },
            periscope_campaign: CampaignConfig {
                outage_days: Some((20, 22)),
                outage_loss: 0.5,
                ..CampaignConfig::periscope_study()
            },
            meerkat: ScenarioConfig {
                days: 28,
                users: 800,
                base_daily_broadcasts: 30.0,
                ..ScenarioConfig::meerkat_study()
            },
            meerkat_campaign: CampaignConfig::meerkat_study(),
        }
    }

    #[test]
    fn periscope_grows_and_meerkat_declines() {
        let report = run(&quick());
        let slope = |ds: &DatasetSummary| {
            let first: u64 = ds.daily[..7].iter().map(|d| d.broadcasts).sum();
            let last: u64 = ds.daily[ds.daily.len() - 7..]
                .iter()
                .map(|d| d.broadcasts)
                .sum();
            last as f64 / first.max(1) as f64
        };
        assert!(slope(&report.periscope) > 1.3, "Periscope should grow");
        assert!(slope(&report.meerkat) < 0.95, "Meerkat should decline");
    }

    #[test]
    fn viewer_ratio_and_zero_viewer_contrast() {
        let report = run(&quick());
        // Meerkat: most broadcasts go unwatched.
        let zero =
            |ds: &DatasetSummary| ds.zero_viewer_broadcasts as f64 / ds.broadcasts().max(1) as f64;
        let meerkat_zero = zero(&report.meerkat);
        assert!(
            (0.5..0.7).contains(&meerkat_zero),
            "meerkat zero {meerkat_zero}"
        );
        let periscope_zero = zero(&report.periscope);
        assert!(periscope_zero < 0.1, "periscope zero {periscope_zero}");
        // The sketch's zero bin agrees with the exact counter.
        assert_eq!(
            report.meerkat.viewers.fraction_at_or_below(0.0),
            meerkat_zero
        );
    }

    #[test]
    fn most_broadcasts_are_short() {
        let report = run(&quick());
        for ds in [&report.periscope, &report.meerkat] {
            let under_10m = ds.duration_secs.fraction_at_or_below(600.0);
            assert!((0.75..0.95).contains(&under_10m), "under-10m {under_10m}");
        }
    }

    #[test]
    fn outage_gap_shows_in_fig1_series() {
        let report = run(&quick());
        let fig = report.fig1();
        let periscope = &fig.series[0];
        // Average of outage days vs neighbors.
        let value = |d: usize| periscope.points[d].1;
        let outage_avg = (value(20) + value(21) + value(22)) / 3.0;
        let neighbor_avg = (value(18) + value(19) + value(23) + value(24)) / 4.0;
        assert!(
            outage_avg < neighbor_avg * 0.8,
            "outage {outage_avg} vs neighbors {neighbor_avg}"
        );
    }

    #[test]
    fn tab1_renders_both_apps() {
        let report = run(&quick());
        let text = report.tab1();
        assert!(text.contains("Periscope"));
        assert!(text.contains("Meerkat"));
        assert!(text.contains("19600000/"));
    }

    #[test]
    fn all_figures_render_nonempty() {
        let report = run(&quick());
        for (fig, series) in [
            (report.fig1(), 2),
            (report.fig2(), 4),
            (report.fig3(), 2),
            (report.fig4(), 2),
            (report.fig5(), 4),
            (report.fig6(), 4),
        ] {
            assert_eq!(fig.series.len(), series, "{}", fig.title);
            for s in &fig.series {
                assert!(!s.points.is_empty(), "{}: {}", fig.title, s.label);
            }
        }
    }

    #[test]
    fn fig5_hearts_dominate_comments_for_periscope() {
        let report = run(&quick());
        assert!(
            report.periscope.hearts_total > report.periscope.comments_total * 5,
            "hearts {} vs comments {} — the commenter cap should bind",
            report.periscope.hearts_total,
            report.periscope.comments_total
        );
    }

    #[test]
    fn streaming_and_materialized_render_identically() {
        // The full-scale (divisor 1000) equivalence lives in
        // `tests/streaming_replay.rs`; this pins the same byte-identity
        // on the quick config so a regression fails fast here too.
        let config = quick();
        let streamed = run(&config);
        let materialized = run_materialized(&config);
        assert_eq!(streamed.tab1(), materialized.tab1());
        for (s, m) in [
            (streamed.fig1(), materialized.fig1()),
            (streamed.fig2(), materialized.fig2()),
            (streamed.fig3(), materialized.fig3()),
            (streamed.fig4(), materialized.fig4()),
            (streamed.fig5(), materialized.fig5()),
            (streamed.fig6(), materialized.fig6()),
        ] {
            assert_eq!(s.to_csv(), m.to_csv(), "{}", s.title);
            assert_eq!(
                s.render_ascii(84, 20),
                m.render_ascii(84, 20),
                "{}",
                s.title
            );
        }
    }

    #[test]
    fn fig1_tolerates_records_on_and_past_the_final_day() {
        // Regression: the old fig1 indexed `per_day[record.day]` into a
        // `daily`-sized vec, so any record with `day >= daily.len()`
        // (hand-built datasets, truncated studies) panicked. The fold
        // must keep in-range days — including the final one — and skip
        // out-of-range days.
        let record = |day: u32| {
            let r = BroadcastRecord {
                id: 1 + day as u64,
                broadcaster: 0,
                day,
                start: livescope_sim::SimTime::from_secs(day as u64 * 86_400),
                duration: livescope_sim::SimDuration::from_secs(60),
                followers: 1,
                viewers: 2,
                mobile_viewers: 1,
                hls_viewers: 0,
                hearts: 3,
                comments: 1,
            };
            MeasuredBroadcast {
                broadcast_hash: anonymize(r.id, 1),
                broadcaster_hash: anonymize(r.broadcaster as u64, 1 ^ 0xB),
                record: r,
            }
        };
        let daily: Vec<DayStats> = (0..3)
            .map(|day| DayStats {
                day,
                broadcasts: 1,
                active_viewers: 1,
                active_broadcasters: 1,
            })
            .collect();
        let dataset = Dataset {
            // One record on the final in-range day, one past the window.
            records: vec![record(2), record(3)],
            daily,
            missed: 0,
            user_views: vec![1, 0],
            user_creates: vec![2, 0],
        };
        let summary = DatasetSummary::from_dataset(&dataset, &CampaignConfig::meerkat_study());
        let report = UsageReport {
            periscope: summary.clone(),
            meerkat: summary,
            periscope_scale: 1.0,
            meerkat_scale: 1.0,
        };
        let fig = report.fig1();
        assert_eq!(fig.series[0].points.len(), 3);
        assert_eq!(fig.series[0].points[2], (2.0, 1.0));
        // Both records still count toward totals; fig2 renders too.
        assert_eq!(report.periscope.broadcasts(), 2);
        report.fig2();
    }
}
