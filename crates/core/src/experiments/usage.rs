//! Table 1 and Figs 1–6: scale, growth and user-activity analyses on the
//! measured (crawled) datasets for both services.
//!
//! Everything here works off the [`livescope_crawler::campaign::Dataset`]
//! the crawler produced — including its imperfections (outage gap) — just
//! like the paper worked off its crawl.

use livescope_analysis::{Cdf, Figure, Series, Table};
use livescope_crawler::campaign::{run_campaign, CampaignConfig, Dataset};
use livescope_workload::{generate, ScenarioConfig};

/// Which scenarios to measure.
#[derive(Clone, Debug)]
pub struct UsageConfig {
    pub periscope: ScenarioConfig,
    pub periscope_campaign: CampaignConfig,
    pub meerkat: ScenarioConfig,
    pub meerkat_campaign: CampaignConfig,
}

impl Default for UsageConfig {
    fn default() -> Self {
        UsageConfig {
            periscope: ScenarioConfig::periscope_study(),
            periscope_campaign: CampaignConfig::periscope_study(),
            meerkat: ScenarioConfig::meerkat_study(),
            meerkat_campaign: CampaignConfig::meerkat_study(),
        }
    }
}

/// Both measured datasets.
pub struct UsageReport {
    pub periscope: Dataset,
    pub meerkat: Dataset,
    pub periscope_scale: f64,
    pub meerkat_scale: f64,
}

/// Paper Table 1 anchors (paper-scale numbers).
pub const PAPER_TABLE1: [(&str, u64, u64, u64, u64); 2] = [
    // (app, broadcasts, broadcasters, total views, unique viewers)
    ("Periscope", 19_600_000, 1_850_000, 705_000_000, 7_650_000),
    ("Meerkat", 164_000, 57_000, 3_800_000, 183_000),
];

/// Runs both campaigns.
pub fn run(config: &UsageConfig) -> UsageReport {
    let p = generate(&config.periscope);
    let m = generate(&config.meerkat);
    UsageReport {
        periscope: run_campaign(&p, &config.periscope_campaign),
        meerkat: run_campaign(&m, &config.meerkat_campaign),
        periscope_scale: config.periscope.scale_divisor,
        meerkat_scale: config.meerkat.scale_divisor,
    }
}

impl UsageReport {
    /// Table 1: measured (scaled) vs paper.
    pub fn tab1(&self) -> String {
        let mut table = Table::new([
            "app",
            "months",
            "broadcasts",
            "broadcasters",
            "total views",
            "unique viewers",
            "scale",
            "paper (bcasts/bcasters/views/viewers)",
        ]);
        for ((name, pb, pc, pv, pu), (ds, months, scale)) in PAPER_TABLE1.iter().zip([
            (&self.periscope, 3, self.periscope_scale),
            (&self.meerkat, 1, self.meerkat_scale),
        ]) {
            table.row([
                name.to_string(),
                months.to_string(),
                ds.broadcasts().to_string(),
                ds.broadcasters().to_string(),
                ds.total_views().to_string(),
                ds.unique_viewers().to_string(),
                format!("1/{scale}"),
                format!("{pb}/{pc}/{pv}/{pu}"),
            ]);
        }
        format!(
            "Table 1 — dataset scale (measured, scaled down, vs paper)\n{}",
            table.render()
        )
    }

    /// Fig 1: daily broadcasts, both apps.
    pub fn fig1(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 1 — # of daily broadcasts",
            "day of study",
            "broadcasts per day (scaled)",
        );
        for (name, ds) in [("Periscope", &self.periscope), ("Meerkat", &self.meerkat)] {
            // Plot what the crawler *recorded* per day, so the outage gap
            // is visible exactly as in the paper's figure.
            let mut per_day = vec![0u64; ds.daily.len()];
            for r in &ds.records {
                per_day[r.record.day as usize] += 1;
            }
            let points = per_day
                .iter()
                .enumerate()
                .map(|(d, &c)| (d as f64, c as f64))
                .collect();
            fig.push_series(Series::new(name, points));
        }
        fig
    }

    /// Fig 2: daily active users.
    pub fn fig2(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 2 — # of daily active users",
            "day of study",
            "active users per day (scaled)",
        );
        for (name, ds) in [("Periscope", &self.periscope), ("Meerkat", &self.meerkat)] {
            fig.push_series(Series::new(
                format!("{name} viewers"),
                ds.daily
                    .iter()
                    .map(|d| (d.day as f64, d.active_viewers as f64))
                    .collect(),
            ));
            fig.push_series(Series::new(
                format!("{name} broadcasters"),
                ds.daily
                    .iter()
                    .map(|d| (d.day as f64, d.active_broadcasters as f64))
                    .collect(),
            ));
        }
        fig
    }

    /// Fig 3: CDF of broadcast length.
    pub fn fig3(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 3 — CDF of broadcast length",
            "length of broadcast (s)",
            "CDF of broadcasts",
        )
        .with_log_x();
        for (name, ds) in [("Periscope", &self.periscope), ("Meerkat", &self.meerkat)] {
            let cdf = Cdf::from_samples(
                ds.records
                    .iter()
                    .map(|r| r.record.duration.as_secs_f64())
                    .collect(),
            );
            fig.push_series(Series::new(name, cdf.series(150)));
        }
        fig
    }

    /// Fig 4: CDF of viewers per broadcast.
    pub fn fig4(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 4 — total # of viewers per broadcast",
            "# of viewers per broadcast",
            "CDF of broadcasts",
        )
        .with_log_x();
        for (name, ds) in [("Meerkat", &self.meerkat), ("Periscope", &self.periscope)] {
            let cdf =
                Cdf::from_samples(ds.records.iter().map(|r| r.record.viewers as f64).collect());
            fig.push_series(Series::new(name, cdf.series(150)));
        }
        fig
    }

    /// Fig 5: CDFs of comments and hearts per broadcast.
    pub fn fig5(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 5 — total # of comments (hearts) per broadcast",
            "# per broadcast",
            "CDF of broadcasts",
        )
        .with_log_x();
        for (name, ds) in [("Meerkat", &self.meerkat), ("Periscope", &self.periscope)] {
            for (kind, f) in [
                (
                    "comment",
                    Box::new(|r: &livescope_crawler::campaign::MeasuredBroadcast| {
                        r.record.comments as f64
                    }) as Box<dyn Fn(_) -> f64>,
                ),
                (
                    "heart",
                    Box::new(|r: &livescope_crawler::campaign::MeasuredBroadcast| {
                        r.record.hearts as f64
                    }),
                ),
            ] {
                let cdf = Cdf::from_samples(ds.records.iter().map(f).collect());
                fig.push_series(Series::new(format!("{name} {kind}"), cdf.series(120)));
            }
        }
        fig
    }

    /// Fig 6: distribution of broadcast views / creations over users.
    pub fn fig6(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 6 — broadcasts viewed/created per user",
            "# of broadcasts viewed/created",
            "CDF of users",
        )
        .with_log_x();
        for (name, ds) in [("Meerkat", &self.meerkat), ("Periscope", &self.periscope)] {
            let creates = Cdf::from_samples(
                ds.user_creates
                    .iter()
                    .filter(|&&c| c > 0)
                    .map(|&c| c as f64)
                    .collect(),
            );
            let views = Cdf::from_samples(
                ds.user_views
                    .iter()
                    .filter(|&&v| v > 0)
                    .map(|&v| v as f64)
                    .collect(),
            );
            fig.push_series(Series::new(format!("{name} create"), creates.series(120)));
            fig.push_series(Series::new(format!("{name} view"), views.series(120)));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> UsageConfig {
        UsageConfig {
            periscope: ScenarioConfig {
                days: 28,
                users: 3_000,
                base_daily_broadcasts: 60.0,
                android_launch_day: Some(7),
                ..ScenarioConfig::periscope_study()
            },
            periscope_campaign: CampaignConfig {
                outage_days: Some((20, 22)),
                outage_loss: 0.5,
                ..CampaignConfig::periscope_study()
            },
            meerkat: ScenarioConfig {
                days: 28,
                users: 800,
                base_daily_broadcasts: 30.0,
                ..ScenarioConfig::meerkat_study()
            },
            meerkat_campaign: CampaignConfig::meerkat_study(),
        }
    }

    #[test]
    fn periscope_grows_and_meerkat_declines() {
        let report = run(&quick());
        let slope = |ds: &Dataset| {
            let first: u64 = ds.daily[..7].iter().map(|d| d.broadcasts).sum();
            let last: u64 = ds.daily[ds.daily.len() - 7..]
                .iter()
                .map(|d| d.broadcasts)
                .sum();
            last as f64 / first.max(1) as f64
        };
        assert!(slope(&report.periscope) > 1.3, "Periscope should grow");
        assert!(slope(&report.meerkat) < 0.95, "Meerkat should decline");
    }

    #[test]
    fn viewer_ratio_and_zero_viewer_contrast() {
        let report = run(&quick());
        // Meerkat: most broadcasts go unwatched.
        let meerkat_zero = report
            .meerkat
            .records
            .iter()
            .filter(|r| r.record.viewers == 0)
            .count() as f64
            / report.meerkat.records.len() as f64;
        assert!(
            (0.5..0.7).contains(&meerkat_zero),
            "meerkat zero {meerkat_zero}"
        );
        let periscope_zero = report
            .periscope
            .records
            .iter()
            .filter(|r| r.record.viewers == 0)
            .count() as f64
            / report.periscope.records.len() as f64;
        assert!(periscope_zero < 0.1, "periscope zero {periscope_zero}");
    }

    #[test]
    fn most_broadcasts_are_short() {
        let report = run(&quick());
        for ds in [&report.periscope, &report.meerkat] {
            let under_10m = ds
                .records
                .iter()
                .filter(|r| r.record.duration.as_secs_f64() < 600.0)
                .count() as f64
                / ds.records.len() as f64;
            assert!((0.75..0.95).contains(&under_10m), "under-10m {under_10m}");
        }
    }

    #[test]
    fn outage_gap_shows_in_fig1_series() {
        let report = run(&quick());
        let fig = report.fig1();
        let periscope = &fig.series[0];
        // Average of outage days vs neighbors.
        let value = |d: usize| periscope.points[d].1;
        let outage_avg = (value(20) + value(21) + value(22)) / 3.0;
        let neighbor_avg = (value(18) + value(19) + value(23) + value(24)) / 4.0;
        assert!(
            outage_avg < neighbor_avg * 0.8,
            "outage {outage_avg} vs neighbors {neighbor_avg}"
        );
    }

    #[test]
    fn tab1_renders_both_apps() {
        let report = run(&quick());
        let text = report.tab1();
        assert!(text.contains("Periscope"));
        assert!(text.contains("Meerkat"));
        assert!(text.contains("19600000/"));
    }

    #[test]
    fn all_figures_render_nonempty() {
        let report = run(&quick());
        for (fig, series) in [
            (report.fig1(), 2),
            (report.fig2(), 4),
            (report.fig3(), 2),
            (report.fig4(), 2),
            (report.fig5(), 4),
            (report.fig6(), 4),
        ] {
            assert_eq!(fig.series.len(), series, "{}", fig.title);
            for s in &fig.series {
                assert!(!s.points.is_empty(), "{}: {}", fig.title, s.label);
            }
        }
    }

    #[test]
    fn fig5_hearts_dominate_comments_for_periscope() {
        let report = run(&quick());
        let total_hearts: u64 = report
            .periscope
            .records
            .iter()
            .map(|r| r.record.hearts)
            .sum();
        let total_comments: u64 = report
            .periscope
            .records
            .iter()
            .map(|r| r.record.comments)
            .sum();
        assert!(
            total_hearts > total_comments * 5,
            "hearts {total_hearts} vs comments {total_comments} — the commenter cap should bind"
        );
    }
}
