//! Fig 9 (the datacenter map) and Fig 15 (Wowza→Fastly delay by
//! distance).
//!
//! §5.3: the paper groups every (Wowza, Fastly) datacenter pair by
//! great-circle distance and plots the CDF of the chunk replication delay
//! per bucket. Two facts are the headline:
//!
//! * farther pairs are slower (no surprise);
//! * there is a **>0.25 s gap between co-located pairs and even nearby
//!   (<500 km) pairs**, which the paper attributes to the co-located POP
//!   acting as a replication *gateway* that coordinates distribution to
//!   everyone else.

use livescope_analysis::{Cdf, Figure, Series, Table};
use livescope_cdn::Cluster;
use livescope_net::datacenters::{self, Provider};
use livescope_net::geo::DistanceBucket;
use livescope_sim::{RngPool, SimDuration, SimTime};

/// Fig 15 sweep parameters.
#[derive(Clone, Debug)]
pub struct GeolocationConfig {
    /// Replication samples per (Wowza, POP) pair.
    pub samples_per_pair: usize,
    /// Chunk size replicated, bytes (3 s of ~600 kbit/s video).
    pub chunk_bytes: usize,
    pub seed: u64,
}

impl Default for GeolocationConfig {
    fn default() -> Self {
        GeolocationConfig {
            samples_per_pair: 40,
            chunk_bytes: 220_000,
            seed: 0xF1615,
        }
    }
}

/// Fig 15 data: a CDF of W2F delay per distance bucket.
#[derive(Clone, Debug)]
pub struct GeolocationReport {
    pub buckets: Vec<(DistanceBucket, Cdf)>,
}

impl GeolocationReport {
    /// Delay CDF for one bucket, if the registry has pairs in it.
    pub fn bucket(&self, bucket: DistanceBucket) -> Option<&Cdf> {
        self.buckets
            .iter()
            .find(|(b, _)| *b == bucket)
            .map(|(_, c)| c)
    }

    /// Fig 15 as a figure artifact.
    pub fn fig15(&self) -> Figure {
        let mut fig = Figure::new(
            "Fig 15 — Wowza-to-Fastly delay by datacenter distance",
            "Wowza2Fastly delay (s)",
            "CDF of replications",
        );
        for (bucket, cdf) in &self.buckets {
            fig.push_series(Series::new(bucket.label(), cdf.series(100)));
        }
        fig
    }

    /// The co-located vs (0,500km] median gap the paper highlights.
    pub fn gateway_gap_s(&self) -> Option<f64> {
        let co = self.bucket(DistanceBucket::CoLocated)?;
        let near = self.bucket(DistanceBucket::UpTo500)?;
        Some(near.median() - co.median())
    }
}

/// Runs the Fig 15 measurement: every Wowza × Fastly pair, sampled
/// replication delays, bucketed by distance.
pub fn run(config: &GeolocationConfig) -> GeolocationReport {
    let pool = RngPool::new(config.seed);
    let mut cluster = Cluster::new(&pool, SimDuration::from_secs(3), 100);
    let mut samples: Vec<(DistanceBucket, Vec<f64>)> = DistanceBucket::all()
        .into_iter()
        .map(|b| (b, Vec::new()))
        .collect();
    for wowza in datacenters::by_provider(Provider::Wowza) {
        let gateway = datacenters::co_located_fastly(wowza);
        for pop in datacenters::by_provider(Provider::Fastly) {
            let distance = wowza.location.distance_km(&pop.location);
            let co_located = gateway.is_some_and(|g| g.id == pop.id);
            let bucket = DistanceBucket::classify(distance, co_located);
            let sink = &mut samples
                .iter_mut()
                .find(|(b, _)| *b == bucket)
                .expect("all buckets present")
                .1;
            for k in 0..config.samples_per_pair {
                let now = SimTime::from_secs(k as u64);
                let d = cluster.sample_fetch_delay(wowza.id, pop.id, config.chunk_bytes, now);
                sink.push(d.as_secs_f64());
            }
        }
    }
    GeolocationReport {
        buckets: samples
            .into_iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(b, v)| (b, Cdf::from_samples(v)))
            .collect(),
    }
}

/// Fig 9 as a table: the full site registry plus the co-location summary.
pub fn fig9_table() -> String {
    let mut table = Table::new(["provider", "city", "continent", "lat", "lon", "co-located"]);
    for dc in datacenters::all_datacenters() {
        let co = match dc.provider {
            Provider::Wowza => datacenters::co_located_fastly(dc)
                .map(|f| f.city)
                .unwrap_or("-"),
            Provider::Fastly => "",
        };
        table.row([
            dc.provider.to_string(),
            dc.city.to_string(),
            dc.continent.to_string(),
            format!("{:.2}", dc.location.lat),
            format!("{:.2}", dc.location.lon),
            co.to_string(),
        ]);
    }
    let co_located = datacenters::by_provider(Provider::Wowza)
        .filter(|w| datacenters::co_located_fastly(w).is_some())
        .count();
    let same_continent = datacenters::by_provider(Provider::Wowza)
        .filter(|w| datacenters::by_provider(Provider::Fastly).any(|f| f.continent == w.continent))
        .count();
    format!(
        "Fig 9 — Wowza and Fastly server locations\n{}\n\
         co-located same-city pairs: {co_located}/8; same-continent: {same_continent}/8\n",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> GeolocationReport {
        run(&GeolocationConfig {
            samples_per_pair: 15,
            ..GeolocationConfig::default()
        })
    }

    #[test]
    fn all_five_buckets_are_populated() {
        let report = quick();
        assert_eq!(
            report.buckets.len(),
            5,
            "registry spans all distance buckets"
        );
        for (bucket, cdf) in &report.buckets {
            assert!(!cdf.is_empty(), "{bucket:?} empty");
        }
    }

    #[test]
    fn delay_orders_by_distance() {
        let report = quick();
        let medians: Vec<f64> = DistanceBucket::all()
            .into_iter()
            .map(|b| report.bucket(b).unwrap().median())
            .collect();
        for w in medians.windows(2) {
            assert!(
                w[0] < w[1] + 0.05,
                "bucket medians should be non-decreasing: {medians:?}"
            );
        }
        // Co-located is far below the farthest bucket.
        assert!(medians[4] > medians[0] * 3.0);
    }

    #[test]
    fn gateway_gap_exceeds_a_quarter_second() {
        // The paper's key observation: >0.25 s between co-located and
        // nearby pairs.
        let report = quick();
        let gap = report.gateway_gap_s().expect("both buckets populated");
        assert!(gap > 0.2, "gateway gap {gap}");
    }

    #[test]
    fn co_located_delays_are_sub_150ms() {
        let report = quick();
        let co = report.bucket(DistanceBucket::CoLocated).unwrap();
        assert!(
            co.quantile(0.95) < 0.15,
            "co-located p95 {}",
            co.quantile(0.95)
        );
    }

    #[test]
    fn fig9_table_reports_the_colocation_facts() {
        let text = fig9_table();
        assert!(text.contains("co-located same-city pairs: 6/8"));
        assert!(text.contains("same-continent: 7/8"));
        assert!(text.contains("Sao Paulo"));
        // 31 sites + header rows.
        assert!(text.lines().count() > 33);
    }

    #[test]
    fn fig15_renders_with_all_series() {
        let report = quick();
        let fig = report.fig15();
        assert_eq!(fig.series.len(), 5);
        assert!(fig.render_ascii(70, 14).contains("Co-located"));
    }
}
