//! Fig 14: server cost of RTMP vs HLS fan-out as the audience grows.
//!
//! The paper ran a Wowza Streaming Engine on a laptop and measured CPU
//! while attaching 100–500 viewers: RTMP cost grows much faster than HLS
//! because it does per-frame, per-viewer work (encode + push ~40 ms
//! frames) while HLS serves a chunklist poll every ~2.8 s and a 3 s chunk
//! per viewer per chunk period.
//!
//! Our substitute does the *actual work* in-process: real frames flow
//! through the real ingest server (serializing a frame message per
//! subscriber), and real polls/chunk downloads flow through the real edge
//! POP. Two cost views are reported:
//!
//! * **operation counts and bytes** — exact, deterministic, machine-
//!   independent (unit-tested);
//! * **measured busy time** (used by the Criterion bench and the `fig14`
//!   binary) — wall-clock cost of performing the work, whose *shape*
//!   (RTMP ≫ HLS, gap widening with viewers) is the paper's result.

use bytes::Bytes;

use livescope_cdn::ids::{BroadcastId, UserId};
use livescope_cdn::{FastlyPop, FetchPlan, WowzaServer};
use livescope_net::datacenters::DatacenterId;
use livescope_net::geo::GeoPoint;
use livescope_net::{AccessLink, Link};
use livescope_proto::rtmp::VideoFrame;
use livescope_sim::{
    BackendChoice, RngPool, SchedulerBackend, ShardId, ShardedScheduler, SimDuration, SimTime,
};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Fan-out workload parameters.
#[derive(Clone, Debug)]
pub struct ScalabilityConfig {
    /// Audience sizes to sweep (paper: 100–500).
    pub viewer_counts: Vec<usize>,
    /// Stream length driven through the servers, seconds.
    pub stream_secs: u64,
    /// Chunk duration, seconds.
    pub chunk_secs: f64,
    /// HLS viewer poll interval, seconds.
    pub poll_interval_s: f64,
    pub seed: u64,
}

impl Default for ScalabilityConfig {
    fn default() -> Self {
        ScalabilityConfig {
            viewer_counts: vec![100, 200, 300, 400, 500],
            stream_secs: 30,
            chunk_secs: 3.0,
            poll_interval_s: 2.8,
            seed: 0xF1614,
        }
    }
}

/// Cost observed for one (protocol, audience) cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FanoutCost {
    pub viewers: usize,
    /// Server operations performed (frame pushes, or polls + chunk serves).
    pub operations: u64,
    /// Bytes moved to viewers.
    pub bytes: u64,
}

/// The sweep result.
#[derive(Clone, Debug)]
pub struct ScalabilityReport {
    pub rtmp: Vec<FanoutCost>,
    pub hls: Vec<FanoutCost>,
    pub stream_secs: u64,
}

impl ScalabilityReport {
    /// Ratio of RTMP to HLS operations at the largest audience — the
    /// paper's "gap elevates with the number of viewers".
    pub fn peak_op_ratio(&self) -> f64 {
        match (self.rtmp.last(), self.hls.last()) {
            (Some(r), Some(h)) if h.operations > 0 => r.operations as f64 / h.operations as f64,
            _ => 0.0,
        }
    }

    /// Renders the Fig 14 table (operations as the CPU proxy).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Fig 14 — server work vs audience size (operations / bytes over the stream)\n",
        );
        let mut table = livescope_analysis::Table::new([
            "viewers", "RTMP ops", "RTMP MB", "HLS ops", "HLS MB", "op ratio",
        ]);
        for (r, h) in self.rtmp.iter().zip(&self.hls) {
            table.row([
                r.viewers.to_string(),
                r.operations.to_string(),
                format!("{:.1}", r.bytes as f64 / 1e6),
                h.operations.to_string(),
                format!("{:.1}", h.bytes as f64 / 1e6),
                format!("{:.1}x", r.operations as f64 / h.operations.max(1) as f64),
            ]);
        }
        out.push_str(&table.render());
        out
    }
}

fn test_frame(seq: u64) -> VideoFrame {
    let size = if seq.is_multiple_of(50) { 9_000 } else { 2_500 };
    VideoFrame::new(
        seq,
        seq * 40_000,
        seq.is_multiple_of(50),
        Bytes::from(vec![7u8; size]),
    )
}

fn viewer_link() -> Link {
    Link::device_path(
        &GeoPoint {
            lat: 34.41,
            lon: -119.85,
        },
        &GeoPoint {
            lat: 37.34,
            lon: -121.89,
        },
        AccessLink::StableWifi,
    )
}

/// Drives `viewers` RTMP subscribers through a real ingest server for the
/// configured stream and returns the cost.
pub fn run_rtmp_cell(config: &ScalabilityConfig, viewers: usize) -> FanoutCost {
    let mut server = WowzaServer::new(
        DatacenterId(1),
        SimDuration::from_secs_f64(config.chunk_secs),
    );
    let b = BroadcastId(1);
    server.register_broadcast(b, "tok".into());
    server.connect_publisher(b, "tok").expect("token matches");
    for v in 0..viewers {
        server
            .subscribe(b, UserId(v as u64), viewer_link())
            .expect("broadcast registered");
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let frames = config.stream_secs * 25;
    for i in 0..frames {
        let now = SimTime::from_millis(i * 40);
        server
            .ingest_decoded(now, b, test_frame(i), &mut rng)
            .expect("publisher live");
    }
    FanoutCost {
        viewers,
        operations: server.work.frame_pushes,
        bytes: server.work.bytes_pushed,
    }
}

/// Drives `viewers` HLS pollers against a real edge POP (origin chunks
/// pre-assembled from the identical frame stream) and returns the cost.
pub fn run_hls_cell(config: &ScalabilityConfig, viewers: usize) -> FanoutCost {
    // Build the origin chunk store once via a real chunker.
    let mut chunker = livescope_cdn::Chunker::new(SimDuration::from_secs_f64(config.chunk_secs));
    let mut origin = Vec::new();
    let frames = config.stream_secs * 25;
    for i in 0..frames {
        let now = SimTime::from_millis(i * 40);
        if let Some(ready) = chunker.push(now, test_frame(i)) {
            origin.push(ready);
        }
    }
    let mut pop = FastlyPop::new(DatacenterId(8));
    let b = BroadcastId(1);
    let pool = RngPool::new(config.seed ^ 0xA5);
    let mut phase_rng = pool.fork("phases");
    use rand::Rng;
    let phases: Vec<f64> = (0..viewers)
        .map(|_| phase_rng.gen_range(0.0..config.poll_interval_s))
        .collect();
    let mut have: Vec<Option<u64>> = vec![None; viewers];
    // Time-ordered polling by all viewers; chunk downloads when new.
    let end = config.stream_secs as f64 + config.chunk_secs;
    let fetch_delay = |_: &FetchPlan| SimDuration::from_millis(30);
    for step in 0.. {
        let mut any = false;
        for v in 0..viewers {
            let t = phases[v] + step as f64 * config.poll_interval_s;
            if t > end {
                continue;
            }
            any = true;
            let now = SimTime::from_secs_f64(t);
            let resp = pop.poll(now, b, &origin, fetch_delay);
            for entry in &resp.chunklist.entries {
                if have[v].is_some_and(|h| entry.seq <= h) {
                    continue;
                }
                // Server-side cost only: serve the encoded container;
                // decoding is client work and not billed to the POP.
                if pop.serve_chunk(now, b, entry.seq).is_some() {
                    have[v] = Some(entry.seq);
                }
            }
        }
        if !any {
            break;
        }
    }
    FanoutCost {
        viewers,
        operations: pop.work.polls_served + pop.work.chunks_served,
        bytes: pop.work.bytes_served,
    }
}

/// Runs the full sweep.
pub fn run(config: &ScalabilityConfig) -> ScalabilityReport {
    let rtmp = config
        .viewer_counts
        .iter()
        .map(|&v| run_rtmp_cell(config, v))
        .collect();
    let hls = config
        .viewer_counts
        .iter()
        .map(|&v| run_hls_cell(config, v))
        .collect();
    ScalabilityReport {
        rtmp,
        hls,
        stream_secs: config.stream_secs,
    }
}

/// One `(protocol, audience)` cell as a scheduler-shard state.
struct Cell {
    config: ScalabilityConfig,
    rtmp: bool,
    viewers: usize,
    cost: Option<FanoutCost>,
}

/// Runs the full sweep on an explicit scheduler backend.
///
/// [`BackendChoice::Sharded`] gives every `(protocol, audience)` cell its
/// own shard — the cells share no state, so this is the canonical
/// embarrassingly-parallel sharding and the result is identical to [`run`]
/// for any lane count (each cell draws only from `config.seed`, never from
/// its shard's pool).
pub fn run_on(config: &ScalabilityConfig, backend: BackendChoice) -> ScalabilityReport {
    let lanes = match backend {
        BackendChoice::Single => return run(config),
        BackendChoice::Sharded { lanes } => lanes,
    };
    let mut cells = Vec::new();
    for &rtmp in &[true, false] {
        for &viewers in &config.viewer_counts {
            cells.push(Cell {
                config: config.clone(),
                rtmp,
                viewers,
                cost: None,
            });
        }
    }
    let n = cells.len();
    let mut sched =
        ShardedScheduler::new(RngPool::new(config.seed), cells, SimDuration::from_secs(1))
            .with_lanes(lanes);
    for i in 0..n {
        sched.schedule(
            ShardId(i as u16),
            SimTime::ZERO,
            Box::new(|_, cell: &mut Cell| {
                cell.cost = Some(if cell.rtmp {
                    run_rtmp_cell(&cell.config, cell.viewers)
                } else {
                    run_hls_cell(&cell.config, cell.viewers)
                });
            }),
        );
    }
    sched.run();
    let costs: Vec<FanoutCost> = sched
        .into_states()
        .into_iter()
        .map(|cell| cell.cost.expect("every cell ran"))
        .collect();
    let (rtmp, hls) = costs.split_at(config.viewer_counts.len());
    ScalabilityReport {
        rtmp: rtmp.to_vec(),
        hls: hls.to_vec(),
        stream_secs: config.stream_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ScalabilityConfig {
        ScalabilityConfig {
            viewer_counts: vec![50, 100, 200],
            stream_secs: 12,
            ..ScalabilityConfig::default()
        }
    }

    #[test]
    fn rtmp_work_is_linear_in_audience() {
        let config = quick();
        let report = run(&config);
        let per_viewer: Vec<f64> = report
            .rtmp
            .iter()
            .map(|c| c.operations as f64 / c.viewers as f64)
            .collect();
        // frames × 1 push per viewer: identical per-viewer cost.
        for w in per_viewer.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-9,
                "non-linear RTMP: {per_viewer:?}"
            );
        }
        assert_eq!(report.rtmp[0].operations, 12 * 25 * 50);
    }

    #[test]
    fn rtmp_dwarfs_hls_and_the_gap_widens() {
        let report = run(&quick());
        for (r, h) in report.rtmp.iter().zip(&report.hls) {
            assert!(
                r.operations > 10 * h.operations,
                "{} viewers: rtmp {} vs hls {}",
                r.viewers,
                r.operations,
                h.operations
            );
            assert!(
                r.bytes > h.bytes,
                "RTMP moves more bytes than chunk serving"
            );
        }
        let gap_small = report.rtmp[0].operations - report.hls[0].operations;
        let gap_large = report.rtmp[2].operations - report.hls[2].operations;
        assert!(gap_large > gap_small, "gap must widen with audience");
    }

    #[test]
    fn hls_viewers_each_see_every_chunk() {
        // chunks served == viewers × chunk count (each viewer downloads
        // each chunk exactly once).
        let config = quick();
        let cell = run_hls_cell(&config, 40);
        let chunks = (config.stream_secs as f64 / config.chunk_secs).floor() as u64 - 1;
        // Allow the boundary chunk to be missed by late phases.
        let served_per_viewer = (cell.operations as f64) / 40.0;
        assert!(
            served_per_viewer > chunks as f64 * 0.8,
            "{served_per_viewer} ops/viewer"
        );
        assert!(cell.bytes > 0);
    }

    #[test]
    fn peak_ratio_is_reported() {
        let report = run(&quick());
        assert!(report.peak_op_ratio() > 10.0);
        assert!(report.render().contains("op ratio"));
    }

    #[test]
    fn shard_per_cell_sweep_matches_the_plain_sweep() {
        let config = quick();
        let plain = run(&config);
        for lanes in [1, 4] {
            let sharded = run_on(&config, BackendChoice::Sharded { lanes });
            assert_eq!(plain.rtmp, sharded.rtmp, "lanes={lanes}");
            assert_eq!(plain.hls, sharded.hls, "lanes={lanes}");
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = run(&quick());
        let b = run(&quick());
        assert_eq!(a.rtmp, b.rtmp);
        assert_eq!(a.hls, b.hls);
    }
}
