//! Extension (§8): the paper's proposed overlay-multicast delivery,
//! quantified against RTMP and HLS.
//!
//! §8 argues the RTMP/HLS dilemma — per-viewer push state vs. chunk+poll
//! latency — could be escaped by a receiver-driven multicast tree over
//! forwarding servers. The paper never builds it; this experiment does,
//! using `livescope-overlay`, and measures the two quantities the dilemma
//! trades off:
//!
//! * **origin cost**: transmissions the ingest server performs per frame;
//! * **end-to-end delay**: upload + delivery + the §6 client buffer.
//!
//! Expected outcome (and the point of §8): the overlay pins origin cost
//! at ≤ #gateways regardless of audience — HLS-class scalability — while
//! keeping push-grade latency — RTMP-class delay.

use livescope_analysis::{OnlineStats, Table};
use livescope_net::datacenters::DatacenterId;
use livescope_net::geo::GeoPoint;
use livescope_overlay::{Hierarchy, MulticastTree, OverlayNetwork};
use livescope_sim::{RngPool, SimTime};
use livescope_telemetry::span::overlay_frame_span;
use livescope_telemetry::{SpanKind, Telemetry, TraceEvent};

/// Audience mix used for all three architectures: world cities weighted
/// toward North America, like the paper's traffic.
pub const VIEWER_CITIES: [(f64, f64); 8] = [
    (40.71, -74.01),  // New York
    (34.05, -118.24), // Los Angeles
    (41.88, -87.63),  // Chicago
    (51.51, -0.13),   // London
    (48.86, 2.35),    // Paris
    (35.68, 139.65),  // Tokyo
    (1.35, 103.82),   // Singapore
    (-33.87, 151.21), // Sydney
];

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct OverlayConfig {
    /// Audience sizes to sweep.
    pub audiences: Vec<usize>,
    /// Frames pushed per measurement.
    pub frames: u64,
    /// Frame payload bytes.
    pub frame_bytes: usize,
    /// Client pre-buffer applied on top of delivery (push paths), seconds.
    pub push_prebuffer_s: f64,
    /// Reference end-to-end delays measured by the Fig 11 experiment.
    pub rtmp_reference_delay_s: f64,
    pub hls_reference_delay_s: f64,
    pub seed: u64,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            audiences: vec![100, 500, 2_000, 5_000],
            frames: 250,
            frame_bytes: 2_500,
            push_prebuffer_s: 1.0,
            rtmp_reference_delay_s: 1.03,
            hls_reference_delay_s: 10.75,
            seed: 0xF1688,
        }
    }
}

/// One architecture × audience measurement.
#[derive(Clone, Copy, Debug)]
pub struct OverlayCell {
    pub audience: usize,
    /// Origin transmissions per frame.
    pub origin_sends_per_frame: f64,
    /// Mean end-to-end delay including the client buffer, seconds.
    pub mean_delay_s: f64,
    /// 95th-percentile delivery delay (before buffering), seconds.
    pub p95_delivery_s: f64,
}

/// The sweep result.
#[derive(Clone, Debug)]
pub struct OverlayReport {
    pub overlay: Vec<OverlayCell>,
    pub config: OverlayConfig,
}

impl OverlayReport {
    /// Renders the three-way comparison table.
    pub fn render(&self) -> String {
        let mut table = Table::new([
            "audience",
            "RTMP origin sends/frame",
            "HLS origin sends/frame",
            "overlay origin sends/frame",
            "RTMP delay",
            "HLS delay",
            "overlay delay",
        ]);
        for cell in &self.overlay {
            // RTMP: the origin pushes every frame to every viewer.
            let rtmp_sends = cell.audience as f64;
            // HLS: the origin serves one chunk fetch per chunk (75 frames)
            // to the gateway replication path; per-frame cost ≈ 1/75 per
            // involved POP — effectively ~0.1.
            let hls_sends = 23.0 / 75.0;
            table.row([
                cell.audience.to_string(),
                format!("{rtmp_sends:.0}"),
                format!("{hls_sends:.2}"),
                format!("{:.1}", cell.origin_sends_per_frame),
                format!("{:.2}s", self.config.rtmp_reference_delay_s),
                format!("{:.2}s", self.config.hls_reference_delay_s),
                format!("{:.2}s", cell.mean_delay_s),
            ]);
        }
        format!(
            "Extension (§8) — overlay multicast vs RTMP vs HLS\n{}\n\
             overlay keeps origin cost ≤ 4 sends/frame at any audience (HLS-class\n\
             scalability) at push-grade delay (RTMP-class latency).\n",
            table.render()
        )
    }
}

/// Runs the sweep.
pub fn run(config: &OverlayConfig) -> OverlayReport {
    run_traced(config, &Telemetry::disabled())
}

/// Runs the sweep, emitting one `overlay_frame_delivered` trace event per
/// pushed frame (origin cost plus the slowest viewer's delivery delay).
pub fn run_traced(config: &OverlayConfig, telemetry: &Telemetry) -> OverlayReport {
    let mut cells = Vec::with_capacity(config.audiences.len());
    for &audience in &config.audiences {
        // A fresh tree rooted at the Ashburn ingest site.
        let pool = RngPool::new(config.seed ^ audience as u64);
        let mut tree = MulticastTree::new(DatacenterId(0), Hierarchy::new());
        let mut net = OverlayNetwork::new(&pool);
        net.attach_telemetry(telemetry);
        for v in 0..audience as u64 {
            let (lat, lon) = VIEWER_CITIES[v as usize % VIEWER_CITIES.len()];
            let location = GeoPoint::new(lat, lon);
            let leaf = Hierarchy::nearest_leaf(&location);
            tree.join(v, leaf);
            net.attach_viewer(v, leaf, &location);
        }
        let mut delivery = OnlineStats::new();
        let mut root_sends = 0u64;
        let mut worst = Vec::new();
        for i in 0..config.frames {
            let now = SimTime::from_millis(i * 40);
            let outcome = net.push_frame(&tree, now, config.frame_bytes);
            root_sends += outcome.root_sends;
            let mut max_delay_us = 0u64;
            for (_, d) in &outcome.viewer_delays {
                delivery.push(d.as_secs_f64());
                worst.push(d.as_secs_f64());
                max_delay_us = max_delay_us.max(d.as_micros());
            }
            telemetry.emit(
                now.as_micros(),
                TraceEvent::OverlayFrameDelivered {
                    audience: audience as u64,
                    seq: i,
                    root_sends: outcome.root_sends,
                    viewers: outcome.viewer_delays.len() as u64,
                    max_delay_us,
                },
            );
            // The frame's multicast span: root push → slowest viewer.
            let span = overlay_frame_span(audience as u64, i);
            telemetry.emit(
                now.as_micros(),
                TraceEvent::SpanOpen {
                    id: span,
                    parent: 0,
                    kind: SpanKind::OverlayFrame,
                    broadcast: audience as u64,
                    subject: i,
                    site: 0,
                },
            );
            telemetry.emit(
                now.as_micros() + max_delay_us,
                TraceEvent::SpanClose {
                    id: span,
                    kind: SpanKind::OverlayFrame,
                },
            );
        }
        worst.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p95 = worst[(worst.len() as f64 * 0.95) as usize - 1];
        // End-to-end = upload (≈ the Fig 11 upload component) + delivery
        // + client buffer (same §6 strategy as RTMP, P≈1 s).
        let upload_s = 0.03;
        cells.push(OverlayCell {
            audience,
            origin_sends_per_frame: root_sends as f64 / config.frames as f64,
            mean_delay_s: upload_s + delivery.mean() + config.push_prebuffer_s,
            p95_delivery_s: p95,
        });
    }
    OverlayReport {
        overlay: cells,
        config: config.clone(),
    }
}

/// Convenience: an overlay delivery run without the sweep, for benches.
pub fn push_frames(audience: usize, frames: u64, seed: u64) -> (f64, f64) {
    let report = run(&OverlayConfig {
        audiences: vec![audience],
        frames,
        seed,
        ..OverlayConfig::default()
    });
    let cell = report.overlay[0];
    (cell.origin_sends_per_frame, cell.mean_delay_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> OverlayReport {
        run(&OverlayConfig {
            audiences: vec![100, 2_000],
            frames: 60,
            ..OverlayConfig::default()
        })
    }

    #[test]
    fn origin_cost_is_flat_in_audience() {
        let report = quick();
        for cell in &report.overlay {
            assert!(
                cell.origin_sends_per_frame <= 4.0,
                "{} viewers: {} origin sends/frame",
                cell.audience,
                cell.origin_sends_per_frame
            );
        }
        let small = report.overlay[0].origin_sends_per_frame;
        let large = report.overlay[1].origin_sends_per_frame;
        assert!((small - large).abs() < 0.5, "origin cost must not grow");
    }

    #[test]
    fn delay_is_rtmp_class_not_hls_class() {
        let report = quick();
        for cell in &report.overlay {
            assert!(
                cell.mean_delay_s < 2.0,
                "{} viewers: overlay delay {}",
                cell.audience,
                cell.mean_delay_s
            );
            assert!(
                cell.mean_delay_s < report.config.hls_reference_delay_s / 3.0,
                "overlay must beat HLS by a wide margin"
            );
            // Delivery tail stays sub-second (one or two WAN hops).
            assert!(cell.p95_delivery_s < 1.0, "p95 {}", cell.p95_delivery_s);
        }
    }

    #[test]
    fn report_renders_all_three_architectures() {
        let text = quick().render();
        assert!(text.contains("RTMP origin"));
        assert!(text.contains("overlay delay"));
        assert!(text.contains("2000"));
    }

    #[test]
    fn push_frames_helper_matches_sweep() {
        let (sends, delay) = push_frames(100, 60, OverlayConfig::default().seed);
        let report = quick();
        assert!((sends - report.overlay[0].origin_sends_per_frame).abs() < 1e-9);
        assert!((delay - report.overlay[0].mean_delay_s).abs() < 1e-9);
    }
}
