//! The paper's opening story, quantified: audience polls and delayed
//! hearts.
//!
//! §1 motivates the whole study with two interactivity failures:
//!
//! * "a 'lagging' audience seeing a delayed version of the stream will
//!   produce delayed 'hearts', which will be misinterpreted by the
//!   broadcaster as positive feedback for a later event";
//! * "a delayed user will likely enter her vote after the real-time vote
//!   has concluded, thus discounting her input."
//!
//! This experiment runs both through the measured delay distributions:
//! the broadcaster stages an event (or opens a vote) at stream time `t`;
//! each viewer reacts `reaction` seconds after *seeing* it; the reaction
//! travels back over the message channel. We report, per protocol cohort,
//! how much feedback lands within the voting window — and how far hearts
//! are misattributed.

use livescope_analysis::Table;
use livescope_sim::{dist, RngPool};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct InteractivityConfig {
    /// Viewers per cohort.
    pub viewers_per_cohort: usize,
    /// Mean human reaction time after seeing the moment, seconds.
    pub reaction_mean_s: f64,
    /// Message-channel (PubNub) delivery delay, seconds.
    pub message_delay_s: f64,
    /// Voting windows to evaluate, seconds.
    pub vote_windows_s: Vec<f64>,
    /// RTMP cohort's end-to-end stream delay distribution: `(mean, sd)`.
    pub rtmp_delay: (f64, f64),
    /// HLS cohort's end-to-end stream delay distribution: `(mean, sd)`.
    pub hls_delay: (f64, f64),
    pub seed: u64,
}

impl Default for InteractivityConfig {
    fn default() -> Self {
        InteractivityConfig {
            viewers_per_cohort: 5_000,
            reaction_mean_s: 1.5,
            message_delay_s: 0.25,
            vote_windows_s: vec![5.0, 10.0, 15.0, 20.0],
            // The Fig 11 measurements, with spread from the buffering CDFs.
            rtmp_delay: (1.03, 0.4),
            hls_delay: (10.75, 2.2),
            seed: 0xF1601,
        }
    }
}

/// Outcome for one cohort.
#[derive(Clone, Debug)]
pub struct CohortOutcome {
    pub label: &'static str,
    /// Fraction of votes arriving within each configured window.
    pub votes_in_window: Vec<(f64, f64)>,
    /// Mean lag between the staged moment and the reaction's arrival.
    pub mean_feedback_lag_s: f64,
    /// Fraction of hearts the broadcaster would misattribute to content
    /// more than 5 s after the staged moment.
    pub misattributed_hearts: f64,
}

/// Both cohorts.
#[derive(Clone, Debug)]
pub struct InteractivityReport {
    pub rtmp: CohortOutcome,
    pub hls: CohortOutcome,
}

impl InteractivityReport {
    /// Renders the vote-window table.
    pub fn render(&self) -> String {
        let mut headers = vec!["cohort".to_string(), "mean feedback lag".to_string()];
        for (w, _) in &self.rtmp.votes_in_window {
            headers.push(format!("votes in {w:.0}s"));
        }
        headers.push("hearts misattributed (>5s)".to_string());
        let mut table = Table::new(headers);
        for cohort in [&self.rtmp, &self.hls] {
            let mut row = vec![
                cohort.label.to_string(),
                format!("{:.1}s", cohort.mean_feedback_lag_s),
            ];
            for (_, frac) in &cohort.votes_in_window {
                row.push(format!("{:.0}%", frac * 100.0));
            }
            row.push(format!("{:.0}%", cohort.misattributed_hearts * 100.0));
            table.row(row);
        }
        format!(
            "§1 interactivity — staged moment at stream time t; viewers react after seeing it\n{}",
            table.render()
        )
    }
}

fn cohort(
    label: &'static str,
    delay: (f64, f64),
    config: &InteractivityConfig,
    pool: &RngPool,
) -> CohortOutcome {
    let mut rng = pool.fork(label);
    let mut lags = Vec::with_capacity(config.viewers_per_cohort);
    for _ in 0..config.viewers_per_cohort {
        let stream_delay = dist::normal(&mut rng, delay.0, delay.1).max(0.1);
        let reaction = dist::exponential(&mut rng, config.reaction_mean_s);
        lags.push(stream_delay + reaction + config.message_delay_s);
    }
    let votes_in_window = config
        .vote_windows_s
        .iter()
        .map(|&w| {
            let in_window = lags.iter().filter(|&&l| l <= w).count();
            (w, in_window as f64 / lags.len() as f64)
        })
        .collect();
    let mean = lags.iter().sum::<f64>() / lags.len() as f64;
    // A heart is "misattributed" when it lands while the broadcaster is
    // already more than 5 s past the staged moment: they will read it as
    // applause for whatever is on screen *now*.
    let misattributed = lags.iter().filter(|&&l| l > 5.0).count() as f64 / lags.len() as f64;
    CohortOutcome {
        label,
        votes_in_window,
        mean_feedback_lag_s: mean,
        misattributed_hearts: misattributed,
    }
}

/// Runs both cohorts.
pub fn run(config: &InteractivityConfig) -> InteractivityReport {
    let pool = RngPool::new(config.seed);
    InteractivityReport {
        rtmp: cohort("RTMP", config.rtmp_delay, config, &pool),
        hls: cohort("HLS", config.hls_delay, config, &pool),
    }
}

/// Sanity accessor used by tests and the binary: vote fraction for a
/// window.
pub fn votes_at(outcome: &CohortOutcome, window: f64) -> f64 {
    outcome
        .votes_in_window
        .iter()
        .find(|(w, _)| (*w - window).abs() < 1e-9)
        .map(|(_, f)| *f)
        .unwrap_or_else(|| {
            let _ = window;
            panic!("window {window} not configured")
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> InteractivityReport {
        run(&InteractivityConfig {
            viewers_per_cohort: 2_000,
            ..InteractivityConfig::default()
        })
    }

    #[test]
    fn ten_second_votes_exclude_virtually_all_hls_viewers() {
        // The §1 scenario: a 10 s vote collects nearly the whole RTMP
        // cohort and nearly none of the HLS cohort.
        let r = report();
        assert!(
            votes_at(&r.rtmp, 10.0) > 0.9,
            "RTMP in 10s: {}",
            votes_at(&r.rtmp, 10.0)
        );
        assert!(
            votes_at(&r.hls, 10.0) < 0.2,
            "HLS in 10s: {}",
            votes_at(&r.hls, 10.0)
        );
    }

    #[test]
    fn longer_windows_recover_hls_votes_monotonically() {
        let r = report();
        let fracs: Vec<f64> = r.hls.votes_in_window.iter().map(|(_, f)| *f).collect();
        for w in fracs.windows(2) {
            assert!(w[1] >= w[0], "vote fraction must be monotone in window");
        }
        assert!(votes_at(&r.hls, 20.0) > 0.85, "20s window recovers HLS");
    }

    #[test]
    fn hearts_misattribution_contrast() {
        let r = report();
        assert!(
            r.rtmp.misattributed_hearts < 0.15,
            "RTMP misattribution {}",
            r.rtmp.misattributed_hearts
        );
        assert!(
            r.hls.misattributed_hearts > 0.9,
            "HLS misattribution {}",
            r.hls.misattributed_hearts
        );
    }

    #[test]
    fn feedback_lag_tracks_stream_delay() {
        let r = report();
        let gap = r.hls.mean_feedback_lag_s - r.rtmp.mean_feedback_lag_s;
        assert!(
            (8.0..12.0).contains(&gap),
            "lag gap {gap} should mirror the Fig 11 delay gap"
        );
    }

    #[test]
    fn report_renders_both_cohorts() {
        let text = report().render();
        assert!(text.contains("RTMP"));
        assert!(text.contains("HLS"));
        assert!(text.contains("votes in 10s"));
    }
}
