//! The high-frequency HLS probe (§4.3): a crawler that polls a Fastly POP
//! every 100 ms, far faster than any real viewer, so that (a) it is the
//! "first viewer poll" that triggers every origin fetch, and (b) it
//! timestamps chunk availability at the POP to within one probe interval.
//! This is how the paper measured the Wowza2Fastly delay.

use livescope_cdn::ids::BroadcastId;
use livescope_cdn::Cluster;
use livescope_net::datacenters::DatacenterId;
use livescope_sim::{SimDuration, SimTime};
use livescope_telemetry::{CounterId, Telemetry, TraceEvent};

/// Default probe interval (the paper's 0.1 s).
pub const PROBE_INTERVAL: SimDuration = SimDuration::from_millis(100);

/// Availability observation for one chunk at one POP.
#[derive(Clone, Copy, Debug)]
pub struct ChunkObservation {
    /// Chunk sequence number within the probed broadcast.
    pub seq: u64,
    /// When the chunk closed at the origin (⑦).
    pub origin_ready: SimTime,
    /// When it became available at the probed POP (⑪).
    pub pop_available: SimTime,
}

impl ChunkObservation {
    /// The measured Wowza2Fastly delay, seconds.
    pub fn w2f_delay_s(&self) -> f64 {
        self.pop_available
            .saturating_since(self.origin_ready)
            .as_secs_f64()
    }
}

/// The probe: drives polls against one (broadcast, POP) pair.
pub struct HighFreqProbe {
    broadcast: BroadcastId,
    pop: DatacenterId,
    interval: SimDuration,
    observations: Vec<ChunkObservation>,
    seen_through: Option<u64>,
    /// Total polls issued so far.
    pub polls: u64,
    telemetry: Telemetry,
    c_polls: CounterId,
    c_observations: CounterId,
}

impl HighFreqProbe {
    /// A probe on `broadcast` at `pop` with the paper's 0.1 s interval.
    pub fn new(broadcast: BroadcastId, pop: DatacenterId) -> Self {
        Self::with_interval(broadcast, pop, PROBE_INTERVAL)
    }

    /// A probe with a custom interval (interval sweeps).
    pub fn with_interval(broadcast: BroadcastId, pop: DatacenterId, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "probe interval must be positive");
        HighFreqProbe {
            broadcast,
            pop,
            interval,
            observations: Vec::new(),
            seen_through: None,
            polls: 0,
            telemetry: Telemetry::disabled(),
            c_polls: CounterId::INERT,
            c_observations: CounterId::INERT,
        }
    }

    /// Attaches telemetry: poll/observation counters and a `ProbeSample`
    /// trace event per newly observed chunk.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.c_polls = telemetry.counter("crawler.probe_polls");
        self.c_observations = telemetry.counter("crawler.probe_observations");
        self.telemetry = telemetry.clone();
    }

    /// Probe interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Runs the probe from `from` to `to`, issuing a poll every interval
    /// and recording availability times of newly visible chunks.
    pub fn run(&mut self, cluster: &mut Cluster, from: SimTime, to: SimTime) {
        let mut now = from;
        while now <= to {
            self.poll_once(cluster, now);
            now += self.interval;
        }
    }

    /// One probe poll at `now`.
    pub fn poll_once(&mut self, cluster: &mut Cluster, now: SimTime) {
        self.polls += 1;
        self.telemetry.add(self.c_polls, 1);
        let Ok(resp) = cluster.poll_hls(now, self.broadcast, self.pop) else {
            return;
        };
        // Record availability for every chunk the POP now knows about
        // (including in-flight fetches this poll just triggered: their
        // availability timestamp is already determined).
        let origin_ready: Vec<(u64, SimTime)> = {
            let state = cluster
                .control
                .broadcast(self.broadcast)
                .expect("probed broadcast exists");
            let widx = state.wowza_dc.0 as usize;
            cluster.wowza[widx]
                .origin_chunks(self.broadcast)
                .iter()
                .map(|rc| (rc.chunk.seq, rc.ready_at))
                .collect()
        };
        let pop_idx = (self.pop.0 - 8) as usize;
        for (seq, ready) in origin_ready {
            if self.seen_through.is_some_and(|s| seq <= s) {
                continue;
            }
            if let Some(available) = cluster.fastly[pop_idx].availability(self.broadcast, seq) {
                self.observations.push(ChunkObservation {
                    seq,
                    origin_ready: ready,
                    pop_available: available,
                });
                self.telemetry.add(self.c_observations, 1);
                self.telemetry.emit(
                    now.as_micros(),
                    TraceEvent::ProbeSample {
                        broadcast: self.broadcast.0,
                        pop: self.pop.0,
                        seq,
                        origin_ready_us: ready.as_micros(),
                        pop_available_us: available.as_micros(),
                    },
                );
                self.seen_through = Some(seq);
            }
        }
        let _ = resp;
    }

    /// All observations so far.
    pub fn observations(&self) -> &[ChunkObservation] {
        &self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use livescope_cdn::ids::UserId;
    use livescope_net::geo::GeoPoint;
    use livescope_proto::rtmp::VideoFrame;
    use livescope_sim::RngPool;

    fn frame(seq: u64) -> VideoFrame {
        VideoFrame::new(
            seq,
            seq * 40_000,
            seq.is_multiple_of(50),
            Bytes::from(vec![1u8; 1_000]),
        )
    }

    fn setup() -> (Cluster, BroadcastId) {
        let pool = RngPool::new(3);
        let mut cluster = Cluster::new(&pool, SimDuration::from_secs(3), 100);
        let grant =
            cluster.create_broadcast(SimTime::ZERO, UserId(1), &GeoPoint::new(39.04, -77.49));
        cluster
            .connect_publisher(SimTime::ZERO, grant.id, &grant.token)
            .unwrap();
        // 15 s of frames → 4 complete chunks (ready at 3, 6, 9, 12 s).
        for i in 0..375u64 {
            cluster
                .ingest_decoded(SimTime::from_millis(i * 40), grant.id, frame(i))
                .unwrap();
        }
        (cluster, grant.id)
    }

    #[test]
    fn probe_observes_every_chunk_with_tight_w2f() {
        let (mut cluster, id) = setup();
        // Ashburn broadcaster → Wowza dc 0; probe the co-located POP (8).
        let mut probe = HighFreqProbe::new(id, DatacenterId(8));
        probe.run(&mut cluster, SimTime::ZERO, SimTime::from_secs(20));
        let obs = probe.observations();
        assert_eq!(obs.len(), 4, "all four chunks observed");
        for o in obs {
            // Co-located gateway: W2F = probe gap (≤0.1) + short transfer.
            assert!(
                o.w2f_delay_s() < 0.25,
                "co-located W2F too big: {}",
                o.w2f_delay_s()
            );
            assert!(o.w2f_delay_s() > 0.0);
        }
    }

    #[test]
    fn distant_pop_measures_larger_w2f() {
        let (mut cluster, id) = setup();
        let mut near = HighFreqProbe::new(id, DatacenterId(8)); // Ashburn
        let mut far = HighFreqProbe::new(id, DatacenterId(27)); // Tokyo
        near.run(&mut cluster, SimTime::ZERO, SimTime::from_secs(20));
        far.run(&mut cluster, SimTime::ZERO, SimTime::from_secs(20));
        let mean = |obs: &[ChunkObservation]| {
            obs.iter().map(|o| o.w2f_delay_s()).sum::<f64>() / obs.len() as f64
        };
        assert!(
            mean(far.observations()) > mean(near.observations()) + 0.2,
            "far {} vs near {}",
            mean(far.observations()),
            mean(near.observations())
        );
    }

    #[test]
    fn slower_probe_inflates_measured_w2f() {
        // The probe interval adds to the measurement — exactly why the
        // paper polled at 0.1 s.
        let (mut cluster_a, id_a) = setup();
        let (mut cluster_b, id_b) = setup();
        let mut fast = HighFreqProbe::new(id_a, DatacenterId(8));
        let mut slow =
            HighFreqProbe::with_interval(id_b, DatacenterId(8), SimDuration::from_secs(2));
        fast.run(&mut cluster_a, SimTime::ZERO, SimTime::from_secs(20));
        slow.run(&mut cluster_b, SimTime::ZERO, SimTime::from_secs(20));
        let mean = |obs: &[ChunkObservation]| {
            obs.iter().map(|o| o.w2f_delay_s()).sum::<f64>() / obs.len().max(1) as f64
        };
        assert!(mean(slow.observations()) > mean(fast.observations()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        HighFreqProbe::with_interval(BroadcastId(1), DatacenterId(8), SimDuration::ZERO);
    }
}
