//! The data-parallel measurement campaign: K-shard replay with a
//! deterministic fold/merge contract (DESIGN.md §13).
//!
//! [`run_campaign_streaming`](crate::run_campaign_streaming) folds the
//! broadcast stream on one thread. This module partitions the *user
//! space* into K shards — shard of a broadcast = `broadcaster % K` — and
//! runs the expensive half of generate → crawl → fold independently per
//! shard, merging in fixed shard order `0..K` at the end. Output is
//! byte-identical to the single-shard path for every `(seed, divisor,
//! K)`, with or without worker threads, because:
//!
//! 1. the per-record sampler draws from a *per-record* RNG stream
//!    ([`RecordSampler`]), so a record's bytes never depend on which
//!    shard samples it or when;
//! 2. the inherently sequential draws — daily schedule counts, creator
//!    picks ([`ScheduleStream`]) and outage decisions
//!    ([`OutageFilter`], one decision per broadcast in id order) — stay
//!    on the coordinator, exactly as the single-shard path makes them;
//! 3. every shard-local accumulator merges exactly (integer counters,
//!    bitset union, sketch bin addition, `(priority, id)`-ordered
//!    reservoir — see [`crate::streaming`]), and merges happen in fixed
//!    shard order at fixed points (day barriers for the distinct-user
//!    bitsets, end of study for everything else).
//!
//! With the `parallel` feature, each day's shard slates run on scoped
//! worker threads; without it, the same K slates fold sequentially in
//! shard order. Threads never share mutable state — each worker owns its
//! private `ShardFold` — so the detlint shared-mutable-state rule holds
//! by construction.

use std::time::Instant;

use livescope_graph::DiGraph;
use livescope_workload::{
    default_graph_seed, default_graph_spec, DayStats, FixedBitset, RecordSampler, ScenarioConfig,
    ScheduleStream, ScheduledBroadcast, WorkloadSummary,
};

use crate::campaign::{CampaignConfig, OutageFilter};
use crate::streaming::{DatasetSummary, StreamingCampaign};

/// Wall-clock and memory facts from one sharded run, for the
/// `bench_replay --workers` scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct ShardedRunStats {
    /// Worker shard count the campaign ran with.
    pub workers: usize,
    /// Ground-truth broadcasts processed (recorded + missed).
    pub records: u64,
    /// Seconds spent in the final fixed-order accumulator merge.
    pub merge_wall_s: f64,
    /// Seconds spent in day barriers (bitset unions + day stats).
    pub barrier_wall_s: f64,
    /// Peak bytes of tracked replay state across all shards, sampled at
    /// day barriers (sampler tables, schedule, slates, accumulators).
    pub peak_tracked_bytes: usize,
}

/// One shard's private slice of the campaign: a [`StreamingCampaign`]
/// plus the ground-truth tallies and day-scoped distinct-user bitsets
/// for the records this shard owns. Never shared across threads — moved
/// into a worker for a day, merged by the coordinator at barriers.
struct ShardFold {
    acc: StreamingCampaign,
    user_views: Vec<u32>,
    user_creates: Vec<u32>,
    day_viewers: FixedBitset,
    day_broadcasters: FixedBitset,
}

impl ShardFold {
    fn new(campaign: &CampaignConfig, days: u32, users: usize, exemplar_capacity: usize) -> Self {
        ShardFold {
            acc: StreamingCampaign::new(campaign, days, users, exemplar_capacity),
            user_views: vec![0u32; users],
            user_creates: vec![0u32; users],
            day_viewers: FixedBitset::new(users),
            day_broadcasters: FixedBitset::new(users),
        }
    }

    /// Samples one slot and folds it. Missed (outage) broadcasts are
    /// still sampled in full: ground truth — tallies, day stats, the
    /// `missed` count — accounts for them exactly as the single-shard
    /// path does.
    fn fold_slot(
        &mut self,
        sampler: &RecordSampler,
        slot: ScheduledBroadcast,
        followers: u64,
        observed: bool,
    ) {
        self.user_creates[slot.broadcaster as usize] += 1;
        self.day_broadcasters.insert(slot.broadcaster);
        let (user_views, day_viewers) = (&mut self.user_views, &mut self.day_viewers);
        let record = sampler.sample(slot, followers, |viewer| {
            user_views[viewer as usize] += 1;
            day_viewers.insert(viewer);
        });
        if observed {
            self.acc.observe(record);
        } else {
            self.acc.miss();
        }
    }

    fn tracked_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.acc.tracked_bytes()
            + self.user_views.capacity() * std::mem::size_of::<u32>()
            + self.user_creates.capacity() * std::mem::size_of::<u32>()
            + self.day_viewers.tracked_bytes()
            + self.day_broadcasters.tracked_bytes()
    }
}

/// One day's work for one shard: the slots it owns, with the
/// coordinator-decided follower count and outage verdict attached.
type Slate = Vec<(ScheduledBroadcast, u64, bool)>;

/// Runs each shard's slate. With the `parallel` feature and more than
/// one shard, slates run on scoped worker threads; otherwise they run
/// sequentially in shard order. Both orders produce identical shard
/// states — shards are mutually independent within a day.
#[cfg(feature = "parallel")]
fn run_day(sampler: &RecordSampler, shards: &mut [ShardFold], slates: &[Slate]) {
    if shards.len() == 1 {
        run_day_sequential(sampler, shards, slates);
        return;
    }
    crossbeam::thread::scope(|scope| {
        for (shard, slate) in shards.iter_mut().zip(slates) {
            scope.spawn(move |_| {
                for &(slot, followers, observed) in slate {
                    shard.fold_slot(sampler, slot, followers, observed);
                }
            });
        }
    })
    .expect("sharded replay worker scope");
}

#[cfg(not(feature = "parallel"))]
fn run_day(sampler: &RecordSampler, shards: &mut [ShardFold], slates: &[Slate]) {
    run_day_sequential(sampler, shards, slates);
}

fn run_day_sequential(sampler: &RecordSampler, shards: &mut [ShardFold], slates: &[Slate]) {
    for (shard, slate) in shards.iter_mut().zip(slates) {
        for &(slot, followers, observed) in slate {
            shard.fold_slot(sampler, slot, followers, observed);
        }
    }
}

/// Runs the measurement campaign over `workers` user-space shards,
/// building the scenario's default follow graph internally. See
/// [`run_campaign_sharded_with_graph`].
pub fn run_campaign_sharded(
    scenario: &ScenarioConfig,
    campaign: &CampaignConfig,
    workers: usize,
    exemplar_capacity: usize,
) -> DatasetSummary {
    let graph = DiGraph::generate(&default_graph_spec(scenario), default_graph_seed(scenario));
    run_campaign_sharded_with_graph(scenario, &graph, campaign, workers, exemplar_capacity).0
}

/// Runs the measurement campaign over `workers` user-space shards
/// against a caller-supplied follow graph (which must have been built
/// with [`default_graph_seed`] for output to match the owned-graph
/// path).
///
/// Day loop: the coordinator drains the day's [`ScheduleStream`] slots,
/// attaches follower counts and sequential [`OutageFilter`] verdicts,
/// and partitions them by `broadcaster % workers`; shards sample and
/// fold their slates (threaded under the `parallel` feature); at the
/// day barrier the coordinator unions the shard bitsets in shard order
/// into that day's [`DayStats`]. After the last day, shard accumulators
/// merge in shard order `0..workers`.
///
/// Output is byte-identical to
/// [`run_campaign_streaming`](crate::run_campaign_streaming) for every
/// worker count (the module docs say why; `tests/` and the CI K-sweep
/// smoke pin it).
pub fn run_campaign_sharded_with_graph(
    scenario: &ScenarioConfig,
    graph: &DiGraph,
    campaign: &CampaignConfig,
    workers: usize,
    exemplar_capacity: usize,
) -> (DatasetSummary, ShardedRunStats) {
    let workers = workers.max(1);
    assert_eq!(
        graph.node_count(),
        scenario.users,
        "supplied graph must cover the user population"
    );
    let schedule = ScheduleStream::new(scenario);
    let schedule_tracked = schedule.tracked_bytes();
    let mut schedule = schedule.peekable();
    let sampler = RecordSampler::new(scenario);
    let mut filter = OutageFilter::new(campaign);
    let mut shards: Vec<ShardFold> = (0..workers)
        .map(|_| ShardFold::new(campaign, scenario.days, scenario.users, exemplar_capacity))
        .collect();
    let mut slates: Vec<Slate> = vec![Vec::new(); workers];
    let mut daily: Vec<DayStats> = Vec::with_capacity(scenario.days as usize);
    let mut scratch_viewers = FixedBitset::new(scenario.users);
    let mut scratch_broadcasters = FixedBitset::new(scenario.users);
    let mut records = 0u64;
    let mut barrier_wall_s = 0.0f64;
    let mut peak_tracked_bytes = 0usize;

    for day in 0..scenario.days {
        for slate in &mut slates {
            slate.clear();
        }
        let mut day_broadcasts = 0u64;
        while let Some(slot) = schedule.next_if(|s| s.day == day) {
            // Follower lookups and outage verdicts happen here, in id
            // order — the exact draw order the single-shard path uses.
            let followers = graph.in_degree(slot.broadcaster) as u64;
            let observed = filter.observes(slot.day);
            slates[slot.broadcaster as usize % workers].push((slot, followers, observed));
            day_broadcasts += 1;
        }
        records += day_broadcasts;

        run_day(&sampler, &mut shards, &slates);

        // Day barrier: union the shard-local distinct-user bitsets in
        // fixed shard order 0..K (union is commutative — the fixed order
        // is hygiene, not load-bearing) and close the day.
        let t0 = Instant::now();
        scratch_viewers.clear();
        scratch_broadcasters.clear();
        for shard in &mut shards {
            scratch_viewers.union_with(&shard.day_viewers);
            scratch_broadcasters.union_with(&shard.day_broadcasters);
            shard.day_viewers.clear();
            shard.day_broadcasters.clear();
        }
        daily.push(DayStats {
            day,
            broadcasts: day_broadcasts,
            active_viewers: scratch_viewers.len() as u64,
            active_broadcasters: scratch_broadcasters.len() as u64,
        });
        barrier_wall_s += t0.elapsed().as_secs_f64();

        let tracked = schedule_tracked
            + sampler.tracked_bytes()
            + shards.iter().map(ShardFold::tracked_bytes).sum::<usize>()
            + slates
                .iter()
                .map(|s| s.capacity() * std::mem::size_of::<(ScheduledBroadcast, u64, bool)>())
                .sum::<usize>()
            + scratch_viewers.tracked_bytes()
            + scratch_broadcasters.tracked_bytes();
        peak_tracked_bytes = peak_tracked_bytes.max(tracked);
    }

    // Final merge, fixed shard order 0..K. Order *is* load-bearing here:
    // the exemplar reservoir merge is order-stable only under the
    // (priority, id) total order, and fixing the order makes the whole
    // pipeline's bytes independent of worker scheduling by construction.
    let t0 = Instant::now();
    let mut iter = shards.into_iter();
    let mut first = iter.next().expect("at least one shard");
    for shard in iter {
        first.acc.merge(&shard.acc);
        for (mine, theirs) in first.user_views.iter_mut().zip(&shard.user_views) {
            *mine += theirs;
        }
        for (mine, theirs) in first.user_creates.iter_mut().zip(&shard.user_creates) {
            *mine += theirs;
        }
    }
    let merge_wall_s = t0.elapsed().as_secs_f64();

    let summary = first.acc.finish(WorkloadSummary {
        config: scenario.clone(),
        daily,
        user_views: first.user_views,
        user_creates: first.user_creates,
    });
    let stats = ShardedRunStats {
        workers,
        records,
        merge_wall_s,
        barrier_wall_s,
        peak_tracked_bytes,
    };
    (summary, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::{run_campaign_streaming, DEFAULT_EXEMPLARS};
    use livescope_workload::generate_streaming;

    fn small_config() -> ScenarioConfig {
        ScenarioConfig {
            days: 12,
            users: 1_200,
            base_daily_broadcasts: 55.0,
            ..ScenarioConfig::periscope_study()
        }
    }

    fn outage_campaign() -> CampaignConfig {
        CampaignConfig {
            outage_days: Some((4, 6)),
            outage_loss: 0.5,
            ..CampaignConfig::periscope_study()
        }
    }

    fn assert_summaries_identical(a: &DatasetSummary, b: &DatasetSummary, label: &str) {
        assert_eq!(a.broadcasts(), b.broadcasts(), "{label}: broadcasts");
        assert_eq!(a.missed, b.missed, "{label}: missed");
        assert_eq!(a.broadcasters(), b.broadcasters(), "{label}: broadcasters");
        assert_eq!(a.total_views(), b.total_views(), "{label}: views");
        assert_eq!(a.mobile_views(), b.mobile_views(), "{label}: mobile");
        assert_eq!(a.hearts_total, b.hearts_total, "{label}: hearts");
        assert_eq!(a.comments_total, b.comments_total, "{label}: comments");
        assert_eq!(
            a.zero_viewer_broadcasts, b.zero_viewer_broadcasts,
            "{label}: zero-viewer"
        );
        assert_eq!(a.hls_broadcasts, b.hls_broadcasts, "{label}: hls");
        assert_eq!(a.recorded_per_day, b.recorded_per_day, "{label}: per-day");
        assert_eq!(a.user_views, b.user_views, "{label}: user views");
        assert_eq!(a.user_creates, b.user_creates, "{label}: user creates");
        assert_eq!(a.daily.len(), b.daily.len(), "{label}: daily len");
        for (x, y) in a.daily.iter().zip(&b.daily) {
            assert_eq!(x.broadcasts, y.broadcasts, "{label}: day {}", x.day);
            assert_eq!(x.active_viewers, y.active_viewers, "{label}: day {}", x.day);
            assert_eq!(
                x.active_broadcasters, y.active_broadcasters,
                "{label}: day {}",
                x.day
            );
        }
        assert_eq!(
            a.duration_secs.series(150),
            b.duration_secs.series(150),
            "{label}: duration sketch"
        );
        assert_eq!(
            a.viewers.series(150),
            b.viewers.series(150),
            "{label}: viewers sketch"
        );
        assert_eq!(
            a.hearts.series(120),
            b.hearts.series(120),
            "{label}: hearts sketch"
        );
        assert_eq!(
            a.comments.series(120),
            b.comments.series(120),
            "{label}: comments sketch"
        );
        let ah: Vec<(u64, u64)> = a
            .exemplars
            .iter()
            .map(|m| (m.broadcast_hash, m.record.id))
            .collect();
        let bh: Vec<(u64, u64)> = b
            .exemplars
            .iter()
            .map(|m| (m.broadcast_hash, m.record.id))
            .collect();
        assert_eq!(ah, bh, "{label}: exemplar reservoir");
    }

    #[test]
    fn sharded_matches_streaming_for_every_k() {
        let scenario = small_config();
        let campaign = outage_campaign();
        let reference =
            run_campaign_streaming(generate_streaming(&scenario), &campaign, DEFAULT_EXEMPLARS);
        for k in [1, 2, 3, 5, 8] {
            let sharded = run_campaign_sharded(&scenario, &campaign, k, DEFAULT_EXEMPLARS);
            assert_summaries_identical(&sharded, &reference, &format!("K={k}"));
        }
    }

    #[test]
    fn sharded_matches_streaming_without_outage() {
        let scenario = ScenarioConfig {
            days: 8,
            users: 700,
            base_daily_broadcasts: 40.0,
            ..ScenarioConfig::meerkat_study()
        };
        let campaign = CampaignConfig::meerkat_study();
        let reference =
            run_campaign_streaming(generate_streaming(&scenario), &campaign, DEFAULT_EXEMPLARS);
        for k in [2, 6] {
            let sharded = run_campaign_sharded(&scenario, &campaign, k, DEFAULT_EXEMPLARS);
            assert_summaries_identical(&sharded, &reference, &format!("meerkat K={k}"));
        }
    }

    #[test]
    fn sharded_run_is_deterministic_across_repeats() {
        let scenario = small_config();
        let campaign = outage_campaign();
        let a = run_campaign_sharded(&scenario, &campaign, 4, DEFAULT_EXEMPLARS);
        let b = run_campaign_sharded(&scenario, &campaign, 4, DEFAULT_EXEMPLARS);
        assert_summaries_identical(&a, &b, "repeat");
    }

    #[test]
    fn stats_account_every_record() {
        let scenario = small_config();
        let campaign = outage_campaign();
        let graph = DiGraph::generate(
            &default_graph_spec(&scenario),
            default_graph_seed(&scenario),
        );
        let (summary, stats) =
            run_campaign_sharded_with_graph(&scenario, &graph, &campaign, 3, DEFAULT_EXEMPLARS);
        assert_eq!(stats.records, summary.broadcasts() + summary.missed);
        assert_eq!(stats.workers, 3);
        assert!(stats.peak_tracked_bytes > 0);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let scenario = ScenarioConfig {
            days: 4,
            users: 300,
            base_daily_broadcasts: 20.0,
            ..ScenarioConfig::periscope_study()
        };
        let campaign = CampaignConfig::meerkat_study();
        let reference =
            run_campaign_streaming(generate_streaming(&scenario), &campaign, DEFAULT_EXEMPLARS);
        let sharded = run_campaign_sharded(&scenario, &campaign, 0, DEFAULT_EXEMPLARS);
        assert_summaries_identical(&sharded, &reference, "K=0→1");
    }
}
