//! # livescope-crawler — the IMC'16 measurement apparatus
//!
//! The paper's datasets came from purpose-built crawlers (§3.1):
//! multiple accounts polling the 50-random global list every 5 s each
//! (staggered to one refresh per 0.25 s), a join-thread per discovered
//! broadcast recording metadata until it ends, and — for the delay study —
//! an HLS poller hammering Fastly every 0.1 s to timestamp chunk arrivals.
//! This crate rebuilds that apparatus against the simulated service:
//!
//! * [`coverage`] — the global-list crawler as a discrete-event
//!   simulation; reproduces the §3.1 calibration ("a refresh per 0.5 s
//!   already captures all broadcasts") and quantifies discovery latency
//!   vs. refresh rate;
//! * [`campaign`] — turns a generated workload into the *measured*
//!   dataset, applying crawler realities: the Aug 7–9 outage (≈4.5% of
//!   that period's broadcasts lost) and anonymization;
//! * [`streaming`] — the bounded-memory campaign: folds a
//!   [`livescope_workload::BroadcastStream`] into mergeable aggregates
//!   (`O(users + days + bins)`) instead of materializing records, the
//!   path the longitudinal replay uses at low scale divisors;
//! * [`sharded`] — the data-parallel campaign: the user space split into
//!   K deterministic shards folding independently (worker threads under
//!   the `parallel` feature) and merging in fixed shard order,
//!   byte-identical to [`streaming`] for every K (DESIGN.md §13);
//! * [`probe`] — the high-frequency HLS poller that measures
//!   Wowza→Fastly chunk-transfer delay (the `⑪−⑦` of Fig 10(b)).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod campaign;
pub mod coverage;
pub mod probe;
pub mod sharded;
pub mod streaming;

pub use campaign::{CampaignConfig, Dataset, OutageFilter};
pub use coverage::{CoverageConfig, CoverageReport};
pub use probe::HighFreqProbe;
pub use sharded::{run_campaign_sharded, run_campaign_sharded_with_graph, ShardedRunStats};
pub use streaming::{run_campaign_streaming, DatasetSummary, StreamingCampaign};
