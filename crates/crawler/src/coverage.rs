//! The global-list crawler as a discrete-event simulation.
//!
//! The control server shows 50 *random* live broadcasts per query, so one
//! slow poller misses short broadcasts. The paper ran enough accounts for
//! an effective refresh every 0.25 s and verified that 0.5 s already
//! captures everything. This module reproduces that calibration: spawn
//! broadcasts with realistic lifetimes, run `accounts` staggered pollers,
//! and report discovery coverage and latency.

use std::collections::{BTreeMap, HashMap};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use livescope_cdn::control::ControlServer;
use livescope_cdn::ids::{BroadcastId, UserId};
use livescope_net::geo::GeoPoint;
use livescope_sim::process::{Tick, Ticker};
use livescope_sim::{dist, RngPool, Scheduler, SimDuration, SimTime};
use livescope_telemetry::{CounterId, Telemetry, TraceEvent};

/// Crawler-calibration scenario.
#[derive(Clone, Copy, Debug)]
pub struct CoverageConfig {
    /// Crawler accounts; each refreshes every [`CoverageConfig::account_refresh`].
    pub accounts: usize,
    /// Per-account refresh period (the app's native 5 s).
    pub account_refresh: SimDuration,
    /// Broadcast arrival rate, broadcasts per second.
    pub arrivals_per_sec: f64,
    /// Mean broadcast duration, seconds (lognormal-ish mix like Fig 3).
    pub duration_median_s: f64,
    /// Lognormal sigma of broadcast duration.
    pub duration_sigma: f64,
    /// Simulated span.
    pub horizon: SimDuration,
    /// Seed for the crawl simulation's RNG pool.
    pub seed: u64,
}

impl CoverageConfig {
    /// The paper's production configuration: 20 accounts × 5 s ⇒ one
    /// refresh per 0.25 s.
    pub fn paper_production() -> Self {
        CoverageConfig {
            accounts: 20,
            account_refresh: SimDuration::from_secs(5),
            arrivals_per_sec: 2.0,
            duration_median_s: 150.0,
            duration_sigma: 1.1,
            horizon: SimDuration::from_secs(1_800),
            seed: 0xC0DE,
        }
    }

    /// Effective refresh interval across all accounts.
    pub fn effective_refresh(&self) -> SimDuration {
        self.account_refresh / self.accounts.max(1) as u64
    }
}

/// What the calibration run measured.
#[derive(Clone, Copy, Debug)]
pub struct CoverageReport {
    /// Broadcasts that went live inside the horizon.
    pub started: u64,
    /// Of those, how many the crawler saw before they ended.
    pub discovered: u64,
    /// Fraction discovered.
    pub coverage: f64,
    /// Mean start→discovery latency over discovered broadcasts, seconds.
    pub mean_discovery_latency_s: f64,
    /// Global-list queries issued.
    pub queries: u64,
}

struct World {
    control: ControlServer,
    tokens: HashMap<BroadcastId, String>,
    started: u64,
    discovery: BTreeMap<BroadcastId, SimDuration>,
    start_times: HashMap<BroadcastId, SimTime>,
    queries: u64,
    rng: SmallRng,
    arrivals_per_sec: f64,
    duration_median_s: f64,
    duration_sigma: f64,
    next_user: u64,
    telemetry: Telemetry,
    c_queries: CounterId,
    c_discovered: CounterId,
}

/// Runs the calibration simulation with telemetry disabled.
pub fn run_coverage(config: &CoverageConfig) -> CoverageReport {
    run_coverage_traced(config, &Telemetry::disabled())
}

/// Runs the calibration simulation, emitting query/discovery counters and
/// a `BroadcastDiscovered` trace event the first time any account sees a
/// broadcast.
pub fn run_coverage_traced(config: &CoverageConfig, telemetry: &Telemetry) -> CoverageReport {
    assert!(config.accounts > 0, "need at least one crawler account");
    let pool = RngPool::new(config.seed);
    let mut sched: Scheduler<World> = Scheduler::new();
    sched.set_telemetry(telemetry);
    let mut world = World {
        control: {
            let mut control =
                ControlServer::new(SmallRng::seed_from_u64(pool.stream_seed("control")), 100);
            control.attach_telemetry(telemetry);
            control
        },
        tokens: HashMap::new(),
        started: 0,
        discovery: BTreeMap::new(),
        start_times: HashMap::new(),
        queries: 0,
        rng: SmallRng::seed_from_u64(pool.stream_seed("arrivals")),
        arrivals_per_sec: config.arrivals_per_sec,
        duration_median_s: config.duration_median_s,
        duration_sigma: config.duration_sigma,
        next_user: 1,
        telemetry: telemetry.clone(),
        c_queries: telemetry.counter("crawler.global_list_queries"),
        c_discovered: telemetry.counter("crawler.broadcasts_discovered"),
    };
    let horizon = SimTime::ZERO + config.horizon;

    // Broadcast arrival process: exponential inter-arrivals; each
    // broadcast schedules its own end.
    fn schedule_next_arrival(sched: &mut Scheduler<World>, horizon: SimTime) {
        sched.schedule_in(SimDuration::ZERO, move |sched, world: &mut World| {
            arrive(sched, world, horizon);
        });
    }
    fn arrive(sched: &mut Scheduler<World>, world: &mut World, horizon: SimTime) {
        let now = sched.now();
        if now >= horizon {
            return;
        }
        if now > SimTime::ZERO {
            let user = UserId(world.next_user);
            world.next_user += 1;
            let grant = world
                .control
                .create_broadcast(now, user, &GeoPoint::new(37.77, -122.42));
            world.tokens.insert(grant.id, grant.token.clone());
            world.started += 1;
            world.start_times.insert(grant.id, now);
            let duration = SimDuration::from_secs_f64(
                dist::log_normal(
                    &mut world.rng,
                    world.duration_median_s.ln(),
                    world.duration_sigma,
                )
                .clamp(5.0, 3_600.0),
            );
            let id = grant.id;
            sched.schedule_in(duration, move |sched, world: &mut World| {
                let token = world.tokens[&id].clone();
                world
                    .control
                    .end_broadcast(sched.now(), id, &token)
                    .expect("broadcast ends once");
            });
        }
        let gap = SimDuration::from_secs_f64(dist::exponential(
            &mut world.rng,
            1.0 / world.arrivals_per_sec,
        ));
        sched.schedule_in(gap, move |sched, world: &mut World| {
            arrive(sched, world, horizon);
        });
    }
    schedule_next_arrival(&mut sched, horizon);

    // Crawler accounts, staggered across the refresh period.
    for account in 0..config.accounts {
        let offset = config
            .account_refresh
            .mul_f64(account as f64 / config.accounts as f64);
        Ticker::spawn(
            &mut sched,
            SimTime::ZERO + offset,
            config.account_refresh,
            move |sched, world: &mut World| {
                let now = sched.now();
                world.queries += 1;
                world.telemetry.add(world.c_queries, 1);
                for summary in world.control.global_list() {
                    let id = BroadcastId(summary.broadcast_id);
                    let start = world.start_times[&id];
                    if let std::collections::btree_map::Entry::Vacant(slot) =
                        world.discovery.entry(id)
                    {
                        slot.insert(now.saturating_since(start));
                        world.telemetry.add(world.c_discovered, 1);
                        world.telemetry.emit(
                            now.as_micros(),
                            TraceEvent::BroadcastDiscovered {
                                broadcast: id.0,
                                started_us: start.as_micros(),
                            },
                        );
                    }
                }
                Tick::Again
            },
        );
    }

    sched.run_until(horizon, &mut world);

    let discovered = world.discovery.len() as u64;
    let mean_latency = if discovered > 0 {
        world
            .discovery
            .values()
            .map(|d| d.as_secs_f64())
            .sum::<f64>()
            / discovered as f64
    } else {
        0.0
    };
    CoverageReport {
        started: world.started,
        discovered,
        coverage: if world.started > 0 {
            discovered as f64 / world.started as f64
        } else {
            0.0
        },
        mean_discovery_latency_s: mean_latency,
        queries: world.queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(accounts: usize, refresh_s: f64) -> CoverageReport {
        run_coverage(&CoverageConfig {
            accounts,
            account_refresh: SimDuration::from_secs_f64(refresh_s),
            arrivals_per_sec: 1.0,
            duration_median_s: 90.0,
            duration_sigma: 1.0,
            horizon: SimDuration::from_secs(600),
            seed: 7,
        })
    }

    #[test]
    fn production_rate_captures_everything() {
        // 20 accounts × 5 s ⇒ 0.25 s effective: full coverage (§3.1).
        let report = quick(20, 5.0);
        assert!(report.started > 300, "arrival process too quiet");
        assert!(
            report.coverage > 0.99,
            "coverage {} at 0.25s effective refresh",
            report.coverage
        );
    }

    #[test]
    fn half_second_refresh_is_still_exhaustive() {
        // The paper's calibration claim: 0.5 s already captures the same
        // set as 0.25 s.
        let report = quick(10, 5.0);
        assert!(
            report.coverage > 0.99,
            "coverage {} at 0.5s effective refresh",
            report.coverage
        );
    }

    #[test]
    fn single_slow_account_misses_broadcasts() {
        // One account at 60 s refresh: 50-sample queries can't keep up
        // with short-lived broadcasts.
        let report = quick(1, 60.0);
        assert!(
            report.coverage < 0.95,
            "a slow crawler should miss some ({})",
            report.coverage
        );
    }

    #[test]
    fn more_accounts_means_faster_discovery() {
        let slow = quick(2, 5.0);
        let fast = quick(20, 5.0);
        assert!(
            fast.mean_discovery_latency_s < slow.mean_discovery_latency_s,
            "fast {} vs slow {}",
            fast.mean_discovery_latency_s,
            slow.mean_discovery_latency_s
        );
    }

    #[test]
    fn query_volume_matches_accounts_times_rate() {
        let report = quick(4, 10.0);
        // 600 s / 10 s × 4 accounts = 240 queries (±1 per account for
        // boundary effects).
        assert!(
            (236..=244).contains(&report.queries),
            "queries {}",
            report.queries
        );
    }

    #[test]
    fn effective_refresh_math() {
        let c = CoverageConfig::paper_production();
        assert_eq!(c.effective_refresh(), SimDuration::from_millis(250));
    }

    #[test]
    fn traced_coverage_emits_one_discovery_event_per_broadcast() {
        let telemetry = Telemetry::recording(1 << 16);
        let report = run_coverage_traced(
            &CoverageConfig {
                accounts: 4,
                account_refresh: SimDuration::from_secs(5),
                arrivals_per_sec: 0.5,
                duration_median_s: 90.0,
                duration_sigma: 1.0,
                horizon: SimDuration::from_secs(300),
                seed: 9,
            },
            &telemetry,
        );
        let discoveries = telemetry
            .events()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::BroadcastDiscovered { .. }))
            .count() as u64;
        assert_eq!(discoveries, report.discovered);
        let snapshot = telemetry.snapshot();
        assert_eq!(
            snapshot.counter("crawler.global_list_queries"),
            Some(report.queries)
        );
        assert_eq!(
            snapshot.counter("crawler.broadcasts_discovered"),
            Some(report.discovered)
        );
        // The traced run must not change the simulation itself.
        let plain = run_coverage(&CoverageConfig {
            accounts: 4,
            account_refresh: SimDuration::from_secs(5),
            arrivals_per_sec: 0.5,
            duration_median_s: 90.0,
            duration_sigma: 1.0,
            horizon: SimDuration::from_secs(300),
            seed: 9,
        });
        assert_eq!(plain.discovered, report.discovered);
        assert_eq!(plain.queries, report.queries);
    }
}
