//! The measurement campaign: what the crawler *recorded* of a workload.
//!
//! The generated workload is ground truth; the dataset the paper analyzed
//! is the crawler's view of it — which missed broadcasts during the
//! Aug 7–9 communication outage ("roughly 4.5% of the broadcasts during
//! this period") and stored only anonymized identifiers.
//!
//! Two things defined here carry the data-parallel replay's merge
//! contract (DESIGN.md §13). [`OutageFilter`] is stateful — its loss
//! coin flips consume a sequential RNG — so the sharded runner draws
//! every verdict *once*, on the coordinator, in record-id order, and
//! ships the boolean with the record; shards never touch the filter.
//! [`MeasuredBroadcast`] identifiers come from stateless salted hashes
//! of the record ids, so anonymization is shard-invariant by
//! construction.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use livescope_sim::rng::splitmix64;
use livescope_workload::{BroadcastRecord, DayStats, Workload};

/// Campaign knobs layered on a workload.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Outage window as day indexes `[from, to]`, inclusive, if any
    /// (Periscope study: days 84–86 ≙ Aug 7–9).
    pub outage_days: Option<(u32, u32)>,
    /// Fraction of the outage window's broadcasts lost.
    pub outage_loss: f64,
    /// Salt for identifier anonymization.
    pub anonymization_salt: u64,
    /// Seed for the outage-loss coin flips.
    pub seed: u64,
}

impl CampaignConfig {
    /// The Periscope study's crawler reality.
    pub fn periscope_study() -> Self {
        CampaignConfig {
            outage_days: Some((84, 86)),
            // Lost "roughly 4.5%" of that period's broadcasts: the crawler
            // was down for part of the window, not all of it.
            outage_loss: 0.045,
            anonymization_salt: 0x5EED,
            seed: 0xCAFE,
        }
    }

    /// Meerkat: no outage (the study ended early instead, at Meerkat's
    /// request).
    pub fn meerkat_study() -> Self {
        CampaignConfig {
            outage_days: None,
            outage_loss: 0.0,
            anonymization_salt: 0x5EED,
            seed: 0xCAFE,
        }
    }
}

/// The crawler's observation filter: decides, per broadcast in stream
/// order, whether the crawler recorded it or lost it to the outage.
///
/// Both [`run_campaign`] and the streaming fold
/// ([`crate::streaming::run_campaign_streaming`]) drive this exact type,
/// so their RNG consumption — one draw per in-outage broadcast, none
/// outside the window — is identical by construction and the two paths
/// observe the *same* subset of broadcasts for a given seed.
#[derive(Clone, Debug)]
pub struct OutageFilter {
    rng: SmallRng,
    outage_days: Option<(u32, u32)>,
    outage_loss: f64,
}

impl OutageFilter {
    /// Sets up the filter for a campaign.
    pub fn new(config: &CampaignConfig) -> Self {
        OutageFilter {
            rng: SmallRng::seed_from_u64(config.seed),
            outage_days: config.outage_days,
            outage_loss: config.outage_loss,
        }
    }

    /// True when the crawler records a broadcast on `day`. Must be called
    /// once per broadcast in stream order — it advances the loss RNG for
    /// in-outage days.
    pub fn observes(&mut self, day: u32) -> bool {
        let in_outage = self
            .outage_days
            .is_some_and(|(from, to)| day >= from && day <= to);
        !(in_outage && self.rng.gen_bool(self.outage_loss))
    }
}

/// One anonymized broadcast record in the measured dataset.
#[derive(Clone, Debug)]
pub struct MeasuredBroadcast {
    /// Anonymized broadcast id.
    pub broadcast_hash: u64,
    /// Anonymized broadcaster id.
    pub broadcaster_hash: u64,
    /// The underlying broadcast record as crawled.
    pub record: BroadcastRecord,
}

/// The crawler's dataset: what Table 1 and Figs 1–7 are computed from.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Every broadcast the crawler recorded, in id order.
    pub records: Vec<MeasuredBroadcast>,
    /// Ground-truth per-day aggregates, carried from the generator.
    pub daily: Vec<DayStats>,
    /// Ground-truth broadcasts that the crawler missed.
    pub missed: u64,
    /// Views/creates per user, carried over (ids already opaque indexes).
    pub user_views: Vec<u32>,
    /// Broadcasts created per user.
    pub user_creates: Vec<u32>,
}

/// Runs the campaign: observe `workload` through the crawler's
/// limitations.
pub fn run_campaign(workload: &Workload, config: &CampaignConfig) -> Dataset {
    let mut filter = OutageFilter::new(config);
    let mut records = Vec::with_capacity(workload.broadcasts.len());
    let mut missed = 0u64;
    for b in &workload.broadcasts {
        if !filter.observes(b.day) {
            missed += 1;
            continue;
        }
        records.push(MeasuredBroadcast {
            broadcast_hash: anonymize(b.id, config.anonymization_salt),
            broadcaster_hash: anonymize(b.broadcaster as u64, config.anonymization_salt ^ 0xB),
            record: b.clone(),
        });
    }
    Dataset {
        records,
        daily: workload.daily.clone(),
        missed,
        user_views: workload.user_views.clone(),
        user_creates: workload.user_creates.clone(),
    }
}

/// Keyed one-way identifier hash. Not reversible without the salt; stable
/// within a campaign so longitudinal analyses still link records.
pub fn anonymize(id: u64, salt: u64) -> u64 {
    splitmix64(splitmix64(id ^ salt).wrapping_add(salt.rotate_left(23)))
}

impl Dataset {
    /// Table 1: recorded broadcast count.
    pub fn broadcasts(&self) -> u64 {
        self.records.len() as u64
    }

    /// Table 1: distinct broadcasters in the recorded data.
    pub fn broadcasters(&self) -> u64 {
        let mut ids: Vec<u64> = self.records.iter().map(|r| r.broadcaster_hash).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len() as u64
    }

    /// Table 1: total views across recorded broadcasts.
    pub fn total_views(&self) -> u64 {
        self.records.iter().map(|r| r.record.viewers).sum()
    }

    /// Table 1: mobile (registered) views.
    pub fn mobile_views(&self) -> u64 {
        self.records.iter().map(|r| r.record.mobile_viewers).sum()
    }

    /// Table 1: distinct registered viewers (from per-user tallies).
    pub fn unique_viewers(&self) -> u64 {
        self.user_views.iter().filter(|&&v| v > 0).count() as u64
    }

    /// Fraction of ground truth lost to the outage.
    pub fn loss_fraction(&self, ground_truth: u64) -> f64 {
        if ground_truth == 0 {
            0.0
        } else {
            self.missed as f64 / ground_truth as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livescope_workload::{generate, ScenarioConfig};

    fn small_workload() -> Workload {
        generate(&ScenarioConfig {
            days: 10,
            users: 1_000,
            base_daily_broadcasts: 50.0,
            ..ScenarioConfig::periscope_study()
        })
    }

    #[test]
    fn no_outage_records_everything() {
        let w = small_workload();
        let d = run_campaign(&w, &CampaignConfig::meerkat_study());
        assert_eq!(d.broadcasts(), w.total_broadcasts());
        assert_eq!(d.missed, 0);
        assert_eq!(d.total_views(), w.total_views());
        assert_eq!(d.unique_viewers(), w.unique_viewers());
    }

    #[test]
    fn outage_drops_roughly_the_configured_fraction() {
        let w = small_workload();
        let config = CampaignConfig {
            outage_days: Some((3, 5)),
            outage_loss: 0.5,
            ..CampaignConfig::periscope_study()
        };
        let d = run_campaign(&w, &config);
        let in_window: u64 = w
            .broadcasts
            .iter()
            .filter(|b| (3..=5).contains(&b.day))
            .count() as u64;
        assert!(in_window > 50, "window too small to test");
        let lost = d.missed as f64 / in_window as f64;
        assert!((lost - 0.5).abs() < 0.1, "window loss fraction {lost}");
        // Nothing outside the window is lost.
        assert_eq!(d.broadcasts() + d.missed, w.total_broadcasts());
    }

    #[test]
    fn anonymization_is_stable_salted_and_collision_light() {
        let a1 = anonymize(42, 1);
        let a2 = anonymize(42, 1);
        let b = anonymize(42, 2);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        // No collisions over a realistic id range.
        let mut hashes: Vec<u64> = (0..100_000u64).map(|i| anonymize(i, 7)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 100_000);
    }

    #[test]
    fn raw_ids_do_not_appear_in_measured_records() {
        let w = small_workload();
        let d = run_campaign(&w, &CampaignConfig::periscope_study());
        // The hash must not equal the raw id for any realistic record (a
        // fixed point would mean an identifier leaked through).
        for r in d.records.iter().take(1_000) {
            assert_ne!(r.broadcast_hash, r.record.id);
            assert_ne!(r.broadcaster_hash, r.record.broadcaster as u64);
        }
    }

    #[test]
    fn distinct_broadcasters_match_ground_truth_without_outage() {
        let w = small_workload();
        let d = run_campaign(&w, &CampaignConfig::meerkat_study());
        assert_eq!(d.broadcasters(), w.unique_broadcasters());
    }
}
