//! The streaming measurement campaign: bounded-memory replay of the
//! crawl (DESIGN.md §10).
//!
//! [`run_campaign`](crate::campaign::run_campaign) materializes every
//! [`MeasuredBroadcast`]; at the paper's scale (19.6M broadcasts) that is
//! the memory wall the longitudinal replay hits first. This module folds
//! the broadcast stream into a [`StreamingCampaign`] accumulator instead:
//! daily recorded counts, scalar totals, a distinct-broadcaster bitset,
//! four quantile sketches (the Figs 3–5 distributions), and a bounded
//! min-hash reservoir of exemplar records for spot checks. Everything is
//! `O(users + days + bins + exemplars)` — independent of broadcast count.
//!
//! # Merge semantics
//!
//! The accumulator is *mergeable*: outage decisions come from the
//! sequential [`OutageFilter`], but once decided, observations can be
//! folded into separate accumulators and [`StreamingCampaign::merge`]d
//! without changing any aggregate byte — the contract the sharded replay
//! ([`crate::sharded`], DESIGN.md §13) is built on. Every piece of
//! accumulator state is one of three merge-exact shapes:
//!
//! * **integer counters** (totals, per-day counts) — merge is `+`,
//!   associative and commutative over `u64`;
//! * **bitsets and log-binned sketches** — merge is set union /
//!   elementwise bin addition, again integer-exact (the sketches' f64
//!   `sum` is the one order-sensitive field, and nothing rendered reads
//!   it — see `QuantileSketch::mean`);
//! * **the exemplar reservoir** — a bounded "k smallest" selection under
//!   the *total* order `(priority, record.id)`. The id tiebreak matters:
//!   with priority alone, equal-priority records could surface in
//!   shard-count-dependent order. Under a total order, the k smallest of
//!   a union are exactly the k smallest of the merged k-smallest parts.
//!
//! Nothing here locks or shares: shards fold into private accumulators
//! and merge at a barrier, in fixed shard order.

use livescope_analysis::QuantileSketch;
use livescope_workload::{
    BroadcastRecord, BroadcastStream, DayStats, FixedBitset, WorkloadSummary,
};

use crate::campaign::{anonymize, CampaignConfig, Dataset, MeasuredBroadcast, OutageFilter};

/// Default bound on the exemplar reservoir.
pub const DEFAULT_EXEMPLARS: usize = 64;

/// Mergeable accumulator for a measurement campaign over a broadcast
/// stream. Build with [`StreamingCampaign::new`], feed every crawler
/// decision through [`observe`](Self::observe) / [`miss`](Self::miss),
/// then close with [`finish`](Self::finish).
#[derive(Clone, Debug)]
pub struct StreamingCampaign {
    salt: u64,
    days: u32,
    /// Broadcasts the crawler recorded, per study day (Fig 1). Records
    /// with out-of-range days are counted in totals but not plotted.
    recorded_per_day: Vec<u64>,
    recorded: u64,
    missed: u64,
    total_views: u64,
    mobile_views: u64,
    hearts_total: u64,
    comments_total: u64,
    zero_viewer_broadcasts: u64,
    hls_broadcasts: u64,
    broadcasters: FixedBitset,
    duration_secs: QuantileSketch,
    viewers: QuantileSketch,
    hearts: QuantileSketch,
    comments: QuantileSketch,
    /// Bounded min-hash reservoir, sorted ascending by the total order
    /// `(priority, record.id)`.
    exemplars: Vec<(u64, MeasuredBroadcast)>,
    exemplar_capacity: usize,
}

impl StreamingCampaign {
    /// Creates an empty accumulator for a study of `days` days over a
    /// population of `users`, keeping at most `exemplar_capacity`
    /// exemplar records.
    pub fn new(config: &CampaignConfig, days: u32, users: usize, exemplar_capacity: usize) -> Self {
        StreamingCampaign {
            salt: config.anonymization_salt,
            days,
            recorded_per_day: vec![0; days as usize],
            recorded: 0,
            missed: 0,
            total_views: 0,
            mobile_views: 0,
            hearts_total: 0,
            comments_total: 0,
            zero_viewer_broadcasts: 0,
            hls_broadcasts: 0,
            broadcasters: FixedBitset::new(users),
            duration_secs: QuantileSketch::new(),
            viewers: QuantileSketch::new(),
            hearts: QuantileSketch::new(),
            comments: QuantileSketch::new(),
            exemplars: Vec::with_capacity(exemplar_capacity.saturating_add(1)),
            exemplar_capacity,
        }
    }

    /// Folds one *recorded* broadcast into the aggregates.
    pub fn observe(&mut self, record: BroadcastRecord) {
        self.recorded += 1;
        // Out-of-range days (possible in hand-built or truncated
        // datasets) must not index past the study window — the latent
        // fig1 panic this fold replaces.
        if let Some(slot) = self.recorded_per_day.get_mut(record.day as usize) {
            *slot += 1;
        }
        self.total_views += record.viewers;
        self.mobile_views += record.mobile_viewers;
        self.hearts_total += record.hearts;
        self.comments_total += record.comments;
        self.zero_viewer_broadcasts += (record.viewers == 0) as u64;
        self.hls_broadcasts += (record.hls_viewers > 0) as u64;
        self.broadcasters.insert(record.broadcaster);
        self.duration_secs.push(record.duration.as_secs_f64());
        self.viewers.push(record.viewers as f64);
        self.hearts.push(record.hearts as f64);
        self.comments.push(record.comments as f64);

        let measured = MeasuredBroadcast {
            broadcast_hash: anonymize(record.id, self.salt),
            broadcaster_hash: anonymize(record.broadcaster as u64, self.salt ^ 0xB),
            record,
        };
        // Min-hash reservoir: keep the `exemplar_capacity` records that
        // are smallest under the total order (hash priority, record id).
        // Deterministic (no RNG stream to disturb) and mergeable (under a
        // total order, the k smallest of a union are among the k smallest
        // of each part) — the id tiebreak is what makes ties, however
        // unlikely, resolve identically for every shard count.
        let key = (measured.broadcast_hash, measured.record.id);
        if self.exemplars.len() < self.exemplar_capacity
            || self
                .exemplars
                .last()
                .is_some_and(|(last, m)| key < (*last, m.record.id))
        {
            let at = self
                .exemplars
                .partition_point(|(p, m)| (*p, m.record.id) < key);
            self.exemplars.insert(at, (key.0, measured));
            self.exemplars.truncate(self.exemplar_capacity);
        }
    }

    /// Notes one broadcast the crawler lost (outage window).
    pub fn miss(&mut self) {
        self.missed += 1;
    }

    /// Folds another accumulator (over a disjoint slice of the decision
    /// stream) into this one. Equivalent to having observed both slices
    /// in one accumulator.
    ///
    /// # Panics
    /// Panics when the two accumulators were built for different studies
    /// (day count, population, salt, or reservoir bound differ).
    pub fn merge(&mut self, other: &StreamingCampaign) {
        assert_eq!(self.salt, other.salt, "campaign salt mismatch");
        assert_eq!(self.days, other.days, "study length mismatch");
        assert_eq!(
            self.exemplar_capacity, other.exemplar_capacity,
            "reservoir bound mismatch"
        );
        for (mine, theirs) in self
            .recorded_per_day
            .iter_mut()
            .zip(&other.recorded_per_day)
        {
            *mine += theirs;
        }
        self.recorded += other.recorded;
        self.missed += other.missed;
        self.total_views += other.total_views;
        self.mobile_views += other.mobile_views;
        self.hearts_total += other.hearts_total;
        self.comments_total += other.comments_total;
        self.zero_viewer_broadcasts += other.zero_viewer_broadcasts;
        self.hls_broadcasts += other.hls_broadcasts;
        self.broadcasters.union_with(&other.broadcasters);
        self.duration_secs.merge(&other.duration_secs);
        self.viewers.merge(&other.viewers);
        self.hearts.merge(&other.hearts);
        self.comments.merge(&other.comments);
        let mut merged = Vec::with_capacity(self.exemplar_capacity);
        let (mut a, mut b) = (self.exemplars.iter(), other.exemplars.iter());
        let (mut next_a, mut next_b) = (a.next(), b.next());
        while merged.len() < self.exemplar_capacity {
            match (next_a, next_b) {
                (Some(x), Some(y)) => {
                    // Same (priority, id) total order as `observe`.
                    if (x.0, x.1.record.id) <= (y.0, y.1.record.id) {
                        merged.push(x.clone());
                        next_a = a.next();
                    } else {
                        merged.push(y.clone());
                        next_b = b.next();
                    }
                }
                (Some(x), None) => {
                    merged.push(x.clone());
                    next_a = a.next();
                }
                (None, Some(y)) => {
                    merged.push(y.clone());
                    next_b = b.next();
                }
                (None, None) => break,
            }
        }
        self.exemplars = merged;
    }

    /// Closes the campaign, attaching the generator-side aggregates.
    pub fn finish(self, summary: WorkloadSummary) -> DatasetSummary {
        self.finish_parts(summary.daily, summary.user_views, summary.user_creates)
    }

    /// [`finish`](Self::finish) from bare aggregate vectors (used when the
    /// ground truth came from a materialized [`Dataset`], which carries no
    /// scenario config).
    fn finish_parts(
        self,
        daily: Vec<DayStats>,
        user_views: Vec<u32>,
        user_creates: Vec<u32>,
    ) -> DatasetSummary {
        DatasetSummary {
            daily,
            user_views,
            user_creates,
            recorded_per_day: self.recorded_per_day,
            recorded: self.recorded,
            missed: self.missed,
            total_views: self.total_views,
            mobile_views: self.mobile_views,
            hearts_total: self.hearts_total,
            comments_total: self.comments_total,
            zero_viewer_broadcasts: self.zero_viewer_broadcasts,
            hls_broadcasts: self.hls_broadcasts,
            distinct_broadcasters: self.broadcasters.len() as u64,
            duration_secs: self.duration_secs,
            viewers: self.viewers,
            hearts: self.hearts,
            comments: self.comments,
            exemplars: self.exemplars.into_iter().map(|(_, m)| m).collect(),
        }
    }

    /// Bytes of heap + inline storage held by the accumulator —
    /// `O(users + days + bins + exemplars)` (replay memory accounting).
    pub fn tracked_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.recorded_per_day.capacity() * std::mem::size_of::<u64>()
            + self.broadcasters.tracked_bytes()
            + self.duration_secs.tracked_bytes()
            + self.viewers.tracked_bytes()
            + self.hearts.tracked_bytes()
            + self.comments.tracked_bytes()
            + self.exemplars.capacity() * std::mem::size_of::<(u64, MeasuredBroadcast)>()
    }
}

/// The bounded-memory counterpart of [`Dataset`]: every aggregate the
/// Table 1 / Figs 1–6 analyses need, none of the per-broadcast records
/// (beyond the exemplar reservoir).
#[derive(Clone, Debug)]
pub struct DatasetSummary {
    /// Ground-truth per-day aggregates, carried from the generator.
    pub daily: Vec<DayStats>,
    /// Views per user, carried over (ids already opaque indexes).
    pub user_views: Vec<u32>,
    /// Broadcasts created per user.
    pub user_creates: Vec<u32>,
    /// Broadcasts the crawler recorded per study day (the Fig 1 series,
    /// outage gap included).
    pub recorded_per_day: Vec<u64>,
    /// Ground-truth broadcasts the crawler missed.
    pub missed: u64,
    recorded: u64,
    total_views: u64,
    mobile_views: u64,
    /// Total hearts across recorded broadcasts.
    pub hearts_total: u64,
    /// Total comments across recorded broadcasts.
    pub comments_total: u64,
    /// Recorded broadcasts with zero viewers.
    pub zero_viewer_broadcasts: u64,
    /// Recorded broadcasts with at least one HLS viewer.
    pub hls_broadcasts: u64,
    distinct_broadcasters: u64,
    /// Fig 3 distribution: broadcast length in seconds.
    pub duration_secs: QuantileSketch,
    /// Fig 4 distribution: viewers per broadcast.
    pub viewers: QuantileSketch,
    /// Fig 5 distribution: hearts per broadcast.
    pub hearts: QuantileSketch,
    /// Fig 5 distribution: comments per broadcast.
    pub comments: QuantileSketch,
    /// Bounded spot-check reservoir (min-hash priority order).
    pub exemplars: Vec<MeasuredBroadcast>,
}

impl DatasetSummary {
    /// Table 1: recorded broadcast count.
    pub fn broadcasts(&self) -> u64 {
        self.recorded
    }

    /// Table 1: distinct broadcasters in the recorded data.
    pub fn broadcasters(&self) -> u64 {
        self.distinct_broadcasters
    }

    /// Table 1: total views across recorded broadcasts.
    pub fn total_views(&self) -> u64 {
        self.total_views
    }

    /// Table 1: mobile (registered) views across recorded broadcasts.
    pub fn mobile_views(&self) -> u64 {
        self.mobile_views
    }

    /// Table 1: distinct registered viewers (from per-user tallies).
    pub fn unique_viewers(&self) -> u64 {
        self.user_views.iter().filter(|&&v| v > 0).count() as u64
    }

    /// Fraction of ground truth lost to the outage.
    pub fn loss_fraction(&self, ground_truth: u64) -> f64 {
        if ground_truth == 0 {
            0.0
        } else {
            self.missed as f64 / ground_truth as f64
        }
    }

    /// Streams a materialized [`Dataset`] through the same fold, so both
    /// replay paths compute figures from literally identical aggregates
    /// (the divisor-1000 byte-identity regression test leans on this).
    pub fn from_dataset(dataset: &Dataset, config: &CampaignConfig) -> Self {
        let days = dataset.daily.len() as u32;
        let users = dataset.user_views.len();
        let mut acc = StreamingCampaign::new(config, days, users, DEFAULT_EXEMPLARS);
        for r in &dataset.records {
            acc.observe(r.record.clone());
        }
        acc.missed = dataset.missed;
        acc.finish_parts(
            dataset.daily.clone(),
            dataset.user_views.clone(),
            dataset.user_creates.clone(),
        )
    }

    /// Bytes of heap + inline storage (replay memory accounting).
    pub fn tracked_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.daily.capacity() * std::mem::size_of::<DayStats>()
            + self.user_views.capacity() * std::mem::size_of::<u32>()
            + self.user_creates.capacity() * std::mem::size_of::<u32>()
            + self.recorded_per_day.capacity() * std::mem::size_of::<u64>()
            + self.duration_secs.tracked_bytes()
            + self.viewers.tracked_bytes()
            + self.hearts.tracked_bytes()
            + self.comments.tracked_bytes()
            + self.exemplars.capacity() * std::mem::size_of::<MeasuredBroadcast>()
    }
}

/// Runs the measurement campaign over a broadcast stream without ever
/// materializing the records: the single-pass generate → crawl → analyze
/// replay. Peak state is the stream's `O(users + days)` plus the
/// accumulator's `O(users + days + bins)`.
pub fn run_campaign_streaming(
    mut stream: BroadcastStream<'_>,
    config: &CampaignConfig,
    exemplar_capacity: usize,
) -> DatasetSummary {
    let days = stream.config().days;
    let users = stream.config().users;
    let mut filter = OutageFilter::new(config);
    let mut acc = StreamingCampaign::new(config, days, users, exemplar_capacity);
    for record in &mut stream {
        if filter.observes(record.day) {
            acc.observe(record);
        } else {
            acc.miss();
        }
    }
    acc.finish(stream.into_summary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use livescope_workload::{generate, generate_streaming, ScenarioConfig};

    fn small_config() -> ScenarioConfig {
        ScenarioConfig {
            days: 10,
            users: 1_000,
            base_daily_broadcasts: 50.0,
            ..ScenarioConfig::periscope_study()
        }
    }

    fn outage_campaign() -> CampaignConfig {
        CampaignConfig {
            outage_days: Some((3, 5)),
            outage_loss: 0.5,
            ..CampaignConfig::periscope_study()
        }
    }

    #[test]
    fn streaming_fold_matches_materialized_campaign() {
        let scenario = small_config();
        let campaign = outage_campaign();
        let w = generate(&scenario);
        let materialized = run_campaign(&w, &campaign);
        let streamed =
            run_campaign_streaming(generate_streaming(&scenario), &campaign, DEFAULT_EXEMPLARS);
        assert_eq!(streamed.broadcasts(), materialized.broadcasts());
        assert_eq!(streamed.missed, materialized.missed);
        assert_eq!(streamed.broadcasters(), materialized.broadcasters());
        assert_eq!(streamed.total_views(), materialized.total_views());
        assert_eq!(streamed.mobile_views(), materialized.mobile_views());
        assert_eq!(streamed.unique_viewers(), materialized.unique_viewers());
        // The per-day recorded series matches a scan of the records.
        for (day, &count) in streamed.recorded_per_day.iter().enumerate() {
            let scanned = materialized
                .records
                .iter()
                .filter(|r| r.record.day as usize == day)
                .count() as u64;
            assert_eq!(count, scanned, "day {day}");
        }
        // And the whole fold agrees with `from_dataset` exactly —
        // sketches, reservoir and all.
        let refolded = DatasetSummary::from_dataset(&materialized, &campaign);
        assert_eq!(
            streamed.duration_secs.series(150),
            refolded.duration_secs.series(150)
        );
        assert_eq!(streamed.viewers.series(150), refolded.viewers.series(150));
        assert_eq!(streamed.hearts.series(120), refolded.hearts.series(120));
        assert_eq!(streamed.comments.series(120), refolded.comments.series(120));
        let streamed_ids: Vec<u64> = streamed
            .exemplars
            .iter()
            .map(|m| m.broadcast_hash)
            .collect();
        let refolded_ids: Vec<u64> = refolded
            .exemplars
            .iter()
            .map(|m| m.broadcast_hash)
            .collect();
        assert_eq!(streamed_ids, refolded_ids);
        assert_eq!(streamed.exemplars.len(), DEFAULT_EXEMPLARS);
    }

    #[test]
    fn merged_accumulators_equal_single_fold() {
        let scenario = small_config();
        let campaign = outage_campaign();
        let records: Vec<BroadcastRecord> = generate_streaming(&scenario).collect();
        // Outage decisions are made once, sequentially…
        let mut filter = OutageFilter::new(&campaign);
        let decisions: Vec<bool> = records.iter().map(|r| filter.observes(r.day)).collect();
        // …then the observation fold is sharded at an arbitrary split.
        let days = scenario.days;
        let users = scenario.users;
        let mut single = StreamingCampaign::new(&campaign, days, users, 16);
        let mut left = StreamingCampaign::new(&campaign, days, users, 16);
        let mut right = StreamingCampaign::new(&campaign, days, users, 16);
        let split = records.len() / 3;
        for (i, (record, &observed)) in records.into_iter().zip(&decisions).enumerate() {
            let shard = if i < split { &mut left } else { &mut right };
            if observed {
                single.observe(record.clone());
                shard.observe(record);
            } else {
                single.miss();
                shard.miss();
            }
        }
        left.merge(&right);
        assert_eq!(left.recorded, single.recorded);
        assert_eq!(left.missed, single.missed);
        assert_eq!(left.recorded_per_day, single.recorded_per_day);
        assert_eq!(left.total_views, single.total_views);
        assert_eq!(left.broadcasters.len(), single.broadcasters.len());
        assert_eq!(left.viewers.series(150), single.viewers.series(150));
        let merged_ids: Vec<u64> = left.exemplars.iter().map(|(p, _)| *p).collect();
        let single_ids: Vec<u64> = single.exemplars.iter().map(|(p, _)| *p).collect();
        assert_eq!(merged_ids, single_ids);
    }

    #[test]
    fn out_of_range_day_is_counted_but_not_plotted() {
        let scenario = small_config();
        let campaign = CampaignConfig::meerkat_study();
        let mut acc = StreamingCampaign::new(&campaign, 3, scenario.users, 4);
        let mut record = generate_streaming(&scenario).next().expect("a record");
        record.day = 2; // final in-range day
        acc.observe(record.clone());
        record.day = 7; // beyond the study window
        acc.observe(record);
        assert_eq!(acc.recorded, 2);
        assert_eq!(acc.recorded_per_day, vec![0, 0, 1]);
    }

    #[test]
    fn accumulator_memory_is_bounded() {
        let scenario = small_config();
        let campaign = CampaignConfig::meerkat_study();
        let mut acc =
            StreamingCampaign::new(&campaign, scenario.days, scenario.users, DEFAULT_EXEMPLARS);
        let mut peak_during = 0usize;
        let baseline = acc.tracked_bytes();
        for record in generate_streaming(&scenario) {
            acc.observe(record);
            peak_during = peak_during.max(acc.tracked_bytes());
        }
        assert!(acc.recorded > 400, "workload too small to exercise bound");
        // The only growth allowed over the empty accumulator is the
        // bounded exemplar reservoir.
        let reservoir = (DEFAULT_EXEMPLARS + 1) * std::mem::size_of::<(u64, MeasuredBroadcast)>();
        assert!(
            peak_during <= baseline + reservoir,
            "accumulator grew past its bound: {peak_during} vs {baseline} + {reservoir}"
        );
    }
}
