//! Property tests for the [`StreamingCampaign`] merge law the sharded
//! replay (DESIGN.md §13) depends on: folding a record stream through
//! any partition into shard accumulators and merging them — in any
//! association order — must equal the single-accumulator fold exactly,
//! exemplar reservoir included. Mirrors the `QuantileSketch` merge
//! proptests in `livescope-analysis`.

#![forbid(unsafe_code)]

use std::sync::OnceLock;

use livescope_crawler::{CampaignConfig, StreamingCampaign};
use livescope_workload::{generate_streaming, BroadcastRecord, ScenarioConfig};
use proptest::collection::vec;
use proptest::{prop_assert_eq, proptest};

/// A shared pool of realistic records (heavy-tailed viewers/hearts, real
/// day spread); generated once, sliced many ways by the properties.
fn record_pool() -> &'static [BroadcastRecord] {
    static POOL: OnceLock<Vec<BroadcastRecord>> = OnceLock::new();
    POOL.get_or_init(|| {
        let scenario = ScenarioConfig {
            days: 10,
            users: 900,
            base_daily_broadcasts: 45.0,
            ..ScenarioConfig::periscope_study()
        };
        generate_streaming(&scenario).collect()
    })
}

const DAYS: u32 = 10;
const USERS: usize = 900;
const RESERVOIR: usize = 16;

fn fold(records: &[BroadcastRecord]) -> StreamingCampaign {
    let campaign = CampaignConfig::periscope_study();
    let mut acc = StreamingCampaign::new(&campaign, DAYS, USERS, RESERVOIR);
    for r in records {
        acc.observe(r.clone());
    }
    acc
}

/// Full-state equality via the public read surface: close both
/// accumulators with identical (empty) ground truth and compare every
/// rendered aggregate, sketch series, and the exemplar reservoir.
fn assert_campaigns_equal(a: StreamingCampaign, b: StreamingCampaign) -> Result<(), String> {
    let empty = || livescope_workload::WorkloadSummary {
        config: ScenarioConfig {
            days: DAYS,
            users: USERS,
            ..ScenarioConfig::periscope_study()
        },
        daily: Vec::new(),
        user_views: vec![0; USERS],
        user_creates: vec![0; USERS],
    };
    let (a, b) = (a.finish(empty()), b.finish(empty()));
    prop_assert_eq!(a.broadcasts(), b.broadcasts());
    prop_assert_eq!(a.missed, b.missed);
    prop_assert_eq!(a.broadcasters(), b.broadcasters());
    prop_assert_eq!(a.total_views(), b.total_views());
    prop_assert_eq!(a.mobile_views(), b.mobile_views());
    prop_assert_eq!(a.hearts_total, b.hearts_total);
    prop_assert_eq!(a.comments_total, b.comments_total);
    prop_assert_eq!(a.zero_viewer_broadcasts, b.zero_viewer_broadcasts);
    prop_assert_eq!(a.hls_broadcasts, b.hls_broadcasts);
    prop_assert_eq!(&a.recorded_per_day, &b.recorded_per_day);
    prop_assert_eq!(a.duration_secs.series(150), b.duration_secs.series(150));
    prop_assert_eq!(a.viewers.series(150), b.viewers.series(150));
    prop_assert_eq!(a.hearts.series(120), b.hearts.series(120));
    prop_assert_eq!(a.comments.series(120), b.comments.series(120));
    let keys = |s: &livescope_crawler::DatasetSummary| -> Vec<(u64, u64)> {
        s.exemplars
            .iter()
            .map(|m| (m.broadcast_hash, m.record.id))
            .collect()
    };
    prop_assert_eq!(keys(&a), keys(&b));
    Ok(())
}

proptest! {
    #[test]
    fn merge_is_associative(
        splits in vec(0.0f64..1.0, 2..3),
    ) {
        let pool = record_pool();
        let mut cut: Vec<usize> = splits
            .iter()
            .map(|f| (f * pool.len() as f64) as usize)
            .collect();
        cut.sort_unstable();
        let (a, rest) = pool.split_at(cut[0]);
        let (b, c) = rest.split_at(cut[1] - cut[0]);
        // (a ⊕ b) ⊕ c
        let mut ab_c = fold(a);
        ab_c.merge(&fold(b));
        ab_c.merge(&fold(c));
        // a ⊕ (b ⊕ c)
        let mut bc = fold(b);
        bc.merge(&fold(c));
        let mut a_bc = fold(a);
        a_bc.merge(&bc);
        assert_campaigns_equal(ab_c, a_bc)?;
    }

    #[test]
    fn merge_equals_single_fold_for_any_partition(
        assignment in vec(0usize..4, 1..64),
        misses in vec(0usize..8, 0..16),
    ) {
        // Partition the pool across 4 shards by an arbitrary per-record
        // assignment (cycled), sprinkle misses, merge in shard order —
        // must equal one sequential fold of everything.
        let pool = record_pool();
        let campaign = CampaignConfig::periscope_study();
        let mut single = StreamingCampaign::new(&campaign, DAYS, USERS, RESERVOIR);
        let mut shards: Vec<StreamingCampaign> = (0..4)
            .map(|_| StreamingCampaign::new(&campaign, DAYS, USERS, RESERVOIR))
            .collect();
        for (i, r) in pool.iter().enumerate() {
            let shard = assignment[i % assignment.len()];
            single.observe(r.clone());
            shards[shard].observe(r.clone());
        }
        for &m in &misses {
            single.miss();
            shards[m % 4].miss();
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s);
        }
        assert_campaigns_equal(merged, single)?;
    }
}
