//! Typed, sim-time-stamped trace events and their JSONL codec.
//!
//! Every event is stamped with sim-time microseconds (`t_us`) by the
//! emitting component; wall-clock never appears in a trace, which is what
//! makes traces byte-identical for a fixed `(config, seed)`. The JSONL
//! encoding writes fields in a fixed order for the same reason.

use crate::span::SpanKind;
use std::fmt::Write as _;

/// Which delivery protocol a viewer is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// RTMP push delivery (the first ~100 viewers).
    Rtmp,
    /// HLS chunk-and-poll delivery (everyone else).
    Hls,
}

impl Protocol {
    /// Lowercase wire label used in the JSONL encoding.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Rtmp => "rtmp",
            Protocol::Hls => "hls",
        }
    }
}

/// A structured event from one of the instrumented components.
///
/// All `*_us` fields are sim-time microseconds (`livescope_sim::SimTime`
/// values at the emitting site); durations are microsecond spans.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Wowza re-encoded and pushed a frame to its RTMP subscribers.
    RtmpFramePushed {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Sequence number within the broadcast.
        seq: u64,
        /// Capture timestamp of the unit at the broadcaster.
        capture_us: u64,
        /// RTMP subscriber count the frame was pushed to.
        subscribers: u32,
    },
    /// Wowza's chunker sealed a chunk and appended it to the origin.
    ChunkCompleted {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Sequence number within the broadcast.
        seq: u64,
        /// Media timestamp at which the chunk starts.
        start_ts_us: u64,
        /// Span covered, in microseconds.
        duration_us: u64,
        /// Frames sealed into the chunk.
        frames: u32,
    },
    /// A Fastly POP served a chunklist with at least one entry.
    PollHit {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Fastly POP datacenter id.
        pop: u16,
        /// Chunklist entries returned by the poll.
        entries: u32,
    },
    /// A Fastly POP had nothing servable for a poll.
    PollMiss {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Fastly POP datacenter id.
        pop: u16,
    },
    /// A Fastly POP fetched a chunk from the Wowza origin; `origin_ready_us`
    /// is when the chunk was sealed, `available_at_us` when the edge copy
    /// becomes servable.
    OriginPull {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Fastly POP datacenter id.
        pop: u16,
        /// Sequence number within the broadcast.
        seq: u64,
        /// When the chunk was sealed at the origin.
        origin_ready_us: u64,
        /// When the edge copy becomes servable.
        available_at_us: u64,
        /// How many chunks the triggering poll batched into one
        /// gateway-routed transfer (≥ 1; every chunk of the batch emits
        /// its own `OriginPull` carrying the same `batch` count).
        batch: u32,
    },
    /// An origin fetch was routed through a co-located gateway POP
    /// (the paper's §4.4 replication detour).
    GatewayReplicated {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Wowza ingest datacenter id.
        wowza: u16,
        /// Gateway POP the transfer was routed through.
        gateway: u16,
        /// Fastly POP datacenter id.
        pop: u16,
        /// Origin-to-edge transfer time.
        transfer_us: u64,
    },
    /// A publisher connected to its Wowza ingest server.
    PublisherConnected {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Wowza ingest datacenter id.
        wowza: u16,
    },
    /// An admitted viewer opened its RTMP subscription at the ingest
    /// server.
    RtmpSubscribed {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Viewer (user) id.
        viewer: u64,
        /// Wowza ingest datacenter id.
        wowza: u16,
    },
    /// The control server ran out of RTMP slots and put a viewer on HLS.
    HandoffToHls {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Viewer (user) id.
        viewer: u64,
        /// RTMP viewer count at the moment of handoff.
        rtmp_viewers: u64,
    },
    /// PubNub fanned a chat event out to subscribers.
    CommentFanout {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// User who posted the chat event.
        from_user: u64,
        /// Subscribers the event was fanned out to.
        receivers: u32,
    },
    /// The control server admitted a viewer.
    JoinStarted {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Viewer (user) id.
        viewer: u64,
        /// Whether the viewer was admitted on RTMP (vs HLS).
        rtmp: bool,
    },
    /// A viewer's playback simulation produced its report — the end of the
    /// join span. `avg_buffering_us` is the Fig 10 buffering component.
    JoinPlayout {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Viewer (user) id.
        viewer: u64,
        /// Protocol the viewer ended up on.
        protocol: Protocol,
        /// When playback started.
        playback_start_us: u64,
        /// Average buffering delay (the Fig 10 component).
        avg_buffering_us: u64,
        /// Total mid-playback stall time (the Periscope-QoE-paper stall
        /// component; excludes the initial join buffering).
        stall_us: u64,
        /// Stall ratio (stalled time / session time) in parts per million.
        stall_ratio_ppm: u64,
    },
    /// An RTMP push reached the viewer: upload (capture→Wowza) and
    /// last-mile (Wowza→viewer) spans for one media unit.
    RtmpUnitDelivered {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Viewer (user) id.
        viewer: u64,
        /// Sequence number within the broadcast.
        seq: u64,
        /// Capture-to-Wowza upload span.
        upload_us: u64,
        /// Wowza-to-viewer last-mile span.
        last_mile_us: u64,
    },
    /// An HLS viewer finished downloading a chunk; carries the full
    /// receipt timeline for the delay ledger.
    ChunkDelivered {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Viewer (user) id.
        viewer: u64,
        /// Sequence number within the broadcast.
        seq: u64,
        /// Fastly POP datacenter id the viewer downloaded from.
        pop: u16,
        /// When the chunk became servable at the POP.
        available_at_pop_us: u64,
        /// When the viewer's poll discovered the chunk.
        discovered_us: u64,
        /// When the download completed at the viewer.
        arrival_us: u64,
        /// Span covered, in microseconds.
        duration_us: u64,
    },
    /// Scheduler queue-depth sample (every N fired events).
    QueueDepth {
        /// Events pending in the queue.
        depth: u64,
        /// Total events fired so far.
        fired: u64,
    },
    /// The crawler's global-list sweep saw a broadcast for the first time.
    BroadcastDiscovered {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// When the broadcast actually started.
        started_us: u64,
    },
    /// The high-frequency probe observed a chunk at origin and POP.
    ProbeSample {
        /// Broadcast (stream) id.
        broadcast: u64,
        /// Fastly POP datacenter id.
        pop: u16,
        /// Sequence number within the broadcast.
        seq: u64,
        /// When the chunk was sealed at the origin.
        origin_ready_us: u64,
        /// When the chunk was observed available at the POP.
        pop_available_us: u64,
    },
    /// The §8 overlay experiment pushed one frame down the multicast
    /// tree: origin cost and the slowest viewer's delivery delay.
    OverlayFrameDelivered {
        /// Audience size of the overlay run.
        audience: u64,
        /// Sequence number within the broadcast.
        seq: u64,
        /// Copies the multicast root pushed for this frame.
        root_sends: u64,
        /// Viewers reached by the frame.
        viewers: u64,
        /// Slowest viewer's delivery delay.
        max_delay_us: u64,
    },
    /// A causal span opened; `t` is the span's start time. Ids are
    /// content-addressed per [`crate::span`], so the matching
    /// [`TraceEvent::SpanClose`] and any child spans carry the same id in
    /// every run, backend, and lane count.
    SpanOpen {
        /// Deterministic span id (never 0; see [`crate::span::span_id`]).
        id: u64,
        /// Parent span id (0 = root).
        parent: u64,
        /// Span kind.
        kind: SpanKind,
        /// Broadcast the span belongs to (overlay spans carry the
        /// audience size here).
        broadcast: u64,
        /// Kind-specific subject: viewer id for `viewer_session` and
        /// `viewer_deliver`, seq for `chunk_seal` / `origin_fetch` /
        /// `overlay_frame`, 0 for `broadcast`.
        subject: u64,
        /// Datacenter locus (Wowza or POP id; 0 when not applicable).
        site: u16,
    },
    /// A causal span closed; `t` is the span's end time.
    SpanClose {
        /// Span id being closed (matches a prior [`TraceEvent::SpanOpen`]).
        id: u64,
        /// Span kind, denormalized so closes are greppable on their own.
        kind: SpanKind,
    },
}

impl TraceEvent {
    /// Stable type tag used in the JSONL encoding and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RtmpFramePushed { .. } => "rtmp_frame_pushed",
            TraceEvent::ChunkCompleted { .. } => "chunk_completed",
            TraceEvent::PollHit { .. } => "poll_hit",
            TraceEvent::PollMiss { .. } => "poll_miss",
            TraceEvent::OriginPull { .. } => "origin_pull",
            TraceEvent::GatewayReplicated { .. } => "gateway_replicated",
            TraceEvent::PublisherConnected { .. } => "publisher_connected",
            TraceEvent::RtmpSubscribed { .. } => "rtmp_subscribed",
            TraceEvent::HandoffToHls { .. } => "handoff_to_hls",
            TraceEvent::CommentFanout { .. } => "comment_fanout",
            TraceEvent::JoinStarted { .. } => "join_started",
            TraceEvent::JoinPlayout { .. } => "join_playout",
            TraceEvent::RtmpUnitDelivered { .. } => "rtmp_unit_delivered",
            TraceEvent::ChunkDelivered { .. } => "chunk_delivered",
            TraceEvent::QueueDepth { .. } => "queue_depth",
            TraceEvent::BroadcastDiscovered { .. } => "broadcast_discovered",
            TraceEvent::ProbeSample { .. } => "probe_sample",
            TraceEvent::OverlayFrameDelivered { .. } => "overlay_frame_delivered",
            TraceEvent::SpanOpen { .. } => "span_open",
            TraceEvent::SpanClose { .. } => "span_close",
        }
    }
}

/// An event plus its sim-time stamp.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    /// Sim-time microseconds at emission.
    pub t_us: u64,
    /// The event payload.
    pub event: TraceEvent,
}

impl TimedEvent {
    /// One JSON object, fixed field order: `t`, `type`, then the event's
    /// fields in declaration order.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{},\"type\":\"{}\"",
            self.t_us,
            self.event.kind()
        );
        macro_rules! fields {
            ($($name:literal: $value:expr),* $(,)?) => {
                { $(let _ = write!(s, ",\"{}\":{}", $name, $value);)* }
            };
        }
        match &self.event {
            TraceEvent::RtmpFramePushed {
                broadcast,
                seq,
                capture_us,
                subscribers,
            } => {
                fields!("broadcast": broadcast, "seq": seq, "capture_us": capture_us,
                        "subscribers": subscribers)
            }
            TraceEvent::ChunkCompleted {
                broadcast,
                seq,
                start_ts_us,
                duration_us,
                frames,
            } => {
                fields!("broadcast": broadcast, "seq": seq, "start_ts_us": start_ts_us,
                        "duration_us": duration_us, "frames": frames)
            }
            TraceEvent::PollHit {
                broadcast,
                pop,
                entries,
            } => {
                fields!("broadcast": broadcast, "pop": pop, "entries": entries)
            }
            TraceEvent::PollMiss { broadcast, pop } => {
                fields!("broadcast": broadcast, "pop": pop)
            }
            TraceEvent::OriginPull {
                broadcast,
                pop,
                seq,
                origin_ready_us,
                available_at_us,
                batch,
            } => {
                fields!("broadcast": broadcast, "pop": pop, "seq": seq,
                        "origin_ready_us": origin_ready_us, "available_at_us": available_at_us,
                        "batch": batch)
            }
            TraceEvent::GatewayReplicated {
                broadcast,
                wowza,
                gateway,
                pop,
                transfer_us,
            } => {
                fields!("broadcast": broadcast, "wowza": wowza, "gateway": gateway,
                        "pop": pop, "transfer_us": transfer_us)
            }
            TraceEvent::PublisherConnected { broadcast, wowza } => {
                fields!("broadcast": broadcast, "wowza": wowza)
            }
            TraceEvent::RtmpSubscribed {
                broadcast,
                viewer,
                wowza,
            } => {
                fields!("broadcast": broadcast, "viewer": viewer, "wowza": wowza)
            }
            TraceEvent::HandoffToHls {
                broadcast,
                viewer,
                rtmp_viewers,
            } => {
                fields!("broadcast": broadcast, "viewer": viewer, "rtmp_viewers": rtmp_viewers)
            }
            TraceEvent::CommentFanout {
                broadcast,
                from_user,
                receivers,
            } => {
                fields!("broadcast": broadcast, "from_user": from_user, "receivers": receivers)
            }
            TraceEvent::JoinStarted {
                broadcast,
                viewer,
                rtmp,
            } => {
                fields!("broadcast": broadcast, "viewer": viewer, "rtmp": rtmp)
            }
            TraceEvent::JoinPlayout {
                broadcast,
                viewer,
                protocol,
                playback_start_us,
                avg_buffering_us,
                stall_us,
                stall_ratio_ppm,
            } => {
                fields!("broadcast": broadcast, "viewer": viewer);
                let _ = write!(s, ",\"protocol\":\"{}\"", protocol.label());
                fields!("playback_start_us": playback_start_us,
                        "avg_buffering_us": avg_buffering_us,
                        "stall_us": stall_us, "stall_ratio_ppm": stall_ratio_ppm)
            }
            TraceEvent::RtmpUnitDelivered {
                broadcast,
                viewer,
                seq,
                upload_us,
                last_mile_us,
            } => {
                fields!("broadcast": broadcast, "viewer": viewer, "seq": seq,
                        "upload_us": upload_us, "last_mile_us": last_mile_us)
            }
            TraceEvent::ChunkDelivered {
                broadcast,
                viewer,
                seq,
                pop,
                available_at_pop_us,
                discovered_us,
                arrival_us,
                duration_us,
            } => {
                fields!("broadcast": broadcast, "viewer": viewer, "seq": seq, "pop": pop,
                        "available_at_pop_us": available_at_pop_us, "discovered_us": discovered_us,
                        "arrival_us": arrival_us, "duration_us": duration_us)
            }
            TraceEvent::QueueDepth { depth, fired } => {
                fields!("depth": depth, "fired": fired)
            }
            TraceEvent::BroadcastDiscovered {
                broadcast,
                started_us,
            } => {
                fields!("broadcast": broadcast, "started_us": started_us)
            }
            TraceEvent::ProbeSample {
                broadcast,
                pop,
                seq,
                origin_ready_us,
                pop_available_us,
            } => {
                fields!("broadcast": broadcast, "pop": pop, "seq": seq,
                        "origin_ready_us": origin_ready_us, "pop_available_us": pop_available_us)
            }
            TraceEvent::OverlayFrameDelivered {
                audience,
                seq,
                root_sends,
                viewers,
                max_delay_us,
            } => {
                fields!("audience": audience, "seq": seq, "root_sends": root_sends,
                        "viewers": viewers, "max_delay_us": max_delay_us)
            }
            TraceEvent::SpanOpen {
                id,
                parent,
                kind,
                broadcast,
                subject,
                site,
            } => {
                fields!("id": id, "parent": parent);
                let _ = write!(s, ",\"kind\":\"{}\"", kind.label());
                fields!("broadcast": broadcast, "subject": subject, "site": site)
            }
            TraceEvent::SpanClose { id, kind } => {
                fields!("id": id);
                let _ = write!(s, ",\"kind\":\"{}\"", kind.label());
            }
        }
        s.push('}');
        s
    }
}

/// Parses a JSONL trace back into events. Unknown event types are an
/// error: the trace format is versioned by this enum.
pub fn parse_jsonl(text: &str) -> Result<Vec<TimedEvent>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_line)
        .collect()
}

/// A leniently parsed trace: the lines that decoded, plus an explicit
/// count of the ones that did not — nothing is dropped silently.
#[derive(Clone, Debug, Default)]
pub struct LossyTrace {
    /// Events that parsed, in line order.
    pub events: Vec<TimedEvent>,
    /// Lines skipped (unknown event type or malformed JSON).
    pub skipped_lines: u64,
    /// First skip's error message, for diagnostics (empty if none).
    pub first_skip: String,
}

/// Parses a JSONL trace, skipping (and counting) lines this build does
/// not understand — for summary tools that must survive traces written
/// by a newer event vocabulary.
pub fn parse_jsonl_lossy(text: &str) -> LossyTrace {
    let mut out = LossyTrace::default();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match parse_line(line) {
            Ok(e) => out.events.push(e),
            Err(msg) => {
                if out.skipped_lines == 0 {
                    out.first_skip = msg;
                }
                out.skipped_lines += 1;
            }
        }
    }
    out
}

fn parse_line(line: &str) -> Result<TimedEvent, String> {
    let v: serde_json::Value =
        serde_json::from_str(line).map_err(|e| format!("bad trace line: {e}"))?;
    let t_us = v["t"].as_u64().ok_or("missing t")?;
    let kind = v["type"].as_str().ok_or("missing type")?;
    let u = |k: &str| -> Result<u64, String> {
        v[k].as_u64().ok_or_else(|| format!("{kind}: missing {k}"))
    };
    let u16f = |k: &str| -> Result<u16, String> { u(k).map(|x| x as u16) };
    let u32f = |k: &str| -> Result<u32, String> { u(k).map(|x| x as u32) };
    let event = match kind {
        "rtmp_frame_pushed" => TraceEvent::RtmpFramePushed {
            broadcast: u("broadcast")?,
            seq: u("seq")?,
            capture_us: u("capture_us")?,
            subscribers: u32f("subscribers")?,
        },
        "chunk_completed" => TraceEvent::ChunkCompleted {
            broadcast: u("broadcast")?,
            seq: u("seq")?,
            start_ts_us: u("start_ts_us")?,
            duration_us: u("duration_us")?,
            frames: u32f("frames")?,
        },
        "poll_hit" => TraceEvent::PollHit {
            broadcast: u("broadcast")?,
            pop: u16f("pop")?,
            entries: u32f("entries")?,
        },
        "poll_miss" => TraceEvent::PollMiss {
            broadcast: u("broadcast")?,
            pop: u16f("pop")?,
        },
        "origin_pull" => TraceEvent::OriginPull {
            broadcast: u("broadcast")?,
            pop: u16f("pop")?,
            seq: u("seq")?,
            origin_ready_us: u("origin_ready_us")?,
            available_at_us: u("available_at_us")?,
            batch: u32f("batch")?,
        },
        "gateway_replicated" => TraceEvent::GatewayReplicated {
            broadcast: u("broadcast")?,
            wowza: u16f("wowza")?,
            gateway: u16f("gateway")?,
            pop: u16f("pop")?,
            transfer_us: u("transfer_us")?,
        },
        "publisher_connected" => TraceEvent::PublisherConnected {
            broadcast: u("broadcast")?,
            wowza: u16f("wowza")?,
        },
        "rtmp_subscribed" => TraceEvent::RtmpSubscribed {
            broadcast: u("broadcast")?,
            viewer: u("viewer")?,
            wowza: u16f("wowza")?,
        },
        "handoff_to_hls" => TraceEvent::HandoffToHls {
            broadcast: u("broadcast")?,
            viewer: u("viewer")?,
            rtmp_viewers: u("rtmp_viewers")?,
        },
        "comment_fanout" => TraceEvent::CommentFanout {
            broadcast: u("broadcast")?,
            from_user: u("from_user")?,
            receivers: u32f("receivers")?,
        },
        "join_started" => TraceEvent::JoinStarted {
            broadcast: u("broadcast")?,
            viewer: u("viewer")?,
            rtmp: v["rtmp"].as_bool().ok_or("join_started: missing rtmp")?,
        },
        "join_playout" => TraceEvent::JoinPlayout {
            broadcast: u("broadcast")?,
            viewer: u("viewer")?,
            protocol: match v["protocol"].as_str() {
                Some("rtmp") => Protocol::Rtmp,
                Some("hls") => Protocol::Hls,
                other => return Err(format!("join_playout: bad protocol {other:?}")),
            },
            playback_start_us: u("playback_start_us")?,
            avg_buffering_us: u("avg_buffering_us")?,
            stall_us: u("stall_us")?,
            stall_ratio_ppm: u("stall_ratio_ppm")?,
        },
        "rtmp_unit_delivered" => TraceEvent::RtmpUnitDelivered {
            broadcast: u("broadcast")?,
            viewer: u("viewer")?,
            seq: u("seq")?,
            upload_us: u("upload_us")?,
            last_mile_us: u("last_mile_us")?,
        },
        "chunk_delivered" => TraceEvent::ChunkDelivered {
            broadcast: u("broadcast")?,
            viewer: u("viewer")?,
            seq: u("seq")?,
            pop: u16f("pop")?,
            available_at_pop_us: u("available_at_pop_us")?,
            discovered_us: u("discovered_us")?,
            arrival_us: u("arrival_us")?,
            duration_us: u("duration_us")?,
        },
        "queue_depth" => TraceEvent::QueueDepth {
            depth: u("depth")?,
            fired: u("fired")?,
        },
        "broadcast_discovered" => TraceEvent::BroadcastDiscovered {
            broadcast: u("broadcast")?,
            started_us: u("started_us")?,
        },
        "probe_sample" => TraceEvent::ProbeSample {
            broadcast: u("broadcast")?,
            pop: u16f("pop")?,
            seq: u("seq")?,
            origin_ready_us: u("origin_ready_us")?,
            pop_available_us: u("pop_available_us")?,
        },
        "overlay_frame_delivered" => TraceEvent::OverlayFrameDelivered {
            audience: u("audience")?,
            seq: u("seq")?,
            root_sends: u("root_sends")?,
            viewers: u("viewers")?,
            max_delay_us: u("max_delay_us")?,
        },
        "span_open" => TraceEvent::SpanOpen {
            id: u("id")?,
            parent: u("parent")?,
            kind: match v["kind"].as_str().and_then(SpanKind::parse) {
                Some(k) => k,
                None => return Err(format!("span_open: bad kind {:?}", v["kind"])),
            },
            broadcast: u("broadcast")?,
            subject: u("subject")?,
            site: u16f("site")?,
        },
        "span_close" => TraceEvent::SpanClose {
            id: u("id")?,
            kind: match v["kind"].as_str().and_then(SpanKind::parse) {
                Some(k) => k,
                None => return Err(format!("span_close: bad kind {:?}", v["kind"])),
            },
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok(TimedEvent { t_us, event })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TimedEvent> {
        vec![
            TimedEvent {
                t_us: 0,
                event: TraceEvent::JoinStarted {
                    broadcast: 1,
                    viewer: 2,
                    rtmp: true,
                },
            },
            TimedEvent {
                t_us: 40_000,
                event: TraceEvent::RtmpFramePushed {
                    broadcast: 1,
                    seq: 0,
                    capture_us: 0,
                    subscribers: 1,
                },
            },
            TimedEvent {
                t_us: 3_000_000,
                event: TraceEvent::ChunkDelivered {
                    broadcast: 1,
                    viewer: 3,
                    seq: 0,
                    pop: 9,
                    available_at_pop_us: 3_100_000,
                    discovered_us: 3_400_000,
                    arrival_us: 3_450_000,
                    duration_us: 3_000_000,
                },
            },
            TimedEvent {
                t_us: 9_000_000,
                event: TraceEvent::JoinPlayout {
                    broadcast: 1,
                    viewer: 3,
                    protocol: Protocol::Hls,
                    playback_start_us: 12_000_000,
                    avg_buffering_us: 6_900_000,
                    stall_us: 250_000,
                    stall_ratio_ppm: 4_200,
                },
            },
            TimedEvent {
                t_us: 10,
                event: TraceEvent::QueueDepth {
                    depth: 12,
                    fired: 1024,
                },
            },
            TimedEvent {
                t_us: 500_000,
                event: TraceEvent::SpanOpen {
                    id: crate::span::chunk_seal_span(1, 0),
                    parent: crate::span::broadcast_span(1),
                    kind: SpanKind::ChunkSeal,
                    broadcast: 1,
                    subject: 0,
                    site: 3,
                },
            },
            TimedEvent {
                t_us: 3_000_000,
                event: TraceEvent::SpanClose {
                    id: crate::span::chunk_seal_span(1, 0),
                    kind: SpanKind::ChunkSeal,
                },
            },
        ]
    }

    #[test]
    fn jsonl_roundtrips_every_variant_shape() {
        let text: String = samples().iter().map(|e| e.to_json_line() + "\n").collect();
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, samples());
    }

    #[test]
    fn json_lines_have_fixed_field_order() {
        let line = samples()[0].to_json_line();
        assert_eq!(
            line,
            r#"{"t":0,"type":"join_started","broadcast":1,"viewer":2,"rtmp":true}"#
        );
    }

    #[test]
    fn unknown_type_is_rejected() {
        assert!(parse_jsonl(r#"{"t":0,"type":"mystery"}"#).is_err());
    }

    #[test]
    fn lossy_parse_counts_skipped_lines() {
        let mut text: String = samples().iter().map(|e| e.to_json_line() + "\n").collect();
        text.push_str("{\"t\":0,\"type\":\"mystery\"}\n");
        text.push_str("not json at all\n");
        let lossy = parse_jsonl_lossy(&text);
        assert_eq!(lossy.events, samples());
        assert_eq!(lossy.skipped_lines, 2);
        assert!(lossy.first_skip.contains("mystery"), "{}", lossy.first_skip);
    }
}
