//! Causal spans: deterministic ids and parent links for the broadcast
//! lifecycle, viewer sessions, and the chunk journey.
//!
//! A span is a pair of trace events — [`crate::TraceEvent::SpanOpen`] at
//! the span's start time and [`crate::TraceEvent::SpanClose`] at its end
//! — linked by a span id. Ids are **content-addressed**: they are a pure
//! hash of `(kind, identity fields)`, never a counter, so the same span
//! gets the same id in every run of a `(config, seed)` pair, on every
//! scheduler backend, at every lane count. That is what lets a consumer
//! join an open to its close (and a child to its parent) across shard
//! boundaries without any shared id-allocation state.
//!
//! The id determinism contract (DESIGN.md §11):
//!
//! | kind             | identity fields                  | parent          |
//! |------------------|----------------------------------|-----------------|
//! | `broadcast`      | broadcast                        | root (0)        |
//! | `viewer_session` | broadcast, viewer                | `broadcast`     |
//! | `chunk_seal`     | broadcast, seq                   | `broadcast`     |
//! | `origin_fetch`   | broadcast, seq, pop              | `chunk_seal`    |
//! | `viewer_deliver` | broadcast, seq, viewer           | `origin_fetch`  |
//! | `overlay_frame`  | audience, seq                    | root (0)        |
//!
//! [`span_id`] never returns 0; 0 is reserved for "no parent".

/// The span kinds of the causal model, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Publisher connect → broadcast end.
    Broadcast,
    /// Viewer admission → playout report.
    ViewerSession,
    /// Chunk media start → sealed at the Wowza origin.
    ChunkSeal,
    /// Edge poll that triggered the fetch → edge copy servable at a POP.
    OriginFetch,
    /// Viewer's poll discovered the chunk → download complete.
    ViewerDeliver,
    /// Overlay multicast frame: root push → slowest viewer reached.
    OverlayFrame,
}

impl SpanKind {
    /// All kinds, in pipeline order.
    pub fn all() -> [SpanKind; 6] {
        [
            SpanKind::Broadcast,
            SpanKind::ViewerSession,
            SpanKind::ChunkSeal,
            SpanKind::OriginFetch,
            SpanKind::ViewerDeliver,
            SpanKind::OverlayFrame,
        ]
    }

    /// Stable wire label used in the JSONL encoding.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Broadcast => "broadcast",
            SpanKind::ViewerSession => "viewer_session",
            SpanKind::ChunkSeal => "chunk_seal",
            SpanKind::OriginFetch => "origin_fetch",
            SpanKind::ViewerDeliver => "viewer_deliver",
            SpanKind::OverlayFrame => "overlay_frame",
        }
    }

    /// Parses a wire label back into a kind.
    pub fn parse(label: &str) -> Option<SpanKind> {
        SpanKind::all().into_iter().find(|k| k.label() == label)
    }

    /// Domain-separation constant mixed into every id of this kind.
    fn salt(self) -> u64 {
        match self {
            SpanKind::Broadcast => 1,
            SpanKind::ViewerSession => 2,
            SpanKind::ChunkSeal => 3,
            SpanKind::OriginFetch => 4,
            SpanKind::ViewerDeliver => 5,
            SpanKind::OverlayFrame => 6,
        }
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Content-addressed span id: a pure hash of the kind plus its identity
/// fields, folded left-to-right so `(a, b)` and `(b, a)` differ. Never 0.
pub fn span_id(kind: SpanKind, fields: &[u64]) -> u64 {
    let mut h = mix(kind.salt());
    for &f in fields {
        h = mix(h ^ f);
    }
    if h == 0 {
        1
    } else {
        h
    }
}

/// Id of the broadcast-lifecycle span.
pub fn broadcast_span(broadcast: u64) -> u64 {
    span_id(SpanKind::Broadcast, &[broadcast])
}

/// Id of a viewer-session span.
pub fn viewer_session_span(broadcast: u64, viewer: u64) -> u64 {
    span_id(SpanKind::ViewerSession, &[broadcast, viewer])
}

/// Id of a chunk-seal span.
pub fn chunk_seal_span(broadcast: u64, seq: u64) -> u64 {
    span_id(SpanKind::ChunkSeal, &[broadcast, seq])
}

/// Id of an origin-fetch span (one per chunk per POP).
pub fn origin_fetch_span(broadcast: u64, seq: u64, pop: u16) -> u64 {
    span_id(SpanKind::OriginFetch, &[broadcast, seq, pop as u64])
}

/// Id of a viewer-deliver span (one per chunk per viewer).
pub fn viewer_deliver_span(broadcast: u64, seq: u64, viewer: u64) -> u64 {
    span_id(SpanKind::ViewerDeliver, &[broadcast, seq, viewer])
}

/// Id of an overlay frame-delivery span.
pub fn overlay_frame_span(audience: u64, seq: u64) -> u64 {
    span_id(SpanKind::OverlayFrame, &[audience, seq])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_nonzero_and_kind_separated() {
        for kind in SpanKind::all() {
            assert_ne!(span_id(kind, &[0]), 0);
            assert_ne!(span_id(kind, &[1, 2]), 0);
        }
        // Same fields, different kinds: different ids.
        let ids: Vec<u64> = SpanKind::all()
            .into_iter()
            .map(|k| span_id(k, &[7, 9]))
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "kind collision: {ids:?}");
    }

    #[test]
    fn ids_are_order_sensitive() {
        assert_ne!(
            span_id(SpanKind::ViewerSession, &[1, 2]),
            span_id(SpanKind::ViewerSession, &[2, 1])
        );
    }

    #[test]
    fn ids_are_pinned() {
        // The id function is part of the trace format: changing it breaks
        // every committed baseline. These pins make that loud.
        assert_eq!(broadcast_span(1), 0xe9fd_6049_d65a_f21e);
        assert_eq!(viewer_session_span(1, 3), 0xc4b7_2f8c_e414_b6da);
        assert_eq!(chunk_seal_span(1, 0), 0x5564_fa06_0042_2600);
        assert_eq!(origin_fetch_span(1, 0, 9), 0xa5d4_2c04_33f1_8948);
        assert_eq!(viewer_deliver_span(1, 0, 3), 0x3f6a_7165_1a74_e895);
        assert_eq!(overlay_frame_span(100, 2), 0x8798_531c_f8ac_2bd9);
    }

    #[test]
    fn labels_roundtrip() {
        for kind in SpanKind::all() {
            assert_eq!(SpanKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(SpanKind::parse("mystery"), None);
    }
}
