//! livescope-telemetry: deterministic observability for the simulated stack.
//!
//! Three instruments, one handle:
//!
//! 1. **Metrics registry** ([`registry`]) — counters, gauges, and
//!    log-bucketed histograms behind pre-registered `Copy` handles. The hot
//!    path is an array index plus an add: no hashing, no globals, and with
//!    the sink disabled every call is a single branch on a `None`.
//! 2. **Structured event tracing** ([`event`], [`sink`]) — sim-time-stamped
//!    typed events ([`TraceEvent`]) emitted into a bounded in-memory ring or
//!    a streaming JSONL writer. All timestamps are `SimTime` microseconds,
//!    never wall clock, so a trace is bit-reproducible in `(config, seed)`.
//! 3. **Delay ledger** ([`ledger`]) — derives the paper's six-component
//!    delay breakdown (Fig 10/11) for a viewer join straight from the
//!    trace, so analytic numbers can be cross-checked against what the
//!    state machines actually did.
//!
//! The crate is foundation-level: it depends only on `serde_json` (for
//! trace parsing), so `sim`, `cdn`, `client`, and `crawler` can all
//! depend on it without cycles.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod event;
pub mod ledger;
pub mod profile;
pub mod registry;
pub mod report;
pub mod sink;
pub mod span;

pub use event::{Protocol, TimedEvent, TraceEvent};
pub use ledger::{DelayStage, StageDelays, TraceBreakdown};
pub use profile::{Section, SectionStamp};
pub use registry::{CounterId, GaugeId, HistogramId, MetricsSnapshot};
pub use report::ObsReport;
pub use span::SpanKind;

use registry::Registry;
use sink::TraceSink;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

struct Inner {
    registry: Mutex<Registry>,
    sink: Mutex<TraceSink>,
}

/// Unwraps a mutex guard; a poisoned lock means another thread panicked
/// mid-update, and continuing would record from inconsistent state.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().expect("telemetry lock poisoned")
}

/// Cheap, cloneable telemetry handle. Clones share one registry and sink.
///
/// The default (and [`Telemetry::disabled`]) handle is the `NullSink` mode:
/// it allocates nothing and every record/emit call reduces to one branch.
///
/// The handle is `Send + Sync` (internals are `Arc<Mutex<..>>`) so shard
/// states that carry one can move across the worker threads of
/// `livescope-sim`'s sharded backend. Determinism is unaffected: each shard
/// buffers its trace locally and the merge happens single-threaded at epoch
/// barriers.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// The null handle: nothing is recorded, nothing is allocated.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Records events into a bounded in-memory buffer (oldest dropped
    /// beyond `capacity`) and metrics into a live registry.
    pub fn recording(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Mutex::new(Registry::default()),
                sink: Mutex::new(TraceSink::memory(capacity)),
            })),
        }
    }

    /// Streams events as JSONL to `out` (one event object per line) and
    /// keeps metrics in a live registry.
    ///
    /// The writer must be `Send` because the handle itself is — use
    /// [`SharedBuffer`] to capture a trace in memory, or a `File`/`Vec<u8>`
    /// wrapper for disk capture.
    pub fn to_jsonl(out: Box<dyn Write + Send>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Mutex::new(Registry::default()),
                sink: Mutex::new(TraceSink::jsonl(out)),
            })),
        }
    }

    /// Whether this handle records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    // ---- registration (setup path; hashing/lookup allowed here) --------

    /// Registers (or re-finds) a counter. On a disabled handle the
    /// returned id is inert.
    pub fn counter(&self, name: &'static str) -> CounterId {
        match &self.inner {
            Some(inner) => locked(&inner.registry).counter(name),
            None => CounterId::INERT,
        }
    }

    /// Registers (or re-finds) a gauge.
    pub fn gauge(&self, name: &'static str) -> GaugeId {
        match &self.inner {
            Some(inner) => locked(&inner.registry).gauge(name),
            None => GaugeId::INERT,
        }
    }

    /// Registers (or re-finds) a log-bucketed histogram.
    pub fn histogram(&self, name: &'static str) -> HistogramId {
        match &self.inner {
            Some(inner) => locked(&inner.registry).histogram(name),
            None => HistogramId::INERT,
        }
    }

    // ---- hot path ------------------------------------------------------

    /// Adds to a counter. Array index + add; a branch when disabled.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        if let Some(inner) = &self.inner {
            locked(&inner.registry).add(id, n);
        }
    }

    /// Sets a gauge to an absolute value.
    #[inline]
    pub fn set_gauge(&self, id: GaugeId, value: i64) {
        if let Some(inner) = &self.inner {
            locked(&inner.registry).set_gauge(id, value);
        }
    }

    /// Records a sample into a log-bucketed histogram.
    #[inline]
    pub fn record(&self, id: HistogramId, value: u64) {
        if let Some(inner) = &self.inner {
            locked(&inner.registry).record(id, value);
        }
    }

    /// Emits a structured event stamped with sim-time microseconds.
    #[inline]
    pub fn emit(&self, t_us: u64, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            locked(&inner.sink).push(TimedEvent { t_us, event });
        }
    }

    /// Emits a batch of stamped events under a single sink lock.
    ///
    /// Equivalent to calling [`Telemetry::emit`] once per item, in
    /// iteration order, but amortizes the sink mutex over the whole
    /// batch — the fast path for barrier-style producers that buffer
    /// events and flush them in bulk.
    pub fn emit_batch(&self, events: impl IntoIterator<Item = (u64, TraceEvent)>) {
        if let Some(inner) = &self.inner {
            let mut sink = locked(&inner.sink);
            for (t_us, event) in events {
                sink.push(TimedEvent { t_us, event });
            }
        }
    }

    // ---- read-out ------------------------------------------------------

    /// Copies out the buffered events (memory sink only; empty otherwise).
    pub fn events(&self) -> Vec<TimedEvent> {
        match &self.inner {
            Some(inner) => locked(&inner.sink).buffered(),
            None => Vec::new(),
        }
    }

    /// How many events the bounded buffer discarded.
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => locked(&inner.sink).dropped(),
            None => 0,
        }
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => locked(&inner.registry).snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Flushes a streaming sink (no-op for memory/disabled).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            locked(&inner.sink).flush();
        }
    }
}

/// A `Write` target whose bytes stay readable after the telemetry handle
/// is done with it — the standard way to capture a JSONL trace in memory.
#[derive(Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// An empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out everything written so far.
    pub fn contents(&self) -> Vec<u8> {
        locked(&self.0).clone()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        locked(&self.0).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        let c = t.counter("x");
        t.add(c, 5);
        t.emit(
            1,
            TraceEvent::PollMiss {
                broadcast: 1,
                pop: 8,
            },
        );
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
        assert_eq!(t.snapshot().counters.len(), 0);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::recording(16);
        let c = t.counter("shared.count");
        let t2 = t.clone();
        t2.add(c, 3);
        t.add(c, 4);
        assert_eq!(t.snapshot().counter("shared.count"), Some(7));
        t2.emit(
            9,
            TraceEvent::PollMiss {
                broadcast: 1,
                pop: 8,
            },
        );
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].t_us, 9);
    }

    #[test]
    fn bounded_buffer_drops_oldest() {
        let t = Telemetry::recording(2);
        for i in 0..5u64 {
            t.emit(
                i,
                TraceEvent::PollMiss {
                    broadcast: i,
                    pop: 0,
                },
            );
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t_us, 3);
        assert_eq!(events[1].t_us, 4);
        assert_eq!(t.dropped_events(), 3);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf = SharedBuffer::new();
        let t = Telemetry::to_jsonl(Box::new(buf.clone()));
        t.emit(
            1,
            TraceEvent::PollMiss {
                broadcast: 7,
                pop: 8,
            },
        );
        t.emit(
            2,
            TraceEvent::PollHit {
                broadcast: 7,
                pop: 8,
                entries: 3,
            },
        );
        t.flush();
        let text = String::from_utf8(buf.contents()).unwrap();
        assert_eq!(text.lines().count(), 2);
        let parsed = event::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].t_us, 2);
    }
}
