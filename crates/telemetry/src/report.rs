//! The causal observability report: folds one trace into per-POP
//! six-component delay distributions (the paper's Fig-15-style regional
//! breakdown), QoE session metrics (join time and stall ratio, after the
//! Periscope QoE study), and top-k slowest chunk-journey waterfalls built
//! from the causal spans.
//!
//! Everything here is a pure function of the trace bytes: the same trace
//! produces the same [`ObsReport`], and because traces are byte-identical
//! across scheduler backends and lane counts for a fixed `(config,
//! seed)`, so is the report — including its JSON rendering, which writes
//! fields in a fixed order ([`ObsReport::to_json`]).

use crate::event::{Protocol, TimedEvent, TraceEvent};
use crate::ledger::DelayStage;
use crate::registry::Histogram;
use crate::span::SpanKind;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// How many chunk journeys the waterfall section keeps.
pub const WATERFALL_TOP_K: usize = 5;

/// One delay component's distribution (seconds), log-bucketed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageDist {
    /// Samples folded in.
    pub count: u64,
    /// Mean, seconds.
    pub mean_s: f64,
    /// Approximate 95th percentile, seconds.
    pub p95_s: f64,
}

impl StageDist {
    fn from_hist(h: &Histogram) -> StageDist {
        StageDist {
            count: h.count,
            mean_s: h.mean() / 1e6,
            p95_s: h.quantile(0.95) / 1e6,
        }
    }
}

/// Six-component delay distributions for one Fastly POP, HLS path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PopBreakdown {
    /// Fastly POP datacenter id.
    pub pop: u16,
    /// `ChunkDelivered` events folded in.
    pub chunks: u64,
    /// Distinct viewers this POP served.
    pub viewers: u64,
    /// One distribution per [`DelayStage`], in `DelayStage::all()` order.
    pub stages: [StageDist; 6],
}

impl PopBreakdown {
    /// Sum of the six per-stage means: the POP's end-to-end mean, seconds.
    pub fn total_mean_s(&self) -> f64 {
        self.stages.iter().map(|s| s.mean_s).sum()
    }
}

/// QoE aggregate for one protocol cohort.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QoeCohort {
    /// Sessions (one per `JoinPlayout`).
    pub sessions: u64,
    /// Mean join time (admission to playback start), seconds.
    pub join_mean_s: f64,
    /// Worst join time, seconds.
    pub join_max_s: f64,
    /// Mean mid-playback stall time per session, seconds.
    pub stall_mean_s: f64,
    /// Mean stall ratio (stalled / session time), a fraction.
    pub stall_ratio_mean: f64,
}

/// One chunk journey reconstructed from its causal span chain
/// (`chunk_seal` → `origin_fetch` → `viewer_deliver`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Waterfall {
    /// Broadcast (stream) id.
    pub broadcast: u64,
    /// Chunk sequence number.
    pub seq: u64,
    /// Receiving viewer id.
    pub viewer: u64,
    /// Serving POP datacenter id.
    pub pop: u16,
    /// Journey start (chunk media start), sim-time µs.
    pub start_us: u64,
    /// Chunk capture + sealing, µs.
    pub seal_us: u64,
    /// Sealed at origin until the first poll from this POP, µs.
    pub origin_wait_us: u64,
    /// Origin-to-edge fetch, µs.
    pub fetch_us: u64,
    /// Servable at the POP until the viewer's poll discovered it, µs.
    pub poll_wait_us: u64,
    /// Viewer download, µs.
    pub download_us: u64,
    /// End-to-end journey, µs.
    pub total_us: u64,
}

/// Open/close bookkeeping over the span events of a trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanAudit {
    /// `span_open` events seen.
    pub opens: u64,
    /// `span_close` events seen.
    pub closes: u64,
    /// Opens with no matching close (truncated trace or a bug).
    pub unclosed: u64,
    /// Closes with no matching open.
    pub unmatched_closes: u64,
}

/// The full observability report derived from one trace.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// Events in the trace.
    pub events: u64,
    /// Span open/close accounting.
    pub spans: SpanAudit,
    /// Per-POP six-component breakdown, ascending POP id.
    pub pops: Vec<PopBreakdown>,
    /// RTMP cohort QoE.
    pub qoe_rtmp: QoeCohort,
    /// HLS cohort QoE.
    pub qoe_hls: QoeCohort,
    /// Top-k slowest chunk journeys, slowest first.
    pub waterfalls: Vec<Waterfall>,
}

#[derive(Clone, Copy)]
struct OpenSpan {
    parent: u64,
    broadcast: u64,
    subject: u64,
    site: u16,
    open_us: u64,
    close_us: Option<u64>,
}

#[derive(Default)]
struct PopAcc {
    chunks: u64,
    viewers: BTreeMap<u64, ()>,
    hists: [Histogram; 6],
}

#[derive(Default)]
struct QoeAcc {
    sessions: u64,
    join_sum_s: f64,
    join_max_s: f64,
    stall_sum_s: f64,
    ratio_sum: f64,
}

impl QoeAcc {
    fn finish(&self) -> QoeCohort {
        let n = self.sessions.max(1) as f64;
        QoeCohort {
            sessions: self.sessions,
            join_mean_s: if self.sessions == 0 {
                0.0
            } else {
                self.join_sum_s / n
            },
            join_max_s: self.join_max_s,
            stall_mean_s: if self.sessions == 0 {
                0.0
            } else {
                self.stall_sum_s / n
            },
            stall_ratio_mean: if self.sessions == 0 {
                0.0
            } else {
                self.ratio_sum / n
            },
        }
    }
}

fn stage_index(stage: DelayStage) -> usize {
    DelayStage::all()
        .iter()
        .position(|s| *s == stage)
        .expect("stage is one of the six")
}

impl ObsReport {
    /// Folds a trace (in emission order) into the report.
    pub fn derive(events: &[TimedEvent]) -> ObsReport {
        // (broadcast, seq) -> seal time, maintained streamingly so traces
        // holding several repetitions (which restart seq) join correctly.
        let mut origin_ready: HashMap<(u64, u64), u64> = HashMap::new();
        // (broadcast, viewer) -> admission time.
        let mut join_started: HashMap<(u64, u64), u64> = HashMap::new();
        // viewer -> last POP that served it (for buffering attribution).
        let mut viewer_pop: HashMap<u64, u16> = HashMap::new();
        // Span table (lookup only — never iterated, so hash order is inert)
        // plus the deliver-span ids in trace order for the waterfalls.
        let mut spans: HashMap<u64, OpenSpan> = HashMap::new();
        let mut deliver_ids: Vec<u64> = Vec::new();
        let mut upload_hist = Histogram::default();
        let mut pops: BTreeMap<u16, PopAcc> = BTreeMap::new();
        let mut qoe_rtmp = QoeAcc::default();
        let mut qoe_hls = QoeAcc::default();
        let mut audit = SpanAudit::default();
        // HLS playouts buffered until the viewer->POP map is complete.
        let mut hls_buffering: Vec<(u64, u64)> = Vec::new(); // (viewer, avg_buffering_us)

        for TimedEvent { t_us, event } in events {
            match event {
                TraceEvent::ChunkCompleted { broadcast, seq, .. } => {
                    origin_ready.insert((*broadcast, *seq), *t_us);
                }
                TraceEvent::JoinStarted {
                    broadcast, viewer, ..
                } => {
                    join_started.insert((*broadcast, *viewer), *t_us);
                }
                TraceEvent::RtmpUnitDelivered { upload_us, .. } => {
                    upload_hist.record(*upload_us);
                }
                TraceEvent::ChunkDelivered {
                    broadcast,
                    viewer,
                    seq,
                    pop,
                    available_at_pop_us,
                    discovered_us,
                    arrival_us,
                    duration_us,
                } => {
                    viewer_pop.insert(*viewer, *pop);
                    let acc = pops.entry(*pop).or_default();
                    acc.chunks += 1;
                    acc.viewers.insert(*viewer, ());
                    acc.hists[stage_index(DelayStage::Chunking)].record(*duration_us);
                    if let Some(ready_us) = origin_ready.get(&(*broadcast, *seq)) {
                        acc.hists[stage_index(DelayStage::Wowza2Fastly)]
                            .record(available_at_pop_us.saturating_sub(*ready_us));
                    }
                    acc.hists[stage_index(DelayStage::Polling)]
                        .record(discovered_us.saturating_sub(*available_at_pop_us));
                    acc.hists[stage_index(DelayStage::LastMile)]
                        .record(arrival_us.saturating_sub(*discovered_us));
                }
                TraceEvent::JoinPlayout {
                    broadcast,
                    viewer,
                    protocol,
                    playback_start_us,
                    avg_buffering_us,
                    stall_us,
                    stall_ratio_ppm,
                } => {
                    let join_s = join_started
                        .get(&(*broadcast, *viewer))
                        .map(|t0| playback_start_us.saturating_sub(*t0) as f64 / 1e6)
                        .unwrap_or(0.0);
                    let acc = match protocol {
                        Protocol::Rtmp => &mut qoe_rtmp,
                        Protocol::Hls => &mut qoe_hls,
                    };
                    acc.sessions += 1;
                    acc.join_sum_s += join_s;
                    acc.join_max_s = acc.join_max_s.max(join_s);
                    acc.stall_sum_s += *stall_us as f64 / 1e6;
                    acc.ratio_sum += *stall_ratio_ppm as f64 / 1e6;
                    if *protocol == Protocol::Hls {
                        hls_buffering.push((*viewer, *avg_buffering_us));
                    }
                }
                TraceEvent::SpanOpen {
                    id,
                    parent,
                    kind,
                    broadcast,
                    subject,
                    site,
                } => {
                    audit.opens += 1;
                    if *kind == SpanKind::ViewerDeliver {
                        deliver_ids.push(*id);
                    }
                    spans.insert(
                        *id,
                        OpenSpan {
                            parent: *parent,
                            broadcast: *broadcast,
                            subject: *subject,
                            site: *site,
                            open_us: *t_us,
                            close_us: None,
                        },
                    );
                }
                TraceEvent::SpanClose { id, .. } => {
                    audit.closes += 1;
                    match spans.get_mut(id) {
                        Some(span) => span.close_us = Some(*t_us),
                        None => audit.unmatched_closes += 1,
                    }
                }
                _ => {}
            }
        }
        audit.unclosed = audit
            .opens
            .saturating_sub(audit.closes - audit.unmatched_closes);

        // Attribute buffering (and the global upload mean) per POP.
        for (viewer, buffering_us) in &hls_buffering {
            if let Some(pop) = viewer_pop.get(viewer) {
                if let Some(acc) = pops.get_mut(pop) {
                    acc.hists[stage_index(DelayStage::Buffering)].record(*buffering_us);
                }
            }
        }
        let upload_dist = StageDist::from_hist(&upload_hist);
        let pops: Vec<PopBreakdown> = pops
            .iter()
            .map(|(pop, acc)| {
                let mut stages: [StageDist; 6] = Default::default();
                for (i, h) in acc.hists.iter().enumerate() {
                    stages[i] = StageDist::from_hist(h);
                }
                stages[stage_index(DelayStage::Upload)] = upload_dist.clone();
                PopBreakdown {
                    pop: *pop,
                    chunks: acc.chunks,
                    viewers: acc.viewers.len() as u64,
                    stages,
                }
            })
            .collect();

        // Waterfalls: walk each complete viewer_deliver chain upward.
        let mut falls: Vec<Waterfall> = deliver_ids
            .iter()
            .filter_map(|id| {
                let deliver = spans.get(id)?;
                let deliver_close = deliver.close_us?;
                let fetch = spans.get(&deliver.parent)?;
                let fetch_close = fetch.close_us?;
                let seal = spans.get(&fetch.parent)?;
                let seal_close = seal.close_us?;
                Some(Waterfall {
                    broadcast: deliver.broadcast,
                    seq: fetch.subject,
                    viewer: deliver.subject,
                    pop: deliver.site,
                    start_us: seal.open_us,
                    seal_us: seal_close.saturating_sub(seal.open_us),
                    origin_wait_us: fetch.open_us.saturating_sub(seal_close),
                    fetch_us: fetch_close.saturating_sub(fetch.open_us),
                    poll_wait_us: deliver.open_us.saturating_sub(fetch_close),
                    download_us: deliver_close.saturating_sub(deliver.open_us),
                    total_us: deliver_close.saturating_sub(seal.open_us),
                })
            })
            .collect();
        falls.sort_by(|a, b| {
            b.total_us
                .cmp(&a.total_us)
                .then_with(|| (a.broadcast, a.seq, a.viewer).cmp(&(b.broadcast, b.seq, b.viewer)))
        });
        falls.truncate(WATERFALL_TOP_K);

        ObsReport {
            events: events.len() as u64,
            spans: audit,
            pops,
            qoe_rtmp: qoe_rtmp.finish(),
            qoe_hls: qoe_hls.finish(),
            waterfalls: falls,
        }
    }

    /// Human-readable rendering. `name_of` maps a datacenter id to a
    /// display name (pass `|pop| format!("pop{pop}")` when no topology is
    /// at hand).
    pub fn render(&self, name_of: &dyn Fn(u16) -> String) -> String {
        let mut out = String::from("causal observability report\n");
        let _ = writeln!(
            out,
            "events: {}   spans: {} opened, {} closed ({} unclosed, {} unmatched closes)\n",
            self.events,
            self.spans.opens,
            self.spans.closes,
            self.spans.unclosed,
            self.spans.unmatched_closes
        );
        out.push_str(
            "per-POP six-component delay means, HLS path (s)\n\
             pop                 chunks viewers  upload  chunking  wowza2fastly  polling  last-mile  buffering  total\n",
        );
        for p in &self.pops {
            let _ = writeln!(
                out,
                "{:<19} {:>6} {:>7}  {:>6.3}  {:>8.3}  {:>12.3}  {:>7.3}  {:>9.3}  {:>9.3}  {:>5.3}",
                format!("{} {}", p.pop, name_of(p.pop)),
                p.chunks,
                p.viewers,
                p.stages[0].mean_s,
                p.stages[1].mean_s,
                p.stages[2].mean_s,
                p.stages[3].mean_s,
                p.stages[4].mean_s,
                p.stages[5].mean_s,
                p.total_mean_s(),
            );
        }
        out.push_str("\nQoE sessions (join time per admission->playback, stalls per session)\n");
        for (label, q) in [("RTMP", &self.qoe_rtmp), ("HLS", &self.qoe_hls)] {
            let _ = writeln!(
                out,
                "  {label:<5} {} sessions  join mean {:.3}s max {:.3}s  stall mean {:.3}s  stall ratio {:.4}",
                q.sessions, q.join_mean_s, q.join_max_s, q.stall_mean_s, q.stall_ratio_mean
            );
        }
        let _ = writeln!(
            out,
            "\ntop-{} slowest chunk journeys (seal -> origin-wait -> fetch -> poll-wait -> download)",
            WATERFALL_TOP_K
        );
        for (i, w) in self.waterfalls.iter().enumerate() {
            let _ = writeln!(
                out,
                "  #{} broadcast {} seq {} viewer {} pop {}: total {:.3}s = {:.3} + {:.3} + {:.3} + {:.3} + {:.3}",
                i + 1,
                w.broadcast,
                w.seq,
                w.viewer,
                w.pop,
                w.total_us as f64 / 1e6,
                w.seal_us as f64 / 1e6,
                w.origin_wait_us as f64 / 1e6,
                w.fetch_us as f64 / 1e6,
                w.poll_wait_us as f64 / 1e6,
                w.download_us as f64 / 1e6,
            );
        }
        out
    }

    /// Machine-readable rendering with a fixed field order, so the bytes
    /// are identical whenever the report is (the `OBS_report.json`
    /// schema; see DESIGN.md §11).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"report\":\"obs\"");
        let _ = write!(s, ",\"events\":{}", self.events);
        let _ = write!(
            s,
            ",\"spans\":{{\"opens\":{},\"closes\":{},\"unclosed\":{},\"unmatched_closes\":{}}}",
            self.spans.opens, self.spans.closes, self.spans.unclosed, self.spans.unmatched_closes
        );
        s.push_str(",\"pops\":[");
        for (i, p) in self.pops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"pop\":{},\"chunks\":{},\"viewers\":{},\"stages\":{{",
                p.pop, p.chunks, p.viewers
            );
            for (k, stage) in DelayStage::all().iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                let d = &p.stages[k];
                let _ = write!(
                    s,
                    "\"{}\":{{\"count\":{},\"mean_s\":{:.6},\"p95_s\":{:.6}}}",
                    stage.label(),
                    d.count,
                    d.mean_s,
                    d.p95_s
                );
            }
            let _ = write!(s, "}},\"total_mean_s\":{:.6}}}", p.total_mean_s());
        }
        s.push_str("],\"qoe\":{");
        for (i, (label, q)) in [("rtmp", &self.qoe_rtmp), ("hls", &self.qoe_hls)]
            .iter()
            .enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{label}\":{{\"sessions\":{},\"join_mean_s\":{:.6},\"join_max_s\":{:.6},\"stall_mean_s\":{:.6},\"stall_ratio_mean\":{:.6}}}",
                q.sessions, q.join_mean_s, q.join_max_s, q.stall_mean_s, q.stall_ratio_mean
            );
        }
        s.push_str("},\"waterfalls\":[");
        for (i, w) in self.waterfalls.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"broadcast\":{},\"seq\":{},\"viewer\":{},\"pop\":{},\"start_us\":{},\"seal_us\":{},\"origin_wait_us\":{},\"fetch_us\":{},\"poll_wait_us\":{},\"download_us\":{},\"total_us\":{}}}",
                w.broadcast,
                w.seq,
                w.viewer,
                w.pop,
                w.start_us,
                w.seal_us,
                w.origin_wait_us,
                w.fetch_us,
                w.poll_wait_us,
                w.download_us,
                w.total_us
            );
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    fn t(t_us: u64, event: TraceEvent) -> TimedEvent {
        TimedEvent { t_us, event }
    }

    /// One broadcast, one chunk sealed at t=3s, fetched by pop 9 at
    /// t=3.2s (servable 3.5s), delivered to viewer 3 at t=4.0s.
    fn journey_trace() -> Vec<TimedEvent> {
        let seal = span::chunk_seal_span(1, 0);
        let fetch = span::origin_fetch_span(1, 0, 9);
        let deliver = span::viewer_deliver_span(1, 0, 3);
        vec![
            t(
                0,
                TraceEvent::JoinStarted {
                    broadcast: 1,
                    viewer: 3,
                    rtmp: false,
                },
            ),
            t(
                0,
                TraceEvent::SpanOpen {
                    id: seal,
                    parent: span::broadcast_span(1),
                    kind: SpanKind::ChunkSeal,
                    broadcast: 1,
                    subject: 0,
                    site: 2,
                },
            ),
            t(
                3_000_000,
                TraceEvent::SpanClose {
                    id: seal,
                    kind: SpanKind::ChunkSeal,
                },
            ),
            t(
                3_000_000,
                TraceEvent::ChunkCompleted {
                    broadcast: 1,
                    seq: 0,
                    start_ts_us: 0,
                    duration_us: 3_000_000,
                    frames: 75,
                },
            ),
            t(
                3_200_000,
                TraceEvent::SpanOpen {
                    id: fetch,
                    parent: seal,
                    kind: SpanKind::OriginFetch,
                    broadcast: 1,
                    subject: 0,
                    site: 9,
                },
            ),
            t(
                3_500_000,
                TraceEvent::SpanClose {
                    id: fetch,
                    kind: SpanKind::OriginFetch,
                },
            ),
            t(
                3_800_000,
                TraceEvent::SpanOpen {
                    id: deliver,
                    parent: fetch,
                    kind: SpanKind::ViewerDeliver,
                    broadcast: 1,
                    subject: 3,
                    site: 9,
                },
            ),
            t(
                4_000_000,
                TraceEvent::SpanClose {
                    id: deliver,
                    kind: SpanKind::ViewerDeliver,
                },
            ),
            t(
                4_000_000,
                TraceEvent::ChunkDelivered {
                    broadcast: 1,
                    viewer: 3,
                    seq: 0,
                    pop: 9,
                    available_at_pop_us: 3_500_000,
                    discovered_us: 3_800_000,
                    arrival_us: 4_000_000,
                    duration_us: 3_000_000,
                },
            ),
            t(
                4_000_000,
                TraceEvent::JoinPlayout {
                    broadcast: 1,
                    viewer: 3,
                    protocol: Protocol::Hls,
                    playback_start_us: 4_000_000,
                    avg_buffering_us: 800_000,
                    stall_us: 120_000,
                    stall_ratio_ppm: 30_000,
                },
            ),
        ]
    }

    #[test]
    fn per_pop_breakdown_and_qoe_are_derived() {
        let r = ObsReport::derive(&journey_trace());
        assert_eq!(r.pops.len(), 1);
        let p = &r.pops[0];
        assert_eq!((p.pop, p.chunks, p.viewers), (9, 1, 1));
        let idx = |s| stage_index(s);
        assert!((p.stages[idx(DelayStage::Chunking)].mean_s - 3.0).abs() < 1e-9);
        assert!((p.stages[idx(DelayStage::Wowza2Fastly)].mean_s - 0.5).abs() < 1e-9);
        assert!((p.stages[idx(DelayStage::Polling)].mean_s - 0.3).abs() < 1e-9);
        assert!((p.stages[idx(DelayStage::LastMile)].mean_s - 0.2).abs() < 1e-9);
        assert!((p.stages[idx(DelayStage::Buffering)].mean_s - 0.8).abs() < 1e-9);
        assert_eq!(r.qoe_hls.sessions, 1);
        assert!((r.qoe_hls.join_mean_s - 4.0).abs() < 1e-9);
        assert!((r.qoe_hls.stall_mean_s - 0.12).abs() < 1e-9);
        assert!((r.qoe_hls.stall_ratio_mean - 0.03).abs() < 1e-9);
        assert_eq!(r.qoe_rtmp.sessions, 0);
    }

    #[test]
    fn waterfall_reconstructs_the_span_chain() {
        let r = ObsReport::derive(&journey_trace());
        assert_eq!(r.waterfalls.len(), 1);
        let w = &r.waterfalls[0];
        assert_eq!((w.broadcast, w.seq, w.viewer, w.pop), (1, 0, 3, 9));
        assert_eq!(w.seal_us, 3_000_000);
        assert_eq!(w.origin_wait_us, 200_000);
        assert_eq!(w.fetch_us, 300_000);
        assert_eq!(w.poll_wait_us, 300_000);
        assert_eq!(w.download_us, 200_000);
        assert_eq!(w.total_us, 4_000_000);
        assert_eq!(r.spans.opens, 3);
        assert_eq!(r.spans.closes, 3);
        assert_eq!(r.spans.unclosed, 0);
    }

    #[test]
    fn json_rendering_is_stable_and_self_consistent() {
        let r = ObsReport::derive(&journey_trace());
        let a = r.to_json();
        let b = ObsReport::derive(&journey_trace()).to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"report\":\"obs\",\"events\":10,"), "{a}");
        assert!(a.contains("\"pop\":9"), "{a}");
        assert!(a.contains("\"total_us\":4000000"), "{a}");
        let text = r.render(&|pop| format!("pop{pop}"));
        assert!(text.contains("9 pop9"), "{text}");
        assert!(text.contains("top-5 slowest chunk journeys"), "{text}");
    }

    #[test]
    fn truncated_spans_are_audited_not_fatal() {
        let mut events = journey_trace();
        events.retain(|e| !matches!(e.event, TraceEvent::SpanClose { .. }));
        events.push(t(
            9,
            TraceEvent::SpanClose {
                id: 0xDEAD,
                kind: SpanKind::ChunkSeal,
            },
        ));
        let r = ObsReport::derive(&events);
        assert_eq!(r.spans.opens, 3);
        assert_eq!(r.spans.unmatched_closes, 1);
        assert_eq!(r.spans.unclosed, 3);
        assert!(r.waterfalls.is_empty());
    }
}
