//! Trace-derived delay ledger: reconstructs the paper's six-component
//! end-to-end delay breakdown (Figs 10–11) from a structured trace.
//!
//! The analytic experiment (`experiments::breakdown`) computes the same
//! six numbers from in-memory viewer state; this module computes them
//! purely from [`TimedEvent`]s, so the two can be cross-checked: if the
//! instrumented state machines and the analytic formulas disagree, one of
//! them is lying.
//!
//! Join logic (single pass, in trace order):
//! - `upload` / RTMP `last-mile` — means of `RtmpUnitDelivered` spans.
//! - `chunking` — mean `ChunkDelivered.duration_us`.
//! - `wowza2fastly` — `ChunkDelivered.available_at_pop_us` minus the
//!   matching `ChunkCompleted` time (joined by broadcast + seq). The map
//!   is maintained streamingly so traces holding several repetitions
//!   (which restart seq numbering) still join each delivery against its
//!   own run's chunk.
//! - `polling` — `discovered_us − available_at_pop_us`.
//! - HLS `last-mile` — `arrival_us − discovered_us`.
//! - `buffering` — mean `JoinPlayout.avg_buffering_us` per protocol.

use crate::event::{Protocol, TimedEvent, TraceEvent};
use std::collections::HashMap;

/// The six delay components of the paper's Fig 10 pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayStage {
    /// Broadcaster capture to ingest arrival.
    Upload,
    /// Waiting for the chunker to seal a chunk.
    Chunking,
    /// Origin-to-edge propagation (gateway replication included).
    Wowza2Fastly,
    /// Waiting for the viewer's next poll to discover the chunk.
    Polling,
    /// Edge (or ingest) to viewer download.
    LastMile,
    /// Client-side pre-buffering before playout.
    Buffering,
}

impl DelayStage {
    /// All six stages in pipeline order.
    pub fn all() -> [DelayStage; 6] {
        [
            DelayStage::Upload,
            DelayStage::Chunking,
            DelayStage::Wowza2Fastly,
            DelayStage::Polling,
            DelayStage::LastMile,
            DelayStage::Buffering,
        ]
    }

    /// Human-readable stage label used in tables and summaries.
    pub fn label(self) -> &'static str {
        match self {
            DelayStage::Upload => "upload",
            DelayStage::Chunking => "chunking",
            DelayStage::Wowza2Fastly => "wowza2fastly",
            DelayStage::Polling => "polling",
            DelayStage::LastMile => "last-mile",
            DelayStage::Buffering => "buffering",
        }
    }
}

/// Six per-stage mean delays (seconds) for one protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageDelays {
    /// Mean upload delay, seconds.
    pub upload_s: f64,
    /// Mean chunking delay, seconds.
    pub chunking_s: f64,
    /// Mean origin-to-edge delay, seconds.
    pub wowza2fastly_s: f64,
    /// Mean polling-discovery delay, seconds.
    pub polling_s: f64,
    /// Mean last-mile delay, seconds.
    pub last_mile_s: f64,
    /// Mean pre-buffering delay, seconds.
    pub buffering_s: f64,
}

impl StageDelays {
    /// The mean delay for one stage, seconds.
    pub fn stage(&self, stage: DelayStage) -> f64 {
        match stage {
            DelayStage::Upload => self.upload_s,
            DelayStage::Chunking => self.chunking_s,
            DelayStage::Wowza2Fastly => self.wowza2fastly_s,
            DelayStage::Polling => self.polling_s,
            DelayStage::LastMile => self.last_mile_s,
            DelayStage::Buffering => self.buffering_s,
        }
    }

    /// Sum of all six stages: the end-to-end delay, seconds.
    pub fn total_s(&self) -> f64 {
        DelayStage::all().iter().map(|s| self.stage(*s)).sum()
    }
}

/// Running mean without storing samples.
#[derive(Clone, Copy, Debug, Default)]
struct Mean {
    sum: f64,
    n: u64,
}

impl Mean {
    fn push(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    fn get(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

/// Breakdown derived from a trace, one [`StageDelays`] per protocol, plus
/// the sample counts behind each mean (zero counts mean the trace lacked
/// the corresponding events, not that the delay was zero).
#[derive(Clone, Debug, Default)]
pub struct TraceBreakdown {
    /// Per-stage means for RTMP viewers.
    pub rtmp: StageDelays,
    /// Per-stage means for HLS viewers.
    pub hls: StageDelays,
    /// `RtmpUnitDelivered` events folded in.
    pub rtmp_units: u64,
    /// `ChunkDelivered` events folded in.
    pub hls_chunks: u64,
    /// `ChunkDelivered` events whose seq had no preceding `ChunkCompleted`
    /// (a truncated trace, e.g. a ring buffer that dropped the start).
    pub unmatched_chunks: u64,
}

impl TraceBreakdown {
    /// Folds a trace (in emission order) into the six-component ledger.
    pub fn derive(events: &[TimedEvent]) -> TraceBreakdown {
        let mut upload = Mean::default();
        let mut rtmp_last_mile = Mean::default();
        let mut rtmp_buffering = Mean::default();
        let mut chunking = Mean::default();
        let mut w2f = Mean::default();
        let mut polling = Mean::default();
        let mut hls_last_mile = Mean::default();
        let mut hls_buffering = Mean::default();
        let mut unmatched = 0u64;
        // (broadcast, seq) -> time the chunk was sealed at origin. Updated
        // streamingly so repeated runs (which reuse seqs) stay correct.
        let mut origin_ready: HashMap<(u64, u64), u64> = HashMap::new();

        for TimedEvent { t_us, event } in events {
            match event {
                TraceEvent::ChunkCompleted { broadcast, seq, .. } => {
                    origin_ready.insert((*broadcast, *seq), *t_us);
                }
                TraceEvent::RtmpUnitDelivered {
                    upload_us,
                    last_mile_us,
                    ..
                } => {
                    upload.push(*upload_us as f64 / 1e6);
                    rtmp_last_mile.push(*last_mile_us as f64 / 1e6);
                }
                TraceEvent::ChunkDelivered {
                    broadcast,
                    seq,
                    available_at_pop_us,
                    discovered_us,
                    arrival_us,
                    duration_us,
                    ..
                } => {
                    chunking.push(*duration_us as f64 / 1e6);
                    match origin_ready.get(&(*broadcast, *seq)) {
                        Some(ready_us) => {
                            w2f.push(available_at_pop_us.saturating_sub(*ready_us) as f64 / 1e6)
                        }
                        None => unmatched += 1,
                    }
                    polling.push(discovered_us.saturating_sub(*available_at_pop_us) as f64 / 1e6);
                    hls_last_mile.push(arrival_us.saturating_sub(*discovered_us) as f64 / 1e6);
                }
                TraceEvent::JoinPlayout {
                    protocol,
                    avg_buffering_us,
                    ..
                } => match protocol {
                    Protocol::Rtmp => rtmp_buffering.push(*avg_buffering_us as f64 / 1e6),
                    Protocol::Hls => hls_buffering.push(*avg_buffering_us as f64 / 1e6),
                },
                _ => {}
            }
        }

        TraceBreakdown {
            rtmp: StageDelays {
                upload_s: upload.get(),
                chunking_s: 0.0,
                wowza2fastly_s: 0.0,
                polling_s: 0.0,
                last_mile_s: rtmp_last_mile.get(),
                buffering_s: rtmp_buffering.get(),
            },
            hls: StageDelays {
                upload_s: upload.get(),
                chunking_s: chunking.get(),
                wowza2fastly_s: w2f.get(),
                polling_s: polling.get(),
                last_mile_s: hls_last_mile.get(),
                buffering_s: hls_buffering.get(),
            },
            rtmp_units: upload.n,
            hls_chunks: chunking.n,
            unmatched_chunks: unmatched,
        }
    }

    /// Fig 11-style two-row table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "trace-derived delay breakdown (s)\n\
             protocol  upload  chunking  wowza2fastly  polling  last-mile  buffering  total\n",
        );
        for (name, d) in [("RTMP", &self.rtmp), ("HLS", &self.hls)] {
            out.push_str(&format!(
                "{name:<9} {:>6.3}  {:>8.3}  {:>12.3}  {:>7.3}  {:>9.3}  {:>9.3}  {:>5.3}\n",
                d.upload_s,
                d.chunking_s,
                d.wowza2fastly_s,
                d.polling_s,
                d.last_mile_s,
                d.buffering_s,
                d.total_s(),
            ));
        }
        out.push_str(&format!(
            "samples: {} rtmp units, {} hls chunks ({} unmatched)\n",
            self.rtmp_units, self.hls_chunks, self.unmatched_chunks
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(t_us: u64, event: TraceEvent) -> TimedEvent {
        TimedEvent { t_us, event }
    }

    fn synthetic_trace() -> Vec<TimedEvent> {
        vec![
            t(
                100_000,
                TraceEvent::RtmpUnitDelivered {
                    broadcast: 1,
                    viewer: 2,
                    seq: 0,
                    upload_us: 200_000,
                    last_mile_us: 50_000,
                },
            ),
            t(
                140_000,
                TraceEvent::RtmpUnitDelivered {
                    broadcast: 1,
                    viewer: 2,
                    seq: 1,
                    upload_us: 400_000,
                    last_mile_us: 150_000,
                },
            ),
            t(
                3_000_000,
                TraceEvent::ChunkCompleted {
                    broadcast: 1,
                    seq: 0,
                    start_ts_us: 0,
                    duration_us: 3_000_000,
                    frames: 75,
                },
            ),
            t(
                3_600_000,
                TraceEvent::ChunkDelivered {
                    broadcast: 1,
                    viewer: 3,
                    seq: 0,
                    pop: 9,
                    available_at_pop_us: 3_100_000,
                    discovered_us: 3_500_000,
                    arrival_us: 3_600_000,
                    duration_us: 3_000_000,
                },
            ),
            t(
                9_000_000,
                TraceEvent::JoinPlayout {
                    broadcast: 1,
                    viewer: 3,
                    protocol: Protocol::Hls,
                    playback_start_us: 12_100_000,
                    avg_buffering_us: 6_900_000,
                    stall_us: 0,
                    stall_ratio_ppm: 0,
                },
            ),
            t(
                9_000_000,
                TraceEvent::JoinPlayout {
                    broadcast: 1,
                    viewer: 2,
                    protocol: Protocol::Rtmp,
                    playback_start_us: 1_100_000,
                    avg_buffering_us: 1_000_000,
                    stall_us: 0,
                    stall_ratio_ppm: 0,
                },
            ),
        ]
    }

    #[test]
    fn derives_all_six_components() {
        let b = TraceBreakdown::derive(&synthetic_trace());
        assert!((b.rtmp.upload_s - 0.3).abs() < 1e-9);
        assert!((b.rtmp.last_mile_s - 0.1).abs() < 1e-9);
        assert!((b.rtmp.buffering_s - 1.0).abs() < 1e-9);
        assert_eq!(b.rtmp.chunking_s, 0.0);
        assert!((b.hls.chunking_s - 3.0).abs() < 1e-9);
        assert!((b.hls.wowza2fastly_s - 0.1).abs() < 1e-9, "{b:?}");
        assert!((b.hls.polling_s - 0.4).abs() < 1e-9);
        assert!((b.hls.last_mile_s - 0.1).abs() < 1e-9);
        assert!((b.hls.buffering_s - 6.9).abs() < 1e-9);
        assert_eq!(b.rtmp_units, 2);
        assert_eq!(b.hls_chunks, 1);
        assert_eq!(b.unmatched_chunks, 0);
    }

    #[test]
    fn seq_restart_joins_against_latest_run() {
        // Two runs back to back reuse seq 0; each delivery must join
        // against its own run's ChunkCompleted.
        let mut events = Vec::new();
        for (ready, avail) in [(3_000_000u64, 3_100_000u64), (20_000_000, 20_500_000)] {
            events.push(t(
                ready,
                TraceEvent::ChunkCompleted {
                    broadcast: 1,
                    seq: 0,
                    start_ts_us: 0,
                    duration_us: 3_000_000,
                    frames: 75,
                },
            ));
            events.push(t(
                avail + 100_000,
                TraceEvent::ChunkDelivered {
                    broadcast: 1,
                    viewer: 3,
                    seq: 0,
                    pop: 9,
                    available_at_pop_us: avail,
                    discovered_us: avail,
                    arrival_us: avail,
                    duration_us: 3_000_000,
                },
            ));
        }
        let b = TraceBreakdown::derive(&events);
        // run 1: 0.1 s, run 2: 0.5 s -> mean 0.3 s.
        assert!((b.hls.wowza2fastly_s - 0.3).abs() < 1e-9, "{b:?}");
        assert_eq!(b.unmatched_chunks, 0);
    }

    #[test]
    fn truncated_trace_counts_unmatched() {
        let events = vec![t(
            3_600_000,
            TraceEvent::ChunkDelivered {
                broadcast: 1,
                viewer: 3,
                seq: 9,
                pop: 9,
                available_at_pop_us: 3_100_000,
                discovered_us: 3_500_000,
                arrival_us: 3_600_000,
                duration_us: 3_000_000,
            },
        )];
        let b = TraceBreakdown::derive(&events);
        assert_eq!(b.unmatched_chunks, 1);
        assert_eq!(b.hls.wowza2fastly_s, 0.0);
        assert!(b.hls.polling_s > 0.0);
    }

    #[test]
    fn stage_labels_cover_all_six() {
        let labels: Vec<_> = DelayStage::all().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            [
                "upload",
                "chunking",
                "wowza2fastly",
                "polling",
                "last-mile",
                "buffering"
            ]
        );
    }
}
