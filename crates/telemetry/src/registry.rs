//! Metrics registry: counters, gauges, and log-bucketed histograms behind
//! pre-registered `Copy` handles.
//!
//! Registration happens at component-construction time and may hash/scan
//! names; the record path is `values[id] += n` with a bounds check — no
//! hashing, no locks, no global state. Ids from one registry are
//! meaningless in another; components re-register when they attach to a
//! new [`crate::Telemetry`] handle.

/// Handle to a registered counter (monotone u64).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(pub(crate) u32);

/// Handle to a registered gauge (last-write-wins i64).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(pub(crate) u32);

/// Handle to a registered log-bucketed histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(pub(crate) u32);

impl CounterId {
    /// Id handed out by disabled telemetry; never indexes anything.
    pub const INERT: CounterId = CounterId(u32::MAX);
}

impl GaugeId {
    /// Id handed out by disabled telemetry; never indexes anything.
    pub const INERT: GaugeId = GaugeId(u32::MAX);
}

impl HistogramId {
    /// Id handed out by disabled telemetry; never indexes anything.
    pub const INERT: HistogramId = HistogramId(u32::MAX);
}

// Defaulting to INERT lets instrumented components derive Default and
// only become live after `attach_telemetry`.
impl Default for CounterId {
    fn default() -> Self {
        CounterId::INERT
    }
}

impl Default for GaugeId {
    fn default() -> Self {
        GaugeId::INERT
    }
}

impl Default for HistogramId {
    fn default() -> Self {
        HistogramId::INERT
    }
}

/// Power-of-two-bucketed histogram over u64 samples.
///
/// Bucket `i` holds samples whose value needs `i` significant bits
/// (bucket 0 = {0}, bucket 1 = {1}, bucket 2 = {2,3}, bucket 3 = {4..8},
/// …), giving ~2× resolution across 19 decades in 65 fixed slots.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Bucket `i` counts samples needing `i` significant bits.
    pub buckets: [u64; 65],
    /// Total samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Smallest sample seen (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    #[inline]
    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Exact mean of all recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: walks buckets and returns the geometric
    /// midpoint of the one containing the target rank (exact at the
    /// recorded min/max for q=0/1).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min as f64;
        }
        if q >= 1.0 {
            return self.max as f64;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                if i == 0 {
                    return 0.0;
                }
                let lo = 1u64 << (i - 1);
                let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                return (lo as f64 * hi as f64)
                    .sqrt()
                    .clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }
}

#[derive(Default)]
pub(crate) struct Registry {
    counter_names: Vec<&'static str>,
    counters: Vec<u64>,
    gauge_names: Vec<&'static str>,
    gauges: Vec<i64>,
    histogram_names: Vec<&'static str>,
    histograms: Vec<Histogram>,
}

impl Registry {
    pub(crate) fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| *n == name) {
            return CounterId(i as u32);
        }
        self.counter_names.push(name);
        self.counters.push(0);
        CounterId((self.counters.len() - 1) as u32)
    }

    pub(crate) fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|n| *n == name) {
            return GaugeId(i as u32);
        }
        self.gauge_names.push(name);
        self.gauges.push(0);
        GaugeId((self.gauges.len() - 1) as u32)
    }

    pub(crate) fn histogram(&mut self, name: &'static str) -> HistogramId {
        if let Some(i) = self.histogram_names.iter().position(|n| *n == name) {
            return HistogramId(i as u32);
        }
        self.histogram_names.push(name);
        self.histograms.push(Histogram::default());
        HistogramId((self.histograms.len() - 1) as u32)
    }

    #[inline]
    pub(crate) fn add(&mut self, id: CounterId, n: u64) {
        if let Some(slot) = self.counters.get_mut(id.0 as usize) {
            *slot += n;
        }
    }

    #[inline]
    pub(crate) fn set_gauge(&mut self, id: GaugeId, value: i64) {
        if let Some(slot) = self.gauges.get_mut(id.0 as usize) {
            *slot = value;
        }
    }

    #[inline]
    pub(crate) fn record(&mut self, id: HistogramId, value: u64) {
        if let Some(h) = self.histograms.get_mut(id.0 as usize) {
            h.record(value);
        }
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counter_names
                .iter()
                .zip(&self.counters)
                .map(|(n, v)| (n.to_string(), *v))
                .collect(),
            gauges: self
                .gauge_names
                .iter()
                .zip(&self.gauges)
                .map(|(n, v)| (n.to_string(), *v))
                .collect(),
            histograms: self
                .histogram_names
                .iter()
                .zip(&self.histograms)
                .map(|(n, h)| (n.to_string(), h.clone()))
                .collect(),
        }
    }
}

/// Point-in-time copy of every metric, in registration order.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` per histogram.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// One metric per line, `name value` / `name count=.. mean=.. p50=..`.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter   {name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge     {name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} mean={:.1} p50={:.0} p99={:.0} max={}\n",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                if h.count == 0 { 0 } else { h.max },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_dedupes_by_name() {
        let mut r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        let c = r.counter("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        r.add(a, 2);
        r.add(b, 3);
        assert_eq!(r.snapshot().counter("x"), Some(5));
    }

    #[test]
    fn inert_ids_do_not_index() {
        let mut r = Registry::default();
        r.add(CounterId::INERT, 10);
        r.set_gauge(GaugeId::INERT, 10);
        r.record(HistogramId::INERT, 10);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
    }

    #[test]
    fn histogram_buckets_are_logarithmic() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count, 9);
        assert_eq!(h.buckets[0], 1, "zero bucket");
        assert_eq!(h.buckets[1], 1, "one bucket");
        assert_eq!(h.buckets[2], 2, "2..3");
        assert_eq!(h.buckets[3], 2, "4..7");
        assert_eq!(h.buckets[4], 1, "8..15");
        assert_eq!(h.buckets[10], 1, "512..1023");
        assert_eq!(h.buckets[64], 1, "top bucket");
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (q0, q50, q99, q100) = (
            h.quantile(0.0),
            h.quantile(0.5),
            h.quantile(0.99),
            h.quantile(1.0),
        );
        assert_eq!(q0, 1.0);
        assert_eq!(q100, 1000.0);
        assert!(q0 <= q50 && q50 <= q99 && q99 <= q100);
        // log-bucket approximation: p50 of 1..=1000 is within its 512..1023
        // neighbourhood, i.e. a factor-2 band around 500.
        assert!((250.0..=1000.0).contains(&q50), "p50 {q50}");
    }

    #[test]
    fn snapshot_renders_every_kind() {
        let mut r = Registry::default();
        let c = r.counter("frames");
        let g = r.gauge("depth");
        let h = r.histogram("delay_us");
        r.add(c, 3);
        r.set_gauge(g, -2);
        r.record(h, 100);
        let text = r.snapshot().render_ascii();
        assert!(text.contains("frames = 3"));
        assert!(text.contains("depth = -2"));
        assert!(text.contains("delay_us count=1"));
    }
}
