//! The workspace-wide `profile` convention: wall-clock section
//! histograms named `handler.<area>.<name>_ns`, plus their deterministic
//! export schema.
//!
//! Every crate that wants hot-path timing declares a [`Section`] per code
//! region and brackets the region with [`Section::begin`] /
//! [`Section::end`]. With the `profile` feature **off** (the default) a
//! `Section` is a zero-sized no-op — no wall-clock is ever read, so
//! traces stay a pure function of `(config, seed)`. With the feature on,
//! each `end` records the elapsed nanoseconds into a log-bucketed
//! histogram on the attached [`Telemetry`](crate::Telemetry) handle.
//!
//! Downstream crates forward their own `profile` feature to
//! `livescope-telemetry/profile`, so one `--features profile` anywhere
//! lights up every section in the dependency closure under a single
//! naming scheme and a single export format ([`profile_report_json`]).

use crate::registry::MetricsSnapshot;
use std::fmt::Write as _;

/// Prefix shared by every profile-section histogram.
pub const SECTION_PREFIX: &str = "handler.";

/// Suffix shared by every profile-section histogram.
pub const SECTION_SUFFIX: &str = "_ns";

#[cfg(feature = "profile")]
mod imp {
    use super::{SECTION_PREFIX, SECTION_SUFFIX};
    use crate::registry::HistogramId;
    use crate::Telemetry;

    /// One wall-clock profile section (`handler.<area>.<name>_ns`).
    #[derive(Clone, Debug, Default)]
    pub struct Section {
        telemetry: Telemetry,
        hist: HistogramId,
    }

    /// An in-flight measurement started by [`Section::begin`].
    #[derive(Debug)]
    pub struct SectionStamp {
        t0: std::time::Instant,
    }

    impl Section {
        /// Registers the section histogram on `telemetry`. The name is
        /// interned for the process lifetime (registration-time only).
        pub fn new(telemetry: &Telemetry, area: &str, name: &str) -> Section {
            let full = format!("{SECTION_PREFIX}{area}.{name}{SECTION_SUFFIX}");
            let leaked: &'static str = Box::leak(full.into_boxed_str());
            Section {
                telemetry: telemetry.clone(),
                hist: telemetry.histogram(leaked),
            }
        }

        /// Starts timing the section.
        #[inline]
        pub fn begin(&self) -> SectionStamp {
            SectionStamp {
                t0: std::time::Instant::now(),
            }
        }

        /// Stops timing and records the elapsed nanoseconds.
        #[inline]
        pub fn end(&self, stamp: SectionStamp) {
            let ns = stamp.t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.telemetry.record(self.hist, ns);
        }
    }
}

#[cfg(not(feature = "profile"))]
mod imp {
    use crate::Telemetry;

    /// One wall-clock profile section; inert without the `profile`
    /// feature (zero-sized, no clock reads, no registrations). The
    /// private field keeps the struct non-unit so `Section::default()`
    /// reads the same under both feature configurations.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Section {
        _inert: (),
    }

    /// An in-flight measurement started by [`Section::begin`]; inert
    /// without the `profile` feature.
    #[derive(Debug)]
    pub struct SectionStamp;

    impl Section {
        /// No-op registration (the `profile` feature is off).
        pub fn new(_telemetry: &Telemetry, _area: &str, _name: &str) -> Section {
            Section::default()
        }

        /// No-op begin.
        #[inline]
        pub fn begin(&self) -> SectionStamp {
            SectionStamp
        }

        /// No-op end.
        #[inline]
        pub fn end(&self, _stamp: SectionStamp) {}
    }
}

pub use imp::{Section, SectionStamp};

/// One section's aggregate statistics, as exported.
#[derive(Clone, Debug, PartialEq)]
pub struct SectionStats {
    /// Full histogram name (`handler.<area>.<name>_ns`).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Saturating sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Mean nanoseconds per sample.
    pub mean_ns: f64,
    /// Approximate p99, nanoseconds.
    pub p99_ns: f64,
    /// Largest sample, nanoseconds.
    pub max_ns: u64,
}

/// Extracts every `handler.*_ns` section from a snapshot, sorted by
/// descending total time (ties broken by name, so the export order is
/// deterministic for a given set of samples).
pub fn profile_sections(snapshot: &MetricsSnapshot) -> Vec<SectionStats> {
    let mut out: Vec<SectionStats> = snapshot
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with(SECTION_PREFIX) && name.ends_with(SECTION_SUFFIX))
        .map(|(name, h)| SectionStats {
            name: name.clone(),
            count: h.count,
            sum_ns: h.sum,
            mean_ns: h.mean(),
            p99_ns: h.quantile(0.99),
            max_ns: if h.count == 0 { 0 } else { h.max },
        })
        .collect();
    out.sort_by(|a, b| b.sum_ns.cmp(&a.sum_ns).then_with(|| a.name.cmp(&b.name)));
    out
}

/// The one export schema for profile sections: a JSON array of
/// `{"name","count","sum_ns","mean_ns","p99_ns","max_ns"}` objects in
/// [`profile_sections`] order. Every bench that reports profile data
/// embeds this shape.
pub fn profile_report_json(snapshot: &MetricsSnapshot) -> String {
    let mut s = String::from("[");
    for (i, sec) in profile_sections(snapshot).iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"count\":{},\"sum_ns\":{},\"mean_ns\":{:.1},\"p99_ns\":{:.0},\"max_ns\":{}}}",
            sec.name, sec.count, sec.sum_ns, sec.mean_ns, sec.p99_ns, sec.max_ns
        );
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn sections_export_sorted_by_total_time() {
        let t = Telemetry::recording(16);
        let a = t.histogram("handler.alpha.walk_ns");
        let b = t.histogram("handler.beta.merge_ns");
        let other = t.histogram("sim.event_wall_ns.unrelated");
        t.record(a, 10);
        t.record(b, 500);
        t.record(b, 500);
        t.record(other, 9_999);
        let secs = profile_sections(&t.snapshot());
        assert_eq!(secs.len(), 2);
        assert_eq!(secs[0].name, "handler.beta.merge_ns");
        assert_eq!(secs[0].count, 2);
        assert_eq!(secs[0].sum_ns, 1000);
        assert_eq!(secs[1].name, "handler.alpha.walk_ns");
        let json = profile_report_json(&t.snapshot());
        assert!(
            json.starts_with("[{\"name\":\"handler.beta.merge_ns\""),
            "{json}"
        );
    }

    #[test]
    fn section_helper_is_inert_or_recording_but_never_panics() {
        let t = Telemetry::recording(16);
        let sec = Section::new(&t, "test", "noop");
        let stamp = sec.begin();
        sec.end(stamp);
        // With `profile` off this registered nothing; with it on, exactly
        // one sample landed in the section histogram.
        let recorded: u64 = profile_sections(&t.snapshot())
            .iter()
            .map(|s| s.count)
            .sum();
        assert!(recorded <= 1);
        if cfg!(feature = "profile") {
            assert_eq!(recorded, 1);
        }
        // A disabled handle is always safe too.
        let off = Section::new(&Telemetry::disabled(), "test", "off");
        off.end(off.begin());
    }
}
