//! Trace sinks: bounded in-memory ring or streaming JSONL writer.

use crate::event::TimedEvent;
use std::collections::VecDeque;
use std::io::Write;

/// Where emitted events go.
pub(crate) enum TraceSink {
    /// Bounded ring buffer; once full the oldest event is dropped and the
    /// drop counter incremented, so long runs stay memory-bounded.
    Memory {
        buf: VecDeque<TimedEvent>,
        capacity: usize,
        dropped: u64,
    },
    /// Each event is serialized to one JSON line as it arrives; nothing is
    /// retained in memory.
    Jsonl { out: Box<dyn Write + Send> },
}

impl TraceSink {
    pub(crate) fn memory(capacity: usize) -> Self {
        TraceSink::Memory {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn jsonl(out: Box<dyn Write + Send>) -> Self {
        TraceSink::Jsonl { out }
    }

    pub(crate) fn push(&mut self, event: TimedEvent) {
        match self {
            TraceSink::Memory {
                buf,
                capacity,
                dropped,
            } => {
                if *capacity == 0 {
                    *dropped += 1;
                    return;
                }
                if buf.len() == *capacity {
                    buf.pop_front();
                    *dropped += 1;
                }
                buf.push_back(event);
            }
            TraceSink::Jsonl { out } => {
                let line = event.to_json_line();
                // Trace output is best-effort: a closed pipe should not
                // bring down the simulation.
                let _ = out.write_all(line.as_bytes());
                let _ = out.write_all(b"\n");
            }
        }
    }

    pub(crate) fn buffered(&self) -> Vec<TimedEvent> {
        match self {
            TraceSink::Memory { buf, .. } => buf.iter().cloned().collect(),
            TraceSink::Jsonl { .. } => Vec::new(),
        }
    }

    pub(crate) fn dropped(&self) -> u64 {
        match self {
            TraceSink::Memory { dropped, .. } => *dropped,
            TraceSink::Jsonl { .. } => 0,
        }
    }

    pub(crate) fn flush(&mut self) {
        if let TraceSink::Jsonl { out } = self {
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn ev(t: u64) -> TimedEvent {
        TimedEvent {
            t_us: t,
            event: TraceEvent::PollMiss {
                broadcast: 1,
                pop: 0,
            },
        }
    }

    #[test]
    fn zero_capacity_buffer_only_counts() {
        let mut sink = TraceSink::memory(0);
        sink.push(ev(1));
        sink.push(ev(2));
        assert!(sink.buffered().is_empty());
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn ring_keeps_newest() {
        let mut sink = TraceSink::memory(3);
        for t in 0..10 {
            sink.push(ev(t));
        }
        let kept: Vec<u64> = sink.buffered().iter().map(|e| e.t_us).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert_eq!(sink.dropped(), 7);
    }
}
