//! Minimal HTTP/1.1-shaped framing for the HLS polling path.
//!
//! HLS viewers (and our crawler's high-frequency poller) fetch the
//! chunklist and chunks over plain GETs; Fastly answers with `200`, `304
//! Not Modified` (chunklist unchanged since the given sequence) or `404`.
//! Only the small subset of HTTP the simulation needs is implemented; the
//! parser is strict about structure and bounded on sizes.

use bytes::Bytes;
use std::fmt;

use crate::wire::WireError;

/// Largest accepted header block, bytes.
const MAX_HEAD: usize = 8 * 1024;
/// Largest accepted body, bytes (a chunk of 10 s of video fits well under).
const MAX_BODY: usize = crate::wire::MAX_FIELD_LEN;

/// Request methods the simulation uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Method {
    Get,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("GET")
    }
}

/// A parsed request.
#[derive(Clone, PartialEq, Debug)]
pub struct Request {
    pub method: Method,
    pub path: String,
    /// `(name, value)` pairs, order preserved, names lower-cased.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// Builds a GET for `path`.
    pub fn get(path: impl Into<String>) -> Self {
        Request {
            method: Method::Get,
            path: path.into(),
            headers: Vec::new(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl fmt::Display) -> Self {
        self.headers
            .push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// First value of a header, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes onto the wire.
    pub fn encode(&self) -> Bytes {
        let mut s = format!("{} {} HTTP/1.1\r\n", self.method, self.path);
        for (n, v) in &self.headers {
            s.push_str(&format!("{n}: {v}\r\n"));
        }
        s.push_str("\r\n");
        Bytes::from(s)
    }

    /// Parses a request off the wire.
    pub fn decode(wire: &[u8]) -> Result<Self, WireError> {
        let (head, rest) = split_head(wire)?;
        if !rest.is_empty() {
            return Err(WireError::Invalid("request has unexpected body"));
        }
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or(WireError::Invalid("empty request"))?;
        let mut parts = request_line.split(' ');
        let method = match parts.next() {
            Some("GET") => Method::Get,
            _ => return Err(WireError::Invalid("unsupported method")),
        };
        let path = parts
            .next()
            .ok_or(WireError::Invalid("missing path"))?
            .to_string();
        if parts.next() != Some("HTTP/1.1") {
            return Err(WireError::Invalid("unsupported HTTP version"));
        }
        let headers = parse_headers(lines)?;
        Ok(Request {
            method,
            path,
            headers,
        })
    }
}

/// Response status codes the simulation uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    Ok,
    NotModified,
    NotFound,
}

impl Status {
    fn code(&self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::NotModified => 304,
            Status::NotFound => 404,
        }
    }

    fn reason(&self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::NotModified => "Not Modified",
            Status::NotFound => "Not Found",
        }
    }

    fn from_code(code: u16) -> Result<Self, WireError> {
        match code {
            200 => Ok(Status::Ok),
            304 => Ok(Status::NotModified),
            404 => Ok(Status::NotFound),
            _ => Err(WireError::Invalid("unknown status code")),
        }
    }
}

/// A parsed response.
#[derive(Clone, PartialEq, Debug)]
pub struct Response {
    pub status: Status,
    pub headers: Vec<(String, String)>,
    pub body: Bytes,
}

impl Response {
    /// A `200 OK` carrying `body`.
    pub fn ok(body: Bytes) -> Self {
        Response {
            status: Status::Ok,
            headers: Vec::new(),
            body,
        }
    }

    /// A bodyless status response.
    pub fn status_only(status: Status) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl fmt::Display) -> Self {
        self.headers
            .push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// First value of a header, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes onto the wire (Content-Length is always emitted).
    pub fn encode(&self) -> Bytes {
        let mut s = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status.code(),
            self.status.reason()
        );
        for (n, v) in &self.headers {
            s.push_str(&format!("{n}: {v}\r\n"));
        }
        s.push_str(&format!("content-length: {}\r\n\r\n", self.body.len()));
        let mut out = s.into_bytes();
        out.extend_from_slice(&self.body);
        Bytes::from(out)
    }

    /// Parses a response off the wire.
    pub fn decode(wire: &[u8]) -> Result<Self, WireError> {
        let (head, rest) = split_head(wire)?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or(WireError::Invalid("empty response"))?;
        let mut parts = status_line.splitn(3, ' ');
        if parts.next() != Some("HTTP/1.1") {
            return Err(WireError::Invalid("unsupported HTTP version"));
        }
        let code: u16 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or(WireError::Invalid("bad status code"))?;
        let status = Status::from_code(code)?;
        let headers = parse_headers(lines)?;
        let content_length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or(WireError::Invalid("missing content-length"))?;
        if content_length > MAX_BODY {
            return Err(WireError::OversizedField {
                len: content_length,
            });
        }
        if rest.len() != content_length {
            return Err(WireError::Truncated {
                needed: content_length,
                available: rest.len(),
            });
        }
        let headers = headers
            .into_iter()
            .filter(|(n, _)| n != "content-length")
            .collect();
        Ok(Response {
            status,
            headers,
            body: Bytes::copy_from_slice(rest),
        })
    }
}

/// Splits `wire` at the `\r\n\r\n` head/body boundary.
fn split_head(wire: &[u8]) -> Result<(&str, &[u8]), WireError> {
    let boundary = wire
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(WireError::Invalid("missing header terminator"))?;
    if boundary > MAX_HEAD {
        return Err(WireError::OversizedField { len: boundary });
    }
    let head = std::str::from_utf8(&wire[..boundary]).map_err(|_| WireError::BadUtf8)?;
    Ok((head, &wire[boundary + 4..]))
}

fn parse_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Vec<(String, String)>, WireError> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(WireError::Invalid("malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let req = Request::get("/bcast/42/chunklist.m3u8").with_header("X-Have-Seq", 17);
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
        assert_eq!(decoded.header("x-have-seq"), Some("17"));
        assert_eq!(decoded.header("missing"), None);
    }

    #[test]
    fn response_roundtrips_with_body() {
        let resp = Response::ok(Bytes::from_static(b"#EXTM3U\n")).with_header("X-Chunk-Seq", 3);
        let decoded = Response::decode(&resp.encode()).unwrap();
        assert_eq!(decoded.status, Status::Ok);
        assert_eq!(decoded.body, Bytes::from_static(b"#EXTM3U\n"));
        assert_eq!(decoded.header("x-chunk-seq"), Some("3"));
    }

    #[test]
    fn bodyless_statuses_roundtrip() {
        for status in [Status::NotModified, Status::NotFound] {
            let decoded = Response::decode(&Response::status_only(status).encode()).unwrap();
            assert_eq!(decoded.status, status);
            assert!(decoded.body.is_empty());
        }
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let wire = b"HTTP/1.1 200 OK\r\nX-THING: 5\r\ncontent-length: 0\r\n\r\n";
        let resp = Response::decode(wire).unwrap();
        assert_eq!(resp.header("x-thing"), Some("5"));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(Request::decode(b"garbage").is_err());
        assert!(Request::decode(b"POST / HTTP/1.1\r\n\r\n").is_err());
        assert!(Request::decode(b"GET / HTTP/1.0\r\n\r\n").is_err());
        assert!(Response::decode(b"HTTP/1.1 999 Weird\r\ncontent-length: 0\r\n\r\n").is_err());
        assert!(Response::decode(b"HTTP/1.1 200 OK\r\n\r\n").is_err()); // no content-length
                                                                        // body shorter than declared
        assert!(Response::decode(b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nabc").is_err());
    }

    #[test]
    fn request_with_body_is_rejected() {
        assert!(Request::decode(b"GET / HTTP/1.1\r\n\r\nbody").is_err());
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let wire = format!(
            "HTTP/1.1 200 OK\r\ncontent-length: {}\r\n\r\n",
            usize::MAX / 2
        );
        assert!(matches!(
            Response::decode(wire.as_bytes()),
            Err(WireError::OversizedField { .. })
        ));
    }
}
