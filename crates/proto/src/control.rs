//! Control-plane messages and the modelled-encrypted envelope.
//!
//! The Periscope server itself "only acts as a control panel" (§4.1): over
//! HTTPS it hands out broadcast tokens, stream URLs and the global
//! broadcast list. We model that channel with [`Sealed`], a toy
//! authenticated stream cipher (splitmix64 keystream + keyed checksum).
//! **It is not real cryptography** — see DESIGN.md — but it preserves the
//! property the §7 security analysis needs: an on-path attacker can read
//! and forge RTMP (plaintext) but can neither read nor forge the control
//! channel, so the broadcast token is only exposed when the *client*
//! re-sends it over plaintext RTMP.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use std::str::FromStr;

use crate::wire::{
    expect_eof, get_bytes, get_string, get_u32, get_u64, get_u8, put_bytes, put_string, WireError,
};

/// Magic prefix of a sealed envelope ("LSS1").
pub const SEALED_MAGIC: u32 = 0x4C53_5331;
/// Magic prefix of a plaintext control message ("LSK1").
pub const CONTROL_MAGIC: u32 = 0x4C53_4B31;

/// Transport protocol of a stream URL.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scheme {
    /// Low-latency push from a Wowza datacenter.
    Rtmp,
    /// Chunked poll from a Fastly POP.
    Hls,
}

/// A stream endpoint: which protocol, which datacenter, which broadcast.
///
/// Rendered like `rtmp://dc-3.livescope/bcast/42`. The crawler manipulates
/// these as text — the paper's authors "deleted the RTMP url manually,
/// forcing the smartphone to connect to the HLS server", and our controlled
/// experiments do exactly the same edit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StreamUrl {
    pub scheme: Scheme,
    /// Datacenter id from `livescope-net`'s registry.
    pub dc: u16,
    pub broadcast_id: u64,
}

impl fmt::Display for StreamUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let scheme = match self.scheme {
            Scheme::Rtmp => "rtmp",
            Scheme::Hls => "hls",
        };
        write!(
            f,
            "{scheme}://dc-{}.livescope/bcast/{}",
            self.dc, self.broadcast_id
        )
    }
}

impl FromStr for StreamUrl {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, WireError> {
        let (scheme, rest) = s
            .split_once("://")
            .ok_or(WireError::Invalid("missing scheme"))?;
        let scheme = match scheme {
            "rtmp" => Scheme::Rtmp,
            "hls" => Scheme::Hls,
            _ => return Err(WireError::Invalid("unknown scheme")),
        };
        let rest = rest
            .strip_prefix("dc-")
            .ok_or(WireError::Invalid("missing datacenter host"))?;
        let (dc, rest) = rest
            .split_once(".livescope/bcast/")
            .ok_or(WireError::Invalid("malformed stream path"))?;
        let dc = dc.parse().map_err(|_| WireError::Invalid("bad dc id"))?;
        let broadcast_id = rest
            .parse()
            .map_err(|_| WireError::Invalid("bad broadcast id"))?;
        Ok(StreamUrl {
            scheme,
            dc,
            broadcast_id,
        })
    }
}

/// Summary row of the global broadcast list (50 random active broadcasts
/// per query, §3.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BroadcastSummary {
    pub broadcast_id: u64,
    pub broadcaster_id: u64,
    /// Broadcast start, µs of simulation time.
    pub started_ts_us: u64,
}

/// Client → control-server messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ControlRequest {
    /// Start a broadcast; the server allocates an id, token and URLs.
    CreateBroadcast { user_id: u64 },
    /// End a broadcast (authenticated by token).
    EndBroadcast { broadcast_id: u64, token: String },
    /// Join a broadcast as a viewer.
    Join { broadcast_id: u64, user_id: u64 },
    /// Fetch the 50-sample global list.
    GlobalList,
}

/// Control-server → client messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ControlResponse {
    /// Broadcast created.
    Created {
        broadcast_id: u64,
        /// The secret the broadcaster later replays — in plaintext — over
        /// RTMP. This is where the §7 story starts.
        token: String,
        rtmp_url: StreamUrl,
        hls_url: StreamUrl,
    },
    /// Join admitted. `rtmp_url` is present only while the broadcast has
    /// RTMP slots left (the first ~100 viewers); every viewer gets the HLS
    /// URL. `can_comment` mirrors RTMP admission (§4.1).
    JoinInfo {
        rtmp_url: Option<StreamUrl>,
        hls_url: StreamUrl,
        can_comment: bool,
    },
    /// The 50-sample global list.
    GlobalList(Vec<BroadcastSummary>),
    /// Generic acknowledgement.
    Ok,
    /// Request failed.
    Error(String),
}

const REQ_CREATE: u8 = 1;
const REQ_END: u8 = 2;
const REQ_JOIN: u8 = 3;
const REQ_LIST: u8 = 4;

const RESP_CREATED: u8 = 1;
const RESP_JOIN: u8 = 2;
const RESP_LIST: u8 = 3;
const RESP_OK: u8 = 4;
const RESP_ERROR: u8 = 5;

fn put_url(out: &mut BytesMut, url: &StreamUrl) {
    put_string(out, &url.to_string());
}

fn get_url(buf: &mut Bytes) -> Result<StreamUrl, WireError> {
    get_string(buf)?.parse()
}

impl ControlRequest {
    /// Encodes the plaintext form (callers normally wrap in [`Sealed`]).
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(32);
        out.put_u32(CONTROL_MAGIC);
        match self {
            ControlRequest::CreateBroadcast { user_id } => {
                out.put_u8(REQ_CREATE);
                out.put_u64(*user_id);
            }
            ControlRequest::EndBroadcast {
                broadcast_id,
                token,
            } => {
                out.put_u8(REQ_END);
                out.put_u64(*broadcast_id);
                put_string(&mut out, token);
            }
            ControlRequest::Join {
                broadcast_id,
                user_id,
            } => {
                out.put_u8(REQ_JOIN);
                out.put_u64(*broadcast_id);
                out.put_u64(*user_id);
            }
            ControlRequest::GlobalList => out.put_u8(REQ_LIST),
        }
        out.freeze()
    }

    /// Decodes the plaintext form.
    pub fn decode(mut buf: Bytes) -> Result<Self, WireError> {
        let magic = get_u32(&mut buf)?;
        if magic != CONTROL_MAGIC {
            return Err(WireError::BadMagic {
                expected: CONTROL_MAGIC,
                found: magic,
            });
        }
        let msg = match get_u8(&mut buf)? {
            REQ_CREATE => ControlRequest::CreateBroadcast {
                user_id: get_u64(&mut buf)?,
            },
            REQ_END => ControlRequest::EndBroadcast {
                broadcast_id: get_u64(&mut buf)?,
                token: get_string(&mut buf)?,
            },
            REQ_JOIN => ControlRequest::Join {
                broadcast_id: get_u64(&mut buf)?,
                user_id: get_u64(&mut buf)?,
            },
            REQ_LIST => ControlRequest::GlobalList,
            other => return Err(WireError::UnknownTag(other)),
        };
        expect_eof(&buf)?;
        Ok(msg)
    }
}

impl ControlResponse {
    /// Encodes the plaintext form.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(64);
        out.put_u32(CONTROL_MAGIC);
        match self {
            ControlResponse::Created {
                broadcast_id,
                token,
                rtmp_url,
                hls_url,
            } => {
                out.put_u8(RESP_CREATED);
                out.put_u64(*broadcast_id);
                put_string(&mut out, token);
                put_url(&mut out, rtmp_url);
                put_url(&mut out, hls_url);
            }
            ControlResponse::JoinInfo {
                rtmp_url,
                hls_url,
                can_comment,
            } => {
                out.put_u8(RESP_JOIN);
                match rtmp_url {
                    Some(url) => {
                        out.put_u8(1);
                        put_url(&mut out, url);
                    }
                    None => out.put_u8(0),
                }
                put_url(&mut out, hls_url);
                out.put_u8(*can_comment as u8);
            }
            ControlResponse::GlobalList(items) => {
                out.put_u8(RESP_LIST);
                out.put_u32(items.len() as u32);
                for item in items {
                    out.put_u64(item.broadcast_id);
                    out.put_u64(item.broadcaster_id);
                    out.put_u64(item.started_ts_us);
                }
            }
            ControlResponse::Ok => out.put_u8(RESP_OK),
            ControlResponse::Error(text) => {
                out.put_u8(RESP_ERROR);
                put_string(&mut out, text);
            }
        }
        out.freeze()
    }

    /// Decodes the plaintext form.
    pub fn decode(mut buf: Bytes) -> Result<Self, WireError> {
        let magic = get_u32(&mut buf)?;
        if magic != CONTROL_MAGIC {
            return Err(WireError::BadMagic {
                expected: CONTROL_MAGIC,
                found: magic,
            });
        }
        let msg = match get_u8(&mut buf)? {
            RESP_CREATED => ControlResponse::Created {
                broadcast_id: get_u64(&mut buf)?,
                token: get_string(&mut buf)?,
                rtmp_url: get_url(&mut buf)?,
                hls_url: get_url(&mut buf)?,
            },
            RESP_JOIN => {
                let rtmp_url = match get_u8(&mut buf)? {
                    0 => None,
                    1 => Some(get_url(&mut buf)?),
                    _ => return Err(WireError::Invalid("bad option tag")),
                };
                let hls_url = get_url(&mut buf)?;
                let can_comment = match get_u8(&mut buf)? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Invalid("bad bool")),
                };
                ControlResponse::JoinInfo {
                    rtmp_url,
                    hls_url,
                    can_comment,
                }
            }
            RESP_LIST => {
                let n = get_u32(&mut buf)? as usize;
                if n > 100_000 {
                    return Err(WireError::OversizedField { len: n });
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(BroadcastSummary {
                        broadcast_id: get_u64(&mut buf)?,
                        broadcaster_id: get_u64(&mut buf)?,
                        started_ts_us: get_u64(&mut buf)?,
                    });
                }
                ControlResponse::GlobalList(items)
            }
            RESP_OK => ControlResponse::Ok,
            RESP_ERROR => ControlResponse::Error(get_string(&mut buf)?),
            other => return Err(WireError::UnknownTag(other)),
        };
        expect_eof(&buf)?;
        Ok(msg)
    }
}

/// A sealed (modelled-encrypted, integrity-protected) envelope.
///
/// Construction: `magic ‖ nonce ‖ tag ‖ body⊕keystream(key, nonce)` where
/// the keystream is splitmix64 iterated from `key ⊕ nonce` and the tag is a
/// keyed 64-bit checksum of the plaintext. An attacker without `key` sees
/// only ciphertext; any bit-flip fails the tag check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Sealed {
    wire: Bytes,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn keystream_xor(data: &mut [u8], key: u64, nonce: u64) {
    let mut state = splitmix64(key ^ splitmix64(nonce));
    for block in data.chunks_mut(8) {
        state = splitmix64(state);
        for (b, k) in block.iter_mut().zip(state.to_be_bytes()) {
            *b ^= k;
        }
    }
}

fn tag_of(plaintext: &[u8], key: u64, nonce: u64) -> u64 {
    let mut acc = splitmix64(key.rotate_left(13) ^ nonce);
    for block in plaintext.chunks(8) {
        let mut word = [0u8; 8];
        word[..block.len()].copy_from_slice(block);
        acc = splitmix64(acc ^ u64::from_be_bytes(word));
    }
    acc
}

impl Sealed {
    /// Seals `plaintext` under `key` with the caller-chosen `nonce` (the
    /// control plane uses a per-session counter).
    pub fn seal(plaintext: &[u8], key: u64, nonce: u64) -> Sealed {
        let tag = tag_of(plaintext, key, nonce);
        let mut body = plaintext.to_vec();
        keystream_xor(&mut body, key, nonce);
        let mut out = BytesMut::with_capacity(24 + body.len());
        out.put_u32(SEALED_MAGIC);
        out.put_u64(nonce);
        out.put_u64(tag);
        put_bytes(&mut out, &body);
        Sealed { wire: out.freeze() }
    }

    /// The opaque wire form (what an on-path attacker can observe).
    pub fn wire(&self) -> &Bytes {
        &self.wire
    }

    /// Re-wraps observed wire bytes (attacker's view or transport replay).
    pub fn from_wire(wire: Bytes) -> Sealed {
        Sealed { wire }
    }

    /// Reads the envelope's (plaintext) nonce without opening it — the
    /// receiver's anti-replay check needs it before decryption.
    pub fn peek_nonce(&self) -> Result<u64, WireError> {
        let mut buf = self.wire.clone();
        let magic = get_u32(&mut buf)?;
        if magic != SEALED_MAGIC {
            return Err(WireError::BadMagic {
                expected: SEALED_MAGIC,
                found: magic,
            });
        }
        get_u64(&mut buf)
    }

    /// Opens the envelope, verifying the integrity tag.
    pub fn unseal(&self, key: u64) -> Result<Bytes, WireError> {
        let mut buf = self.wire.clone();
        let magic = get_u32(&mut buf)?;
        if magic != SEALED_MAGIC {
            return Err(WireError::BadMagic {
                expected: SEALED_MAGIC,
                found: magic,
            });
        }
        let nonce = get_u64(&mut buf)?;
        let tag = get_u64(&mut buf)?;
        let body = get_bytes(&mut buf)?;
        expect_eof(&buf)?;
        let mut plaintext = body.to_vec();
        keystream_xor(&mut plaintext, key, nonce);
        if tag_of(&plaintext, key, nonce) != tag {
            return Err(WireError::Invalid("sealed envelope failed integrity check"));
        }
        Ok(Bytes::from(plaintext))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(scheme: Scheme) -> StreamUrl {
        StreamUrl {
            scheme,
            dc: 3,
            broadcast_id: 42,
        }
    }

    #[test]
    fn stream_url_roundtrips() {
        for scheme in [Scheme::Rtmp, Scheme::Hls] {
            let u = url(scheme);
            let parsed: StreamUrl = u.to_string().parse().unwrap();
            assert_eq!(parsed, u);
        }
        assert_eq!(
            url(Scheme::Rtmp).to_string(),
            "rtmp://dc-3.livescope/bcast/42"
        );
    }

    #[test]
    fn stream_url_rejects_malformed() {
        for bad in [
            "nonsense",
            "ftp://dc-1.livescope/bcast/1",
            "rtmp://host/bcast/1",
            "rtmp://dc-x.livescope/bcast/1",
            "rtmp://dc-1.livescope/bcast/notanumber",
        ] {
            assert!(bad.parse::<StreamUrl>().is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn all_requests_roundtrip() {
        let reqs = vec![
            ControlRequest::CreateBroadcast { user_id: 7 },
            ControlRequest::EndBroadcast {
                broadcast_id: 42,
                token: "tok".into(),
            },
            ControlRequest::Join {
                broadcast_id: 42,
                user_id: 9,
            },
            ControlRequest::GlobalList,
        ];
        for req in reqs {
            assert_eq!(ControlRequest::decode(req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn all_responses_roundtrip() {
        let resps = vec![
            ControlResponse::Created {
                broadcast_id: 42,
                token: "secret".into(),
                rtmp_url: url(Scheme::Rtmp),
                hls_url: url(Scheme::Hls),
            },
            ControlResponse::JoinInfo {
                rtmp_url: Some(url(Scheme::Rtmp)),
                hls_url: url(Scheme::Hls),
                can_comment: true,
            },
            ControlResponse::JoinInfo {
                rtmp_url: None,
                hls_url: url(Scheme::Hls),
                can_comment: false,
            },
            ControlResponse::GlobalList(vec![
                BroadcastSummary {
                    broadcast_id: 1,
                    broadcaster_id: 2,
                    started_ts_us: 3,
                },
                BroadcastSummary {
                    broadcast_id: 4,
                    broadcaster_id: 5,
                    started_ts_us: 6,
                },
            ]),
            ControlResponse::Ok,
            ControlResponse::Error("rate limited".into()),
        ];
        for resp in resps {
            assert_eq!(ControlResponse::decode(resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn sealed_roundtrips_under_the_right_key() {
        let req = ControlRequest::CreateBroadcast { user_id: 7 };
        let sealed = Sealed::seal(&req.encode(), 0xDEAD_BEEF, 1);
        let opened = sealed.unseal(0xDEAD_BEEF).unwrap();
        assert_eq!(ControlRequest::decode(opened).unwrap(), req);
    }

    #[test]
    fn sealed_hides_the_plaintext() {
        // The token must NOT be findable in the sealed wire bytes — this is
        // the property that makes the RTMP path (not HTTPS) the weak link.
        let resp = ControlResponse::Created {
            broadcast_id: 42,
            token: "super-secret-token".into(),
            rtmp_url: url(Scheme::Rtmp),
            hls_url: url(Scheme::Hls),
        };
        let sealed = Sealed::seal(&resp.encode(), 0x1234, 9);
        let wire = sealed.wire();
        let needle = b"super-secret-token";
        assert!(
            !wire.windows(needle.len()).any(|w| w == needle),
            "sealed envelope leaked plaintext"
        );
    }

    #[test]
    fn wrong_key_fails_to_unseal() {
        let sealed = Sealed::seal(b"payload", 1, 2);
        assert!(sealed.unseal(3).is_err());
    }

    #[test]
    fn tampering_is_detected() {
        let sealed = Sealed::seal(b"attack at dawn", 1, 2);
        let mut wire = BytesMut::from(&sealed.wire()[..]);
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        let tampered = Sealed::from_wire(wire.freeze());
        assert!(tampered.unseal(1).is_err());
    }

    #[test]
    fn different_nonces_produce_different_ciphertexts() {
        let a = Sealed::seal(b"same plaintext", 5, 1);
        let b = Sealed::seal(b"same plaintext", 5, 2);
        assert_ne!(a.wire(), b.wire());
    }

    #[test]
    fn empty_plaintext_seals() {
        let sealed = Sealed::seal(b"", 5, 1);
        assert_eq!(sealed.unseal(5).unwrap().len(), 0);
    }
}
