//! The RTMP-shaped ingest / low-latency distribution protocol.
//!
//! Shape follows what the paper reverse-engineered (§4.1, §7.1):
//!
//! * the client keeps one persistent connection per broadcast;
//! * after a trivial handshake, the client sends a **plaintext** connect
//!   message carrying the broadcast token it got from the control plane —
//!   readable (and replayable) by anyone on-path, which is vulnerability
//!   ingredient (1);
//! * video travels as individual ~40 ms frames, pushed by the server to
//!   subscribers as soon as they arrive; frames are **unencrypted and
//!   unauthenticated**, vulnerability ingredient (2);
//! * each keyframe's metadata embeds the capture timestamp recorded by the
//!   broadcaster's device — the paper extracted its timestamp ① from this
//!   field, and so does our crawler;
//! * the §7.2 defense adds an optional signature field to frame metadata;
//!   the codec carries it opaquely, `livescope-security` fills and checks
//!   it.

use bytes::{BufMut, Bytes, BytesMut};

use crate::wire::{
    ensure, expect_eof, get_bytes, get_string, get_u16, get_u32, get_u64, get_u8, put_bytes,
    put_string, WireError,
};

/// Magic prefix of every RTMP-shaped message ("LSR1").
pub const RTMP_MAGIC: u32 = 0x4C53_5231;
/// Protocol version this codec speaks.
pub const RTMP_VERSION: u8 = 1;
/// Nominal frame spacing: the paper reports ≈40 ms frames (25 fps).
pub const FRAME_INTERVAL_MS: u64 = 40;

const TAG_HANDSHAKE: u8 = 0x01;
const TAG_CONNECT: u8 = 0x02;
const TAG_FRAME: u8 = 0x03;
const TAG_ACK: u8 = 0x04;
const TAG_CLOSE: u8 = 0x05;

const FLAG_KEYFRAME: u8 = 0b0000_0001;
const FLAG_SIGNED: u8 = 0b0000_0010;

/// Whether a connection uploads or downloads video.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// The broadcaster pushing frames up to Wowza.
    Publisher,
    /// A viewer receiving pushed frames from Wowza.
    Subscriber,
}

/// Frame metadata carried alongside the payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FrameMeta {
    /// Monotonic frame index within the broadcast.
    pub sequence: u64,
    /// Capture timestamp from the broadcaster's device clock, µs. The paper
    /// notes this "may not always be a universal timestamp"; server-side
    /// delay accounting therefore never mixes it with server clocks.
    pub capture_ts_us: u64,
    /// True for keyframes (paper: capture timestamps ride on keyframes).
    pub keyframe: bool,
    /// §7.2 integrity signature over [`VideoFrame::signable_bytes`], if the
    /// broadcaster signs its stream. Empty-capable, bounded at `u16` len.
    pub signature: Option<Bytes>,
}

/// One video frame on the wire.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VideoFrame {
    pub meta: FrameMeta,
    pub payload: Bytes,
}

impl VideoFrame {
    /// An unsigned frame.
    pub fn new(sequence: u64, capture_ts_us: u64, keyframe: bool, payload: Bytes) -> Self {
        VideoFrame {
            meta: FrameMeta {
                sequence,
                capture_ts_us,
                keyframe,
                signature: None,
            },
            payload,
        }
    }

    /// The canonical bytes an integrity signature covers: sequence,
    /// capture timestamp, keyframe flag and payload. The signature field
    /// itself is excluded, so signing and verifying agree by construction.
    pub fn signable_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(17 + self.payload.len());
        v.extend_from_slice(&self.meta.sequence.to_be_bytes());
        v.extend_from_slice(&self.meta.capture_ts_us.to_be_bytes());
        v.push(self.meta.keyframe as u8);
        v.extend_from_slice(&self.payload);
        v
    }

    /// Encoded size of this frame's body (without the message header).
    pub fn encoded_len(&self) -> usize {
        let sig = self.meta.signature.as_ref().map_or(0, |s| 2 + s.len());
        8 + 8 + 1 + sig + 4 + self.payload.len()
    }

    pub(crate) fn encode_body(&self, out: &mut BytesMut) {
        out.put_u64(self.meta.sequence);
        out.put_u64(self.meta.capture_ts_us);
        let mut flags = 0u8;
        if self.meta.keyframe {
            flags |= FLAG_KEYFRAME;
        }
        if self.meta.signature.is_some() {
            flags |= FLAG_SIGNED;
        }
        out.put_u8(flags);
        if let Some(sig) = &self.meta.signature {
            assert!(sig.len() <= u16::MAX as usize, "signature too large");
            out.put_u16(sig.len() as u16);
            out.put_slice(sig);
        }
        put_bytes(out, &self.payload);
    }

    pub(crate) fn decode_body(buf: &mut Bytes) -> Result<Self, WireError> {
        let sequence = get_u64(buf)?;
        let capture_ts_us = get_u64(buf)?;
        let flags = get_u8(buf)?;
        if flags & !(FLAG_KEYFRAME | FLAG_SIGNED) != 0 {
            return Err(WireError::Invalid("unknown frame flags"));
        }
        let signature = if flags & FLAG_SIGNED != 0 {
            let len = get_u16(buf)? as usize;
            ensure(buf, len)?;
            Some(buf.split_to(len))
        } else {
            None
        };
        let payload = get_bytes(buf)?;
        Ok(VideoFrame {
            meta: FrameMeta {
                sequence,
                capture_ts_us,
                keyframe: flags & FLAG_KEYFRAME != 0,
                signature,
            },
            payload,
        })
    }
}

/// A complete RTMP-shaped message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RtmpMessage {
    /// Connection opener; the nonce makes captures distinguishable.
    Handshake { nonce: u64 },
    /// Plaintext session establishment — the token is readable on-path.
    Connect {
        token: String,
        role: Role,
        user_id: u64,
    },
    /// One pushed video frame.
    Frame(VideoFrame),
    /// Flow-control acknowledgement of a frame sequence.
    Ack { sequence: u64 },
    /// Orderly end of stream.
    Close,
}

impl RtmpMessage {
    /// Encodes the message, header included.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(64);
        out.put_u32(RTMP_MAGIC);
        out.put_u8(RTMP_VERSION);
        match self {
            RtmpMessage::Handshake { nonce } => {
                out.put_u8(TAG_HANDSHAKE);
                out.put_u64(*nonce);
            }
            RtmpMessage::Connect {
                token,
                role,
                user_id,
            } => {
                out.put_u8(TAG_CONNECT);
                put_string(&mut out, token);
                out.put_u8(match role {
                    Role::Publisher => 0,
                    Role::Subscriber => 1,
                });
                out.put_u64(*user_id);
            }
            RtmpMessage::Frame(frame) => {
                out.put_u8(TAG_FRAME);
                frame.encode_body(&mut out);
            }
            RtmpMessage::Ack { sequence } => {
                out.put_u8(TAG_ACK);
                out.put_u64(*sequence);
            }
            RtmpMessage::Close => {
                out.put_u8(TAG_CLOSE);
            }
        }
        out.freeze()
    }

    /// Decodes one message, requiring the buffer to contain exactly one.
    pub fn decode(mut buf: Bytes) -> Result<Self, WireError> {
        let msg = Self::decode_prefix(&mut buf)?;
        expect_eof(&buf)?;
        Ok(msg)
    }

    /// Decodes one message from the front of `buf`, leaving any remainder
    /// (stream parsing).
    pub fn decode_prefix(buf: &mut Bytes) -> Result<Self, WireError> {
        let magic = get_u32(buf)?;
        if magic != RTMP_MAGIC {
            return Err(WireError::BadMagic {
                expected: RTMP_MAGIC,
                found: magic,
            });
        }
        let version = get_u8(buf)?;
        if version != RTMP_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let tag = get_u8(buf)?;
        match tag {
            TAG_HANDSHAKE => Ok(RtmpMessage::Handshake {
                nonce: get_u64(buf)?,
            }),
            TAG_CONNECT => {
                let token = get_string(buf)?;
                let role = match get_u8(buf)? {
                    0 => Role::Publisher,
                    1 => Role::Subscriber,
                    _ => return Err(WireError::Invalid("unknown role")),
                };
                let user_id = get_u64(buf)?;
                Ok(RtmpMessage::Connect {
                    token,
                    role,
                    user_id,
                })
            }
            TAG_FRAME => Ok(RtmpMessage::Frame(VideoFrame::decode_body(buf)?)),
            TAG_ACK => Ok(RtmpMessage::Ack {
                sequence: get_u64(buf)?,
            }),
            TAG_CLOSE => Ok(RtmpMessage::Close),
            other => Err(WireError::UnknownTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame(signed: bool) -> VideoFrame {
        let mut f = VideoFrame::new(42, 1_234_567, true, Bytes::from_static(b"frame-bytes"));
        if signed {
            f.meta.signature = Some(Bytes::from_static(&[9u8; 32]));
        }
        f
    }

    #[test]
    fn all_message_kinds_roundtrip() {
        let msgs = vec![
            RtmpMessage::Handshake { nonce: 77 },
            RtmpMessage::Connect {
                token: "tok-abc".into(),
                role: Role::Publisher,
                user_id: 5,
            },
            RtmpMessage::Connect {
                token: "tok-xyz".into(),
                role: Role::Subscriber,
                user_id: 6,
            },
            RtmpMessage::Frame(sample_frame(false)),
            RtmpMessage::Frame(sample_frame(true)),
            RtmpMessage::Ack { sequence: 42 },
            RtmpMessage::Close,
        ];
        for msg in msgs {
            let encoded = msg.encode();
            let decoded = RtmpMessage::decode(encoded).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn connect_token_is_visible_in_plaintext() {
        // The §7 vulnerability in one assertion: the raw wire bytes of a
        // connect message contain the token verbatim.
        let msg = RtmpMessage::Connect {
            token: "secret-broadcast-token".into(),
            role: Role::Publisher,
            user_id: 1,
        };
        let wire = msg.encode();
        let haystack = wire.as_ref();
        let needle = b"secret-broadcast-token";
        assert!(
            haystack.windows(needle.len()).any(|w| w == needle),
            "token must be readable on the wire (that is the vulnerability)"
        );
    }

    #[test]
    fn stream_decoding_leaves_the_remainder() {
        let mut stream = BytesMut::new();
        stream.extend_from_slice(&RtmpMessage::Ack { sequence: 1 }.encode());
        stream.extend_from_slice(&RtmpMessage::Close.encode());
        let mut buf = stream.freeze();
        assert_eq!(
            RtmpMessage::decode_prefix(&mut buf).unwrap(),
            RtmpMessage::Ack { sequence: 1 }
        );
        assert_eq!(
            RtmpMessage::decode_prefix(&mut buf).unwrap(),
            RtmpMessage::Close
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut wire = BytesMut::from(&RtmpMessage::Close.encode()[..]);
        wire[0] ^= 0xFF;
        match RtmpMessage::decode(wire.freeze()) {
            Err(WireError::BadMagic { .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut wire = BytesMut::from(&RtmpMessage::Close.encode()[..]);
        wire[4] = 99;
        assert_eq!(
            RtmpMessage::decode(wire.freeze()),
            Err(WireError::BadVersion(99))
        );
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut wire = BytesMut::from(&RtmpMessage::Close.encode()[..]);
        wire[5] = 0xEE;
        assert_eq!(
            RtmpMessage::decode(wire.freeze()),
            Err(WireError::UnknownTag(0xEE))
        );
    }

    #[test]
    fn unknown_frame_flags_are_rejected() {
        let mut out = BytesMut::new();
        out.put_u32(RTMP_MAGIC);
        out.put_u8(RTMP_VERSION);
        out.put_u8(TAG_FRAME);
        out.put_u64(1);
        out.put_u64(2);
        out.put_u8(0b1000_0000); // reserved flag
        put_bytes(&mut out, b"x");
        assert_eq!(
            RtmpMessage::decode(out.freeze()),
            Err(WireError::Invalid("unknown frame flags"))
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut wire = BytesMut::from(&RtmpMessage::Close.encode()[..]);
        wire.put_u8(0);
        assert!(RtmpMessage::decode(wire.freeze()).is_err());
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let wire = RtmpMessage::Frame(sample_frame(true)).encode();
        for cut in 1..wire.len() {
            let truncated = wire.slice(..cut);
            assert!(
                RtmpMessage::decode(truncated).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn signable_bytes_exclude_signature() {
        let unsigned = sample_frame(false);
        let signed = sample_frame(true);
        assert_eq!(unsigned.signable_bytes(), signed.signable_bytes());
    }

    #[test]
    fn signable_bytes_cover_payload_and_meta() {
        let base = sample_frame(false);
        let mut tampered_payload = base.clone();
        tampered_payload.payload = Bytes::from_static(b"EVIL-BYTES!");
        assert_ne!(base.signable_bytes(), tampered_payload.signable_bytes());
        let mut tampered_seq = base.clone();
        tampered_seq.meta.sequence += 1;
        assert_ne!(base.signable_bytes(), tampered_seq.signable_bytes());
        let mut tampered_key = base.clone();
        tampered_key.meta.keyframe = !tampered_key.meta.keyframe;
        assert_ne!(base.signable_bytes(), tampered_key.signable_bytes());
    }

    #[test]
    fn encoded_len_matches_actual_body_size() {
        for signed in [false, true] {
            let frame = sample_frame(signed);
            let header_len = 4 + 1 + 1; // magic + version + tag
            let wire = RtmpMessage::Frame(frame.clone()).encode();
            assert_eq!(wire.len(), header_len + frame.encoded_len());
        }
    }
}
