//! The HLS-shaped chunked delivery format.
//!
//! Wowza assembles ~75 consecutive 40 ms frames into a ~3 s **chunk**
//! (§5.2: >85.9% of HLS broadcasts used 3 s chunks), appends it to a text
//! **chunklist**, and Fastly caches both. Viewers poll the chunklist every
//! 2–2.8 s and fetch chunks they have not seen. This module provides the
//! binary chunk container and the m3u8-flavoured chunklist codec.

use bytes::{BufMut, Bytes, BytesMut};

use crate::rtmp::VideoFrame;
use crate::wire::{expect_eof, get_u16, get_u32, get_u64, WireError};

/// Magic prefix of a chunk container ("LSC1").
pub const CHUNK_MAGIC: u32 = 0x4C53_4331;
/// Default chunk duration used by Periscope and Facebook Live (seconds).
pub const DEFAULT_CHUNK_SECS: f64 = 3.0;
/// Meerkat's observed chunk duration (seconds).
pub const MEERKAT_CHUNK_SECS: f64 = 3.6;
/// Apple's VoD HLS chunk duration, the scalability-end anchor (seconds).
pub const VOD_CHUNK_SECS: f64 = 10.0;
/// Upper bound on frames per chunk accepted by the decoder (10 s of 40 ms
/// frames, with headroom).
pub const MAX_FRAMES_PER_CHUNK: usize = 1024;

/// A group of consecutive frames shipped as one HLS media segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Chunk {
    /// Media sequence number (monotonic per broadcast).
    pub seq: u64,
    /// Capture timestamp of the first frame, µs (broadcaster clock).
    pub start_ts_us: u64,
    /// Nominal duration covered, µs.
    pub duration_us: u64,
    /// The frames, in capture order.
    pub frames: Vec<VideoFrame>,
}

impl Chunk {
    /// Total payload bytes across frames (the "video bytes" of the chunk).
    pub fn payload_bytes(&self) -> usize {
        self.frames.iter().map(|f| f.payload.len()).sum()
    }

    /// Encodes the chunk container.
    pub fn encode(&self) -> Bytes {
        assert!(
            self.frames.len() <= MAX_FRAMES_PER_CHUNK,
            "chunk has too many frames to encode"
        );
        let mut out = BytesMut::with_capacity(32 + self.payload_bytes());
        out.put_u32(CHUNK_MAGIC);
        out.put_u64(self.seq);
        out.put_u64(self.start_ts_us);
        out.put_u64(self.duration_us);
        out.put_u16(self.frames.len() as u16);
        for frame in &self.frames {
            frame.encode_body(&mut out);
        }
        out.freeze()
    }

    /// Decodes a chunk container, rejecting trailing bytes.
    pub fn decode(mut buf: Bytes) -> Result<Self, WireError> {
        let magic = get_u32(&mut buf)?;
        if magic != CHUNK_MAGIC {
            return Err(WireError::BadMagic {
                expected: CHUNK_MAGIC,
                found: magic,
            });
        }
        let seq = get_u64(&mut buf)?;
        let start_ts_us = get_u64(&mut buf)?;
        let duration_us = get_u64(&mut buf)?;
        let n = get_u16(&mut buf)? as usize;
        if n > MAX_FRAMES_PER_CHUNK {
            return Err(WireError::OversizedField { len: n });
        }
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            frames.push(VideoFrame::decode_body(&mut buf)?);
        }
        expect_eof(&buf)?;
        Ok(Chunk {
            seq,
            start_ts_us,
            duration_us,
            frames,
        })
    }
}

/// One entry of a chunklist.
#[derive(Clone, PartialEq, Debug)]
pub struct ChunkEntry {
    /// Media sequence of the chunk.
    pub seq: u64,
    /// Duration in seconds, as advertised to players.
    pub duration_s: f64,
    /// Relative URI of the chunk resource.
    pub uri: String,
}

/// The m3u8-flavoured playlist that HLS viewers poll.
///
/// ```text
/// #EXTM3U
/// #EXT-X-VERSION:3
/// #EXT-X-TARGETDURATION:3
/// #EXT-X-MEDIA-SEQUENCE:17
/// #EXTINF:3.000,
/// chunk_17.lsc
/// #EXTINF:3.000,
/// chunk_18.lsc
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ChunkList {
    /// Max chunk duration advertised, whole seconds (rounded up).
    pub target_duration_s: u64,
    /// Sequence of the first listed chunk.
    pub media_sequence: u64,
    pub entries: Vec<ChunkEntry>,
}

impl ChunkList {
    /// Builds a playlist over a window of chunk metadata. `window` bounds
    /// how many trailing chunks are advertised (live HLS keeps a sliding
    /// window, not the whole history).
    pub fn from_chunks<'a>(chunks: impl IntoIterator<Item = &'a Chunk>, window: usize) -> Self {
        let mut entries: Vec<ChunkEntry> = chunks
            .into_iter()
            .map(|c| ChunkEntry {
                seq: c.seq,
                duration_s: c.duration_us as f64 / 1e6,
                uri: format!("chunk_{}.lsc", c.seq),
            })
            .collect();
        entries.sort_by_key(|e| e.seq);
        if entries.len() > window {
            entries.drain(..entries.len() - window);
        }
        let target = entries
            .iter()
            .map(|e| e.duration_s.ceil() as u64)
            .max()
            .unwrap_or(DEFAULT_CHUNK_SECS as u64);
        ChunkList {
            target_duration_s: target,
            media_sequence: entries.first().map_or(0, |e| e.seq),
            entries,
        }
    }

    /// Highest chunk sequence listed, if any. Pollers compare this against
    /// what they have already fetched.
    pub fn latest_seq(&self) -> Option<u64> {
        self.entries.last().map(|e| e.seq)
    }

    /// Renders the playlist text.
    pub fn serialize(&self) -> String {
        let mut s = String::with_capacity(64 + self.entries.len() * 32);
        s.push_str("#EXTM3U\n#EXT-X-VERSION:3\n");
        s.push_str(&format!(
            "#EXT-X-TARGETDURATION:{}\n",
            self.target_duration_s
        ));
        s.push_str(&format!("#EXT-X-MEDIA-SEQUENCE:{}\n", self.media_sequence));
        for e in &self.entries {
            s.push_str(&format!("#EXTINF:{:.3},\n{}\n", e.duration_s, e.uri));
        }
        s
    }

    /// Parses playlist text. Strict about the header, tolerant about
    /// unknown `#`-comment lines (like real players).
    pub fn parse(text: &str) -> Result<Self, WireError> {
        let mut lines = text.lines();
        if lines.next() != Some("#EXTM3U") {
            return Err(WireError::Invalid("missing #EXTM3U header"));
        }
        let mut target_duration_s = 0;
        let mut media_sequence = 0;
        let mut entries = Vec::new();
        let mut pending_duration: Option<f64> = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(v) = line.strip_prefix("#EXT-X-TARGETDURATION:") {
                target_duration_s = v
                    .parse()
                    .map_err(|_| WireError::Invalid("bad TARGETDURATION"))?;
            } else if let Some(v) = line.strip_prefix("#EXT-X-MEDIA-SEQUENCE:") {
                media_sequence = v
                    .parse()
                    .map_err(|_| WireError::Invalid("bad MEDIA-SEQUENCE"))?;
            } else if let Some(v) = line.strip_prefix("#EXTINF:") {
                let dur = v
                    .trim_end_matches(',')
                    .parse()
                    .map_err(|_| WireError::Invalid("bad EXTINF duration"))?;
                pending_duration = Some(dur);
            } else if line.starts_with('#') {
                continue; // unknown tag or comment
            } else {
                let duration_s = pending_duration
                    .take()
                    .ok_or(WireError::Invalid("URI without EXTINF"))?;
                let seq = line
                    .strip_prefix("chunk_")
                    .and_then(|s| s.strip_suffix(".lsc"))
                    .and_then(|s| s.parse().ok())
                    .ok_or(WireError::Invalid("unparseable chunk URI"))?;
                entries.push(ChunkEntry {
                    seq,
                    duration_s,
                    uri: line.to_string(),
                });
            }
        }
        if pending_duration.is_some() {
            return Err(WireError::Invalid("EXTINF without URI"));
        }
        Ok(ChunkList {
            target_duration_s,
            media_sequence,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u64, ts: u64) -> VideoFrame {
        VideoFrame::new(
            seq,
            ts,
            seq.is_multiple_of(75),
            Bytes::from(vec![seq as u8; 16]),
        )
    }

    fn chunk(seq: u64, nframes: u64) -> Chunk {
        let start = seq * 3_000_000;
        Chunk {
            seq,
            start_ts_us: start,
            duration_us: nframes * 40_000,
            frames: (0..nframes)
                .map(|i| frame(seq * 75 + i, start + i * 40_000))
                .collect(),
        }
    }

    #[test]
    fn chunk_roundtrips() {
        let c = chunk(17, 75);
        let decoded = Chunk::decode(c.encode()).unwrap();
        assert_eq!(decoded, c);
        assert_eq!(decoded.frames.len(), 75);
    }

    #[test]
    fn empty_chunk_roundtrips() {
        let c = Chunk {
            seq: 0,
            start_ts_us: 0,
            duration_us: 0,
            frames: vec![],
        };
        assert_eq!(Chunk::decode(c.encode()).unwrap(), c);
    }

    #[test]
    fn chunk_payload_bytes_sums_frames() {
        let c = chunk(1, 10);
        assert_eq!(c.payload_bytes(), 160);
    }

    #[test]
    fn chunk_rejects_bad_magic_and_truncation() {
        let wire = chunk(3, 5).encode();
        let mut bad = BytesMut::from(&wire[..]);
        bad[0] ^= 0x55;
        assert!(matches!(
            Chunk::decode(bad.freeze()),
            Err(WireError::BadMagic { .. })
        ));
        assert!(Chunk::decode(wire.slice(..wire.len() - 1)).is_err());
    }

    #[test]
    fn chunk_rejects_absurd_frame_count() {
        let mut out = BytesMut::new();
        out.put_u32(CHUNK_MAGIC);
        out.put_u64(0);
        out.put_u64(0);
        out.put_u64(0);
        out.put_u16(u16::MAX);
        assert!(matches!(
            Chunk::decode(out.freeze()),
            Err(WireError::OversizedField { .. })
        ));
    }

    #[test]
    fn chunklist_roundtrips() {
        let chunks: Vec<Chunk> = (10..15).map(|s| chunk(s, 75)).collect();
        let list = ChunkList::from_chunks(&chunks, 10);
        let text = list.serialize();
        let parsed = ChunkList::parse(&text).unwrap();
        assert_eq!(parsed, list);
        assert_eq!(parsed.latest_seq(), Some(14));
        assert_eq!(parsed.media_sequence, 10);
    }

    #[test]
    fn chunklist_window_keeps_latest() {
        let chunks: Vec<Chunk> = (0..20).map(|s| chunk(s, 75)).collect();
        let list = ChunkList::from_chunks(&chunks, 5);
        assert_eq!(list.entries.len(), 5);
        assert_eq!(list.media_sequence, 15);
        assert_eq!(list.latest_seq(), Some(19));
    }

    #[test]
    fn chunklist_parse_accepts_unknown_tags() {
        let text = "#EXTM3U\n#EXT-X-VERSION:3\n#EXT-X-SOMETHING:new\n\
                    #EXT-X-TARGETDURATION:3\n#EXT-X-MEDIA-SEQUENCE:2\n\
                    #EXTINF:3.000,\nchunk_2.lsc\n";
        let list = ChunkList::parse(text).unwrap();
        assert_eq!(list.entries.len(), 1);
        assert_eq!(list.entries[0].seq, 2);
    }

    #[test]
    fn chunklist_parse_rejects_malformed_inputs() {
        assert!(ChunkList::parse("not a playlist").is_err());
        assert!(ChunkList::parse("#EXTM3U\nchunk_1.lsc\n").is_err()); // URI w/o EXTINF
        assert!(ChunkList::parse("#EXTM3U\n#EXTINF:3.0,\n").is_err()); // EXTINF w/o URI
        assert!(ChunkList::parse("#EXTM3U\n#EXTINF:xyz,\nchunk_1.lsc\n").is_err());
        assert!(ChunkList::parse("#EXTM3U\n#EXTINF:3.0,\nfoo_1.bar\n").is_err());
    }

    #[test]
    fn empty_chunklist_serializes_and_parses() {
        let list = ChunkList::from_chunks(std::iter::empty(), 10);
        let parsed = ChunkList::parse(&list.serialize()).unwrap();
        assert_eq!(parsed.entries.len(), 0);
        assert_eq!(parsed.latest_seq(), None);
    }

    #[test]
    fn default_chunk_constants_match_paper() {
        assert_eq!(DEFAULT_CHUNK_SECS, 3.0);
        assert_eq!(MEERKAT_CHUNK_SECS, 3.6);
        assert_eq!(VOD_CHUNK_SECS, 10.0);
    }
}
