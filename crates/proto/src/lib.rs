//! # livescope-proto — byte-level streaming protocol codecs
//!
//! Faithful-in-shape reimplementations of the wire formats the IMC'16 paper
//! reverse-engineered from Periscope traffic:
//!
//! * [`rtmp`] — the ingest/low-latency distribution protocol: a
//!   handshake, a *plaintext* connect message carrying the broadcast token
//!   (the §7 vulnerability), and per-frame video messages whose metadata
//!   embeds the broadcaster's capture timestamp (the paper extracted
//!   timestamp ① from exactly this field) and an optional integrity
//!   signature (the §7.2 defense);
//! * [`hls`] — chunk containers assembled from RTMP frames plus an
//!   m3u8-style text chunklist that edge servers cache and viewers poll;
//! * [`http`] — a minimal HTTP/1.1-shaped request/response framing used by
//!   the HLS polling path and the crawler;
//! * [`message`] — the PubNub-style side channel carrying hearts and
//!   comments;
//! * [`control`] — the HTTPS control-plane messages (broadcast creation,
//!   join, global-list sampling). These are modelled as encrypted: the
//!   attack code in `livescope-security` can observe but not parse them.
//! * [`wire`] — shared big-endian primitives and error type.
//!
//! All codecs are strict: decoding validates magic numbers, versions and
//! length fields and fails with a typed [`wire::WireError`] instead of
//! panicking, because the security experiments deliberately feed corrupted
//! bytes through them.

#![forbid(unsafe_code)]

pub mod control;
pub mod hls;
pub mod http;
pub mod message;
pub mod rtmp;
pub mod wire;

pub use wire::WireError;
