//! Shared wire primitives: big-endian integer and length-prefixed field
//! codecs over [`bytes`] buffers, and the crate-wide error type.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Maximum length accepted for any length-prefixed field. Guards decoders
/// against a corrupted length field requesting gigabytes.
pub const MAX_FIELD_LEN: usize = 16 * 1024 * 1024;

/// Decoding failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Fewer bytes available than the format requires.
    Truncated { needed: usize, available: usize },
    /// A magic number did not match.
    BadMagic { expected: u32, found: u32 },
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown message/discriminant tag.
    UnknownTag(u8),
    /// A length field exceeded [`MAX_FIELD_LEN`] or an internal bound.
    OversizedField { len: usize },
    /// A field failed semantic validation.
    Invalid(&'static str),
    /// UTF-8 decoding of a text field failed.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated: needed {needed} bytes, had {available}")
            }
            WireError::BadMagic { expected, found } => {
                write!(
                    f,
                    "bad magic: expected {expected:#010x}, found {found:#010x}"
                )
            }
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::OversizedField { len } => write!(f, "oversized field: {len} bytes"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
            WireError::BadUtf8 => write!(f, "text field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Checks that `buf` has at least `needed` readable bytes.
pub fn ensure(buf: &impl Buf, needed: usize) -> Result<(), WireError> {
    if buf.remaining() < needed {
        Err(WireError::Truncated {
            needed,
            available: buf.remaining(),
        })
    } else {
        Ok(())
    }
}

/// Reads a `u8`.
pub fn get_u8(buf: &mut impl Buf) -> Result<u8, WireError> {
    ensure(buf, 1)?;
    Ok(buf.get_u8())
}

/// Reads a big-endian `u16`.
pub fn get_u16(buf: &mut impl Buf) -> Result<u16, WireError> {
    ensure(buf, 2)?;
    Ok(buf.get_u16())
}

/// Reads a big-endian `u32`.
pub fn get_u32(buf: &mut impl Buf) -> Result<u32, WireError> {
    ensure(buf, 4)?;
    Ok(buf.get_u32())
}

/// Reads a big-endian `u64`.
pub fn get_u64(buf: &mut impl Buf) -> Result<u64, WireError> {
    ensure(buf, 8)?;
    Ok(buf.get_u64())
}

/// Reads a `u32`-length-prefixed byte field.
pub fn get_bytes(buf: &mut Bytes) -> Result<Bytes, WireError> {
    let len = get_u32(buf)? as usize;
    if len > MAX_FIELD_LEN {
        return Err(WireError::OversizedField { len });
    }
    ensure(buf, len)?;
    Ok(buf.split_to(len))
}

/// Reads a `u16`-length-prefixed UTF-8 string field.
pub fn get_string(buf: &mut Bytes) -> Result<String, WireError> {
    let len = get_u16(buf)? as usize;
    ensure(buf, len)?;
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
}

/// Writes a `u32`-length-prefixed byte field.
///
/// # Panics
/// Panics if `bytes` exceeds [`MAX_FIELD_LEN`]; encoders construct their
/// own payloads, so this is a bug, not input.
pub fn put_bytes(out: &mut BytesMut, bytes: &[u8]) {
    assert!(bytes.len() <= MAX_FIELD_LEN, "field too large to encode");
    out.put_u32(bytes.len() as u32);
    out.put_slice(bytes);
}

/// Writes a `u16`-length-prefixed UTF-8 string field.
///
/// # Panics
/// Panics if `s` exceeds `u16::MAX` bytes.
pub fn put_string(out: &mut BytesMut, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "string too large to encode");
    out.put_u16(s.len() as u16);
    out.put_slice(s.as_bytes());
}

/// Verifies the buffer is fully consumed — strict codecs reject trailing
/// garbage so corruption cannot hide after a valid prefix.
pub fn expect_eof(buf: &impl Buf) -> Result<(), WireError> {
    if buf.remaining() != 0 {
        Err(WireError::Invalid("trailing bytes after message"))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_roundtrips() {
        let mut out = BytesMut::new();
        out.put_u8(7);
        out.put_u16(300);
        out.put_u32(70_000);
        out.put_u64(u64::MAX - 1);
        let mut buf = out.freeze();
        assert_eq!(get_u8(&mut buf).unwrap(), 7);
        assert_eq!(get_u16(&mut buf).unwrap(), 300);
        assert_eq!(get_u32(&mut buf).unwrap(), 70_000);
        assert_eq!(get_u64(&mut buf).unwrap(), u64::MAX - 1);
        assert!(expect_eof(&buf).is_ok());
    }

    #[test]
    fn truncated_reads_report_needs() {
        let mut buf = Bytes::from_static(&[1, 2]);
        get_u16(&mut buf).unwrap();
        match get_u32(&mut buf) {
            Err(WireError::Truncated {
                needed: 4,
                available: 0,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn bytes_field_roundtrip() {
        let mut out = BytesMut::new();
        put_bytes(&mut out, b"hello frame payload");
        let mut buf = out.freeze();
        assert_eq!(&get_bytes(&mut buf).unwrap()[..], b"hello frame payload");
        assert!(expect_eof(&buf).is_ok());
    }

    #[test]
    fn empty_bytes_field_roundtrip() {
        let mut out = BytesMut::new();
        put_bytes(&mut out, b"");
        let mut buf = out.freeze();
        assert_eq!(get_bytes(&mut buf).unwrap().len(), 0);
    }

    #[test]
    fn string_field_roundtrip_utf8() {
        let mut out = BytesMut::new();
        put_string(&mut out, "bcast-töken-ñ");
        let mut buf = out.freeze();
        assert_eq!(get_string(&mut buf).unwrap(), "bcast-töken-ñ");
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut out = BytesMut::new();
        out.put_u16(2);
        out.put_slice(&[0xFF, 0xFE]);
        let mut buf = out.freeze();
        assert_eq!(get_string(&mut buf), Err(WireError::BadUtf8));
    }

    #[test]
    fn oversized_length_field_is_rejected_not_allocated() {
        let mut out = BytesMut::new();
        out.put_u32(u32::MAX); // claims 4 GiB
        let mut buf = out.freeze();
        match get_bytes(&mut buf) {
            Err(WireError::OversizedField { .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let buf = Bytes::from_static(&[0]);
        assert_eq!(
            expect_eof(&buf),
            Err(WireError::Invalid("trailing bytes after message"))
        );
    }

    #[test]
    fn errors_display_usefully() {
        let e = WireError::Truncated {
            needed: 8,
            available: 3,
        };
        assert!(e.to_string().contains("needed 8"));
        assert!(WireError::BadUtf8.to_string().contains("UTF-8"));
        assert!(WireError::UnknownTag(0xAB).to_string().contains("0xab"));
    }
}
