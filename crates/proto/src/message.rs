//! The PubNub-style message channel: hearts and comments.
//!
//! Periscope delivers interactivity on a channel *separate* from video
//! (§4.1, Fig 8(c)): clients connect to PubNub over HTTPS and exchange
//! timestamped events, which viewers later align with video frames by
//! timestamp. We model the channel with a compact binary codec; transport
//! encryption is modelled at the `control::Sealed` layer when needed.

use bytes::{BufMut, Bytes, BytesMut};

use crate::wire::{expect_eof, get_string, get_u64, get_u8, WireError};

/// Magic prefix of a chat event ("LSM1").
pub const MESSAGE_MAGIC: u32 = 0x4C53_4D31;
/// Periscope's cap: only the first 100 viewers of a broadcast may comment.
pub const COMMENTER_CAP: usize = 100;
/// Maximum comment text length accepted (Periscope-like small texts).
pub const MAX_COMMENT_LEN: usize = 512;

/// The interaction kinds the paper measures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A "heart" — any viewer may send one by tapping the screen.
    Heart,
    /// A text comment — only the first [`COMMENTER_CAP`] viewers may send.
    Comment(String),
}

/// A timestamped interaction event on a broadcast's message channel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChatEvent {
    pub broadcast_id: u64,
    pub user_id: u64,
    /// Sender device timestamp, µs (viewers align events with video by
    /// this field).
    pub ts_us: u64,
    pub kind: EventKind,
}

impl ChatEvent {
    /// Encodes the event.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(40);
        out.put_u32(MESSAGE_MAGIC);
        out.put_u64(self.broadcast_id);
        out.put_u64(self.user_id);
        out.put_u64(self.ts_us);
        match &self.kind {
            EventKind::Heart => out.put_u8(0),
            EventKind::Comment(text) => {
                assert!(text.len() <= MAX_COMMENT_LEN, "comment too long to encode");
                out.put_u8(1);
                crate::wire::put_string(&mut out, text);
            }
        }
        out.freeze()
    }

    /// Decodes one event, rejecting trailing bytes.
    pub fn decode(mut buf: Bytes) -> Result<Self, WireError> {
        let magic = crate::wire::get_u32(&mut buf)?;
        if magic != MESSAGE_MAGIC {
            return Err(WireError::BadMagic {
                expected: MESSAGE_MAGIC,
                found: magic,
            });
        }
        let broadcast_id = get_u64(&mut buf)?;
        let user_id = get_u64(&mut buf)?;
        let ts_us = get_u64(&mut buf)?;
        let kind = match get_u8(&mut buf)? {
            0 => EventKind::Heart,
            1 => {
                let text = get_string(&mut buf)?;
                if text.len() > MAX_COMMENT_LEN {
                    return Err(WireError::OversizedField { len: text.len() });
                }
                EventKind::Comment(text)
            }
            other => return Err(WireError::UnknownTag(other)),
        };
        expect_eof(&buf)?;
        Ok(ChatEvent {
            broadcast_id,
            user_id,
            ts_us,
            kind,
        })
    }

    /// True for hearts.
    pub fn is_heart(&self) -> bool {
        matches!(self.kind, EventKind::Heart)
    }

    /// True for comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, EventKind::Comment(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heart_roundtrips() {
        let ev = ChatEvent {
            broadcast_id: 9,
            user_id: 77,
            ts_us: 123_456,
            kind: EventKind::Heart,
        };
        let decoded = ChatEvent::decode(ev.encode()).unwrap();
        assert_eq!(decoded, ev);
        assert!(decoded.is_heart());
        assert!(!decoded.is_comment());
    }

    #[test]
    fn comment_roundtrips() {
        let ev = ChatEvent {
            broadcast_id: 9,
            user_id: 78,
            ts_us: 999,
            kind: EventKind::Comment("¡hola from Rio! 🎥".into()),
        };
        let decoded = ChatEvent::decode(ev.encode()).unwrap();
        assert_eq!(decoded, ev);
        assert!(decoded.is_comment());
    }

    #[test]
    fn empty_comment_roundtrips() {
        let ev = ChatEvent {
            broadcast_id: 1,
            user_id: 2,
            ts_us: 3,
            kind: EventKind::Comment(String::new()),
        };
        assert_eq!(ChatEvent::decode(ev.encode()).unwrap(), ev);
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let ev = ChatEvent {
            broadcast_id: 1,
            user_id: 2,
            ts_us: 3,
            kind: EventKind::Heart,
        };
        let mut wire = BytesMut::from(&ev.encode()[..]);
        let kind_at = wire.len() - 1;
        wire[kind_at] = 7;
        assert_eq!(
            ChatEvent::decode(wire.freeze()),
            Err(WireError::UnknownTag(7))
        );
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let ev = ChatEvent {
            broadcast_id: 1,
            user_id: 2,
            ts_us: 3,
            kind: EventKind::Comment("hello".into()),
        };
        let wire = ev.encode();
        for cut in 1..wire.len() {
            assert!(ChatEvent::decode(wire.slice(..cut)).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn commenter_cap_matches_paper() {
        assert_eq!(COMMENTER_CAP, 100);
    }
}
