//! Criterion bench over the Fig 11 controlled experiment: one full
//! RTMP+HLS run through the simulated delivery system.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use livescope_core::breakdown::{run, BreakdownConfig};

fn bench_breakdown(c: &mut Criterion) {
    let config = BreakdownConfig {
        repetitions: 1,
        stream_secs: 20,
        ..BreakdownConfig::default()
    };
    c.bench_function("breakdown_single_run_20s_stream", |b| {
        b.iter(|| {
            let report = run(&config);
            assert!(report.hls.total_s() > report.rtmp.total_s());
            report
        })
    });
}

criterion_group!(benches, bench_breakdown);
criterion_main!(benches);
