//! The Fig 14 claim, measured directly by Criterion: the CPU cost of
//! fanning one stream out to N viewers over RTMP (per-frame push through
//! the real ingest server) vs HLS (poll + chunk serving through the real
//! edge POP). Expect RTMP to cost roughly an order of magnitude more per
//! stream-second, with the gap growing in N.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use livescope_core::scalability::{run_hls_cell, run_rtmp_cell, ScalabilityConfig};

fn bench_fanout(c: &mut Criterion) {
    let config = ScalabilityConfig {
        stream_secs: 10,
        ..ScalabilityConfig::default()
    };
    let mut group = c.benchmark_group("fanout_cpu");
    group.sample_size(10);
    for viewers in [100usize, 300, 500] {
        group.bench_with_input(BenchmarkId::new("rtmp", viewers), &viewers, |b, &v| {
            b.iter(|| run_rtmp_cell(&config, v))
        });
        group.bench_with_input(BenchmarkId::new("hls", viewers), &viewers, |b, &v| {
            b.iter(|| run_hls_cell(&config, v))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
