//! §7.2 defense overhead: cost of signing + verifying one second of video
//! (25 frames) under each policy. The paper proposes exactly this
//! trade-off: "we can further reduce overhead by signing only selective
//! frames or signing hashes across multiple frames".

#![forbid(unsafe_code)]

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use livescope_proto::rtmp::VideoFrame;
use livescope_security::{KeyPair, SigningPolicy, StreamSigner, StreamVerifier};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn frames() -> Vec<VideoFrame> {
    (0..25u64)
        .map(|i| VideoFrame::new(i, i * 40_000, i == 0, Bytes::from(vec![3u8; 2_500])))
        .collect()
}

fn bench_signing(c: &mut Criterion) {
    let keys = KeyPair::generate(&mut SmallRng::seed_from_u64(1));
    let mut group = c.benchmark_group("signing_overhead");
    for (name, policy) in [
        ("every_frame", SigningPolicy::EveryFrame),
        ("every_10th", SigningPolicy::EveryKth(10)),
        ("hash_chain_25", SigningPolicy::HashChain(25)),
    ] {
        group.bench_with_input(
            BenchmarkId::new("sign_and_verify_1s", name),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut signer = StreamSigner::new(keys, policy);
                    let mut verifier = StreamVerifier::new(keys.public(), policy);
                    for mut f in frames() {
                        signer.process(&mut f);
                        verifier.process(&f);
                    }
                    assert_eq!(verifier.forged, 0);
                    verifier.verified
                })
            },
        );
    }
    // The §7.2 alternative: full-channel encryption (RTMPS). Encrypting
    // one second of one connection's video — multiply by audience size
    // for the server-side fan-out cost.
    group.bench_function("rtmps_encrypt_decrypt_1s", |b| {
        use livescope_security::RtmpsChannel;
        b.iter(|| {
            let mut tx = RtmpsChannel::new(0xFACE);
            let mut rx = RtmpsChannel::new(0xFACE);
            for f in frames() {
                let wire = livescope_proto::rtmp::RtmpMessage::Frame(f).encode();
                let protected = tx.protect(&wire);
                rx.open(protected).unwrap();
            }
            rx.messages_opened
        })
    });
    group.finish();
}

criterion_group!(benches, bench_signing);
criterion_main!(benches);
