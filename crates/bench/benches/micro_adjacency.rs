//! Traversal-layout microbenches for the CSR adjacency store: the
//! numbers that justify DESIGN.md §12's width-adaptive `u32`/`u64`
//! offsets. Three access patterns over the same topology, each at both
//! offset widths (`DiGraph::with_wide_offsets` forces `u64` on a graph
//! that would narrow):
//!
//! * `seq_scan` — walk every out-segment in node order and sum targets:
//!   the pattern of checksums, serialization, and the parallel
//!   assembly's scatter scan. Streams both arrays; offset width sets
//!   how many offset cache lines ride along.
//! * `rand_out` / `rand_in` — follow a precomputed pseudo-random node
//!   sequence and touch that node's out-targets / in-sources: the
//!   pattern of the replay's per-broadcaster follower lookups and the
//!   rewiring loop. Every probe is two offset reads + one segment read,
//!   so narrow offsets double the chance both bounds share a line.
//!
//! Throughput is reported in edges (elements) so the two widths are
//! directly comparable per pattern.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use livescope_graph::{DiGraph, GraphSpec, NodeId};
use livescope_sim::rng::splitmix64;

/// Benchmark population: big enough that offsets outgrow L1/L2 and the
/// width actually shows, small enough to keep the bench under a minute.
const NODES: usize = 60_000;
const SEED: u64 = 42;
/// Random probes per iteration (amortizes the probe-sequence overhead).
const PROBES: usize = 4_096;

fn probe_sequence(nodes: usize) -> Vec<NodeId> {
    let mut state = 0x9E3779B97F4A7C15u64;
    (0..PROBES)
        .map(|_| {
            state = splitmix64(state);
            (state % nodes as u64) as NodeId
        })
        .collect()
}

fn seq_scan(g: &DiGraph) -> u64 {
    let mut acc = 0u64;
    for u in 0..g.node_count() as NodeId {
        for &v in g.out_neighbors(u) {
            acc = acc.wrapping_add(v as u64);
        }
    }
    acc
}

fn rand_probe(g: &DiGraph, probes: &[NodeId], inward: bool) -> u64 {
    let mut acc = 0u64;
    for &u in probes {
        let seg = if inward {
            g.in_neighbors(u)
        } else {
            g.out_neighbors(u)
        };
        for &v in seg {
            acc = acc.wrapping_add(v as u64);
        }
    }
    acc
}

fn bench_adjacency(c: &mut Criterion) {
    let narrow = DiGraph::generate(&GraphSpec::periscope().with_nodes(NODES), SEED);
    let wide = narrow.clone().with_wide_offsets();
    let edges = narrow.edge_count() as u64;
    let probes = probe_sequence(NODES);
    // Same topology, same checksums — only the offset width differs.
    assert_eq!(narrow.adjacency_checksum(), wide.adjacency_checksum());
    let (off, _) = narrow.out_csr();
    assert_eq!(off.entry_bytes(), 4, "narrow graph must store u32 offsets");
    let (off, _) = wide.out_csr();
    assert_eq!(off.entry_bytes(), 8, "wide graph must store u64 offsets");

    let mut group = c.benchmark_group("adjacency_seq_scan");
    group.throughput(Throughput::Elements(edges));
    group.bench_function("u32_offsets", |b| b.iter(|| seq_scan(&narrow)));
    group.bench_function("u64_offsets", |b| b.iter(|| seq_scan(&wide)));
    group.finish();

    let probed_out: u64 = probes
        .iter()
        .map(|&u| narrow.out_degree(u) as u64)
        .sum::<u64>()
        .max(1);
    let mut group = c.benchmark_group("adjacency_rand_out");
    group.throughput(Throughput::Elements(probed_out));
    group.bench_function("u32_offsets", |b| {
        b.iter(|| rand_probe(&narrow, &probes, false))
    });
    group.bench_function("u64_offsets", |b| {
        b.iter(|| rand_probe(&wide, &probes, false))
    });
    group.finish();

    let probed_in: u64 = probes
        .iter()
        .map(|&u| narrow.in_degree(u) as u64)
        .sum::<u64>()
        .max(1);
    let mut group = c.benchmark_group("adjacency_rand_in");
    group.throughput(Throughput::Elements(probed_in));
    group.bench_function("u32_offsets", |b| {
        b.iter(|| rand_probe(&narrow, &probes, true))
    });
    group.bench_function("u64_offsets", |b| {
        b.iter(|| rand_probe(&wide, &probes, true))
    });
    group.finish();
}

criterion_group!(benches, bench_adjacency);
criterion_main!(benches);
