//! RTMP→HLS handoff-threshold ablation: the paper notes Periscope caps
//! RTMP (and commenting) at ~100 viewers for scalability. This bench
//! quantifies the ingest-side cost of raising that cap: per-frame fan-out
//! work is linear in RTMP subscribers, so doubling the threshold doubles
//! the most expensive work in the system.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use livescope_core::scalability::{run_rtmp_cell, ScalabilityConfig};

fn bench_handoff(c: &mut Criterion) {
    let config = ScalabilityConfig {
        stream_secs: 10,
        ..ScalabilityConfig::default()
    };
    let mut group = c.benchmark_group("handoff_threshold");
    group.sample_size(10);
    for threshold in [50usize, 100, 200, 400] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &t| b.iter(|| run_rtmp_cell(&config, t)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_handoff);
criterion_main!(benches);
