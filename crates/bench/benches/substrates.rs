//! Micro-benches of the substrate hot paths: wire codecs, SHA-256, the
//! event scheduler, the chunker and graph generation.

#![forbid(unsafe_code)]

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use livescope_graph::{DiGraph, GraphSpec};
use livescope_proto::hls::ChunkList;
use livescope_proto::rtmp::{RtmpMessage, VideoFrame};
use livescope_sim::{Scheduler, SimDuration, SimTime};

fn bench_substrates(c: &mut Criterion) {
    // RTMP frame codec round-trip.
    let frame = VideoFrame::new(42, 1_234_567, true, Bytes::from(vec![7u8; 2_500]));
    let wire = RtmpMessage::Frame(frame.clone()).encode();
    let mut group = c.benchmark_group("proto");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("rtmp_frame_encode", |b| {
        b.iter(|| RtmpMessage::Frame(frame.clone()).encode())
    });
    group.bench_function("rtmp_frame_decode", |b| {
        b.iter(|| RtmpMessage::decode(wire.clone()).unwrap())
    });
    let playlist_text = {
        let chunks: Vec<livescope_proto::hls::Chunk> = (0..6)
            .map(|s| livescope_proto::hls::Chunk {
                seq: s,
                start_ts_us: s * 3_000_000,
                duration_us: 3_000_000,
                frames: vec![],
            })
            .collect();
        ChunkList::from_chunks(&chunks, 6).serialize()
    };
    group.bench_function("chunklist_parse", |b| {
        b.iter(|| ChunkList::parse(&playlist_text).unwrap())
    });
    group.finish();

    // SHA-256 throughput (the defense's per-frame hash).
    let payload = vec![0xA5u8; 2_500];
    let mut sha = c.benchmark_group("sha256");
    sha.throughput(Throughput::Bytes(payload.len() as u64));
    sha.bench_function("digest_2500B_frame", |b| {
        b.iter(|| livescope_security::sha256::digest(&payload))
    });
    sha.finish();

    // Event scheduler throughput.
    c.bench_function("scheduler_10k_events", |b| {
        b.iter(|| {
            let mut sched: Scheduler<u64> = Scheduler::new();
            for i in 0..10_000u64 {
                sched.schedule_at(SimTime::from_micros(i * 7 % 9_999), |_, count| {
                    *count += 1;
                });
            }
            let mut count = 0;
            sched.run(&mut count);
            assert_eq!(count, 10_000);
        })
    });

    // Chunker hot path.
    c.bench_function("chunker_750_frames", |b| {
        b.iter(|| {
            let mut chunker = livescope_cdn::Chunker::new(SimDuration::from_secs(3));
            let mut chunks = 0;
            for i in 0..750u64 {
                let f = VideoFrame::new(i, i * 40_000, i % 50 == 0, Bytes::from_static(&[0u8; 64]));
                if chunker.push(SimTime::from_millis(i * 40), f).is_some() {
                    chunks += 1;
                }
            }
            assert_eq!(chunks, 9);
        })
    });

    // Graph generation (Table 2 substrate).
    c.bench_function("follow_graph_5k_nodes", |b| {
        b.iter(|| DiGraph::generate(&GraphSpec::twitter().with_nodes(5_000), 1))
    });
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
