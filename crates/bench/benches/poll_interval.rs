//! Polling-interval ablation: cost of the Fig 12/13 trace-driven
//! simulation per interval, plus the request-rate consequence (shorter
//! intervals mean proportionally more requests to serve).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use livescope_core::polling::{run, PollingConfig};

fn bench_poll_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("poll_interval");
    for interval in [1.0f64, 2.0, 3.0, 4.0] {
        let config = PollingConfig {
            broadcasts: 1_000,
            intervals_s: vec![interval],
            ..PollingConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{interval}s")),
            &config,
            |b, cfg| {
                b.iter(|| {
                    let report = run(cfg);
                    assert_eq!(report.mean_cdfs.len(), 1);
                    report
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_poll_interval);
criterion_main!(benches);
