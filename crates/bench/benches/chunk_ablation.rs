//! Ablation of the chunk-size design choice (§5.2): 1 s / 3 s / 10 s
//! chunks trade chunking delay against per-chunk server work and poll
//! pressure. The bench measures the server-side cost of chunking and
//! serving the same 30 s stream at each size.

#![forbid(unsafe_code)]

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use livescope_cdn::ids::BroadcastId;
use livescope_cdn::{Chunker, FastlyPop, FetchPlan};
use livescope_net::datacenters::DatacenterId;
use livescope_proto::rtmp::VideoFrame;
use livescope_sim::{SimDuration, SimTime};

fn frame(seq: u64) -> VideoFrame {
    VideoFrame::new(
        seq,
        seq * 40_000,
        seq.is_multiple_of(50),
        Bytes::from(vec![5u8; 2_500]),
    )
}

fn chunk_and_serve(chunk_secs: f64, viewers: usize) -> u64 {
    let mut chunker = Chunker::new(SimDuration::from_secs_f64(chunk_secs));
    let mut origin = Vec::new();
    for i in 0..750u64 {
        if let Some(ready) = chunker.push(SimTime::from_millis(i * 40), frame(i)) {
            origin.push(ready);
        }
    }
    let mut pop = FastlyPop::new(DatacenterId(8));
    let fetch = |_: &FetchPlan| SimDuration::from_millis(20);
    let b = BroadcastId(1);
    for v in 0..viewers {
        let mut have: Option<u64> = None;
        for poll in 0..12u64 {
            let now = SimTime::from_secs_f64(poll as f64 * 2.8 + v as f64 * 0.01);
            let resp = pop.poll(now, b, &origin, fetch);
            for e in &resp.chunklist.entries {
                if have.is_none_or(|h| e.seq > h) && pop.get_chunk(now, b, e.seq).is_some() {
                    have = Some(e.seq);
                }
            }
        }
    }
    pop.work.polls_served + pop.work.chunks_served
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk_ablation");
    for chunk_secs in [1.0f64, 3.0, 10.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{chunk_secs}s")),
            &chunk_secs,
            |b, &secs| b.iter(|| chunk_and_serve(secs, 20)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
