//! Bench-regression gate: compares a freshly generated benchmark /
//! observability artifact against a committed baseline, metric by
//! metric, with per-metric tolerances.
//!
//! Baselines live under `baselines/` in the repo root and only ever
//! contain **deterministic** quantities — simulation-time delays,
//! counts, checksums. Wall-clock numbers and run metadata (host
//! parallelism, cargo profile) vary by machine and must never appear in
//! a [`MetricSpec`] list; [`run_meta_json`](crate::run_meta_json)
//! exists so writers stamp them in one recognisable place the gate can
//! ignore. One audited exception: `bench_check` gates
//! `graph_build.wall_s` with a [`Tol::Rel`] of 3.0 — a pure
//! anti-catastrophe canary, wide enough that no host or scheduler
//! jitter can trip it, present so an algorithmic complexity regression
//! in the graph build cannot land silently. Do not add further
//! wall-clock metrics without the same order-of-magnitude headroom.
//!
//! The comparison works on the JSON artifacts directly via a minimal
//! dot-path lookup (`"qoe.hls.join_time_mean_s"`, `"runs.0.checksum"`),
//! so the gate needs no knowledge of each artifact's Rust types.

use serde_json::Value;

/// Per-metric tolerance.
#[derive(Clone, Copy, Debug)]
pub enum Tol {
    /// Values must match exactly (checksums, counts, enumerations).
    Exact,
    /// Numbers may differ by the given relative fraction
    /// (`|fresh - base| <= frac * max(|base|, 1e-12)`).
    Rel(f64),
}

/// One gated metric: where it lives in the JSON document and how much
/// drift is tolerated.
#[derive(Clone, Copy, Debug)]
pub struct MetricSpec {
    /// Dot-separated path; array elements are addressed by index
    /// (`"runs.0.checksum"`).
    pub path: &'static str,
    /// Allowed drift.
    pub tol: Tol,
}

impl MetricSpec {
    /// An exact-match metric.
    pub const fn exact(path: &'static str) -> Self {
        MetricSpec {
            path,
            tol: Tol::Exact,
        }
    }

    /// A relative-tolerance metric.
    pub const fn rel(path: &'static str, frac: f64) -> Self {
        MetricSpec {
            path,
            tol: Tol::Rel(frac),
        }
    }
}

/// Resolves a dot path inside a JSON document. Objects are indexed by
/// key, arrays by decimal index.
pub fn lookup<'a>(doc: &'a Value, path: &str) -> Option<&'a Value> {
    let mut node = doc;
    for part in path.split('.') {
        node = match node {
            Value::Object(_) => node.get(part)?,
            Value::Array(items) => items.get(part.parse::<usize>().ok()?)?,
            _ => return None,
        };
    }
    Some(node)
}

/// Compact rendering of a JSON value for violation messages.
fn show(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "<unprintable>".into())
}

fn violates(base: &Value, fresh: &Value, tol: Tol) -> bool {
    match tol {
        Tol::Exact => base != fresh,
        Tol::Rel(frac) => match (base.as_f64(), fresh.as_f64()) {
            (Some(b), Some(f)) => (f - b).abs() > frac * b.abs().max(1e-12),
            // Non-numeric under a relative tolerance: fall back to equality.
            _ => base != fresh,
        },
    }
}

/// Compares `fresh` against `baseline` over `specs`. Returns one
/// human-readable line per violation: out-of-tolerance values, paths
/// missing from either document. Empty means the gate passes.
pub fn compare(baseline: &Value, fresh: &Value, specs: &[MetricSpec]) -> Vec<String> {
    let mut violations = Vec::new();
    for spec in specs {
        match (lookup(baseline, spec.path), lookup(fresh, spec.path)) {
            (Some(base), Some(new)) => {
                if violates(base, new, spec.tol) {
                    let how = match spec.tol {
                        Tol::Exact => "exact".to_string(),
                        Tol::Rel(frac) => format!("±{:.1}%", frac * 100.0),
                    };
                    violations.push(format!(
                        "{}: baseline {} vs fresh {} (tolerance {how})",
                        spec.path,
                        show(base),
                        show(new)
                    ));
                }
            }
            (None, Some(_)) => violations.push(format!("{}: missing from baseline", spec.path)),
            (Some(_), None) => violations.push(format!("{}: missing from fresh run", spec.path)),
            (None, None) => violations.push(format!("{}: missing from both documents", spec.path)),
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(join: f64, checksum: u64) -> Value {
        serde_json::from_str(&format!(
            "{{\"qoe\":{{\"hls\":{{\"join_time_mean_s\":{join:?}}}}},\
             \"runs\":[{{\"checksum\":{checksum}}}]}}"
        ))
        .expect("test doc is JSON")
    }

    const SPECS: &[MetricSpec] = &[
        MetricSpec::rel("qoe.hls.join_time_mean_s", 0.05),
        MetricSpec::exact("runs.0.checksum"),
    ];

    #[test]
    fn lookup_walks_objects_and_arrays() {
        let d = doc(2.5, 7);
        assert_eq!(
            lookup(&d, "qoe.hls.join_time_mean_s").and_then(Value::as_f64),
            Some(2.5)
        );
        assert_eq!(
            lookup(&d, "runs.0.checksum").and_then(Value::as_u64),
            Some(7)
        );
        assert!(lookup(&d, "qoe.rtmp").is_none());
        assert!(lookup(&d, "runs.3.checksum").is_none());
    }

    #[test]
    fn identical_documents_pass() {
        assert!(compare(&doc(2.5, 7), &doc(2.5, 7), SPECS).is_empty());
    }

    #[test]
    fn drift_within_tolerance_passes() {
        // 2% drift against a 5% tolerance.
        assert!(compare(&doc(2.5, 7), &doc(2.55, 7), SPECS).is_empty());
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        // The acceptance-criterion case: a deliberate regression (join
        // time +40%) must be flagged.
        let violations = compare(&doc(2.5, 7), &doc(3.5, 7), SPECS);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("join_time_mean_s"), "{violations:?}");
    }

    #[test]
    fn checksum_change_fails_exactly() {
        let violations = compare(&doc(2.5, 7), &doc(2.5, 8), SPECS);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("checksum"), "{violations:?}");
    }

    #[test]
    fn missing_paths_are_reported() {
        let fresh: Value =
            serde_json::from_str("{\"qoe\":{\"hls\":{}},\"runs\":[]}").expect("test doc is JSON");
        let violations = compare(&doc(2.5, 7), &fresh, SPECS);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().all(|v| v.contains("missing")));
    }
}
