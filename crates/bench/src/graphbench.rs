//! Shared helpers for the graph-build benches: one timed build and the
//! assembly worker K-sweep behind `bench_replay --graph-only` and the
//! `graph_workers` section of `BENCH_replay.json`.
//!
//! Everything except `wall_s` in a [`GraphBuildRun`] is deterministic in
//! `(spec, seed)` — and, by the parallel assembly contract (DESIGN.md
//! §12), *worker-invariant*: the sweep asserts every K reproduces the
//! K=1 checksums before any caller may report a scaling curve. Wall
//! clocks live here (not in the graph crate) so the generator itself
//! stays clock-free; detlint allowlists this module's reads for exactly
//! that reason.

use std::time::Instant;

use livescope_graph::{BuildOptions, BuildProfile, DiGraph, GraphSpec};
use livescope_telemetry::Telemetry;

/// One timed graph build (one point on the worker scaling curve).
#[derive(Clone, Debug)]
pub struct GraphBuildRun {
    /// Assembly worker shards the build ran with.
    pub workers: usize,
    /// End-to-end build wall seconds (decide + rewire + assemble).
    pub wall_s: f64,
    /// Deterministic high-water mark of the build buffers.
    pub peak_bytes: usize,
    /// Bytes held by the finished CSR graph.
    pub resident_bytes: usize,
    /// Directed edges in the finished graph.
    pub edges: usize,
    /// Top celebrity's follower count.
    pub max_in_degree: usize,
    /// Rewiring swaps applied.
    pub swaps_applied: u64,
    /// Full-layout digest ([`DiGraph::adjacency_checksum`]).
    pub adjacency_checksum: u64,
    /// Degree-sequence digest ([`DiGraph::degree_checksum`]).
    pub degree_checksum: u64,
}

/// Builds `spec` at `seed` with `workers` assembly shards, timing the
/// whole build and recording the `handler.graph.*` phase sections on
/// `telemetry` (inert without the `profile` feature).
pub fn timed_build(
    spec: &GraphSpec,
    seed: u64,
    workers: usize,
    telemetry: &Telemetry,
) -> (DiGraph, GraphBuildRun) {
    let options = BuildOptions::new()
        .with_workers(workers)
        .with_profile(BuildProfile::new(telemetry));
    let t0 = Instant::now();
    let (graph, stats) = DiGraph::generate_with(spec, seed, &options);
    let wall_s = t0.elapsed().as_secs_f64();
    let run = GraphBuildRun {
        workers: stats.workers,
        wall_s,
        peak_bytes: stats.peak_bytes,
        resident_bytes: graph.resident_bytes(),
        edges: stats.edges,
        max_in_degree: graph.degrees().max_in_degree(),
        swaps_applied: stats.swaps_applied,
        adjacency_checksum: graph.adjacency_checksum(),
        degree_checksum: graph.degree_checksum(),
    };
    (graph, run)
}

/// Builds `spec` once per `K` in `workers`, asserting every run
/// reproduces the first run's checksums and deterministic stats (the
/// parallel assembly contract) before returning the scaling curve.
pub fn graph_worker_sweep(
    spec: &GraphSpec,
    seed: u64,
    workers: &[usize],
    telemetry: &Telemetry,
) -> Vec<GraphBuildRun> {
    let mut runs: Vec<GraphBuildRun> = Vec::with_capacity(workers.len());
    for &k in workers {
        let (_, run) = timed_build(spec, seed, k, telemetry);
        if let Some(first) = runs.first() {
            assert_eq!(
                run.adjacency_checksum, first.adjacency_checksum,
                "K={k} assembly diverged from K={} (adjacency)",
                first.workers
            );
            assert_eq!(
                run.degree_checksum, first.degree_checksum,
                "K={k} assembly diverged from K={} (degree)",
                first.workers
            );
            assert_eq!(
                run.peak_bytes, first.peak_bytes,
                "K={k} peak_bytes diverged — per-worker state must be carved \
                 from shared arrays, never allocated per shard"
            );
        }
        runs.push(run);
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_asserts_and_reports_worker_invariant_checksums() {
        let spec = GraphSpec::twitter().with_nodes(400);
        let telemetry = Telemetry::disabled();
        let runs = graph_worker_sweep(&spec, 7, &[1, 2, 6], &telemetry);
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].workers, 1);
        assert_eq!(runs[2].workers, 6);
        let direct = DiGraph::generate(&spec, 7);
        for r in &runs {
            assert_eq!(r.adjacency_checksum, direct.adjacency_checksum());
            assert_eq!(r.degree_checksum, direct.degree_checksum());
            assert_eq!(r.edges, direct.edge_count());
        }
    }
}
