//! # livescope-bench — figure/table regeneration harness
//!
//! One binary per paper artifact (`tab1`, `tab2`, `fig1` … `fig18`,
//! `crawler_coverage`) plus the Criterion micro-benches in `benches/`.
//! Every binary prints the artifact to stdout and drops machine-readable
//! copies (CSV and, for figures, JSON) under `results/`.
//!
//! Run any of them with e.g.
//! `cargo run -p livescope-bench --release --bin fig11`.

#![forbid(unsafe_code)]

pub mod graphbench;
pub mod obs;
pub mod regress;
pub mod replay;

use std::fs;
use std::path::PathBuf;

use livescope_analysis::Figure;

/// Shared run metadata stamped into every `BENCH_*.json` /
/// `OBS_report.json` this crate writes, as one `{...}` JSON object:
/// host parallelism, cargo profile, the workload seed, and the sim
/// version. One helper so every writer agrees on the schema.
///
/// These fields describe the *machine and build*, not the simulation —
/// the bench-regression gate must never compare them across hosts
/// (see [`regress`]).
pub fn run_meta_json(seed: u64) -> String {
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cargo_profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    format!(
        "{{\"host_parallelism\":{host_parallelism},\"cargo_profile\":\"{cargo_profile}\",\
         \"seed\":{seed},\"sim_version\":\"{}\"}}",
        env!("CARGO_PKG_VERSION")
    )
}

/// Where artifacts land (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("LIVESCOPE_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("can create results directory");
    dir
}

/// Prints the ASCII artifact and persists named sidecar files.
pub fn emit(name: &str, ascii: &str, sidecars: &[(&str, String)]) {
    println!("{ascii}");
    let dir = results_dir();
    for (ext, content) in sidecars {
        let path = dir.join(format!("{name}.{ext}"));
        fs::write(&path, content).expect("can write artifact");
        println!("[wrote {}]", path.display());
    }
}

/// Emits a figure: ASCII chart + CSV + JSON.
pub fn emit_figure(name: &str, fig: &Figure) {
    emit(
        name,
        &fig.render_ascii(84, 20),
        &[("csv", fig.to_csv()), ("json", fig.to_json())],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use livescope_analysis::Series;

    #[test]
    fn emit_writes_sidecars() {
        let dir = std::env::temp_dir().join(format!("livescope-bench-{}", std::process::id()));
        std::env::set_var("LIVESCOPE_RESULTS", &dir);
        let mut fig = Figure::new("t", "x", "y");
        fig.push_series(Series::new("s", vec![(0.0, 0.0), (1.0, 1.0)]));
        emit_figure("unit_test_fig", &fig);
        assert!(dir.join("unit_test_fig.csv").exists());
        assert!(dir.join("unit_test_fig.json").exists());
        std::fs::remove_dir_all(&dir).ok();
        std::env::remove_var("LIVESCOPE_RESULTS");
    }
}
