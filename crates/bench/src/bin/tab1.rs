//! Table 1 — dataset scale: broadcasts, broadcasters, views, unique
//! viewers for the Periscope (3-month) and Meerkat (1-month) campaigns.

#![forbid(unsafe_code)]

use livescope_bench::emit;
use livescope_core::usage::{run, UsageConfig};

fn main() {
    let report = run(&UsageConfig::default());
    let mut notes = String::new();
    notes.push_str(&format!(
        "\nPeriscope: crawler missed {} broadcasts to the Aug 7-9 outage; \
         {} broadcasts reached >=1 HLS viewer\n",
        report.periscope.missed, report.periscope.hls_broadcasts,
    ));
    let ascii = format!("{}{}", report.tab1(), notes);
    emit("tab1", &ascii, &[("txt", ascii.clone())]);
}
