//! Fig 17 — HLS client buffering for pre-buffer sizes 0 / 3 / 6 / 9 s, and
//! the §6 optimization claim (P=6 s ≈ P=9 s smoothness at half the delay).

#![forbid(unsafe_code)]

use livescope_bench::emit_figure;
use livescope_core::buffering::{run, BufferingConfig};

fn main() {
    let report = run(&BufferingConfig::default());
    emit_figure("fig17a_stall", &report.fig17_stall());
    emit_figure("fig17b_buffering", &report.fig17_buffering());
    for c in &report.hls {
        println!(
            "P={:<4} p90 stall ratio {:.4}, median buffering {:.2}s",
            c.prebuffer_s,
            c.stall_ratio.quantile(0.9),
            c.avg_buffering.median()
        );
    }
    let p6 = report.hls_at(6.0).unwrap();
    let p9 = report.hls_at(9.0).unwrap();
    println!(
        "P=6 vs P=9: stall p90 {:.4} vs {:.4}; buffering saving {:.2}s ({:.0}%)  \
         [paper: similar stalling, ~3s / ~50% saving]",
        p6.stall_ratio.quantile(0.9),
        p9.stall_ratio.quantile(0.9),
        p9.avg_buffering.median() - p6.avg_buffering.median(),
        (p9.avg_buffering.median() - p6.avg_buffering.median()) / p9.avg_buffering.median() * 100.0
    );
}
