//! Wall-clock comparison of the sharded scheduler's lane counts on the
//! celebrity fan-out workload (`livescope_cdn::run_fanout`: one shard per
//! POP, viewers roaming between POPs through the inter-lane mailboxes).
//! Results land in `BENCH_shards.json` (`just bench-shards`).
//!
//! ```sh
//! cargo run --release -p livescope-bench --features parallel \
//!     --bin bench_shards -- BENCH_shards.json
//! # CI smoke variant (tiny workload, asserts lane-count invariance):
//! cargo run --release -p livescope-bench --bin bench_shards -- --smoke
//! ```
//!
//! Every run records the workload checksum, so the file doubles as a
//! determinism record: all lane counts must report the same checksum, and
//! the binary exits non-zero if they don't. `host_parallelism` and
//! `parallel_feature` are recorded because the wall-clock ratio is only
//! meaningful when the build has worker threads (`--features parallel`)
//! and the host has cores to run them on — on a single-core host the
//! honest expectation is a ratio near 1.0.

#![forbid(unsafe_code)]

use std::time::Instant;

use livescope_bench::run_meta_json;
use livescope_cdn::{run_fanout, FanoutConfig};
use livescope_telemetry::Telemetry;

const ITERATIONS: usize = 3;
const LANES: [usize; 3] = [1, 2, 6];

fn workload(smoke: bool) -> FanoutConfig {
    // The divisor shrinks the stream and audience for the CI smoke run
    // while keeping every mechanism (polls, serves, roams) exercised.
    let div = if smoke { 10 } else { 1 };
    FanoutConfig {
        viewers_per_pop: 250 / div,
        stream_secs: 120 / div as u64,
        roam_every: 5,
        seed: 0xF1610,
        ..FanoutConfig::default()
    }
}

struct LaneRun {
    lanes: usize,
    wall_us_mean: u128,
    wall_us_min: u128,
    checksum: u64,
    chunks_served: u64,
    events_fired: u64,
}

fn bench_lanes(config: &FanoutConfig, lanes: usize) -> LaneRun {
    let mut samples: Vec<u128> = Vec::with_capacity(ITERATIONS);
    let mut report = None;
    for _ in 0..ITERATIONS {
        let t0 = Instant::now();
        report = Some(run_fanout(config, lanes, &Telemetry::disabled()));
        samples.push(t0.elapsed().as_micros());
    }
    let report = report.expect("at least one iteration");
    LaneRun {
        lanes,
        wall_us_mean: samples.iter().sum::<u128>() / samples.len() as u128,
        wall_us_min: *samples.iter().min().expect("samples"),
        checksum: report.checksum,
        chunks_served: report.chunks_served(),
        events_fired: report.events_fired,
    }
}

fn main() {
    let mut out = "BENCH_shards.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => out = other.to_string(),
        }
    }
    let config = workload(smoke);
    let runs: Vec<LaneRun> = LANES.iter().map(|&l| bench_lanes(&config, l)).collect();

    let checksum = runs[0].checksum;
    let invariant = runs.iter().all(|r| r.checksum == checksum);
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let parallel_feature = cfg!(feature = "parallel");
    let speedup = runs[0].wall_us_min as f64 / runs.last().expect("runs").wall_us_min.max(1) as f64;

    let run_lines: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"lanes\":{},\"wall_us_mean\":{},\"wall_us_min\":{},\
                 \"checksum\":\"{:#018x}\",\"chunks_served\":{},\"events_fired\":{}}}",
                r.lanes, r.wall_us_mean, r.wall_us_min, r.checksum, r.chunks_served, r.events_fired
            )
        })
        .collect();
    let doc = format!(
        "{{\"bench\":\"sharded_fanout\",\"meta\":{},\"workload\":{{\"pops\":{},\
         \"viewers_per_pop\":{},\"stream_secs\":{},\"roam_every\":{},\
         \"iterations\":{ITERATIONS},\"smoke\":{smoke}}},\
         \"host_parallelism\":{host_parallelism},\"parallel_feature\":{parallel_feature},\
         \"speedup_1_to_{}\":{speedup:.3},\"runs\":[{}]}}\n",
        run_meta_json(config.seed),
        config.pops.len(),
        config.viewers_per_pop,
        config.stream_secs,
        config.roam_every,
        LANES[LANES.len() - 1],
        run_lines.join(",")
    );

    for r in &runs {
        println!(
            "lanes={}: mean {}us (min {}us), {} chunk serves, checksum {:#018x}",
            r.lanes, r.wall_us_mean, r.wall_us_min, r.chunks_served, r.checksum
        );
    }
    println!(
        "host_parallelism={host_parallelism} parallel_feature={parallel_feature} \
         speedup(1→{} lanes)={speedup:.2}x",
        LANES[LANES.len() - 1]
    );
    assert!(
        invariant,
        "checksum differs across lane counts — determinism contract broken"
    );
    if smoke {
        println!("smoke: checksum invariant across lanes {LANES:?} holds");
        return;
    }
    std::fs::write(&out, &doc).expect("write bench file");
    println!("wrote {out}");
}
