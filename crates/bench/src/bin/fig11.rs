//! Fig 11 — end-to-end delay breakdown, RTMP vs HLS (the controlled
//! experiment of §4.3, repeated 10× and averaged).

#![forbid(unsafe_code)]

use livescope_bench::emit;
use livescope_core::breakdown::{run, BreakdownConfig};

fn main() {
    let report = run(&BreakdownConfig::default());
    let mut ascii = report.render();
    ascii.push_str(&format!(
        "\npaper: RTMP ~1.4s total; HLS ~11.7s total \
         (buffering 6.9, chunking 3.0, polling 1.2, W2F 0.3)\n\
         measured ratio HLS/RTMP: {:.1}x\n",
        report.hls.total_s() / report.rtmp.total_s()
    ));
    emit("fig11", &ascii, &[("txt", ascii.clone())]);
}
