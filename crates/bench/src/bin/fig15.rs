//! Fig 15 — Wowza-to-Fastly replication delay, bucketed by datacenter
//! distance, including the co-located-gateway gap.

#![forbid(unsafe_code)]

use livescope_bench::emit_figure;
use livescope_core::geolocation::{run, GeolocationConfig};

fn main() {
    let report = run(&GeolocationConfig::default());
    emit_figure("fig15", &report.fig15());
    for (bucket, cdf) in &report.buckets {
        println!(
            "{:<20} median {:.3}s  p90 {:.3}s  ({} samples)",
            bucket.label(),
            cdf.median(),
            cdf.quantile(0.9),
            cdf.len()
        );
    }
    if let Some(gap) = report.gateway_gap_s() {
        println!("co-located vs nearby median gap: {gap:.3}s (paper: >0.25s)");
    }
}
