//! Fig 7 — broadcaster followers vs viewers per broadcast.

#![forbid(unsafe_code)]

use livescope_bench::emit_figure;
use livescope_core::social::run_fig7;

fn main() {
    let report = run_fig7(97, 12_000, 0x5ca1ab1e);
    emit_figure("fig7", &report.fig7());
    println!(
        "log-log correlation: {:.3}; top-decile-by-followers median audience {} vs \
         bottom-half {} (paper: strong positive relationship)",
        report.log_correlation, report.top_decile_median, report.bottom_half_median
    );
}
