//! §3.1 crawler calibration — coverage and discovery latency vs effective
//! refresh rate of the global-list crawler.

#![forbid(unsafe_code)]

use livescope_analysis::Table;
use livescope_bench::emit;
use livescope_crawler::coverage::{run_coverage, CoverageConfig};
use livescope_sim::SimDuration;

fn main() {
    let mut table = Table::new([
        "accounts",
        "effective refresh",
        "coverage",
        "mean discovery latency",
        "queries",
    ]);
    for (accounts, refresh_s) in [(20usize, 5.0), (10, 5.0), (4, 5.0), (1, 5.0), (1, 30.0)] {
        let config = CoverageConfig {
            accounts,
            account_refresh: SimDuration::from_secs_f64(refresh_s),
            ..CoverageConfig::paper_production()
        };
        let report = run_coverage(&config);
        table.row([
            accounts.to_string(),
            format!("{:.2}s", config.effective_refresh().as_secs_f64()),
            format!("{:.2}%", report.coverage * 100.0),
            format!("{:.2}s", report.mean_discovery_latency_s),
            report.queries.to_string(),
        ]);
    }
    let ascii = format!(
        "§3.1 — global-list crawler calibration\n{}\npaper: 0.25s effective refresh used in \
         production; 0.5s already captures every broadcast\n",
        table.render()
    );
    emit("crawler_coverage", &ascii, &[("txt", ascii.clone())]);
}
