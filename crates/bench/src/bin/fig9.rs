//! Fig 9 — Wowza and Fastly server locations and the co-location facts.

#![forbid(unsafe_code)]

use livescope_bench::emit;
use livescope_core::geolocation::fig9_table;

fn main() {
    let ascii = fig9_table();
    emit("fig9", &ascii, &[("txt", ascii.clone())]);
}
