//! Fig 2 — number of daily active users (viewers and broadcasters).

#![forbid(unsafe_code)]

use livescope_bench::emit_figure;
use livescope_core::usage::{run, UsageConfig};

fn main() {
    let report = run(&UsageConfig::default());
    emit_figure("fig2", &report.fig2());
    let (v, b): (u64, u64) = report.periscope.daily.iter().fold((0, 0), |acc, d| {
        (acc.0 + d.active_viewers, acc.1 + d.active_broadcasters)
    });
    println!(
        "Periscope viewer:broadcaster ratio: {:.1}:1 (paper: ~10:1)",
        v as f64 / b as f64
    );
}
