//! Fig 13 — CDF of within-broadcast polling-delay standard deviation.

#![forbid(unsafe_code)]

use livescope_bench::emit_figure;
use livescope_core::polling::{run, PollingConfig};

fn main() {
    let report = run(&PollingConfig::default());
    emit_figure("fig13", &report.fig13());
    for (interval, cdf) in &report.std_cdfs {
        println!("interval {interval}s: median std {:.2}s", cdf.median());
    }
    println!("paper: high variance at every interval — viewers cannot predict chunk arrivals");
}
