//! Fig 1 — number of daily broadcasts over the study window.

#![forbid(unsafe_code)]

use livescope_bench::emit_figure;
use livescope_core::usage::{run, UsageConfig};

fn main() {
    let report = run(&UsageConfig::default());
    emit_figure("fig1", &report.fig1());
    let p = &report.periscope.daily;
    let growth = p[p.len() - 7..].iter().map(|d| d.broadcasts).sum::<u64>() as f64
        / p[..7].iter().map(|d| d.broadcasts).sum::<u64>().max(1) as f64;
    println!("Periscope weekly-volume growth over the window: {growth:.2}x (paper: >3x)");
}
