//! Streaming-replay scale sweep: the Periscope study replayed at scale
//! divisors 1000 → 100 → 10 on the single-pass generate → crawl →
//! analyze path (DESIGN.md §10). Results land in `BENCH_replay.json`
//! (`just bench-replay`).
//!
//! ```sh
//! cargo run --release -p livescope-bench --features profile \
//!     --bin bench_replay -- BENCH_replay.json
//! # CI smoke variant (divisor 1000 only, asserts the streaming path's
//! # record checksum and aggregates match the materializing path):
//! cargo run --release -p livescope-bench --bin bench_replay -- --smoke
//! ```
//!
//! Each divisor records wall time, broadcasts/sec, and the *peak tracked
//! replay state* — `BroadcastStream::tracked_bytes()` +
//! `StreamingCampaign::tracked_bytes()`, sampled during the fold. That
//! state is O(users + days + sketch bins); the JSON also records what
//! the old collect-then-scan path would have pinned in memory
//! (`records × size_of::<BroadcastRecord>()`) so the gap is visible in
//! one file. The follow graph is input data, not replay state, and is
//! accounted separately as `graph` context in the workload block.
//!
//! With `--features profile` the run finishes with the celebrity fan-out
//! profiling report: top-5 handler histograms by total wall time
//! (`handler.fanout.*` sections plus the single-threaded scheduler's
//! `sim.event_wall_ns` when present).

#![forbid(unsafe_code)]

use std::time::Instant;

use livescope_bench::run_meta_json;
use livescope_crawler::campaign::CampaignConfig;
use livescope_crawler::streaming::DEFAULT_EXEMPLARS;
use livescope_crawler::{OutageFilter, StreamingCampaign};
use livescope_sim::rng::splitmix64;
use livescope_telemetry::Telemetry;
use livescope_workload::{generate, generate_streaming, BroadcastRecord, ScenarioConfig};

const DIVISORS: [f64; 3] = [1_000.0, 100.0, 10.0];
/// Sampling stride for the peak-tracked-bytes watermark.
const MEM_SAMPLE_EVERY: u64 = 4_096;

/// The Periscope study at `divisor`: the paper-scale population and
/// daily-broadcast anchors divided by `divisor` instead of the default
/// 1000 (divisor 10 ≈ 1.2M users, ~2M broadcasts over the 97 days).
fn scaled_periscope(divisor: f64) -> ScenarioConfig {
    let base = ScenarioConfig::periscope_study();
    let scale = base.scale_divisor / divisor;
    ScenarioConfig {
        users: (base.users as f64 * scale) as usize,
        base_daily_broadcasts: base.base_daily_broadcasts * scale,
        scale_divisor: divisor,
        ..base
    }
}

/// Order-insensitive digest of one generated record (the campaign's
/// outage filter never sees it — the checksum pins the *generator*).
fn record_digest(r: &BroadcastRecord) -> u64 {
    splitmix64(
        splitmix64(r.id ^ (r.day as u64) << 40)
            ^ splitmix64(r.broadcaster as u64 ^ r.viewers.rotate_left(17))
            ^ splitmix64(r.hearts ^ r.comments.rotate_left(31) ^ r.followers.rotate_left(7))
            ^ r.duration.as_micros(),
    )
}

struct ReplayRun {
    divisor: f64,
    users: usize,
    records: u64,
    wall_s: f64,
    broadcasts_per_sec: f64,
    peak_tracked_bytes: usize,
    materialized_record_bytes: u64,
    checksum: u64,
    recorded: u64,
    missed: u64,
}

/// One streaming replay of the Periscope campaign at `divisor`,
/// instrumented with the record digest and the tracked-state watermark.
/// This is `run_campaign_streaming` unrolled so the bench can observe
/// the fold without perturbing it (same filter → observe/miss order,
/// so the RNG and accumulator states are identical).
fn replay(divisor: f64) -> ReplayRun {
    let scenario = scaled_periscope(divisor);
    let campaign = CampaignConfig::periscope_study();
    let t0 = Instant::now();
    let mut stream = generate_streaming(&scenario);
    let mut filter = OutageFilter::new(&campaign);
    let mut acc =
        StreamingCampaign::new(&campaign, scenario.days, scenario.users, DEFAULT_EXEMPLARS);
    let mut checksum = 0u64;
    let mut records = 0u64;
    let mut peak = 0usize;
    while let Some(record) = stream.next() {
        checksum = checksum.wrapping_add(record_digest(&record));
        records += 1;
        if filter.observes(record.day) {
            acc.observe(record);
        } else {
            acc.miss();
        }
        if records.is_multiple_of(MEM_SAMPLE_EVERY) {
            peak = peak.max(stream.tracked_bytes() + acc.tracked_bytes());
        }
    }
    peak = peak.max(stream.tracked_bytes() + acc.tracked_bytes());
    let summary = acc.finish(stream.into_summary());
    let wall_s = t0.elapsed().as_secs_f64();
    ReplayRun {
        divisor,
        users: scenario.users,
        records,
        wall_s,
        broadcasts_per_sec: records as f64 / wall_s.max(1e-9),
        peak_tracked_bytes: peak,
        materialized_record_bytes: records * std::mem::size_of::<BroadcastRecord>() as u64,
        checksum,
        recorded: summary.broadcasts(),
        missed: summary.missed,
    }
}

/// The materializing path at `divisor`, digested the same way; returns
/// `(checksum, record_vec_bytes)`.
fn materialized_digest(divisor: f64) -> (u64, u64) {
    let workload = generate(&scaled_periscope(divisor));
    let checksum = workload
        .broadcasts
        .iter()
        .fold(0u64, |acc, r| acc.wrapping_add(record_digest(r)));
    let bytes = (workload.broadcasts.capacity() * std::mem::size_of::<BroadcastRecord>()) as u64;
    (checksum, bytes)
}

/// Top-5 handler histograms by total wall time, as report lines and a
/// JSON fragment. Empty when the build lacks the `profile` feature.
fn profile_report() -> (Vec<String>, Vec<String>) {
    if !cfg!(feature = "profile") {
        return (
            vec![
                "profile feature off — rebuild with --features profile for handler histograms"
                    .to_string(),
            ],
            Vec::new(),
        );
    }
    // The celebrity-broadcast workload of bench_shards, single-lane so
    // the single-threaded per-event numbers are comparable run to run.
    let config = livescope_cdn::FanoutConfig {
        viewers_per_pop: 250,
        stream_secs: 120,
        roam_every: 5,
        seed: 0xF1610,
        ..livescope_cdn::FanoutConfig::default()
    };
    let telemetry = Telemetry::recording(1024);
    livescope_cdn::run_fanout(&config, 1, &telemetry);
    let snapshot = telemetry.snapshot();
    let mut hists: Vec<_> = snapshot
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("handler.") || name == "sim.event_wall_ns")
        .collect();
    hists.sort_by(|a, b| b.1.sum.cmp(&a.1.sum).then_with(|| a.0.cmp(&b.0)));
    let mut lines = vec![format!(
        "top handler histograms under celebrity_broadcast ({} viewers, {}s stream):",
        config.pops.len() * config.viewers_per_pop,
        config.stream_secs
    )];
    let mut json = Vec::new();
    for (name, h) in hists.into_iter().take(5) {
        lines.push(format!(
            "  {name:<32} count={:>7} total={:>6.1}ms mean={:>7.0}ns p50={:>7.0}ns p99={:>8.0}ns max={}ns",
            h.count,
            h.sum as f64 / 1e6,
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.99),
            h.max,
        ));
        json.push(format!(
            "{{\"name\":\"{name}\",\"count\":{},\"total_ns\":{},\"mean_ns\":{:.0},\
             \"p50_ns\":{:.0},\"p99_ns\":{:.0},\"max_ns\":{}}}",
            h.count,
            h.sum,
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.99),
            h.max,
        ));
    }
    (lines, json)
}

fn main() {
    let mut out = "BENCH_replay.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => out = other.to_string(),
        }
    }

    // Divisor 1000 runs in both modes and is always cross-checked
    // against the materializing path.
    let base = replay(1_000.0);
    let (mat_checksum, mat_bytes) = materialized_digest(1_000.0);
    println!(
        "divisor 1000: {} broadcasts in {:.2}s ({:.0}/s), peak tracked {:.1} KiB \
         (materialized records: {:.1} KiB)",
        base.records,
        base.wall_s,
        base.broadcasts_per_sec,
        base.peak_tracked_bytes as f64 / 1024.0,
        mat_bytes as f64 / 1024.0,
    );
    assert_eq!(
        base.checksum, mat_checksum,
        "streaming generator diverged from the materializing path at divisor 1000"
    );
    if smoke {
        println!(
            "smoke: divisor-1000 checksum {:#018x} matches materialized path \
             ({} recorded, {} missed)",
            base.checksum, base.recorded, base.missed
        );
        return;
    }

    let mut runs = vec![base];
    for &divisor in &DIVISORS[1..] {
        let run = replay(divisor);
        println!(
            "divisor {divisor}: {} broadcasts in {:.2}s ({:.0}/s), peak tracked {:.1} MiB \
             (materialized records would be {:.1} MiB)",
            run.records,
            run.wall_s,
            run.broadcasts_per_sec,
            run.peak_tracked_bytes as f64 / (1024.0 * 1024.0),
            run.materialized_record_bytes as f64 / (1024.0 * 1024.0),
        );
        runs.push(run);
    }

    let (profile_lines, profile_json) = profile_report();
    for line in &profile_lines {
        println!("{line}");
    }

    let run_lines: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"divisor\":{},\"users\":{},\"records\":{},\"wall_s\":{:.3},\
                 \"broadcasts_per_sec\":{:.0},\"peak_tracked_bytes\":{},\
                 \"tracked_bytes_per_record\":{:.2},\"materialized_record_bytes\":{},\
                 \"checksum\":\"{:#018x}\",\"recorded\":{},\"missed\":{}}}",
                r.divisor,
                r.users,
                r.records,
                r.wall_s,
                r.broadcasts_per_sec,
                r.peak_tracked_bytes,
                r.peak_tracked_bytes as f64 / r.records.max(1) as f64,
                r.materialized_record_bytes,
                r.checksum,
                r.recorded,
                r.missed,
            )
        })
        .collect();
    let doc = format!(
        "{{\"bench\":\"streaming_replay\",\"meta\":{},\"workload\":{{\"app\":\"Periscope\",\"days\":{},\
         \"mem_sample_every\":{MEM_SAMPLE_EVERY},\"graph\":\"follow graph is O(users+edges) \
         input data, excluded from tracked replay state\"}},\
         \"divisor_1000_matches_materialized\":true,\
         \"profile_feature\":{},\"profile_top5\":[{}],\"runs\":[{}]}}\n",
        run_meta_json(ScenarioConfig::periscope_study().seed),
        ScenarioConfig::periscope_study().days,
        cfg!(feature = "profile"),
        profile_json.join(","),
        run_lines.join(",")
    );
    std::fs::write(&out, &doc).expect("write bench file");
    println!("wrote {out}");
}
