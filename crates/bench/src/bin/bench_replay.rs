//! Streaming-replay scale sweep: the Periscope study replayed at scale
//! divisors 1000 → 100 → 10 → 1 on the single-pass generate → crawl →
//! analyze path (DESIGN.md §10). Divisor 1 is the paper's own scale —
//! 12M users, ~19.6M broadcasts over 97 days — reachable since the
//! two-phase CSR graph build (DESIGN.md §12) took the follow graph off
//! the critical path. Results land in `BENCH_replay.json`
//! (`just bench-replay`).
//!
//! ```sh
//! cargo run --release -p livescope-bench --features profile \
//!     --bin bench_replay -- BENCH_replay.json
//! # CI smoke variant (divisor 1000 only, asserts the streaming path's
//! # record checksum and aggregates match the materializing path AND the
//! # committed divisor-1000 pins below):
//! cargo run --release -p livescope-bench --bin bench_replay -- --smoke
//! # Worker scaling curve only (divisor 10, K ∈ {1,2,4,6}); add the
//! # `parallel` feature for real threads (`just bench-replay-workers`):
//! cargo run --release -p livescope-bench --features parallel \
//!     --bin bench_replay -- --workers
//! # Worker smoke (divisor 1000, K ∈ {1,2,6}, asserts the K-sweep is
//! # digest-identical to the sequential streaming path):
//! cargo run --release -p livescope-bench --bin bench_replay -- --workers --smoke
//! # Graph-build worker sweep only (divisor 10, K ∈ {1,2,4,6}; no file
//! # write — `just bench-graph`):
//! cargo run --release -p livescope-bench --features parallel \
//!     --bin bench_replay -- --graph-only
//! # Graph smoke (divisor 1000, K ∈ {1,2,6}, asserts the committed
//! # adjacency AND degree checksum pins for every K; CI runs this with
//! # and without --features parallel):
//! cargo run --release -p livescope-bench --bin bench_replay -- --graph-only --smoke
//! ```
//!
//! Each divisor records two phases. `graph_build` is the follow-graph
//! construction: wall time, the generator's deterministic peak
//! build-buffer bytes, the finished graph's `resident_bytes()`, its
//! adjacency checksum, and the assembly worker count (always 1 in the
//! divisor sweep; `meta.host_parallelism` says what the host could do,
//! so single-core curves are self-describing). `replay` is the
//! streaming fold: wall time, broadcasts/sec, and the *peak tracked
//! replay state* — `BroadcastStream::tracked_bytes()` +
//! `StreamingCampaign::tracked_bytes()`, sampled during the fold. That
//! state is O(users + days + sketch bins); the JSON also records what
//! the old collect-then-scan path would have pinned in memory
//! (`records × size_of::<BroadcastRecord>()`) so the gap is visible in
//! one file.
//!
//! The full run also records two scaling curves. `workers` is the
//! data-parallel replay curve (DESIGN.md §13): the divisor-10 campaign
//! re-run through `run_campaign_sharded_with_graph` for K ∈ {1, 2, 4, 6}
//! worker shards — **against the graph the divisor sweep already
//! built** (one build per `(spec, seed)`, reused across every replay of
//! that divisor) — asserted digest-identical to the sequential
//! streaming path for every K. `graph_workers` is the phase-2 assembly
//! curve (DESIGN.md §12): the divisor-10 graph rebuilt with K ∈
//! {2, 4, 6} assembly shards (the divisor sweep's own build is the K=1
//! point), asserted checksum-identical to K=1 before the file is
//! written.
//!
//! With `--features profile` the run finishes with the top-5 handler
//! histograms by total wall time — the `handler.graph.{decide,rewire,
//! assemble}_ns` build sections recorded by every graph build above,
//! plus the celebrity fan-out workload's `handler.fanout.*` sections
//! (and the single-threaded scheduler's `sim.event_wall_ns` when
//! present).

#![forbid(unsafe_code)]

use std::time::Instant;

use livescope_bench::graphbench::{graph_worker_sweep, timed_build, GraphBuildRun};
use livescope_bench::replay::{scaled_periscope, summary_digest, worker_sweep, WorkerRun};
use livescope_bench::run_meta_json;
use livescope_crawler::campaign::CampaignConfig;
use livescope_crawler::streaming::DEFAULT_EXEMPLARS;
use livescope_crawler::{OutageFilter, StreamingCampaign};
use livescope_graph::DiGraph;
use livescope_sim::rng::splitmix64;
use livescope_telemetry::Telemetry;
use livescope_workload::{
    default_graph_seed, default_graph_spec, generate, generate_streaming_with_graph,
    BroadcastRecord, ScenarioConfig,
};

const DIVISORS: [f64; 4] = [1_000.0, 100.0, 10.0, 1.0];
/// Sampling stride for the peak-tracked-bytes watermark.
const MEM_SAMPLE_EVERY: u64 = 4_096;
/// Worker shard counts swept by the full run's scaling curves — replay
/// shards and graph assembly shards use the same ladder (divisor 10;
/// 6 matches the POP count of the fan-out benches).
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 6];
/// Divisor of the worker scaling curves: large enough (~2M broadcasts,
/// ~23M edges) that per-record / per-edge work dominates the barriers.
const WORKER_DIVISOR: f64 = 10.0;
/// Worker shard counts of the `--workers`/`--graph-only` smoke checks.
const WORKER_SMOKE_SWEEP: [usize; 3] = [1, 2, 6];

/// Committed divisor-1000 pins: the streaming record checksum and the
/// follow graph's adjacency + degree checksums. `--smoke` asserts the
/// first two; `--graph-only --smoke` asserts the graph pair for every
/// swept worker count, so any change to the parallel assembly that
/// shifts the emitted graph fails CI before it can silently move every
/// figure. `crates/graph/tests/csr_regression.rs` pins the same values
/// against the retired pre-redesign generator.
const SMOKE_RECORD_CHECKSUM: u64 = 0x364b4c5590d94b2b;
const SMOKE_GRAPH_CHECKSUM: u64 = 0xd3d5723ae01c845b;
const SMOKE_GRAPH_DEGREE_CHECKSUM: u64 = 0x04e34b169564bc8c;

/// Order-insensitive digest of one generated record (the campaign's
/// outage filter never sees it — the checksum pins the *generator*).
fn record_digest(r: &BroadcastRecord) -> u64 {
    splitmix64(
        splitmix64(r.id ^ (r.day as u64) << 40)
            ^ splitmix64(r.broadcaster as u64 ^ r.viewers.rotate_left(17))
            ^ splitmix64(r.hearts ^ r.comments.rotate_left(31) ^ r.followers.rotate_left(7))
            ^ r.duration.as_micros(),
    )
}

struct ReplayRun {
    divisor: f64,
    users: usize,
    graph: GraphBuildRun,
    records: u64,
    wall_s: f64,
    broadcasts_per_sec: f64,
    peak_tracked_bytes: usize,
    materialized_record_bytes: u64,
    checksum: u64,
    recorded: u64,
    missed: u64,
    /// Full-surface digest of the finished campaign
    /// ([`summary_digest`]); the worker sweep must reproduce it.
    summary_digest: u64,
}

/// One streaming replay of the Periscope campaign at `divisor`,
/// instrumented with the record digest and the tracked-state watermark.
/// This is `run_campaign_streaming` unrolled so the bench can observe
/// the fold without perturbing it (same filter → observe/miss order,
/// so the RNG and accumulator states are identical).
///
/// The follow graph is built explicitly (same spec and seed as the
/// stream's owned-graph path, so the workload is byte-identical) and
/// timed as its own `graph_build` phase — and **returned**, so callers
/// needing further replays of the same divisor (the worker sweeps)
/// reuse it instead of rebuilding per run.
fn replay(divisor: f64, telemetry: &Telemetry) -> (ReplayRun, DiGraph) {
    let scenario = scaled_periscope(divisor);
    let campaign = CampaignConfig::periscope_study();

    let (graph, graph_build) = timed_build(
        &default_graph_spec(&scenario),
        default_graph_seed(&scenario),
        1,
        telemetry,
    );

    let t0 = Instant::now();
    let mut stream = generate_streaming_with_graph(&scenario, &graph);
    let mut filter = OutageFilter::new(&campaign);
    let mut acc =
        StreamingCampaign::new(&campaign, scenario.days, scenario.users, DEFAULT_EXEMPLARS);
    let mut checksum = 0u64;
    let mut records = 0u64;
    let mut peak = 0usize;
    while let Some(record) = stream.next() {
        checksum = checksum.wrapping_add(record_digest(&record));
        records += 1;
        if filter.observes(record.day) {
            acc.observe(record);
        } else {
            acc.miss();
        }
        if records.is_multiple_of(MEM_SAMPLE_EVERY) {
            peak = peak.max(stream.tracked_bytes() + acc.tracked_bytes());
        }
    }
    peak = peak.max(stream.tracked_bytes() + acc.tracked_bytes());
    let summary = acc.finish(stream.into_summary());
    let wall_s = t0.elapsed().as_secs_f64();
    let digest = summary_digest(&summary);
    let run = ReplayRun {
        divisor,
        users: scenario.users,
        graph: graph_build,
        records,
        wall_s,
        broadcasts_per_sec: records as f64 / wall_s.max(1e-9),
        peak_tracked_bytes: peak,
        materialized_record_bytes: records * std::mem::size_of::<BroadcastRecord>() as u64,
        checksum,
        recorded: summary.broadcasts(),
        missed: summary.missed,
        summary_digest: digest,
    };
    (run, graph)
}

/// Runs the replay worker K-sweep at `divisor` against a shared
/// pre-built graph, asserts every K reproduces `expected_digest`, and
/// prints one line per K. Returns the runs for the JSON scaling curve.
fn sweep_workers(
    divisor: f64,
    graph: &DiGraph,
    workers: &[usize],
    expected_digest: u64,
) -> Vec<WorkerRun> {
    let scenario = scaled_periscope(divisor);
    let campaign = CampaignConfig::periscope_study();
    let runs = worker_sweep(&scenario, &campaign, graph, workers);
    for r in &runs {
        assert_eq!(
            r.digest, expected_digest,
            "K={} sharded digest diverged from the sequential streaming path at divisor {divisor}",
            r.workers
        );
        println!(
            "workers={}: {} broadcasts in {:.2}s ({:.0}/s), merge {:.1}ms, \
             barriers {:.1}ms, peak tracked {:.1} MiB, digest {:#018x}",
            r.workers,
            r.records,
            r.wall_s,
            r.records as f64 / r.wall_s.max(1e-9),
            r.merge_wall_s * 1e3,
            r.barrier_wall_s * 1e3,
            r.peak_tracked_bytes as f64 / (1024.0 * 1024.0),
            r.digest,
        );
    }
    runs
}

/// The sequential streaming digest at `divisor` over a shared pre-built
/// graph, the identity anchor for [`sweep_workers`].
fn streaming_digest(divisor: f64, graph: &DiGraph) -> u64 {
    use livescope_crawler::run_campaign_streaming;
    let scenario = scaled_periscope(divisor);
    summary_digest(&run_campaign_streaming(
        generate_streaming_with_graph(&scenario, graph),
        &CampaignConfig::periscope_study(),
        DEFAULT_EXEMPLARS,
    ))
}

fn print_graph_run(r: &GraphBuildRun) {
    println!(
        "graph workers={}: {} edges in {:.2}s (peak build {:.1} MiB, resident {:.1} MiB), \
         adjacency {:#018x}, degree {:#018x}",
        r.workers,
        r.edges,
        r.wall_s,
        r.peak_bytes as f64 / (1024.0 * 1024.0),
        r.resident_bytes as f64 / (1024.0 * 1024.0),
        r.adjacency_checksum,
        r.degree_checksum,
    );
}

/// JSON fragment for the `workers` (replay) scaling-curve section.
fn workers_json(divisor: f64, runs: &[WorkerRun]) -> String {
    let lines: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"workers\":{},\"wall_s\":{:.3},\"merge_wall_s\":{:.4},\
                 \"barrier_wall_s\":{:.4},\"records\":{},\"peak_tracked_bytes\":{},\
                 \"digest\":\"{:#018x}\",\"matches_streaming\":true}}",
                r.workers,
                r.wall_s,
                r.merge_wall_s,
                r.barrier_wall_s,
                r.records,
                r.peak_tracked_bytes,
                r.digest,
            )
        })
        .collect();
    format!(
        "{{\"divisor\":{divisor},\"parallel_feature\":{},\"runs\":[{}]}}",
        cfg!(feature = "parallel"),
        lines.join(",")
    )
}

/// JSON fragment for the `graph_workers` (assembly) scaling-curve
/// section. `host_parallelism` rides along so a flat curve on a
/// single-core host reads as "no cores", not "no speedup".
fn graph_workers_json(divisor: f64, runs: &[GraphBuildRun]) -> String {
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let lines: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"workers\":{},\"wall_s\":{:.3},\"peak_bytes\":{},\
                 \"adjacency_checksum\":\"{:#018x}\",\"degree_checksum\":\"{:#018x}\",\
                 \"matches_sequential\":true}}",
                r.workers, r.wall_s, r.peak_bytes, r.adjacency_checksum, r.degree_checksum,
            )
        })
        .collect();
    format!(
        "{{\"divisor\":{divisor},\"parallel_feature\":{},\
         \"host_parallelism\":{host_parallelism},\"runs\":[{}]}}",
        cfg!(feature = "parallel"),
        lines.join(",")
    )
}

/// The materializing path at `divisor`, digested the same way; returns
/// `(checksum, record_vec_bytes)`. Uses the stream-owned graph path, so
/// it also cross-checks the explicit `graph_build` construction above.
fn materialized_digest(divisor: f64) -> (u64, u64) {
    let workload = generate(&scaled_periscope(divisor));
    let checksum = workload
        .broadcasts
        .iter()
        .fold(0u64, |acc, r| acc.wrapping_add(record_digest(r)));
    let bytes = (workload.broadcasts.capacity() * std::mem::size_of::<BroadcastRecord>()) as u64;
    (checksum, bytes)
}

/// Top-5 handler histograms by total wall time, as report lines and a
/// JSON fragment. `telemetry` already carries the `handler.graph.*`
/// sections recorded by every graph build of the run; the celebrity
/// fan-out workload is run on the same handle so its `handler.fanout.*`
/// sections land in the same snapshot. Empty when the build lacks the
/// `profile` feature.
fn profile_report(telemetry: &Telemetry) -> (Vec<String>, Vec<String>) {
    if !cfg!(feature = "profile") {
        return (
            vec![
                "profile feature off — rebuild with --features profile for handler histograms"
                    .to_string(),
            ],
            Vec::new(),
        );
    }
    // The celebrity-broadcast workload of bench_shards, single-lane so
    // the single-threaded per-event numbers are comparable run to run.
    let config = livescope_cdn::FanoutConfig {
        viewers_per_pop: 250,
        stream_secs: 120,
        roam_every: 5,
        seed: 0xF1610,
        ..livescope_cdn::FanoutConfig::default()
    };
    livescope_cdn::run_fanout(&config, 1, telemetry);
    let snapshot = telemetry.snapshot();
    let mut hists: Vec<_> = snapshot
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("handler.") || name == "sim.event_wall_ns")
        .collect();
    hists.sort_by(|a, b| b.1.sum.cmp(&a.1.sum).then_with(|| a.0.cmp(&b.0)));
    let mut lines = vec![format!(
        "top handler histograms (graph build phases + celebrity_broadcast, \
         {} viewers, {}s stream):",
        config.pops.len() * config.viewers_per_pop,
        config.stream_secs
    )];
    let mut json = Vec::new();
    for (name, h) in hists.into_iter().take(5) {
        lines.push(format!(
            "  {name:<32} count={:>7} total={:>6.1}ms mean={:>7.0}ns p50={:>7.0}ns p99={:>8.0}ns max={}ns",
            h.count,
            h.sum as f64 / 1e6,
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.99),
            h.max,
        ));
        json.push(format!(
            "{{\"name\":\"{name}\",\"count\":{},\"total_ns\":{},\"mean_ns\":{:.0},\
             \"p50_ns\":{:.0},\"p99_ns\":{:.0},\"max_ns\":{}}}",
            h.count,
            h.sum,
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.99),
            h.max,
        ));
    }
    (lines, json)
}

fn print_run(run: &ReplayRun) {
    println!(
        "divisor {}: graph {} edges in {:.2}s (peak build {:.1} MiB, resident {:.1} MiB); \
         {} broadcasts in {:.2}s ({:.0}/s), peak tracked {:.1} MiB \
         (materialized records would be {:.1} MiB)",
        run.divisor,
        run.graph.edges,
        run.graph.wall_s,
        run.graph.peak_bytes as f64 / (1024.0 * 1024.0),
        run.graph.resident_bytes as f64 / (1024.0 * 1024.0),
        run.records,
        run.wall_s,
        run.broadcasts_per_sec,
        run.peak_tracked_bytes as f64 / (1024.0 * 1024.0),
        run.materialized_record_bytes as f64 / (1024.0 * 1024.0),
    );
}

fn main() {
    let mut out = "BENCH_replay.json".to_string();
    let mut smoke = false;
    let mut workers_only = false;
    let mut graph_only = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--workers" => workers_only = true,
            "--graph-only" => graph_only = true,
            other => out = other.to_string(),
        }
    }

    if graph_only {
        // Standalone graph-build scaling curve (no file write): the CI
        // smoke sweeps divisor 1000 and asserts the committed checksum
        // pins per K; the full variant times the divisor-10 curve.
        let (divisor, ks): (f64, &[usize]) = if smoke {
            (1_000.0, &WORKER_SMOKE_SWEEP)
        } else {
            (WORKER_DIVISOR, &WORKER_SWEEP)
        };
        let scenario = scaled_periscope(divisor);
        let telemetry = Telemetry::recording(1024);
        let runs = graph_worker_sweep(
            &default_graph_spec(&scenario),
            default_graph_seed(&scenario),
            ks,
            &telemetry,
        );
        for r in &runs {
            print_graph_run(r);
        }
        if smoke {
            for r in &runs {
                assert_eq!(
                    r.adjacency_checksum, SMOKE_GRAPH_CHECKSUM,
                    "K={} divisor-1000 adjacency checksum drifted from the committed pin",
                    r.workers
                );
                assert_eq!(
                    r.degree_checksum, SMOKE_GRAPH_DEGREE_CHECKSUM,
                    "K={} divisor-1000 degree checksum drifted from the committed pin",
                    r.workers
                );
            }
        }
        println!(
            "graph: divisor-{divisor} K-sweep {ks:?} checksum-identical across every \
             worker count (parallel_feature={})",
            cfg!(feature = "parallel")
        );
        return;
    }

    if workers_only {
        // Standalone replay scaling curve (no file write): the CI smoke
        // sweeps divisor 1000, the full variant the divisor-10 curve.
        // One graph build serves the anchor digest and the whole sweep.
        let (divisor, ks): (f64, &[usize]) = if smoke {
            (1_000.0, &WORKER_SMOKE_SWEEP)
        } else {
            (WORKER_DIVISOR, &WORKER_SWEEP)
        };
        let scenario = scaled_periscope(divisor);
        let graph = DiGraph::generate(
            &default_graph_spec(&scenario),
            default_graph_seed(&scenario),
        );
        let expected = streaming_digest(divisor, &graph);
        sweep_workers(divisor, &graph, ks, expected);
        println!(
            "workers: divisor-{divisor} K-sweep {ks:?} digest-identical to the \
             sequential streaming path (parallel_feature={})",
            cfg!(feature = "parallel")
        );
        return;
    }

    // One telemetry handle for the whole run: every graph build's
    // `handler.graph.*` sections accumulate here, and the profile
    // report's fan-out workload lands on the same handle.
    let telemetry = Telemetry::recording(1024);

    // Divisor 1000 runs in both modes and is always cross-checked
    // against the materializing (stream-owned-graph) path.
    let (base, _) = replay(1_000.0, &telemetry);
    let (mat_checksum, _mat_bytes) = materialized_digest(1_000.0);
    print_run(&base);
    assert_eq!(
        base.checksum, mat_checksum,
        "streaming generator diverged from the materializing path at divisor 1000"
    );
    if smoke {
        assert_eq!(
            base.checksum, SMOKE_RECORD_CHECKSUM,
            "divisor-1000 record checksum drifted from the committed pin"
        );
        assert_eq!(
            base.graph.adjacency_checksum, SMOKE_GRAPH_CHECKSUM,
            "divisor-1000 follow-graph adjacency checksum drifted from the committed pin"
        );
        println!(
            "smoke: divisor-1000 record checksum {:#018x} and graph checksum {:#018x} \
             match the committed pins ({} recorded, {} missed)",
            base.checksum, base.graph.adjacency_checksum, base.recorded, base.missed
        );
        return;
    }

    let mut runs = vec![base];
    // The worker-divisor graph is kept alive for both scaling curves —
    // the replay K-sweep reuses it outright, and the graph K-sweep uses
    // its build as the K=1 point.
    let mut worker_graph: Option<DiGraph> = None;
    for &divisor in &DIVISORS[1..] {
        let (run, graph) = replay(divisor, &telemetry);
        print_run(&run);
        runs.push(run);
        if divisor == WORKER_DIVISOR {
            worker_graph = Some(graph);
        }
    }

    // Replay worker scaling curve at divisor 10, anchored to the
    // sequential streaming digest the divisor sweep just produced, over
    // the graph it already built.
    let anchor = runs
        .iter()
        .find(|r| r.divisor == WORKER_DIVISOR)
        .expect("worker divisor is part of the sweep");
    let expected = anchor.summary_digest;
    let worker_graph = worker_graph.expect("worker divisor is part of the sweep");
    let worker_runs = sweep_workers(WORKER_DIVISOR, &worker_graph, &WORKER_SWEEP, expected);
    drop(worker_graph);

    // Graph assembly scaling curve at the same divisor: rebuilds at
    // K ∈ {2, 4, 6} (each build is the thing being timed), with the
    // divisor sweep's own K=1 build as the anchor point — asserted
    // checksum-identical before anything is written.
    let scenario = scaled_periscope(WORKER_DIVISOR);
    let mut graph_runs = vec![anchor.graph.clone()];
    for &k in WORKER_SWEEP.iter().filter(|&&k| k != 1) {
        let (_, r) = timed_build(
            &default_graph_spec(&scenario),
            default_graph_seed(&scenario),
            k,
            &telemetry,
        );
        assert_eq!(
            r.adjacency_checksum, graph_runs[0].adjacency_checksum,
            "K={k} assembly diverged from the sequential build (adjacency)"
        );
        assert_eq!(
            r.degree_checksum, graph_runs[0].degree_checksum,
            "K={k} assembly diverged from the sequential build (degree)"
        );
        assert_eq!(
            r.peak_bytes, graph_runs[0].peak_bytes,
            "K={k} peak_bytes diverged from the sequential build"
        );
        print_graph_run(&r);
        graph_runs.push(r);
    }

    let (profile_lines, profile_json) = profile_report(&telemetry);
    for line in &profile_lines {
        println!("{line}");
    }

    let run_lines: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"divisor\":{},\"users\":{},\
                 \"graph_build\":{{\"wall_s\":{:.3},\"peak_bytes\":{},\"resident_bytes\":{},\
                 \"edges\":{},\"max_in_degree\":{},\"swaps_applied\":{},\
                 \"adjacency_checksum\":\"{:#018x}\",\"workers\":{}}},\
                 \"records\":{},\"wall_s\":{:.3},\
                 \"broadcasts_per_sec\":{:.0},\"peak_tracked_bytes\":{},\
                 \"tracked_bytes_per_record\":{:.2},\"materialized_record_bytes\":{},\
                 \"checksum\":\"{:#018x}\",\"recorded\":{},\"missed\":{},\
                 \"summary_digest\":\"{:#018x}\"}}",
                r.divisor,
                r.users,
                r.graph.wall_s,
                r.graph.peak_bytes,
                r.graph.resident_bytes,
                r.graph.edges,
                r.graph.max_in_degree,
                r.graph.swaps_applied,
                r.graph.adjacency_checksum,
                r.graph.workers,
                r.records,
                r.wall_s,
                r.broadcasts_per_sec,
                r.peak_tracked_bytes,
                r.peak_tracked_bytes as f64 / r.records.max(1) as f64,
                r.materialized_record_bytes,
                r.checksum,
                r.recorded,
                r.missed,
                r.summary_digest,
            )
        })
        .collect();
    let doc = format!(
        "{{\"bench\":\"streaming_replay\",\"meta\":{},\"workload\":{{\"app\":\"Periscope\",\"days\":{},\
         \"mem_sample_every\":{MEM_SAMPLE_EVERY}}},\
         \"divisor_1000_matches_materialized\":true,\
         \"profile_feature\":{},\"profile_top5\":[{}],\"runs\":[{}],\
         \"workers\":{},\"graph_workers\":{}}}\n",
        run_meta_json(ScenarioConfig::periscope_study().seed),
        ScenarioConfig::periscope_study().days,
        cfg!(feature = "profile"),
        profile_json.join(","),
        run_lines.join(","),
        workers_json(WORKER_DIVISOR, &worker_runs),
        graph_workers_json(WORKER_DIVISOR, &graph_runs)
    );
    std::fs::write(&out, &doc).expect("write bench file");
    println!("wrote {out}");
}
