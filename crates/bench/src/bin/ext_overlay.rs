//! Extension (§8) — the paper's proposed overlay-multicast delivery,
//! quantified against RTMP and HLS on origin cost and end-to-end delay.

#![forbid(unsafe_code)]

use livescope_bench::emit;
use livescope_core::overlay_ext::{run, OverlayConfig};

fn main() {
    let report = run(&OverlayConfig::default());
    let ascii = report.render();
    emit("ext_overlay", &ascii, &[("txt", ascii.clone())]);
}
