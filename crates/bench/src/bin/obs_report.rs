//! `obs_report` — folds a simulation trace into the causal
//! observability report: per-POP six-component delay distributions
//! (Fig 15-style), QoE session metrics, and the top-k slowest
//! chunk-journey waterfalls (DESIGN.md §11).
//!
//! ```text
//! obs_report                      capture both canonical workloads,
//!                                 print the reports, write
//!                                 results/OBS_report.json
//! obs_report --workload breakdown | celebrity
//!                                 capture just one workload
//! obs_report <trace.jsonl>        fold an existing JSONL trace
//! obs_report --json               machine-readable output instead of text
//! obs_report --smoke              assert the report bytes are identical
//!                                 across scheduler backends and lane
//!                                 counts {1, 2, 6}, then exit
//! ```
//!
//! The report is a pure function of the trace, and the canonical traces
//! are pure functions of their seeds, so for a fixed seed the emitted
//! JSON is byte-identical on the legacy and sharded backends at any
//! lane count — `--smoke` is that contract, run in CI.

#![forbid(unsafe_code)]

use std::fs;
use std::process::ExitCode;

use livescope_bench::obs::{self, LANE_SWEEP};
use livescope_bench::results_dir;
use livescope_net::datacenters;
use livescope_sim::BackendChoice;
use livescope_telemetry::{event, ObsReport};

/// Datacenter id → display city (ids outside the registry — foreign
/// traces — fall back to `pop<N>`).
fn pop_name(pop: u16) -> String {
    datacenters::all_datacenters()
        .get(pop as usize)
        .map(|d| d.city.to_string())
        .unwrap_or_else(|| format!("pop{pop}"))
}

fn render(report: &ObsReport) -> String {
    report.render(&pop_name)
}

/// The CI determinism check: same seed ⇒ same report bytes, whatever
/// executes the workload.
fn smoke() -> ExitCode {
    let reference = obs::breakdown_obs(BackendChoice::Single).to_json();
    for lanes in LANE_SWEEP {
        let json = obs::breakdown_obs(BackendChoice::Sharded { lanes }).to_json();
        if json != reference {
            eprintln!("smoke FAILED: breakdown report diverged at lanes={lanes}");
            return ExitCode::FAILURE;
        }
    }
    let (celebrity_ref, fanout_ref) = obs::celebrity_obs(1);
    let celebrity_json = celebrity_ref.to_json();
    for lanes in LANE_SWEEP {
        let (report, fanout) = obs::celebrity_obs(lanes);
        if report.to_json() != celebrity_json {
            eprintln!("smoke FAILED: celebrity report diverged at lanes={lanes}");
            return ExitCode::FAILURE;
        }
        if fanout.checksum != fanout_ref.checksum {
            eprintln!("smoke FAILED: celebrity checksum diverged at lanes={lanes}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "smoke: OBS report bytes identical across legacy + sharded backends, lanes {LANE_SWEEP:?}"
    );
    ExitCode::SUCCESS
}

/// Folds an on-disk JSONL trace (leniently: unknown lines are counted,
/// never silently dropped).
fn fold_file(path: &str, json: bool) -> ExitCode {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("obs_report: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let trace = event::parse_jsonl_lossy(&text);
    let report = ObsReport::derive(&trace.events);
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", render(&report));
    }
    if trace.skipped_lines > 0 {
        eprintln!(
            "[skipped {} unparsed line(s); first: {}]",
            trace.skipped_lines, trace.first_skip
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a == "--smoke") {
        return smoke();
    }
    if let Some(path) = args.iter().find(|a| !a.starts_with("--")) {
        return fold_file(path, json);
    }
    let workload = args
        .iter()
        .position(|a| a == "--workload")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");
    match workload {
        "breakdown" => {
            let report = obs::breakdown_obs(BackendChoice::Single);
            if json {
                println!("{}", report.to_json());
            } else {
                println!("{}", render(&report));
            }
        }
        "celebrity" => {
            let (report, _) = obs::celebrity_obs(1);
            if json {
                println!("{}", report.to_json());
            } else {
                println!("{}", render(&report));
            }
        }
        "all" => {
            let breakdown = obs::breakdown_obs(BackendChoice::Single);
            let (celebrity, fanout) = obs::celebrity_obs(1);
            let doc = obs::obs_doc(&breakdown, &celebrity, &fanout);
            if json {
                println!("{doc}");
            } else {
                println!("== breakdown workload ==\n{}", render(&breakdown));
                println!("== celebrity fan-out workload ==\n{}", render(&celebrity));
            }
            let path = results_dir().join("OBS_report.json");
            fs::write(&path, &doc).expect("can write OBS_report.json");
            println!("[wrote {}]", path.display());
        }
        other => {
            eprintln!("obs_report: unknown workload {other:?} (breakdown | celebrity)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
