//! §1 interactivity — the delayed-hearts / missed-votes story, run
//! through the measured delay distributions.

#![forbid(unsafe_code)]

use livescope_bench::emit;
use livescope_core::interactivity::{run, InteractivityConfig};

fn main() {
    let report = run(&InteractivityConfig::default());
    let ascii = format!(
        "{}\npaper (§1): delayed viewers vote after the poll closes and their hearts\n\
         are misread as applause for later content — quantified above.\n",
        report.render()
    );
    emit("interactivity", &ascii, &[("txt", ascii.clone())]);
}
