//! Fig 3 — CDF of broadcast length.

#![forbid(unsafe_code)]

use livescope_bench::emit_figure;
use livescope_core::usage::{run, UsageConfig};

fn main() {
    let report = run(&UsageConfig::default());
    let fig = report.fig3();
    emit_figure("fig3", &fig);
    for (name, ds) in [
        ("Periscope", &report.periscope),
        ("Meerkat", &report.meerkat),
    ] {
        let under = ds.duration_secs.fraction_at_or_below(600.0);
        println!(
            "{name}: {:.1}% of broadcasts under 10 minutes (paper: ~85%)",
            under * 100.0
        );
    }
}
