//! Fig 14 — server cost of RTMP vs HLS fan-out, 100–500 viewers.
//!
//! Reports deterministic operation/byte counts from the real servers, and
//! measures the wall-clock busy time of actually performing the fan-out
//! work in-process (our substitute for the paper's laptop CPU gauge).

#![forbid(unsafe_code)]

use std::time::Instant;

use livescope_analysis::{Figure, Series, Table};
use livescope_bench::{emit, emit_figure};
use livescope_core::scalability::{run, run_hls_cell, run_rtmp_cell, ScalabilityConfig};

fn main() {
    let config = ScalabilityConfig::default();
    let report = run(&config);
    emit("fig14_ops", &report.render(), &[("txt", report.render())]);

    // Wall-clock measurement: redo each cell, timing the work.
    let mut table = Table::new(["viewers", "RTMP busy (ms)", "HLS busy (ms)", "CPU ratio"]);
    let mut rtmp_series = Vec::new();
    let mut hls_series = Vec::new();
    for &v in &config.viewer_counts {
        let t0 = Instant::now();
        run_rtmp_cell(&config, v);
        let rtmp_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        run_hls_cell(&config, v);
        let hls_ms = t1.elapsed().as_secs_f64() * 1e3;
        table.row([
            v.to_string(),
            format!("{rtmp_ms:.1}"),
            format!("{hls_ms:.1}"),
            format!("{:.1}x", rtmp_ms / hls_ms.max(0.001)),
        ]);
        rtmp_series.push((v as f64, rtmp_ms));
        hls_series.push((v as f64, hls_ms));
    }
    let mut fig = Figure::new(
        "Fig 14 — measured fan-out busy time vs audience",
        "# of viewers",
        "busy time for the stream (ms)",
    );
    fig.push_series(Series::new("RTMP", rtmp_series));
    fig.push_series(Series::new("HLS", hls_series));
    emit_figure("fig14", &fig);
    println!("{}", table.render());
    println!(
        "paper: RTMP CPU ≫ HLS and the gap widens with viewers \
         (shape holds; absolute % depends on hardware)"
    );
}
