//! Fig 5 — CDFs of comments and hearts per broadcast.

#![forbid(unsafe_code)]

use livescope_bench::emit_figure;
use livescope_core::usage::{run, UsageConfig};

fn main() {
    let report = run(&UsageConfig::default());
    emit_figure("fig5", &report.fig5());
    let p = &report.periscope;
    println!(
        "Periscope broadcasts with >100 comments: {:.1}% (paper: ~10%); >1000 hearts: {:.1}% (paper: ~10%)",
        (1.0 - p.comments.fraction_at_or_below(100.0)) * 100.0,
        (1.0 - p.hearts.fraction_at_or_below(1000.0)) * 100.0
    );
    let max_hearts = p.hearts.max().unwrap_or(0.0);
    println!("most-loved broadcast: {max_hearts:.0} hearts (paper: 1.35M at full scale)");
}
