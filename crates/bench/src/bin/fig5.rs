//! Fig 5 — CDFs of comments and hearts per broadcast.

#![forbid(unsafe_code)]

use livescope_bench::emit_figure;
use livescope_core::usage::{run, UsageConfig};

fn main() {
    let report = run(&UsageConfig::default());
    emit_figure("fig5", &report.fig5());
    let p = &report.periscope;
    let over = |f: &dyn Fn(&livescope_crawler::campaign::MeasuredBroadcast) -> u64, k: u64| {
        p.records.iter().filter(|r| f(r) > k).count() as f64 / p.records.len() as f64
    };
    println!(
        "Periscope broadcasts with >100 comments: {:.1}% (paper: ~10%); >1000 hearts: {:.1}% (paper: ~10%)",
        over(&|r| r.record.comments, 100) * 100.0,
        over(&|r| r.record.hearts, 1000) * 100.0
    );
    let max_hearts = p.records.iter().map(|r| r.record.hearts).max().unwrap_or(0);
    println!("most-loved broadcast: {max_hearts} hearts (paper: 1.35M at full scale)");
}
