//! Fig 6 — distribution of broadcast views and creations over users.

#![forbid(unsafe_code)]

use livescope_bench::emit_figure;
use livescope_core::usage::{run, UsageConfig};

fn main() {
    let report = run(&UsageConfig::default());
    emit_figure("fig6", &report.fig6());
    let mut views: Vec<u32> = report
        .periscope
        .user_views
        .iter()
        .copied()
        .filter(|&v| v > 0)
        .collect();
    views.sort_unstable();
    let median = views[views.len() / 2];
    let top15 = views[(views.len() as f64 * 0.85) as usize];
    println!(
        "Periscope: top-15% viewers watch {top15} broadcasts vs median {median} \
         ({:.1}x; paper: ~10x)",
        top15 as f64 / median.max(1) as f64
    );
}
