//! `bench_check` — the bench-regression gate (DESIGN.md §11).
//!
//! Regenerates the deterministic observability artifact (the
//! `OBS_report.json` document: breakdown + celebrity reports plus the
//! fan-out's delivery checksum) and compares it metric-by-metric
//! against the committed baseline under `baselines/`, with per-metric
//! tolerances. Any drift prints one line per violated metric and exits
//! non-zero, failing CI.
//!
//! It also regenerates the `GRAPH_build.json` artifact — the divisor-1000
//! replay follow graph rebuilt from scratch — and gates its deterministic
//! build facts (checksums, edge count, peak build-buffer bytes, resident
//! CSR bytes, rewire swap count) the same way, so a change to the
//! two-phase CSR generator (DESIGN.md §12) that shifts the emitted graph
//! *or its memory anatomy* fails CI with a named metric.
//!
//! The third artifact, `REPLAY_workers.json`, is the data-parallel
//! replay's identity certificate (DESIGN.md §13): the divisor-1000
//! Periscope campaign folded through K ∈ {1, 2, 6} worker shards, each
//! digested over the full observable summary surface. The gate pins
//! every per-K digest and the record count, so a merge-order or
//! partition bug that shifts any figure input fails CI with the K that
//! produced it.
//!
//! ```text
//! bench_check                     compare a fresh run against baselines/
//! bench_check --write-baselines   (re)create the baseline files
//! ```
//!
//! Only simulation-deterministic quantities are gated: event and span
//! counts, sim-time delay means, the delivery checksum. Wall-clock
//! benchmark numbers and the `meta` block (host parallelism, cargo
//! profile) vary by machine and are deliberately absent from the spec
//! list — with one deliberate exception: `graph_build.wall_s` carries a
//! ±300% anti-catastrophe canary (see `GRAPH_GATE`) that only trips when
//! the build gets *ruinously* slower, not on host jitter. Override the
//! baseline directory with `LIVESCOPE_BASELINES`.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use livescope_bench::obs;
use livescope_bench::regress::{self, MetricSpec};
use livescope_graph::DiGraph;
use livescope_sim::BackendChoice;
use livescope_workload::{default_graph_seed, default_graph_spec, ScenarioConfig};
use serde_json::Value;

/// The gated metrics. Counts and checksums are exact; sim-time delay
/// means get a 2% allowance so a deliberate, reviewed re-tuning of a
/// model constant can land alongside a refreshed baseline without
/// tripping on every intermediate commit.
const GATE: &[MetricSpec] = &[
    MetricSpec::exact("breakdown.events"),
    MetricSpec::exact("breakdown.spans.opens"),
    MetricSpec::exact("breakdown.spans.closes"),
    MetricSpec::rel("breakdown.qoe.rtmp.join_mean_s", 0.02),
    MetricSpec::rel("breakdown.qoe.hls.join_mean_s", 0.02),
    MetricSpec::rel("breakdown.qoe.hls.stall_mean_s", 0.02),
    MetricSpec::rel("breakdown.pops.0.total_mean_s", 0.02),
    MetricSpec::exact("breakdown.waterfalls.0.total_us"),
    MetricSpec::exact("celebrity.events"),
    MetricSpec::exact("celebrity.spans.opens"),
    MetricSpec::exact("celebrity.spans.closes"),
    MetricSpec::exact("fanout.checksum"),
    MetricSpec::exact("fanout.chunks_served"),
    MetricSpec::exact("fanout.events_fired"),
];

/// The graph-build gate: every deterministic fact about the divisor-1000
/// replay graph's two-phase construction, plus one wall-clock *canary*.
/// `wall_s` is the sole exception to the no-wall-clock rule: its ±300%
/// tolerance cannot trip on scheduler jitter or a slower CI host — it
/// exists so an accidental O(V·E) regression in the generator (the
/// failure mode the redesign removed) fails loudly instead of quietly
/// quadrupling `just bench-replay`.
const GRAPH_GATE: &[MetricSpec] = &[
    MetricSpec::exact("graph_build.nodes"),
    MetricSpec::exact("graph_build.edges"),
    MetricSpec::exact("graph_build.max_in_degree"),
    MetricSpec::exact("graph_build.swaps_applied"),
    MetricSpec::exact("graph_build.adjacency_checksum"),
    MetricSpec::exact("graph_build.degree_checksum"),
    MetricSpec::exact("graph_build.peak_bytes"),
    MetricSpec::exact("graph_build.resident_bytes"),
    MetricSpec::rel("graph_build.wall_s", 3.0),
];

/// The worker-replay gate: the K-sweep's full-surface digests (hex
/// strings — u64 exceeds f64's integer range) and the ground-truth
/// record count. All three digests are asserted pairwise-equal at
/// generation time; gating each against the baseline additionally pins
/// the *value*, so the sharded fold cannot drift together with the
/// sequential path unnoticed.
const REPLAY_GATE: &[MetricSpec] = &[
    MetricSpec::exact("replay_workers.records"),
    MetricSpec::exact("replay_workers.runs.0.workers"),
    MetricSpec::exact("replay_workers.runs.0.digest"),
    MetricSpec::exact("replay_workers.runs.1.workers"),
    MetricSpec::exact("replay_workers.runs.1.digest"),
    MetricSpec::exact("replay_workers.runs.2.workers"),
    MetricSpec::exact("replay_workers.runs.2.digest"),
];

fn baselines_dir() -> PathBuf {
    std::env::var_os("LIVESCOPE_BASELINES")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("baselines"))
}

/// One fresh deterministic artifact, same construction as `obs_report`.
fn fresh_doc() -> String {
    let breakdown = obs::breakdown_obs(BackendChoice::Single);
    let (celebrity, fanout) = obs::celebrity_obs(1);
    obs::obs_doc(&breakdown, &celebrity, &fanout)
}

/// Fresh `GRAPH_build.json` artifact: the divisor-1000 replay graph
/// (`bench_replay`'s base run) rebuilt through the same
/// spec + seed path the workload uses, with every [`GRAPH_GATE`] input.
/// Checksums are emitted as hex strings — u64 exceeds f64's integer
/// range, so they must not round-trip through a JSON number.
fn fresh_graph_doc() -> String {
    let scenario = ScenarioConfig::periscope_study();
    let t0 = Instant::now();
    let (graph, stats) = DiGraph::generate_with_stats(
        &default_graph_spec(&scenario),
        default_graph_seed(&scenario),
    );
    let wall_s = t0.elapsed().as_secs_f64();
    format!(
        "{{\"bench\":\"graph_build\",\"graph_build\":{{\"nodes\":{},\"edges\":{},\
         \"max_in_degree\":{},\"swaps_applied\":{},\
         \"adjacency_checksum\":\"{:#018x}\",\"degree_checksum\":\"{:#018x}\",\
         \"peak_bytes\":{},\"resident_bytes\":{},\"wall_s\":{:.4}}}}}\n",
        stats.nodes,
        stats.edges,
        graph.degrees().max_in_degree(),
        stats.swaps_applied,
        graph.adjacency_checksum(),
        graph.degree_checksum(),
        stats.peak_bytes,
        graph.resident_bytes(),
        wall_s,
    )
}

/// Fresh `REPLAY_workers.json` artifact: the divisor-1000 sharded
/// replay K-sweep, digest per K (see [`REPLAY_GATE`]). The sweep is
/// also asserted internally consistent: every K must reproduce the
/// K = 1 digest before the document is even produced.
fn fresh_replay_doc() -> String {
    let scenario = livescope_bench::replay::scaled_periscope(1_000.0);
    let campaign = livescope_crawler::CampaignConfig::periscope_study();
    let graph = DiGraph::generate(
        &default_graph_spec(&scenario),
        default_graph_seed(&scenario),
    );
    let runs = livescope_bench::replay::worker_sweep(&scenario, &campaign, &graph, &[1, 2, 6]);
    for r in &runs {
        assert_eq!(
            r.digest, runs[0].digest,
            "K={} digest diverged within the fresh sweep",
            r.workers
        );
    }
    let lines: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"workers\":{},\"digest\":\"{:#018x}\"}}",
                r.workers, r.digest
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"replay_workers\",\"replay_workers\":{{\"divisor\":1000,\
         \"records\":{},\"runs\":[{}]}}}}\n",
        runs[0].records,
        lines.join(",")
    )
}

/// Compares one fresh artifact against its committed baseline (or
/// rewrites the baseline). Returns the violation lines, or an error
/// string when the baseline is missing/unparseable.
fn check_artifact(
    file: &str,
    doc: &str,
    gate: &[MetricSpec],
    write: bool,
) -> Result<Vec<String>, String> {
    let path = baselines_dir().join(file);
    if write {
        fs::create_dir_all(baselines_dir()).map_err(|e| format!("create baselines dir: {e}"))?;
        fs::write(&path, doc).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("[wrote baseline {}]", path.display());
        return Ok(Vec::new());
    }
    let baseline_text = fs::read_to_string(&path).map_err(|err| {
        format!(
            "cannot read baseline {}: {err}\n\
             (run `bench_check --write-baselines` once and commit the file)",
            path.display()
        )
    })?;
    let baseline: Value = serde_json::from_str(&baseline_text)
        .map_err(|err| format!("baseline {} is not JSON: {err}", path.display()))?;
    let fresh: Value = serde_json::from_str(doc).expect("fresh artifact is JSON");
    let violations = regress::compare(&baseline, &fresh, gate);
    if violations.is_empty() {
        println!(
            "bench-regression gate passed: {} metrics within tolerance of {}",
            gate.len(),
            path.display()
        );
    }
    Ok(violations)
}

fn main() -> ExitCode {
    let write = std::env::args().any(|a| a == "--write-baselines");
    let artifacts: [(&str, String, &[MetricSpec]); 3] = [
        ("OBS_report.json", fresh_doc(), GATE),
        ("GRAPH_build.json", fresh_graph_doc(), GRAPH_GATE),
        ("REPLAY_workers.json", fresh_replay_doc(), REPLAY_GATE),
    ];
    let mut violations = Vec::new();
    for (file, doc, gate) in &artifacts {
        match check_artifact(file, doc, gate, write) {
            Ok(v) => violations.extend(v),
            Err(err) => {
                eprintln!("bench_check: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-regression gate FAILED ({} violations):",
            violations.len()
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}
