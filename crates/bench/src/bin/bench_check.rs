//! `bench_check` — the bench-regression gate (DESIGN.md §11).
//!
//! Regenerates the deterministic observability artifact (the
//! `OBS_report.json` document: breakdown + celebrity reports plus the
//! fan-out's delivery checksum) and compares it metric-by-metric
//! against the committed baseline under `baselines/`, with per-metric
//! tolerances. Any drift prints one line per violated metric and exits
//! non-zero, failing CI.
//!
//! ```text
//! bench_check                     compare a fresh run against baselines/
//! bench_check --write-baselines   (re)create the baseline file
//! ```
//!
//! Only simulation-deterministic quantities are gated: event and span
//! counts, sim-time delay means, the delivery checksum. Wall-clock
//! benchmark numbers and the `meta` block (host parallelism, cargo
//! profile) vary by machine and are deliberately absent from the spec
//! list. Override the baseline directory with `LIVESCOPE_BASELINES`.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use livescope_bench::obs;
use livescope_bench::regress::{self, MetricSpec};
use livescope_sim::BackendChoice;
use serde_json::Value;

/// The gated metrics. Counts and checksums are exact; sim-time delay
/// means get a 2% allowance so a deliberate, reviewed re-tuning of a
/// model constant can land alongside a refreshed baseline without
/// tripping on every intermediate commit.
const GATE: &[MetricSpec] = &[
    MetricSpec::exact("breakdown.events"),
    MetricSpec::exact("breakdown.spans.opens"),
    MetricSpec::exact("breakdown.spans.closes"),
    MetricSpec::rel("breakdown.qoe.rtmp.join_mean_s", 0.02),
    MetricSpec::rel("breakdown.qoe.hls.join_mean_s", 0.02),
    MetricSpec::rel("breakdown.qoe.hls.stall_mean_s", 0.02),
    MetricSpec::rel("breakdown.pops.0.total_mean_s", 0.02),
    MetricSpec::exact("breakdown.waterfalls.0.total_us"),
    MetricSpec::exact("celebrity.events"),
    MetricSpec::exact("celebrity.spans.opens"),
    MetricSpec::exact("celebrity.spans.closes"),
    MetricSpec::exact("fanout.checksum"),
    MetricSpec::exact("fanout.chunks_served"),
    MetricSpec::exact("fanout.events_fired"),
];

fn baselines_dir() -> PathBuf {
    std::env::var_os("LIVESCOPE_BASELINES")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("baselines"))
}

/// One fresh deterministic artifact, same construction as `obs_report`.
fn fresh_doc() -> String {
    let breakdown = obs::breakdown_obs(BackendChoice::Single);
    let (celebrity, fanout) = obs::celebrity_obs(1);
    obs::obs_doc(&breakdown, &celebrity, &fanout)
}

fn main() -> ExitCode {
    let write = std::env::args().any(|a| a == "--write-baselines");
    let doc = fresh_doc();
    let path = baselines_dir().join("OBS_report.json");
    if write {
        fs::create_dir_all(baselines_dir()).expect("can create baselines directory");
        fs::write(&path, &doc).expect("can write baseline");
        println!("[wrote baseline {}]", path.display());
        return ExitCode::SUCCESS;
    }
    let baseline_text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!(
                "bench_check: cannot read baseline {}: {err}\n\
                 (run `bench_check --write-baselines` once and commit the file)",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline: Value = match serde_json::from_str(&baseline_text) {
        Ok(v) => v,
        Err(err) => {
            eprintln!(
                "bench_check: baseline {} is not JSON: {err}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let fresh: Value = serde_json::from_str(&doc).expect("fresh artifact is JSON");
    let violations = regress::compare(&baseline, &fresh, GATE);
    if violations.is_empty() {
        println!(
            "bench-regression gate passed: {} metrics within tolerance of {}",
            GATE.len(),
            path.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-regression gate FAILED ({} violations):",
            violations.len()
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}
