//! Wall-clock baseline of the edge hot path: a celebrity broadcast fanned
//! out to a large HLS audience through the full cluster
//! (`poll_hls` → `download_chunk`), timed end-to-end and recorded in
//! `BENCH_hotpath.json` so future PRs have a perf trajectory to compare
//! against (`just bench-hotpath`).
//!
//! ```sh
//! cargo run --release -p livescope-bench --bin hotpath_baseline -- \
//!     BENCH_hotpath.json my-label
//! ```
//!
//! The file keeps one entry per label ("runs"), so before/after pairs of
//! a refactor can live side by side; re-running with an existing label
//! replaces that entry.

#![forbid(unsafe_code)]

use std::time::Instant;

use bytes::Bytes;
use livescope_cdn::ids::{BroadcastId, UserId};
use livescope_cdn::Cluster;
use livescope_net::datacenters::DatacenterId;
use livescope_net::geo::GeoPoint;
use livescope_proto::rtmp::VideoFrame;
use livescope_sim::{RngPool, SimDuration, SimTime};

const VIEWERS: usize = 1_000;
const STREAM_SECS: u64 = 30;
const POLL_INTERVAL_S: f64 = 2.8;
const ITERATIONS: usize = 5;
/// POPs the audience is spread over (LA fans plus the world tour).
const POPS: [u16; 6] = [8, 9, 11, 17, 20, 27];

fn frame(seq: u64) -> VideoFrame {
    VideoFrame::new(
        seq,
        seq * 40_000,
        seq.is_multiple_of(50),
        Bytes::from(vec![5u8; 2_500]),
    )
}

/// One full fan-out: ingest the stream, then every viewer polls its POP on
/// the viewer-poll interval and downloads each new chunk. Returns
/// (chunks downloaded, payload bytes downloaded) as a work checksum.
fn run_fanout() -> (u64, u64) {
    let pool = RngPool::new(7);
    let mut cluster = Cluster::new(&pool, SimDuration::from_secs(3), 100);
    let la = GeoPoint::new(34.05, -118.24);
    let grant = cluster.create_broadcast(SimTime::ZERO, UserId(1), &la);
    cluster
        .connect_publisher(SimTime::ZERO, grant.id, &grant.token)
        .unwrap();
    for i in 0..STREAM_SECS * 25 {
        cluster
            .ingest_decoded(SimTime::from_millis(i * 40), grant.id, frame(i))
            .unwrap();
    }
    let b: BroadcastId = grant.id;
    let mut have: Vec<Option<u64>> = vec![None; VIEWERS];
    let mut chunks = 0u64;
    let mut bytes = 0u64;
    let end_s = STREAM_SECS as f64 + 10.0;
    for step in 0.. {
        let mut any = false;
        for v in 0..VIEWERS {
            // Deterministic per-viewer phase, no RNG needed.
            let phase = (v % 28) as f64 * 0.1;
            let t = phase + step as f64 * POLL_INTERVAL_S;
            if t > end_s {
                continue;
            }
            any = true;
            let now = SimTime::from_secs_f64(t);
            let pop = DatacenterId(POPS[v % POPS.len()]);
            let resp = cluster.poll_hls(now, b, pop).expect("broadcast is live");
            for entry in &resp.chunklist.entries {
                if have[v].is_some_and(|h| entry.seq <= h) {
                    continue;
                }
                if let Some(chunk) = cluster.download_chunk(now, b, pop, entry.seq) {
                    chunks += 1;
                    bytes += chunk.payload_bytes() as u64;
                    have[v] = Some(entry.seq);
                }
            }
        }
        if !any {
            break;
        }
    }
    (chunks, bytes)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out = args.next().unwrap_or_else(|| "BENCH_hotpath.json".into());
    let label = args.next().unwrap_or_else(|| "current".into());

    let mut samples_us: Vec<u128> = Vec::with_capacity(ITERATIONS);
    let mut work = (0u64, 0u64);
    for _ in 0..ITERATIONS {
        let t0 = Instant::now();
        work = run_fanout();
        samples_us.push(t0.elapsed().as_micros());
    }
    let mean = samples_us.iter().sum::<u128>() / samples_us.len() as u128;
    let min = *samples_us.iter().min().unwrap();
    let max = *samples_us.iter().max().unwrap();
    let run_json = format!(
        "{{\"label\":\"{label}\",\"wall_us_mean\":{mean},\"wall_us_min\":{min},\
         \"wall_us_max\":{max},\"chunks_served\":{},\"bytes_served\":{}}}",
        work.0, work.1
    );

    // Keep previous runs with other labels so before/after pairs survive.
    let mut runs: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&out) {
        if let Ok(v) = serde_json::from_str::<serde_json::Value>(&existing) {
            if let Some(arr) = v["runs"].as_array() {
                for r in arr {
                    let Some(l) = r["label"].as_str() else {
                        continue;
                    };
                    if l == label {
                        continue;
                    }
                    runs.push(format!(
                        "{{\"label\":\"{l}\",\"wall_us_mean\":{},\"wall_us_min\":{},\
                         \"wall_us_max\":{},\"chunks_served\":{},\"bytes_served\":{}}}",
                        r["wall_us_mean"].as_u64().unwrap_or(0),
                        r["wall_us_min"].as_u64().unwrap_or(0),
                        r["wall_us_max"].as_u64().unwrap_or(0),
                        r["chunks_served"].as_u64().unwrap_or(0),
                        r["bytes_served"].as_u64().unwrap_or(0),
                    ));
                }
            }
        }
    }
    runs.push(run_json);
    // Seed 0: this workload is phase-scheduled, it draws no randomness.
    let doc = format!(
        "{{\"bench\":\"hotpath_fanout\",\"meta\":{},\"workload\":{{\"viewers\":{VIEWERS},\
         \"stream_secs\":{STREAM_SECS},\"poll_interval_s\":{POLL_INTERVAL_S},\
         \"pops\":{},\"iterations\":{ITERATIONS}}},\"runs\":[{}]}}\n",
        livescope_bench::run_meta_json(0),
        POPS.len(),
        runs.join(",")
    );
    std::fs::write(&out, &doc).expect("write baseline file");
    println!("hotpath_fanout [{label}]: mean {mean}us (min {min}us, max {max}us) over {ITERATIONS} iters");
    println!("wrote {out}");
}
