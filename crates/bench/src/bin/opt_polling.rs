//! Optimization study — adaptive chunk-cadence polling vs the fixed
//! intervals of Figs 12–13: can polling delay be cut without a request
//! storm? (The paper asks exactly this in §1: "can the current system be
//! optimized for improved performance?")

#![forbid(unsafe_code)]

use livescope_analysis::Table;
use livescope_bench::emit;
use livescope_core::polling::{run_adaptive_study, PollingConfig};

fn main() {
    let rows = run_adaptive_study(
        &PollingConfig {
            broadcasts: 8_000,
            ..PollingConfig::default()
        },
        0.4,
    );
    let mut table = Table::new(["poller", "mean polling delay", "polls per chunk"]);
    for row in &rows {
        let name = match row.fixed_interval_s {
            Some(i) => format!("fixed {i}s"),
            None => "adaptive (0.4s guard)".to_string(),
        };
        table.row([
            name,
            format!("{:.2}s", row.mean_delay_s),
            format!("{:.2}", row.polls_per_chunk),
        ]);
    }
    let ascii = format!(
        "Optimization — adaptive vs fixed-interval polling\n{}\n\
         learning the ~3s chunk cadence cuts mean polling delay ~5x below the\n\
         2s poller's while issuing only ~35% more requests than it.\n",
        table.render()
    );
    emit("opt_polling", &ascii, &[("txt", ascii.clone())]);
}
