//! Fig 18 / §7 — the stream-hijack attack and the signing defense, at both
//! the broadcaster and viewer edges, with a policy-cost sweep.

#![forbid(unsafe_code)]

use livescope_bench::emit;
use livescope_core::security::{run, AttackSide, SecurityConfig};
use livescope_security::SigningPolicy;

fn main() {
    let mut ascii = String::from("Fig 18 / §7 — stream hijack before and after the defense\n\n");
    for side in [AttackSide::Broadcaster, AttackSide::Viewer] {
        let undefended = run(
            &SecurityConfig {
                side,
                ..SecurityConfig::default()
            },
            false,
        );
        ascii.push_str(&undefended.render(&format!("{side:?} attack, no defense   ")));
        ascii.push('\n');
        let defended = run(
            &SecurityConfig {
                side,
                ..SecurityConfig::default()
            },
            true,
        );
        ascii.push_str(&defended.render(&format!("{side:?} attack, EveryFrame sig")));
        ascii.push('\n');
    }
    ascii.push_str("\nsigning-policy cost sweep (viewer-side defense):\n");
    for (name, policy) in [
        ("EveryFrame", SigningPolicy::EveryFrame),
        ("EveryKth(10)", SigningPolicy::EveryKth(10)),
        ("HashChain(25)", SigningPolicy::HashChain(25)),
    ] {
        let report = run(
            &SecurityConfig {
                side: AttackSide::Viewer,
                policy,
                ..SecurityConfig::default()
            },
            true,
        );
        ascii.push_str(&format!(
            "  {name:<13} signatures={:<4} flagged={:<4} tampered_viewed={:<4} attack {}\n",
            report.signatures_produced,
            report.flagged_at_viewer,
            report.tampered_frames_viewed,
            if report.attack_succeeded() {
                "SUCCEEDED"
            } else {
                "DEFEATED"
            }
        ));
    }
    // The alternative defense §7.2 mentions: full-channel encryption
    // (RTMPS, Facebook Live's choice) — secure, but the cost is one
    // encryption pass per message per connection.
    ascii.push_str("\nRTMPS alternative (full-channel encryption):\n");
    {
        use livescope_proto::rtmp::{RtmpMessage, VideoFrame};
        use livescope_security::{Interceptor, RtmpsChannel};
        let mut tx = RtmpsChannel::new(0xFACE);
        let mut rx = RtmpsChannel::new(0xFACE);
        let mut mitm = Interceptor::blackout();
        let mut opaque = 0;
        for seq in 0..250u64 {
            let frame = RtmpMessage::Frame(VideoFrame::new(
                seq,
                seq * 40_000,
                false,
                bytes::Bytes::from(vec![7u8; 2_500]),
            ))
            .encode();
            let protected = tx.protect(&frame);
            let (forwarded, action) = mitm.process_rtmp(protected);
            if action == livescope_security::attack::InterceptAction::Opaque {
                opaque += 1;
            }
            rx.open(forwarded).expect("untampered records open");
        }
        ascii.push_str(&format!(
            "  250 frames: {} opaque to the attacker, 0 tokens stolen, 0 tampered;\n\
             \u{20} cost: {} encryption passes on this ONE connection — ×N viewers at the\n\
             \u{20} server, which is why Periscope reserved RTMPS for private broadcasts.\n",
            opaque, tx.messages_sealed
        ));
    }
    ascii.push_str(
        "\npaper: unauthenticated RTMP lets an on-path attacker alter streams invisibly;\n\
         per-frame (or hash-chained) signatures embedded in frame metadata defeat it.\n",
    );
    emit("fig18", &ascii, &[("txt", ascii.clone())]);
}
