//! §5.2 — the chunk-size scalability/latency tradeoff, swept through the
//! full controlled-experiment pipeline.

#![forbid(unsafe_code)]

use livescope_bench::emit;
use livescope_core::chunk_tradeoff::{run, ChunkTradeoffConfig};

fn main() {
    let report = run(&ChunkTradeoffConfig::default());
    let ascii = report.render();
    emit("chunk_tradeoff", &ascii, &[("txt", ascii.clone())]);
}
