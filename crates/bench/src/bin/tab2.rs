//! Table 2 — social-graph structure of Periscope vs Facebook vs Twitter.

#![forbid(unsafe_code)]

use livescope_bench::emit;
use livescope_core::social::{run_table2, SocialConfig};

fn main() {
    let report = run_table2(&SocialConfig::default());
    let ascii = report.render();
    emit("tab2", &ascii, &[("txt", ascii.clone())]);
}
