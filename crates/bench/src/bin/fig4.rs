//! Fig 4 — CDF of total viewers per broadcast.

#![forbid(unsafe_code)]

use livescope_bench::emit_figure;
use livescope_core::usage::{run, UsageConfig};

fn main() {
    let report = run(&UsageConfig::default());
    emit_figure("fig4", &report.fig4());
    let zero = |ds: &livescope_crawler::streaming::DatasetSummary| {
        ds.zero_viewer_broadcasts as f64 / ds.broadcasts().max(1) as f64
    };
    println!(
        "zero-viewer broadcasts — Meerkat: {:.0}% (paper: 60%), Periscope: {:.1}% (paper: ~0%)",
        zero(&report.meerkat) * 100.0,
        zero(&report.periscope) * 100.0
    );
    let max = report.periscope.viewers.max().unwrap_or(0.0);
    println!("largest Periscope audience: {max:.0} viewers (paper: up to ~100K)");
}
