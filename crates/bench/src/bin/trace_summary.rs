//! trace-summary — inspect a livescope JSONL trace.
//!
//! Usage:
//!
//! ```text
//! trace-summary <trace.jsonl>      summarize an existing trace
//! trace-summary --capture <path>   run the default breakdown experiment
//!                                  with tracing on, write the trace to
//!                                  <path>, then summarize it
//! ```
//!
//! The summary prints per-kind event counts, the traced time span, and
//! the six-component delay ledger ([`TraceBreakdown`]) derived purely
//! from the trace — the same numbers `experiments::breakdown` computes
//! analytically, recovered from what the state machines actually did.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fs;
use std::process::ExitCode;

use livescope_core::experiments::breakdown::{run_traced, BreakdownConfig};
use livescope_telemetry::event::parse_jsonl;
use livescope_telemetry::{SharedBuffer, Telemetry, TimedEvent, TraceBreakdown};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let text = match args.as_slice() {
        [path] if path != "--capture" => match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("trace-summary: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        [flag, path] if flag == "--capture" => {
            let buf = SharedBuffer::new();
            let telemetry = Telemetry::to_jsonl(Box::new(buf.clone()));
            let report = run_traced(&BreakdownConfig::default(), &telemetry);
            telemetry.flush();
            let bytes = buf.contents();
            if let Err(e) = fs::write(path, &bytes) {
                eprintln!("trace-summary: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("captured {} bytes of trace to {path}\n", bytes.len());
            println!("analytic report for cross-reference:\n{}", report.render());
            String::from_utf8(bytes).expect("trace is UTF-8")
        }
        _ => {
            eprintln!("usage: trace-summary <trace.jsonl> | trace-summary --capture <path>");
            return ExitCode::FAILURE;
        }
    };

    let events = match parse_jsonl(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("trace-summary: parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", summarize(&events));
    ExitCode::SUCCESS
}

fn summarize(events: &[TimedEvent]) -> String {
    let mut out = String::new();
    if events.is_empty() {
        out.push_str("empty trace\n");
        return out;
    }
    let first = events.iter().map(|e| e.t_us).min().unwrap_or(0);
    let last = events.iter().map(|e| e.t_us).max().unwrap_or(0);
    out.push_str(&format!(
        "{} events spanning {:.3} s of sim time\n\n",
        events.len(),
        (last - first) as f64 / 1e6
    ));
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in events {
        *counts.entry(e.event.kind()).or_default() += 1;
    }
    out.push_str("event counts:\n");
    for (kind, n) in &counts {
        out.push_str(&format!("  {kind:<22} {n}\n"));
    }
    out.push('\n');
    out.push_str(&TraceBreakdown::derive(events).render());
    out
}
