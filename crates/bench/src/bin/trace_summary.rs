//! trace-summary — inspect a livescope JSONL trace.
//!
//! Usage:
//!
//! ```text
//! trace-summary <trace.jsonl>      summarize an existing trace
//! trace-summary --capture <path>   run the default breakdown experiment
//!                                  with tracing on, write the trace to
//!                                  <path>, then summarize it
//! trace-summary ... --format json  machine-readable summary
//! ```
//!
//! The summary prints per-kind event counts (spans included), the traced
//! time span, and the six-component delay ledger ([`TraceBreakdown`])
//! derived purely from the trace — the same numbers
//! `experiments::breakdown` computes analytically, recovered from what
//! the state machines actually did.
//!
//! Parsing is lenient: lines written by a newer event vocabulary are
//! counted and reported, never silently dropped.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;

use livescope_core::experiments::breakdown::{run_traced, BreakdownConfig};
use livescope_telemetry::event::parse_jsonl_lossy;
use livescope_telemetry::{SharedBuffer, StageDelays, Telemetry, TimedEvent, TraceBreakdown};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let format = match args.iter().position(|a| a == "--format") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("trace-summary: --format needs a value (text | json)");
                return ExitCode::FAILURE;
            }
            let value = args.remove(i + 1);
            args.remove(i);
            value
        }
        None => "text".to_string(),
    };
    if format != "text" && format != "json" {
        eprintln!("trace-summary: unknown format {format:?} (text | json)");
        return ExitCode::FAILURE;
    }
    let text = match args.as_slice() {
        [path] if path != "--capture" => match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("trace-summary: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        [flag, path] if flag == "--capture" => {
            let buf = SharedBuffer::new();
            let telemetry = Telemetry::to_jsonl(Box::new(buf.clone()));
            let report = run_traced(&BreakdownConfig::default(), &telemetry);
            telemetry.flush();
            let bytes = buf.contents();
            if let Err(e) = fs::write(path, &bytes) {
                eprintln!("trace-summary: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            if format == "text" {
                println!("captured {} bytes of trace to {path}\n", bytes.len());
                println!("analytic report for cross-reference:\n{}", report.render());
            }
            String::from_utf8(bytes).expect("trace is UTF-8")
        }
        _ => {
            eprintln!(
                "usage: trace-summary <trace.jsonl> | trace-summary --capture <path> \
                 [--format text|json]"
            );
            return ExitCode::FAILURE;
        }
    };

    let trace = parse_jsonl_lossy(&text);
    if format == "json" {
        println!("{}", summarize_json(&trace.events, trace.skipped_lines));
    } else {
        println!("{}", summarize(&trace.events));
        if trace.skipped_lines > 0 {
            println!(
                "[skipped {} unparsed line(s); first: {}]",
                trace.skipped_lines, trace.first_skip
            );
        }
    }
    ExitCode::SUCCESS
}

fn kind_counts(events: &[TimedEvent]) -> BTreeMap<&'static str, u64> {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in events {
        *counts.entry(e.event.kind()).or_default() += 1;
    }
    counts
}

fn summarize(events: &[TimedEvent]) -> String {
    let mut out = String::new();
    if events.is_empty() {
        out.push_str("empty trace\n");
        return out;
    }
    let first = events.iter().map(|e| e.t_us).min().unwrap_or(0);
    let last = events.iter().map(|e| e.t_us).max().unwrap_or(0);
    let _ = write!(
        out,
        "{} events spanning {:.3} s of sim time\n\n",
        events.len(),
        (last - first) as f64 / 1e6
    );
    out.push_str("event counts:\n");
    for (kind, n) in &kind_counts(events) {
        let _ = writeln!(out, "  {kind:<22} {n}");
    }
    out.push('\n');
    out.push_str(&TraceBreakdown::derive(events).render());
    out
}

fn stages_json(s: &StageDelays) -> String {
    format!(
        "{{\"upload_s\":{:.6},\"chunking_s\":{:.6},\"wowza2fastly_s\":{:.6},\
         \"polling_s\":{:.6},\"last_mile_s\":{:.6},\"buffering_s\":{:.6},\"total_s\":{:.6}}}",
        s.upload_s,
        s.chunking_s,
        s.wowza2fastly_s,
        s.polling_s,
        s.last_mile_s,
        s.buffering_s,
        s.total_s()
    )
}

/// Machine-readable summary with a fixed field order.
fn summarize_json(events: &[TimedEvent], skipped_lines: u64) -> String {
    let first = events.iter().map(|e| e.t_us).min().unwrap_or(0);
    let last = events.iter().map(|e| e.t_us).max().unwrap_or(0);
    let mut out = format!(
        "{{\"summary\":\"trace\",\"events\":{},\"skipped_lines\":{},\"span_s\":{:.6},\"counts\":{{",
        events.len(),
        skipped_lines,
        (last - first) as f64 / 1e6
    );
    for (i, (kind, n)) in kind_counts(events).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{kind}\":{n}");
    }
    let ledger = TraceBreakdown::derive(events);
    let _ = write!(
        out,
        "}},\"rtmp_units\":{},\"hls_chunks\":{},\"unmatched_chunks\":{},\"rtmp\":{},\"hls\":{}}}",
        ledger.rtmp_units,
        ledger.hls_chunks,
        ledger.unmatched_chunks,
        stages_json(&ledger.rtmp),
        stages_json(&ledger.hls),
    );
    out
}
