//! Fig 10 — the numbered end-to-end delay timeline (①–⑰), printed from
//! one instrumented run of the real pipeline instead of as a schematic.

#![forbid(unsafe_code)]

use livescope_analysis::Table;
use livescope_bench::emit;
use livescope_cdn::ids::UserId;
use livescope_cdn::Cluster;
use livescope_client::viewer::HlsViewer;
use livescope_crawler::probe::HighFreqProbe;
use livescope_net::datacenters::{self, Provider};
use livescope_net::geo::GeoPoint;
use livescope_net::AccessLink;
use livescope_proto::rtmp::VideoFrame;
use livescope_sim::{RngPool, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let pool = RngPool::new(10);
    let mut rng = SmallRng::seed_from_u64(pool.stream_seed("fig10"));
    let mut cluster = Cluster::new(&pool, SimDuration::from_secs(3), 100);
    let ucsb = GeoPoint::new(34.41, -119.85);
    let grant = cluster.create_broadcast(SimTime::ZERO, UserId(1), &ucsb);
    cluster
        .connect_publisher(SimTime::ZERO, grant.id, &grant.token)
        .unwrap();
    cluster
        .join_viewer(SimTime::ZERO, grant.id, UserId(2), &ucsb)
        .unwrap();
    cluster
        .subscribe_rtmp(
            SimTime::ZERO,
            grant.id,
            UserId(2),
            &ucsb,
            AccessLink::StableWifi,
        )
        .unwrap();
    let pop = datacenters::nearest(Provider::Fastly, &ucsb).id;
    let mut hls = HlsViewer::new(UserId(3), grant.id, pop, &ucsb, AccessLink::StableWifi);
    let mut probe = HighFreqProbe::new(grant.id, pop);

    // Stream the first chunk's worth of frames plus a little tail,
    // tracking the key instants of the FIRST frame and the FIRST chunk.
    let mut rtmp_rows: Vec<(&str, f64, &str)> = Vec::new();
    let upload_delay = SimDuration::from_millis(35);
    for i in 0..100u64 {
        let capture = SimTime::from_millis(i * 40);
        let arrival = capture + upload_delay;
        let frame = VideoFrame::new(
            i,
            capture.as_micros(),
            i == 0,
            bytes::Bytes::from(vec![1u8; 2_500]),
        );
        let outcome = cluster.ingest_decoded(arrival, grant.id, frame).unwrap();
        if i == 0 {
            rtmp_rows.push((
                "1. frame captured on device",
                capture.as_secs_f64(),
                "device clock",
            ));
            rtmp_rows.push((
                "2. frame arrives at Wowza",
                arrival.as_secs_f64(),
                "upload delay",
            ));
            if let Some(d) = outcome.deliveries.first().and_then(|d| d.delay) {
                rtmp_rows.push((
                    "3. frame arrives at RTMP viewer",
                    (arrival + d).as_secs_f64(),
                    "last-mile push",
                ));
                rtmp_rows.push((
                    "4. frame played (after ~1s pre-buffer)",
                    (arrival + d).as_secs_f64() + 1.0,
                    "client buffering",
                ));
            }
        }
        // The probe polls every 100 ms; interleave.
        probe.poll_once(&mut cluster, arrival);
    }
    // HLS timeline of the first chunk.
    let ready = {
        let state = cluster.control.broadcast(grant.id).unwrap();
        cluster.wowza[state.wowza_dc.0 as usize].origin_chunks(grant.id)[0].ready_at
    };
    // Probe already triggered the fetch; availability is recorded.
    let available = cluster.fastly[(pop.0 - 8) as usize]
        .availability(grant.id, 0)
        .expect("probe triggered replication");
    // The HLS viewer polls at 2.8 s cadence and discovers the chunk.
    let mut discovered = None;
    for k in 0..5u64 {
        let t = SimTime::from_millis(2_800 * (k + 1));
        if hls.poll(&mut cluster, t, &mut rng) > 0 {
            discovered = Some(t);
            break;
        }
    }
    let discovered = discovered.expect("chunk discovered");
    let receipt = hls.receipts()[0];

    let mut table = Table::new(["step (Fig 10 numbering)", "t (s)", "component"]);
    for (label, t, component) in &rtmp_rows {
        table.row([label.to_string(), format!("{t:.3}"), component.to_string()]);
    }
    for (label, t, component) in [
        (
            "5./6. first frame captured / at Wowza",
            upload_delay.as_secs_f64(),
            "upload",
        ),
        (
            "7. chunk 0 closes at Wowza",
            ready.as_secs_f64(),
            "chunking (= chunk duration)",
        ),
        (
            "9./10. first poll after ready triggers fetch",
            available.as_secs_f64() - 0.02,
            "probe poll",
        ),
        (
            "11. chunk available at Fastly POP",
            available.as_secs_f64(),
            "Wowza2Fastly",
        ),
        (
            "14. viewer poll discovers the chunk",
            discovered.as_secs_f64(),
            "polling",
        ),
        (
            "15. chunk arrives on viewer device",
            receipt.arrival.as_secs_f64(),
            "last mile",
        ),
        (
            "17. chunk plays (after ~9s pre-buffer)",
            receipt.arrival.as_secs_f64() + 9.0,
            "client buffering",
        ),
    ] {
        table.row([label.to_string(), format!("{t:.3}"), component.to_string()]);
    }
    let ascii = format!(
        "Fig 10 — RTMP/HLS end-to-end delay timeline, from one instrumented run\n\
         (RTMP rows track frame #0; HLS rows track chunk #0)\n{}",
        table.render()
    );
    emit("fig10", &ascii, &[("txt", ascii.clone())]);
}
