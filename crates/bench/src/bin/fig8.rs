//! Fig 8 — the Periscope CDN infrastructure diagram, rendered from the
//! live system so the picture is backed by real state (server counts,
//! channel endpoints, protocol assignments).

#![forbid(unsafe_code)]

use livescope_bench::emit;
use livescope_cdn::ids::UserId;
use livescope_cdn::Cluster;
use livescope_net::datacenters::{self, Provider};
use livescope_net::geo::GeoPoint;
use livescope_sim::{RngPool, SimDuration, SimTime};

fn main() {
    let mut cluster = Cluster::new(&RngPool::new(8), SimDuration::from_secs(3), 100);
    let grant = cluster.create_broadcast(SimTime::ZERO, UserId(1), &GeoPoint::new(34.41, -119.85));
    let wowza_city = datacenters::datacenter(grant.wowza_dc).city;
    let wowza_count = datacenters::by_provider(Provider::Wowza).count();
    let fastly_count = datacenters::by_provider(Provider::Fastly).count();

    let ascii = format!(
        r#"Fig 8 — Periscope CDN infrastructure (as instantiated by this simulation)

(a) Control channel                    (b) Video channel
    Broadcaster ──HTTPS──▶ Periscope       Broadcaster ──RTMP──▶ Wowza ({wowza_count} EC2 DCs)
                 (sealed)   Server                               │ this run: {wowza_city}
    Viewers     ──HTTPS──▶ (tokens,          per-frame push ─────┤
                 (sealed)   global list,     to first ~100       ▼
                            join/handoff)    viewers         RTMP Viewers (commenters)
                                                                 │
                                             chunk replication   ▼
                                             via co-located   Fastly ({fastly_count} POPs)
                                             gateway (§5.3)      │ chunklist poll + chunk GET
                                                                 ▼
                                                             HLS Viewers (non-commenters)

(c) Message channel
    Broadcaster ◀──HTTPS──▶ PubNub ◀──HTTPS──▶ Viewers   (hearts + comments,
                                                          merged client-side
                                                          by timestamp)

live facts from this instantiation:
  broadcast {} ingests at {wowza_city}; token issued over the sealed channel only;
  RTMP slots: 100 (comment rights follow RTMP admission);
  all {fastly_count} POPs can serve the broadcast once its chunks replicate.
"#,
        grant.id
    );
    emit("fig8", &ascii, &[("txt", ascii.clone())]);
}
