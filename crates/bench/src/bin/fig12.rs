//! Fig 12 — CDF of average polling delay per broadcast for 2/3/4 s
//! polling intervals (trace-driven over 16,013 broadcasts).

#![forbid(unsafe_code)]

use livescope_bench::emit_figure;
use livescope_core::polling::{run, PollingConfig};

fn main() {
    let report = run(&PollingConfig::default());
    emit_figure("fig12", &report.fig12());
    for (interval, cdf) in &report.mean_cdfs {
        println!(
            "interval {interval}s: median mean-delay {:.2}s, p10 {:.2}s, p90 {:.2}s",
            cdf.median(),
            cdf.quantile(0.1),
            cdf.quantile(0.9)
        );
    }
    println!("paper: 2s/4s cluster at interval/2; 3s spreads over ~1-2s (beat effect)");
}
