//! Fig 16 — RTMP client buffering: stalling ratio and buffering delay for
//! pre-buffer sizes 0 / 0.5 / 1 s, across 16,013 trace-driven broadcasts.

#![forbid(unsafe_code)]

use livescope_bench::emit_figure;
use livescope_core::buffering::{run, BufferingConfig};

fn main() {
    let report = run(&BufferingConfig::default());
    emit_figure("fig16a_stall", &report.fig16_stall());
    emit_figure("fig16b_buffering", &report.fig16_buffering());
    for c in &report.rtmp {
        println!(
            "P={:<4} median stall ratio {:.4}, median buffering {:.2}s, >5s buffering: {:.1}%",
            c.prebuffer_s,
            c.stall_ratio.median(),
            c.avg_buffering.median(),
            (1.0 - c.avg_buffering.fraction_at_or_below(5.0)) * 100.0
        );
    }
    println!("paper: RTMP already smooth; ~10% of broadcasts exceed 5s buffering (bursty uplinks)");
}
