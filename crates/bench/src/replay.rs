//! Shared helpers for the streaming-replay benches: the scaled Periscope
//! scenario, a full-surface [`DatasetSummary`] digest, and the worker
//! K-sweep behind `bench_replay --workers` and the
//! `REPLAY_workers.json` regression baseline.
//!
//! The digest deliberately folds *everything the figures can render* —
//! every counter, both per-user tables, the daily series, all four
//! sketch series, and the exemplar reservoir keys — so two summaries
//! with equal digests produce byte-identical Fig 1–6 / Table 1
//! artifacts. That is what lets one `u64` per K stand in for the full
//! byte-identity sweep in `tests/parallel_replay.rs`.

use std::time::Instant;

use livescope_crawler::streaming::{DatasetSummary, DEFAULT_EXEMPLARS};
use livescope_crawler::{run_campaign_sharded_with_graph, CampaignConfig};
use livescope_graph::DiGraph;
use livescope_sim::rng::splitmix64;
use livescope_workload::ScenarioConfig;

/// Points per sketch series folded into [`summary_digest`]; matches the
/// densest figure rendering so no rendered bin escapes the digest.
const SERIES_POINTS: usize = 150;

/// The Periscope study at `divisor`: the paper-scale population and
/// daily-broadcast anchors divided by `divisor` instead of the default
/// 1000 (divisor 1 = 12M users, ~19.6M broadcasts over the 97 days).
pub fn scaled_periscope(divisor: f64) -> ScenarioConfig {
    let base = ScenarioConfig::periscope_study();
    let scale = base.scale_divisor / divisor;
    ScenarioConfig {
        users: (base.users as f64 * scale) as usize,
        base_daily_broadcasts: base.base_daily_broadcasts * scale,
        scale_divisor: divisor,
        ..base
    }
}

/// Order-sensitive splitmix64 fold (`h ← splitmix64(h ⊕ word)`).
fn fold(h: &mut u64, word: u64) {
    *h = splitmix64(*h ^ word);
}

/// Digest of the full observable surface of a finished campaign.
///
/// Covers every aggregate the usage experiment renders: scalar
/// counters, per-day ground truth and recorded series, both per-user
/// tables, all four quantile-sketch series (bit-exact, via
/// `f64::to_bits`), and the exemplar reservoir's `(hash, id)` keys in
/// reservoir order.
pub fn summary_digest(s: &DatasetSummary) -> u64 {
    let mut h = 0x5CA1AB1E_u64;
    for word in [
        s.broadcasts(),
        s.missed,
        s.broadcasters(),
        s.total_views(),
        s.mobile_views(),
        s.unique_viewers(),
        s.hearts_total,
        s.comments_total,
        s.zero_viewer_broadcasts,
        s.hls_broadcasts,
    ] {
        fold(&mut h, word);
    }
    for d in &s.daily {
        fold(&mut h, d.day as u64);
        fold(&mut h, d.broadcasts);
        fold(&mut h, d.active_viewers);
        fold(&mut h, d.active_broadcasters);
    }
    for &r in &s.recorded_per_day {
        fold(&mut h, r);
    }
    for &v in &s.user_views {
        fold(&mut h, v as u64);
    }
    for &c in &s.user_creates {
        fold(&mut h, c as u64);
    }
    for sketch in [&s.duration_secs, &s.viewers, &s.hearts, &s.comments] {
        for (x, y) in sketch.series(SERIES_POINTS) {
            fold(&mut h, x.to_bits());
            fold(&mut h, y.to_bits());
        }
    }
    for m in &s.exemplars {
        fold(&mut h, m.broadcast_hash);
        fold(&mut h, m.record.id);
    }
    h
}

/// One point on the worker scaling curve.
pub struct WorkerRun {
    /// Worker shard count (`K`).
    pub workers: usize,
    /// End-to-end replay wall seconds (graph excluded — it is shared).
    pub wall_s: f64,
    /// Seconds in the final fixed-order accumulator merge.
    pub merge_wall_s: f64,
    /// Seconds in day barriers (bitset unions + day stats).
    pub barrier_wall_s: f64,
    /// Ground-truth broadcasts processed (recorded + missed).
    pub records: u64,
    /// Peak tracked replay state across all shards.
    pub peak_tracked_bytes: usize,
    /// [`summary_digest`] of the finished campaign.
    pub digest: u64,
}

/// Runs the sharded Periscope campaign once per `K` in `workers` against
/// a shared pre-built graph, digesting each result. Callers assert the
/// digests are identical across the sweep; the wall/merge/barrier
/// columns become the scaling curve.
pub fn worker_sweep(
    scenario: &ScenarioConfig,
    campaign: &CampaignConfig,
    graph: &DiGraph,
    workers: &[usize],
) -> Vec<WorkerRun> {
    workers
        .iter()
        .map(|&k| {
            let t0 = Instant::now();
            let (summary, stats) =
                run_campaign_sharded_with_graph(scenario, graph, campaign, k, DEFAULT_EXEMPLARS);
            let wall_s = t0.elapsed().as_secs_f64();
            WorkerRun {
                workers: k,
                wall_s,
                merge_wall_s: stats.merge_wall_s,
                barrier_wall_s: stats.barrier_wall_s,
                records: stats.records,
                peak_tracked_bytes: stats.peak_tracked_bytes,
                digest: summary_digest(&summary),
            }
        })
        .collect()
}
