//! Canonical observability workloads shared by the `obs_report` and
//! `bench_check` binaries.
//!
//! Both binaries must fold the *exact same* deterministic traces — the
//! report bytes are the regression-gate currency — so the workload
//! configurations and the `OBS_report.json` document layout live here,
//! in one place, instead of being copied into each `main`.

use livescope_cdn::{run_fanout, FanoutConfig, FanoutReport};
use livescope_core::experiments::breakdown::{self, BreakdownConfig};
use livescope_sim::BackendChoice;
use livescope_telemetry::{ObsReport, Telemetry};

/// Lane counts the determinism contract is checked over (mirrors
/// `crates/core/tests/sharded_determinism.rs`).
pub const LANE_SWEEP: [usize; 3] = [1, 2, 6];

/// Event-buffer capacity for captures; far above what either CI-sized
/// workload emits, and dropped events are asserted against anyway.
const CAPTURE_CAPACITY: usize = 1 << 18;

/// The Fig-11 controlled experiment (one broadcaster, RTMP + HLS
/// viewers), sized for CI.
pub fn breakdown_config() -> BreakdownConfig {
    BreakdownConfig {
        repetitions: 2,
        stream_secs: 20,
        ..BreakdownConfig::default()
    }
}

/// The six-POP celebrity fan-out with roaming viewers (the mailbox-
/// crossing workload), sized for CI.
pub fn celebrity_config() -> FanoutConfig {
    FanoutConfig {
        viewers_per_pop: 10,
        stream_secs: 20,
        roam_every: 3,
        ..FanoutConfig::default()
    }
}

fn fold(telemetry: &Telemetry) -> ObsReport {
    assert_eq!(
        telemetry.dropped_events(),
        0,
        "capture buffer overflowed; raise CAPTURE_CAPACITY"
    );
    ObsReport::derive(&telemetry.events())
}

/// Runs the breakdown workload on `backend` and folds its trace.
pub fn breakdown_obs(backend: BackendChoice) -> ObsReport {
    let telemetry = Telemetry::recording(CAPTURE_CAPACITY);
    breakdown::run_traced_on(&breakdown_config(), &telemetry, backend);
    fold(&telemetry)
}

/// Runs the celebrity fan-out on `lanes` shards and folds its trace.
/// Also returns the workload's own report (delivery checksum, chunk and
/// event counts) for the regression gate.
pub fn celebrity_obs(lanes: usize) -> (ObsReport, FanoutReport) {
    let telemetry = Telemetry::recording(CAPTURE_CAPACITY);
    let report = run_fanout(&celebrity_config(), lanes, &telemetry);
    (fold(&telemetry), report)
}

/// The `OBS_report.json` document: run metadata (host-varying; never
/// gated), then the two folded reports and the fan-out's deterministic
/// counters. Field order is fixed so the bytes are reproducible.
pub fn obs_doc(breakdown: &ObsReport, celebrity: &ObsReport, fanout: &FanoutReport) -> String {
    format!(
        "{{\"report\":\"obs_report\",\"meta\":{},\"breakdown\":{},\"celebrity\":{},\
         \"fanout\":{{\"checksum\":\"{:#018x}\",\"chunks_served\":{},\"events_fired\":{}}}}}",
        crate::run_meta_json(breakdown_config().seed),
        breakdown.to_json(),
        celebrity.to_json(),
        fanout.checksum,
        fanout.chunks_served(),
        fanout.events_fired,
    )
}
