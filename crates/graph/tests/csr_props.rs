//! Property tests for the counting-sort CSR build: the determinism
//! contract says [`DiGraph::from_edges`] depends only on the edge
//! *multiset*, never on input order — that is what lets edge lists come
//! from any pipeline shape (streamed, sharded, shuffled) and still pin a
//! single checksum. A `BTreeMap` oracle double-checks the adjacency
//! against an independent implementation.

#![forbid(unsafe_code)]

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

use livescope_graph::{DiGraph, NodeId};

const NODES: usize = 48;

fn edge() -> impl Strategy<Value = (NodeId, NodeId)> {
    (0..NODES as NodeId, 0..NODES as NodeId)
}

/// Independent reference: sorted, deduplicated, self-loop-free adjacency.
fn oracle(edges: &[(NodeId, NodeId)]) -> BTreeMap<NodeId, BTreeSet<NodeId>> {
    let mut adj: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for &(u, v) in edges {
        if u != v {
            adj.entry(u).or_default().insert(v);
        }
    }
    adj
}

proptest! {
    #[test]
    fn build_is_independent_of_input_order(
        edges in vec(edge(), 0..600),
        shuffle_seed in any::<u64>(),
    ) {
        let g1 = DiGraph::from_edges(NODES, &edges);
        // Deterministic Fisher–Yates driven by the proptest-supplied seed.
        let mut shuffled = edges.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        let g2 = DiGraph::from_edges(NODES, &shuffled);
        prop_assert_eq!(g1.edge_count(), g2.edge_count());
        prop_assert_eq!(g1.adjacency_checksum(), g2.adjacency_checksum());
        prop_assert_eq!(g1.degree_checksum(), g2.degree_checksum());
        for u in 0..NODES as NodeId {
            prop_assert_eq!(g1.out_neighbors(u), g2.out_neighbors(u));
            prop_assert_eq!(g1.in_neighbors(u), g2.in_neighbors(u));
        }
    }

    #[test]
    fn build_matches_btree_oracle(edges in vec(edge(), 0..600)) {
        let g = DiGraph::from_edges(NODES, &edges);
        let want = oracle(&edges);
        let total: usize = want.values().map(BTreeSet::len).sum();
        prop_assert_eq!(g.edge_count(), total);
        for u in 0..NODES as NodeId {
            let got: Vec<NodeId> = g.out_neighbors(u).to_vec();
            let expect: Vec<NodeId> = want
                .get(&u)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            prop_assert_eq!(got, expect);
            // In-neighbors: every source listing u, sorted.
            let expect_in: Vec<NodeId> = want
                .iter()
                .filter(|(_, targets)| targets.contains(&u))
                .map(|(&s, _)| s)
                .collect();
            prop_assert_eq!(g.in_neighbors(u).to_vec(), expect_in);
        }
    }

    #[test]
    fn degree_view_and_raw_views_agree_with_slices(edges in vec(edge(), 0..400)) {
        let g = DiGraph::from_edges(NODES, &edges);
        let d = g.degrees();
        let (out_off, out_t) = g.out_csr();
        let (in_off, in_s) = g.in_csr();
        prop_assert_eq!(out_off.at(NODES), g.edge_count());
        prop_assert_eq!(in_off.at(NODES), g.edge_count());
        for u in 0..NODES {
            prop_assert_eq!(d.out_degree(u as NodeId), g.out_degree(u as NodeId));
            prop_assert_eq!(d.in_degree(u as NodeId), g.in_degree(u as NodeId));
            prop_assert_eq!(
                &out_t[out_off.at(u)..out_off.at(u + 1)],
                g.out_neighbors(u as NodeId)
            );
            prop_assert_eq!(
                &in_s[in_off.at(u)..in_off.at(u + 1)],
                g.in_neighbors(u as NodeId)
            );
        }
    }
}
