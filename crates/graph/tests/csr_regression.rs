//! Pins the two-phase CSR generators byte-identical to the retired
//! urn/`BTreeSet` implementation.
//!
//! Every constant below was captured by running the pre-redesign
//! generator (commit 254ec5b) over the same `(spec, seed)` pair and
//! hashing its CSR with the same `adjacency_checksum`/`degree_checksum`
//! formulas now hosted on `DiGraph`. A mismatch means the redesign
//! changed the emitted graph — which would silently shift every
//! downstream figure (Table 2, the replay workload, Fig 7) — not merely
//! its layout.

#![forbid(unsafe_code)]

use livescope_graph::{DiGraph, GraphSpec};
use livescope_sim::RngPool;

struct Golden {
    name: &'static str,
    edges: usize,
    adjacency: u64,
    degree: u64,
}

fn check(g: &DiGraph, golden: &Golden) {
    assert_eq!(g.edge_count(), golden.edges, "{}: edge count", golden.name);
    assert_eq!(
        g.adjacency_checksum(),
        golden.adjacency,
        "{}: adjacency checksum",
        golden.name
    );
    assert_eq!(
        g.degree_checksum(),
        golden.degree,
        "{}: degree checksum",
        golden.name
    );
}

/// The divisor-1000 replay graph: periscope preset at 12 000 users,
/// seeded exactly as `livescope_workload`'s default graph path does.
/// This is the ISSUE's headline pin: divisor-1000 figures byte-identical
/// across the redesign.
#[test]
fn divisor_1000_periscope_graph_matches_old_generator() {
    let seed = RngPool::new(0x5ca1ab1e).stream_seed("graph");
    assert_eq!(seed, 0xbf9eebf962ac3326, "workload graph seed drifted");
    let g = DiGraph::generate(&GraphSpec::periscope().with_nodes(12_000), seed);
    check(
        &g,
        &Golden {
            name: "div1000-periscope",
            edges: 227_422,
            adjacency: 0xd3d5723ae01c845b,
            degree: 0x04e34b169564bc8c,
        },
    );
}

/// The meerkat-flavoured workload graph (custom follow parameters).
#[test]
fn meerkat_workload_graph_matches_old_generator() {
    use livescope_graph::{FollowParams, GraphKind};
    let seed = RngPool::new(0x0ddba11).stream_seed("graph");
    assert_eq!(seed, 0x5d7750af17885e1c, "workload graph seed drifted");
    let spec = GraphSpec {
        nodes: 5_000,
        kind: GraphKind::Follow(FollowParams {
            mean_follows: 4.0,
            preferential_bias: 0.7,
            triadic_closure: 0.2,
            disassortative_passes: 1.0,
        }),
    };
    check(
        &DiGraph::generate(&spec, seed),
        &Golden {
            name: "meerkat-5000",
            edges: 19_993,
            adjacency: 0x04d7a86b285a8413,
            degree: 0xa727a9a5e69f9dd4,
        },
    );
}

/// The three Table 2 presets at calibrate_table2 scale (6 000 nodes,
/// seed 5) — re-pins the degree-distribution calibration across the
/// redesign for all three generator recipes, including the friendship
/// path (urn + sorted-adjacency membership + XBS rewiring + closure).
#[test]
fn table2_calibration_graphs_match_old_generator() {
    let goldens = [
        (
            GraphSpec::periscope(),
            Golden {
                name: "table2-periscope-6000",
                edges: 114_401,
                adjacency: 0xaa3dc681cee9d514,
                degree: 0x59df4f8cc09a1346,
            },
        ),
        (
            GraphSpec::twitter(),
            Golden {
                name: "table2-twitter-6000",
                edges: 41_614,
                adjacency: 0x87d82eb8074f7441,
                degree: 0x62dc306fd360399d,
            },
        ),
        (
            GraphSpec::facebook(),
            Golden {
                name: "table2-facebook-6000",
                edges: 399_572,
                adjacency: 0xedf69f4523843aa9,
                degree: 0x420b26128f214f1e,
            },
        ),
    ];
    for (spec, golden) in goldens {
        check(&DiGraph::generate(&spec.with_nodes(6_000), 5), &golden);
    }
}

/// The parallel-assembly path against the same goldens: the K-shard
/// scatter (DESIGN.md §12 "parallel assembly contract") must reproduce
/// every pinned checksum bit-for-bit at the divisor-1000 scale and all
/// three Table 2 shapes. `scripts/ci.sh` runs this with and without
/// `--features parallel`, so both the threaded and the shard-order
/// sequential execution of the same partition are pinned.
#[test]
fn parallel_assembly_reproduces_pinned_checksums() {
    use livescope_graph::BuildOptions;
    let seed = RngPool::new(0x5ca1ab1e).stream_seed("graph");
    let spec = GraphSpec::periscope().with_nodes(12_000);
    for workers in [2usize, 6] {
        let (g, stats) =
            DiGraph::generate_with(&spec, seed, &BuildOptions::new().with_workers(workers));
        assert_eq!(stats.workers, workers);
        check(
            &g,
            &Golden {
                name: "div1000-periscope (parallel)",
                edges: 227_422,
                adjacency: 0xd3d5723ae01c845b,
                degree: 0x04e34b169564bc8c,
            },
        );
    }
    let table2 = [
        (
            GraphSpec::periscope(),
            Golden {
                name: "table2-periscope-6000 (parallel)",
                edges: 114_401,
                adjacency: 0xaa3dc681cee9d514,
                degree: 0x59df4f8cc09a1346,
            },
        ),
        (
            GraphSpec::twitter(),
            Golden {
                name: "table2-twitter-6000 (parallel)",
                edges: 41_614,
                adjacency: 0x87d82eb8074f7441,
                degree: 0x62dc306fd360399d,
            },
        ),
        (
            GraphSpec::facebook(),
            Golden {
                name: "table2-facebook-6000 (parallel)",
                edges: 399_572,
                adjacency: 0xedf69f4523843aa9,
                degree: 0x420b26128f214f1e,
            },
        ),
    ];
    let six = BuildOptions::new().with_workers(6);
    for (spec, golden) in table2 {
        let (g, _) = DiGraph::generate_with(&spec.with_nodes(6_000), 5, &six);
        check(&g, &golden);
    }
}

/// Small fast pins for the shapes the unit tests exercise.
#[test]
fn small_graphs_match_old_generator() {
    use livescope_graph::{FriendshipParams, GraphKind};
    let g = DiGraph::generate(&GraphSpec::twitter().with_nodes(500), 7);
    check(
        &g,
        &Golden {
            name: "small-twitter-500",
            edges: 3_474,
            adjacency: 0xa673baccd8ae36cc,
            degree: 0x3fb505ec235c5884,
        },
    );
    let spec = GraphSpec {
        nodes: 800,
        kind: GraphKind::Friendship(FriendshipParams {
            mean_friends: 10.0,
            triadic_closure: 0.5,
            rewire_passes: 0.5,
            community_size: 0,
            community_bias: 0.0,
            closure_extra: 0.4,
        }),
    };
    check(
        &DiGraph::generate(&spec, 2),
        &Golden {
            name: "small-friendship-800",
            edges: 22_596,
            adjacency: 0x536b1b95823b9d8e,
            degree: 0x07edf8364d7edf02,
        },
    );
}
