//! Partition invariance of the parallel phase-2 assembly (DESIGN.md §12
//! "parallel assembly contract"): for every worker count K the K-shard
//! counting-sort scatter must emit the *same bytes* as the sequential
//! build — with or without the `parallel` feature, which only decides
//! whether the K shards run on scoped threads or sequentially in shard
//! order. `scripts/ci.sh` runs this suite under both feature configs.

#![forbid(unsafe_code)]

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

use livescope_graph::{
    BuildOptions, DiGraph, FollowParams, FriendshipParams, GraphKind, GraphSpec, NodeId,
};

const NODES: usize = 48;

fn edge() -> impl Strategy<Value = (NodeId, NodeId)> {
    (0..NODES as NodeId, 0..NODES as NodeId)
}

/// Independent reference: sorted, deduplicated, self-loop-free adjacency.
fn oracle(edges: &[(NodeId, NodeId)]) -> BTreeMap<NodeId, BTreeSet<NodeId>> {
    let mut adj: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for &(u, v) in edges {
        if u != v {
            adj.entry(u).or_default().insert(v);
        }
    }
    adj
}

fn assert_same(a: &DiGraph, b: &DiGraph, label: &str) {
    assert_eq!(a.edge_count(), b.edge_count(), "{label}: edge count");
    assert_eq!(
        a.adjacency_checksum(),
        b.adjacency_checksum(),
        "{label}: adjacency checksum"
    );
    assert_eq!(
        a.degree_checksum(),
        b.degree_checksum(),
        "{label}: degree checksum"
    );
    for u in 0..a.node_count() as NodeId {
        assert_eq!(a.out_neighbors(u), b.out_neighbors(u), "{label}: out[{u}]");
        assert_eq!(a.in_neighbors(u), b.in_neighbors(u), "{label}: in[{u}]");
    }
}

proptest! {
    /// Every worker count produces the same graph as the sequential
    /// build, and that graph still matches the independent BTreeMap
    /// oracle (so "identical" cannot mean "identically wrong").
    #[test]
    fn sharded_assembly_is_partition_invariant(edges in vec(edge(), 0..600)) {
        let seq = DiGraph::from_edges(NODES, &edges);
        let want = oracle(&edges);
        let total: usize = want.values().map(BTreeSet::len).sum();
        prop_assert_eq!(seq.edge_count(), total);
        // K beyond the node count exercises the clamp; K=1 the pass-through.
        for workers in [1usize, 2, 3, 6, 16, NODES + 9] {
            let par = DiGraph::from_edges_with(NODES, &edges, workers);
            prop_assert_eq!(seq.adjacency_checksum(), par.adjacency_checksum());
            prop_assert_eq!(seq.degree_checksum(), par.degree_checksum());
            for u in 0..NODES as NodeId {
                prop_assert_eq!(par.out_neighbors(u), seq.out_neighbors(u));
                prop_assert_eq!(par.in_neighbors(u), seq.in_neighbors(u));
                let expect_in: Vec<NodeId> = want
                    .iter()
                    .filter(|(_, targets)| targets.contains(&u))
                    .map(|(&s, _)| s)
                    .collect();
                prop_assert_eq!(par.in_neighbors(u).to_vec(), expect_in);
            }
        }
    }
}

/// End-to-end generator runs: both generator families emit identical
/// graphs and identical deterministic stats for K ∈ {1, 2, 6}.
#[test]
fn generators_are_worker_invariant() {
    let follow = GraphSpec {
        nodes: 900,
        kind: GraphKind::Follow(FollowParams {
            mean_follows: 6.0,
            preferential_bias: 0.8,
            triadic_closure: 0.3,
            disassortative_passes: 1.0,
        }),
    };
    let friendship = GraphSpec {
        nodes: 600,
        kind: GraphKind::Friendship(FriendshipParams {
            mean_friends: 9.0,
            triadic_closure: 0.5,
            rewire_passes: 0.4,
            closure_extra: 0.3,
            community_size: 50,
            community_bias: 0.7,
        }),
    };
    for (spec, label) in [(follow, "follow"), (friendship, "friendship")] {
        let (seq, seq_stats) = DiGraph::generate_with_stats(&spec, 11);
        assert_eq!(seq_stats.workers, 1);
        for workers in [1usize, 2, 6] {
            let options = BuildOptions::new().with_workers(workers);
            let (par, stats) = DiGraph::generate_with(&spec, 11, &options);
            assert_same(&seq, &par, &format!("{label} workers={workers}"));
            assert_eq!(stats.workers, workers, "{label}");
            // The deterministic stats contract is worker-invariant too.
            assert_eq!(stats.edges, seq_stats.edges, "{label}");
            assert_eq!(stats.peak_bytes, seq_stats.peak_bytes, "{label}");
            assert_eq!(stats.swaps_applied, seq_stats.swaps_applied, "{label}");
        }
    }
}
