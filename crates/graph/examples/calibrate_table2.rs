//! Scratch calibration probe for the Table 2 generators.

#![forbid(unsafe_code)]

use livescope_graph::metrics::*;
use livescope_graph::{DiGraph, GraphSpec};

fn main() {
    let cfg = MetricsConfig {
        clustering_samples: 1000,
        path_samples: 48,
        path_visit_cap: 0,
        seed: 1,
    };
    for (name, spec) in [
        ("periscope", GraphSpec::periscope()),
        ("twitter", GraphSpec::twitter()),
        ("facebook", GraphSpec::facebook()),
    ] {
        let g = DiGraph::generate(&spec.with_nodes(6000), 5);
        println!("{name}: {:?}", compute(&g, &cfg));
    }
}
