//! Scratch calibration probe for the Table 2 generators.

#![forbid(unsafe_code)]

use livescope_graph::generate::*;
use livescope_graph::metrics::*;

fn main() {
    let cfg = MetricsConfig {
        clustering_samples: 1000,
        path_samples: 48,
        path_visit_cap: 0,
        seed: 1,
    };
    for (name, g) in [
        (
            "periscope",
            follow_graph(
                &FollowGraphConfig {
                    nodes: 6000,
                    ..FollowGraphConfig::periscope()
                },
                5,
            ),
        ),
        (
            "twitter",
            follow_graph(
                &FollowGraphConfig {
                    nodes: 6000,
                    ..FollowGraphConfig::twitter()
                },
                5,
            ),
        ),
        (
            "facebook",
            friendship_graph(
                &FriendshipGraphConfig {
                    nodes: 6000,
                    ..FriendshipGraphConfig::facebook()
                },
                5,
            ),
        ),
    ] {
        println!("{name}: {:?}", compute(&g, &cfg));
    }
}
