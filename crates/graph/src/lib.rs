//! # livescope-graph — social graph storage, generators, metrics
//!
//! Table 2 of the paper compares Periscope's follow graph (12M nodes, 231M
//! edges) against reference Facebook and Twitter crawls on five structural
//! metrics, and Fig 7 correlates a broadcaster's follower count with its
//! audience size. Re-running those analyses needs three things, all built
//! here from scratch:
//!
//! * [`digraph`] — a compact CSR directed graph with width-adaptive
//!   (`u32`/`u64`) offset arrays, O(1) degree lookups, cache-friendly
//!   neighbor slices, and raw `(offsets, targets)` views for checksum and
//!   serialization paths;
//! * [`generate`] — synthetic generators behind
//!   [`DiGraph::generate`](digraph::DiGraph::generate) whose outputs
//!   reproduce the *shape contrasts* in Table 2: a Periscope/Twitter-like
//!   asymmetric preferential-attachment follow graph (negative degree
//!   assortativity, short paths, modest clustering) and a Facebook-like
//!   symmetric graph (positive assortativity, higher clustering) —
//!   including the Xulvi-Brunet–Sokolov assortative rewiring pass used to
//!   push correlation above zero;
//! * [`build`] — the two-phase CSR assembly shared by the generators and
//!   [`DiGraph::from_edges`](digraph::DiGraph::from_edges): phase 1
//!   streams edge endpoints, phase 2 counting-sorts both directions in
//!   O(V+E) (DESIGN.md §12);
//! * [`metrics`] — average degree, sampled clustering coefficient, sampled
//!   average shortest-path length, and degree assortativity.
//!
//! Quickstart:
//!
//! ```
//! use livescope_graph::{DiGraph, GraphSpec};
//! let g = DiGraph::generate(&GraphSpec::periscope().with_nodes(2_000), 42);
//! assert_eq!(g.node_count(), 2_000);
//! let top_broadcaster = (0..2_000).max_by_key(|&u| g.in_degree(u)).unwrap();
//! assert!(g.in_degree(top_broadcaster) > 50); // celebrity hub
//! ```

#![forbid(unsafe_code)]

pub mod build;
pub mod digraph;
pub mod generate;
pub mod metrics;

pub use build::GraphBuildStats;
pub use digraph::{DegreeView, DiGraph, NodeId, OffsetsView};
pub use generate::{
    BuildOptions, BuildProfile, FollowParams, FriendshipParams, GraphKind, GraphSpec,
};
pub use metrics::GraphMetrics;
