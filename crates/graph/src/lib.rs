//! # livescope-graph — social graph storage, generators, metrics
//!
//! Table 2 of the paper compares Periscope's follow graph (12M nodes, 231M
//! edges) against reference Facebook and Twitter crawls on five structural
//! metrics, and Fig 7 correlates a broadcaster's follower count with its
//! audience size. Re-running those analyses needs three things, all built
//! here from scratch:
//!
//! * [`digraph`] — a compact CSR directed graph with O(1) degree lookups
//!   and cache-friendly neighbor iteration;
//! * [`generate`] — synthetic generators whose outputs reproduce the
//!   *shape contrasts* in Table 2: a Periscope/Twitter-like asymmetric
//!   preferential-attachment follow graph (negative degree assortativity,
//!   short paths, modest clustering) and a Facebook-like symmetric graph
//!   (positive assortativity, higher clustering) — including the
//!   Xulvi-Brunet–Sokolov assortative rewiring pass used to push
//!   correlation above zero;
//! * [`metrics`] — average degree, sampled clustering coefficient, sampled
//!   average shortest-path length, and degree assortativity.

#![forbid(unsafe_code)]

pub mod digraph;
pub mod generate;
pub mod metrics;

pub use digraph::{DiGraph, GraphBuilder, NodeId};
pub use metrics::GraphMetrics;
