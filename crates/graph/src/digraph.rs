//! Compressed sparse row (CSR) directed graph.
//!
//! Built once from an edge list, then immutable: every analysis in the
//! workspace is read-only, and CSR gives contiguous neighbor slices with
//! two `u32` indices per edge of overhead. Both out- and in-adjacency are
//! materialized because follower analyses need in-degree (who follows me)
//! as cheaply as out-degree (whom I follow).

/// A node index. `u32` bounds graphs at ~4 billion nodes, comfortably above
/// the scaled-down experiments and far smaller in memory than `usize`.
pub type NodeId = u32;

/// An immutable directed graph in CSR form.
///
/// Edge direction follows the "follow" relation: an edge `u → v` means
/// *u follows v*; `v` notifies its in-neighbors... strictly, notifications
/// flow from `v` to everyone with an edge into `v`.
#[derive(Clone, Debug)]
pub struct DiGraph {
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
}

impl DiGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Nodes `u` follows.
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.out_targets[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// Nodes following `u` (its followers).
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.in_sources[self.in_offsets[u]..self.in_offsets[u + 1]]
    }

    /// Follow count of `u` (out-degree).
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_neighbors(u).len()
    }

    /// Follower count of `u` (in-degree).
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_neighbors(u).len()
    }

    /// Total degree (in + out), the quantity undirected-style metrics use.
    pub fn degree(&self, u: NodeId) -> usize {
        self.out_degree(u) + self.in_degree(u)
    }

    /// Iterates all edges as `(source, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.node_count() as NodeId)
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// True if the edge `u → v` exists (binary search; neighbor lists are
    /// sorted by construction).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }
}

/// Accumulates edges, then freezes into a [`DiGraph`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder over `node_count` nodes (ids `0..node_count`).
    pub fn new(node_count: usize) -> Self {
        assert!(
            node_count <= u32::MAX as usize,
            "too many nodes for u32 ids"
        );
        GraphBuilder {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges added so far (before dedup).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the directed edge `u → v`. Self-loops are ignored (a user
    /// cannot follow themself); duplicates are dropped at freeze time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!((u as usize) < self.node_count, "source out of range");
        debug_assert!((v as usize) < self.node_count, "target out of range");
        if u != v {
            self.edges.push((u, v));
        }
    }

    /// Adds both `u → v` and `v → u` (symmetric friendship).
    pub fn add_mutual(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Freezes into CSR form, sorting and deduplicating edges.
    pub fn build(mut self) -> DiGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.node_count;

        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _) in &self.edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = self.edges.iter().map(|&(_, v)| v).collect();

        // In-adjacency: counting sort by target.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, v) in &self.edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as NodeId; self.edges.len()];
        for &(u, v) in &self.edges {
            in_sources[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Sources within each in-list arrive in sorted order because the
        // edge list is sorted by (u, v); no per-list sort needed.

        DiGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> DiGraph {
        // 0→1, 1→2, 2→0 (cycle) and 3→0 (tail).
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(3, 0);
        b.build()
    }

    #[test]
    fn counts_are_correct() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn adjacency_is_correct_both_ways() {
        let g = triangle_plus_tail();
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(3), &[0]);
        assert_eq!(g.in_neighbors(0), &[2, 3]);
        assert_eq!(g.in_neighbors(3), &[] as &[NodeId]);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(0), 2);
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn has_edge_works() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(3, 2));
    }

    #[test]
    fn duplicates_and_self_loops_are_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 1); // self loop
        b.add_edge(2, 0);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_degree(1), 0);
    }

    #[test]
    fn add_mutual_adds_both_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_mutual(0, 1);
        let g = b.build();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edges_iterator_yields_all_edges() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0), (3, 0)]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        let g2 = GraphBuilder::new(5).build();
        assert_eq!(g2.node_count(), 5);
        assert_eq!(g2.out_neighbors(4), &[] as &[NodeId]);
    }

    #[test]
    fn out_neighbors_are_sorted() {
        let mut b = GraphBuilder::new(5);
        for v in [4, 2, 1, 3] {
            b.add_edge(0, v);
        }
        let g = b.build();
        assert_eq!(g.out_neighbors(0), &[1, 2, 3, 4]);
    }
}
