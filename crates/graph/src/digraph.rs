//! Compressed sparse row (CSR) directed graph.
//!
//! Built once from an edge list, then immutable: every analysis in the
//! workspace is read-only, and CSR gives contiguous neighbor slices with
//! narrow integer indexing overhead. Both out- and in-adjacency are
//! materialized because follower analyses need in-degree (who follows me)
//! as cheaply as out-degree (whom I follow).
//!
//! Offsets are width-adaptive (DESIGN.md §12): graphs under 2³² edges —
//! which includes the paper's 231M-edge Periscope graph — store `u32`
//! offset arrays, half the resident bytes of the former `Vec<usize>`
//! layout; larger graphs fall back to `u64` transparently behind the same
//! slice API.

use livescope_sim::rng::splitmix64;

use crate::build::{self, PeakTracker};

/// A node index. `u32` bounds graphs at ~4 billion nodes, comfortably above
/// the scaled-down experiments and far smaller in memory than `usize`.
pub type NodeId = u32;

/// Width-adaptive CSR offset array: `u32` entries while the edge count
/// fits, `u64` beyond.
#[derive(Clone, Debug)]
pub(crate) enum Offsets {
    /// Narrow offsets (edge count < 2³²).
    U32(Vec<u32>),
    /// Wide offsets.
    U64(Vec<u64>),
}

impl Offsets {
    /// Narrows a `u64` prefix-sum array to `u32` when every entry fits.
    pub(crate) fn from_u64(raw: Vec<u64>) -> Offsets {
        match raw.last() {
            Some(&total) if total > u32::MAX as u64 => Offsets::U64(raw),
            _ => Offsets::U32(raw.iter().map(|&x| x as u32).collect()),
        }
    }

    #[inline]
    fn at(&self, i: usize) -> usize {
        match self {
            Offsets::U32(v) => v[i] as usize,
            Offsets::U64(v) => v[i] as usize,
        }
    }

    fn entries(&self) -> usize {
        match self {
            Offsets::U32(v) => v.len(),
            Offsets::U64(v) => v.len(),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Offsets::U32(v) => v.capacity() * 4,
            Offsets::U64(v) => v.capacity() * 8,
        }
    }

    fn view(&self) -> OffsetsView<'_> {
        match self {
            Offsets::U32(v) => OffsetsView::U32(v),
            Offsets::U64(v) => OffsetsView::U64(v),
        }
    }
}

/// Borrowed view of one CSR offset array — the raw counterpart of the
/// neighbor-slice API, for checksum/serialization paths that want to walk
/// the layout without per-node iterator plumbing.
#[derive(Clone, Copy, Debug)]
pub enum OffsetsView<'a> {
    /// Narrow offsets (edge count < 2³²).
    U32(&'a [u32]),
    /// Wide offsets.
    U64(&'a [u64]),
}

impl OffsetsView<'_> {
    /// Offset entry `i` (entry `u` is where node `u`'s segment starts;
    /// entry `node_count` is the edge total).
    #[inline]
    pub fn at(self, i: usize) -> usize {
        match self {
            OffsetsView::U32(v) => v[i] as usize,
            OffsetsView::U64(v) => v[i] as usize,
        }
    }

    /// Number of entries (`node_count + 1`).
    pub fn len(self) -> usize {
        match self {
            OffsetsView::U32(v) => v.len(),
            OffsetsView::U64(v) => v.len(),
        }
    }

    /// True when the array has no entries (never for a built graph).
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Bytes per stored entry (4 or 8) — the width the graph chose.
    pub fn entry_bytes(self) -> usize {
        match self {
            OffsetsView::U32(_) => 4,
            OffsetsView::U64(_) => 8,
        }
    }
}

/// O(1) degree lookups without the neighbor slices: both offset arrays,
/// nothing else. This is what hot accounting paths (the replay's
/// per-record follower lookup, the bench's degree statistics) should hold
/// instead of re-deriving degrees from slice lengths.
#[derive(Clone, Copy, Debug)]
pub struct DegreeView<'a> {
    out: OffsetsView<'a>,
    inn: OffsetsView<'a>,
}

impl DegreeView<'_> {
    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.out.len() - 1
    }

    /// Follow count of `u` (out-degree).
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out.at(u as usize + 1) - self.out.at(u as usize)
    }

    /// Follower count of `u` (in-degree).
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.inn.at(u as usize + 1) - self.inn.at(u as usize)
    }

    /// Total degree (in + out), the quantity undirected-style metrics use.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.out_degree(u) + self.in_degree(u)
    }

    /// Largest in-degree (the top celebrity's follower count); 0 for an
    /// empty graph.
    pub fn max_in_degree(&self) -> usize {
        (0..self.node_count() as NodeId)
            .map(|u| self.in_degree(u))
            .max()
            .unwrap_or(0)
    }
}

/// An immutable directed graph in CSR form.
///
/// Edge direction follows the "follow" relation: an edge `u → v` means
/// *u follows v*; `v` notifies its in-neighbors... strictly, notifications
/// flow from `v` to everyone with an edge into `v`.
///
/// Construction surface (the PR-8 redesign): [`DiGraph::from_edges`] for
/// explicit edge lists (counting-sort build), and `DiGraph::generate`
/// (in [`crate::generate`]) for the synthetic social-graph presets.
#[derive(Clone, Debug)]
pub struct DiGraph {
    out_offsets: Offsets,
    out_targets: Vec<NodeId>,
    in_offsets: Offsets,
    in_sources: Vec<NodeId>,
}

impl DiGraph {
    /// Internal assembly entry point — parts must already be consistent.
    pub(crate) fn from_parts(
        node_count: usize,
        out_offsets: Offsets,
        out_targets: Vec<NodeId>,
        in_offsets: Offsets,
        in_sources: Vec<NodeId>,
    ) -> DiGraph {
        debug_assert_eq!(out_offsets.entries(), node_count + 1);
        debug_assert_eq!(in_offsets.entries(), node_count + 1);
        debug_assert_eq!(out_targets.len(), in_sources.len());
        DiGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// Builds a graph over `node_count` nodes from an explicit directed
    /// edge list, in `O(V + E)` by counting sort: count per source,
    /// prefix-sum into offsets, scatter targets, then sort + dedup each
    /// (small) segment. Self-loops are dropped (a user cannot follow
    /// themself) and duplicate edges collapse to one.
    ///
    /// The result is independent of the input order of `edges` — see the
    /// property tests — which is the determinism contract that lets edge
    /// lists be produced by any pipeline shape.
    pub fn from_edges(node_count: usize, edges: &[(NodeId, NodeId)]) -> DiGraph {
        DiGraph::from_edges_with(node_count, edges, 1)
    }

    /// As [`DiGraph::from_edges`], sharding the phase-2 assembly across
    /// `workers` disjoint target-node ranges (DESIGN.md §12). The output
    /// is byte-identical for every `workers` value, with or without the
    /// `parallel` feature — property-tested in `tests/csr_parallel.rs`.
    pub fn from_edges_with(
        node_count: usize,
        edges: &[(NodeId, NodeId)],
        workers: usize,
    ) -> DiGraph {
        assert!(
            node_count <= u32::MAX as usize,
            "too many nodes for u32 ids"
        );
        let mut offsets = vec![0u64; node_count + 1];
        for &(u, v) in edges {
            assert!((u as usize) < node_count, "source out of range");
            assert!((v as usize) < node_count, "target out of range");
            if u != v {
                offsets[u as usize + 1] += 1;
            }
        }
        for i in 0..node_count {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u64> = offsets.clone();
        let mut targets = vec![0 as NodeId; *offsets.last().unwrap_or(&0) as usize];
        for &(u, v) in edges {
            if u != v {
                let c = &mut cursor[u as usize];
                targets[*c as usize] = v;
                *c += 1;
            }
        }
        drop(cursor);
        // Sort each segment, dedup in place, compact left.
        let mut write = 0usize;
        let mut deduped = Vec::with_capacity(node_count + 1);
        deduped.push(0u64);
        for u in 0..node_count {
            let (s, e) = (offsets[u] as usize, offsets[u + 1] as usize);
            targets[s..e].sort_unstable();
            let mut prev = None;
            for i in s..e {
                let v = targets[i];
                if prev != Some(v) {
                    targets[write] = v;
                    write += 1;
                    prev = Some(v);
                }
            }
            deduped.push(write as u64);
        }
        targets.truncate(write);
        let mut peak = PeakTracker::default();
        build::assemble(node_count, deduped, targets, workers, &mut peak)
    }

    /// Rewrites both offset arrays at `u64` width even when they would
    /// narrow to `u32`. Layout-experiment hook for the traversal
    /// microbenches (`benches/micro_adjacency.rs`): it quantifies what
    /// the width-adaptive narrowing actually buys on identical topology.
    /// Checksums and the neighbor-slice API are unaffected.
    pub fn with_wide_offsets(mut self) -> DiGraph {
        fn widen(o: Offsets) -> Offsets {
            match o {
                Offsets::U32(v) => Offsets::U64(v.iter().map(|&x| x as u64).collect()),
                wide => wide,
            }
        }
        self.out_offsets = widen(self.out_offsets);
        self.in_offsets = widen(self.in_offsets);
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out_offsets.entries() - 1
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Nodes `u` follows.
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.out_targets[self.out_offsets.at(u)..self.out_offsets.at(u + 1)]
    }

    /// Nodes following `u` (its followers).
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.in_sources[self.in_offsets.at(u)..self.in_offsets.at(u + 1)]
    }

    /// Follow count of `u` (out-degree).
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_neighbors(u).len()
    }

    /// Follower count of `u` (in-degree).
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_neighbors(u).len()
    }

    /// Total degree (in + out), the quantity undirected-style metrics use.
    pub fn degree(&self, u: NodeId) -> usize {
        self.out_degree(u) + self.in_degree(u)
    }

    /// Degree-only view over both offset arrays (no neighbor data).
    pub fn degrees(&self) -> DegreeView<'_> {
        DegreeView {
            out: self.out_offsets.view(),
            inn: self.in_offsets.view(),
        }
    }

    /// Raw out-direction layout: `(offsets, targets)`. Node `u`'s follow
    /// list is `targets[offsets.at(u)..offsets.at(u + 1)]`, sorted. This
    /// is the zero-cost path for checksums and serialization — no
    /// per-node `flat_map` iterator state.
    pub fn out_csr(&self) -> (OffsetsView<'_>, &[NodeId]) {
        (self.out_offsets.view(), &self.out_targets)
    }

    /// Raw in-direction layout: `(offsets, sources)`. Node `u`'s follower
    /// list is `sources[offsets.at(u)..offsets.at(u + 1)]`, sorted.
    pub fn in_csr(&self) -> (OffsetsView<'_>, &[NodeId]) {
        (self.in_offsets.view(), &self.in_sources)
    }

    /// Iterates all edges as `(source, target)` in CSR (sorted) order.
    /// Checksum/serialization paths should prefer [`DiGraph::out_csr`] —
    /// this adapter exists for call sites that genuinely want one tuple
    /// at a time.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        let (offsets, targets) = self.out_csr();
        (0..self.node_count() as NodeId).flat_map(move |u| {
            targets[offsets.at(u as usize)..offsets.at(u as usize + 1)]
                .iter()
                .map(move |&v| (u, v))
        })
    }

    /// True if the edge `u → v` exists (binary search; neighbor lists are
    /// sorted by construction).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Bytes of heap + inline storage held by the graph: both offset
    /// arrays at their stored width plus both adjacency arrays. This is
    /// the number replay benches must account for instead of footnoting
    /// the graph as untracked input.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.out_offsets.heap_bytes()
            + self.out_targets.capacity() * std::mem::size_of::<NodeId>()
            + self.in_offsets.heap_bytes()
            + self.in_sources.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Order-sensitive digest of the full adjacency layout (offsets and
    /// both directions, hashed node by node). Two graphs with equal
    /// checksums are byte-identical CSR layouts for all practical
    /// purposes; the regression suite pins generator outputs with this.
    pub fn adjacency_checksum(&self) -> u64 {
        let n = self.node_count();
        let (out_off, out_t) = self.out_csr();
        let (in_off, in_s) = self.in_csr();
        let mut acc = splitmix64(n as u64 ^ (self.edge_count() as u64).rotate_left(32));
        for u in 0..n {
            acc = splitmix64(acc ^ u as u64);
            for &v in &out_t[out_off.at(u)..out_off.at(u + 1)] {
                acc = splitmix64(acc.wrapping_add(v as u64 + 1));
            }
            for &s in &in_s[in_off.at(u)..in_off.at(u + 1)] {
                acc = splitmix64(acc ^ (s as u64).rotate_left(17));
            }
        }
        acc
    }

    /// Digest of the degree sequence alone (both directions) — coarser
    /// than [`DiGraph::adjacency_checksum`], pinned separately so a
    /// degree-preserving regression (rewiring bugs) is distinguishable
    /// from a degree-sequence regression (sampler bugs).
    pub fn degree_checksum(&self) -> u64 {
        let d = self.degrees();
        let mut acc = 0x5eedu64;
        for u in 0..self.node_count() as NodeId {
            acc = splitmix64(
                acc ^ (d.out_degree(u) as u64) ^ (d.in_degree(u) as u64).rotate_left(24),
            );
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> DiGraph {
        // 0→1, 1→2, 2→0 (cycle) and 3→0 (tail).
        DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 0)])
    }

    #[test]
    fn counts_are_correct() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn adjacency_is_correct_both_ways() {
        let g = triangle_plus_tail();
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(3), &[0]);
        assert_eq!(g.in_neighbors(0), &[2, 3]);
        assert_eq!(g.in_neighbors(3), &[] as &[NodeId]);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(0), 2);
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn degree_view_matches_slice_lengths() {
        let g = triangle_plus_tail();
        let d = g.degrees();
        assert_eq!(d.node_count(), 4);
        for u in 0..4 {
            assert_eq!(d.out_degree(u), g.out_degree(u));
            assert_eq!(d.in_degree(u), g.in_degree(u));
            assert_eq!(d.degree(u), g.degree(u));
        }
        assert_eq!(d.max_in_degree(), 2);
    }

    #[test]
    fn has_edge_works() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(3, 2));
    }

    #[test]
    fn duplicates_and_self_loops_are_dropped() {
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 1), (1, 1), (2, 0)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_degree(1), 0);
    }

    #[test]
    fn edges_iterator_yields_all_edges() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0), (3, 0)]);
    }

    #[test]
    fn raw_views_cover_the_same_layout() {
        let g = triangle_plus_tail();
        let (off, targets) = g.out_csr();
        assert_eq!(off.len(), 5);
        assert_eq!(off.at(4), g.edge_count());
        assert_eq!(off.entry_bytes(), 4);
        let mut rebuilt = Vec::new();
        for u in 0..g.node_count() {
            for &v in &targets[off.at(u)..off.at(u + 1)] {
                rebuilt.push((u as NodeId, v));
            }
        }
        assert_eq!(rebuilt, g.edges().collect::<Vec<_>>());
        let (in_off, in_s) = g.in_csr();
        assert_eq!(&in_s[in_off.at(0)..in_off.at(1)], &[2, 3]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = DiGraph::from_edges(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        let g2 = DiGraph::from_edges(5, &[]);
        assert_eq!(g2.node_count(), 5);
        assert_eq!(g2.out_neighbors(4), &[] as &[NodeId]);
    }

    #[test]
    fn out_neighbors_are_sorted() {
        let g = DiGraph::from_edges(5, &[(0, 4), (0, 2), (0, 1), (0, 3)]);
        assert_eq!(g.out_neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn offsets_narrow_to_u32_and_widen_past_u32() {
        // All realistic graphs narrow.
        let g = triangle_plus_tail();
        let (off, _) = g.out_csr();
        assert_eq!(off.entry_bytes(), 4);
        // The enum itself must widen exactly past u32::MAX.
        match Offsets::from_u64(vec![0, u32::MAX as u64]) {
            Offsets::U32(v) => assert_eq!(v, vec![0, u32::MAX]),
            Offsets::U64(_) => panic!("should have narrowed"),
        }
        match Offsets::from_u64(vec![0, u32::MAX as u64 + 1]) {
            Offsets::U64(v) => assert_eq!(v[1], u32::MAX as u64 + 1),
            Offsets::U32(_) => panic!("should have stayed wide"),
        }
    }

    #[test]
    fn resident_bytes_tracks_arrays() {
        let g = triangle_plus_tail();
        // 2 offset arrays × 5 u32 entries + 2 adjacency arrays × 4 u32.
        let floor = 2 * 5 * 4 + 2 * 4 * 4;
        assert!(g.resident_bytes() >= floor, "{}", g.resident_bytes());
        // u32 offsets: strictly smaller than the same layout at u64 width.
        let u64_layout = floor + 2 * 5 * 4;
        assert!(g.resident_bytes() < std::mem::size_of::<DiGraph>() + u64_layout + 1);
    }

    #[test]
    fn checksums_are_layout_sensitive() {
        let g1 = triangle_plus_tail();
        let g2 = DiGraph::from_edges(4, &[(3, 0), (2, 0), (1, 2), (0, 1)]);
        assert_eq!(g1.adjacency_checksum(), g2.adjacency_checksum());
        assert_eq!(g1.degree_checksum(), g2.degree_checksum());
        let g3 = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 1)]);
        assert_ne!(g1.adjacency_checksum(), g3.adjacency_checksum());
    }
}
