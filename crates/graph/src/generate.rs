//! Synthetic social-graph generators behind [`DiGraph::generate`].
//!
//! Three named presets mirror the three rows of Table 2. The structural
//! contrasts the paper highlights — Periscope resembling Twitter
//! (asymmetric one-to-many follows, negative assortativity) and not
//! Facebook (mutual friendships, positive assortativity, higher
//! clustering) — fall out of two mechanisms:
//!
//! 1. **Directed preferential attachment** ([`GraphKind::Follow`]):
//!    newcomers follow already-popular accounts, creating celebrity hubs
//!    whose followers are mostly low-degree — that is exactly degree
//!    *dis*assortativity.
//! 2. **Symmetric attachment + triadic closure + Xulvi-Brunet–Sokolov
//!    assortative rewiring** ([`GraphKind::Friendship`]):
//!    friends-of-friends edges raise clustering, and XBS double-edge swaps
//!    push degree correlation positive while preserving every node's
//!    degree.
//!
//! ## Two-phase build (DESIGN.md §12)
//!
//! The follow generator never materializes the preferential-attachment
//! urn. The classic urn holds one entry per node plus one per received
//! follow — at paper scale (12M users, 231M edges) that is another
//! edge-sized array rebuilt by `push` — but its layout is fully determined
//! by the per-node out-degree prefix sum: during node `n`'s turn the urn
//! is `[0]` followed, for each earlier node `m`, by `m`'s targets in
//! insertion order and then `m` itself. Phase 1 therefore streams RNG
//! decisions against that *implicit* urn (one `gen_range` over the same
//! length, one binary search over the prefix sum — same draw sequence,
//! same resulting node), emitting only the flat target array and the
//! prefix sum. Phase 2 (`build::assemble`) counting-sorts the
//! in-direction in O(V+E). Rewiring runs on a sorted-segment CSR scratch
//! (`build::CsrScratch`) instead of a `BTreeSet` edge mirror.
//!
//! Outputs are bit-identical to the retired urn/`BTreeSet` implementation
//! for every `(spec, seed)` pair — pinned by `tests/csr_regression.rs`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use livescope_sim::dist;
use livescope_telemetry::profile::Section;
use livescope_telemetry::Telemetry;

use crate::build::{self, CsrScratch, GraphBuildStats, PeakTracker};
use crate::digraph::{DiGraph, NodeId};

/// Parameters for the directed (follow) generator.
#[derive(Clone, Copy, Debug)]
pub struct FollowParams {
    /// Mean number of accounts a new user follows.
    pub mean_follows: f64,
    /// Fraction of follow targets chosen preferentially by in-degree
    /// (the rest are uniform). Higher values → heavier celebrity tail.
    pub preferential_bias: f64,
    /// Probability that a follow target is chosen as a followee of an
    /// existing followee (triadic closure): "I follow whom my friends
    /// follow". Lifts the clustering coefficient toward Table 2's values.
    pub triadic_closure: f64,
    /// Disassortative target-swap passes, as a multiple of the edge count.
    /// Pure preferential attachment develops a densely interlinked old-node
    /// core whose hub-to-hub edges push Pearson assortativity *positive*;
    /// real follow graphs are negative (Table 2: Periscope −0.057, Twitter
    /// −0.19), and this degree-preserving pass restores that.
    pub disassortative_passes: f64,
}

/// Parameters for the symmetric (friendship) generator.
#[derive(Clone, Copy, Debug)]
pub struct FriendshipParams {
    /// Mutual friendships each newcomer creates.
    pub mean_friends: f64,
    /// Probability a new friendship closes a triangle (friend-of-friend)
    /// instead of attaching preferentially.
    pub triadic_closure: f64,
    /// XBS assortative-rewiring passes, as a multiple of the edge count.
    pub rewire_passes: f64,
    /// Extra triangle-closing edges added *after* rewiring, as a fraction
    /// of the edge count. Rewiring breaks triangles while it sorts degrees;
    /// this pass restores Facebook-grade clustering without disturbing the
    /// assortative degree pairing much (it connects two neighbors of one
    /// node, whose degrees are already correlated).
    pub closure_extra: f64,
    /// Community size (0 disables). Real friendship graphs are community-
    /// structured — schools, workplaces — and that, more than wedge
    /// closing, is what keeps clustering high at Facebook-scale degrees.
    pub community_size: usize,
    /// Probability a new friendship stays inside the node's community.
    pub community_bias: f64,
}

/// Which generator a [`GraphSpec`] runs.
#[derive(Clone, Copy, Debug)]
pub enum GraphKind {
    /// Directed preferential-attachment follow graph (Periscope, Twitter).
    Follow(FollowParams),
    /// Symmetric friendship graph (Facebook).
    Friendship(FriendshipParams),
}

/// One synthetic-graph recipe: node count plus generator parameters.
///
/// The presets carry each Table 2 row's calibrated parameters together
/// with a default population, and `with_nodes` rescales:
///
/// ```
/// use livescope_graph::{DiGraph, GraphSpec};
/// let g = DiGraph::generate(&GraphSpec::twitter().with_nodes(5_000), 42);
/// assert_eq!(g.node_count(), 5_000);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct GraphSpec {
    /// Number of users.
    pub nodes: usize,
    /// Generator family and its parameters.
    pub kind: GraphKind,
}

impl GraphSpec {
    /// Periscope-like preset: denser than Twitter (Table 2 shows avg
    /// degree 38.6 vs Twitter's 14.0), strongly preferential, mildly
    /// disassortative (−0.057).
    pub fn periscope() -> GraphSpec {
        GraphSpec {
            nodes: 20_000,
            kind: GraphKind::Follow(FollowParams {
                mean_follows: 19.0, // total avg degree ≈ 2×19 ≈ 38.6
                preferential_bias: 0.75,
                triadic_closure: 0.28,
                disassortative_passes: 0.6,
            }),
        }
    }

    /// Twitter-like preset: sparser, strongly disassortative (−0.19).
    pub fn twitter() -> GraphSpec {
        GraphSpec {
            nodes: 20_000,
            kind: GraphKind::Follow(FollowParams {
                mean_follows: 7.0,
                preferential_bias: 0.85,
                triadic_closure: 0.50,
                disassortative_passes: 3.0,
            }),
        }
    }

    /// Facebook-like preset (Table 2 row 2: high clustering, positive
    /// assortativity, higher average degree than Twitter).
    pub fn facebook() -> GraphSpec {
        GraphSpec {
            nodes: 10_000,
            kind: GraphKind::Friendship(FriendshipParams {
                mean_friends: 25.0,
                triadic_closure: 0.5,
                rewire_passes: 0.1,
                closure_extra: 0.35,
                community_size: 110,
                community_bias: 0.85,
            }),
        }
    }

    /// Same recipe over a different population.
    pub fn with_nodes(mut self, nodes: usize) -> GraphSpec {
        self.nodes = nodes;
        self
    }
}

/// The three build-phase profile sections
/// (`handler.graph.{decide,rewire,assemble}_ns`). Zero-sized no-ops
/// without the `profile` feature; with it, one sample per build phase
/// lands on the attached telemetry handle so `profile_top5` shows where
/// a build spends its wall clock.
#[derive(Clone, Debug, Default)]
pub struct BuildProfile {
    pub(crate) decide: Section,
    pub(crate) rewire: Section,
    pub(crate) assemble: Section,
}

impl BuildProfile {
    /// Registers the three section histograms on `telemetry`.
    pub fn new(telemetry: &Telemetry) -> BuildProfile {
        BuildProfile {
            decide: Section::new(telemetry, "graph", "decide"),
            rewire: Section::new(telemetry, "graph", "rewire"),
            assemble: Section::new(telemetry, "graph", "assemble"),
        }
    }
}

/// Execution knobs for [`DiGraph::generate_with`]. None of them change
/// the emitted graph — `workers` only shards phase 2's counting-sort
/// passes over disjoint target ranges (byte-identical for every value,
/// DESIGN.md §12), and `profile` sections are inert unless the `profile`
/// feature is on.
#[derive(Clone, Debug)]
pub struct BuildOptions {
    /// Assembly worker shards (≥ 1; clamped to the node count).
    pub workers: usize,
    /// Build-phase timing sections (default: detached no-ops).
    pub profile: BuildProfile,
}

impl Default for BuildOptions {
    fn default() -> BuildOptions {
        BuildOptions {
            workers: 1,
            profile: BuildProfile::default(),
        }
    }
}

impl BuildOptions {
    /// Sequential assembly, no profiling.
    pub fn new() -> BuildOptions {
        BuildOptions::default()
    }

    /// Shards phase-2 assembly across `workers` disjoint target ranges.
    pub fn with_workers(mut self, workers: usize) -> BuildOptions {
        self.workers = workers.max(1);
        self
    }

    /// Attaches build-phase profile sections.
    pub fn with_profile(mut self, profile: BuildProfile) -> BuildOptions {
        self.profile = profile;
        self
    }
}

impl DiGraph {
    /// Generates a synthetic social graph from `spec`, deterministically
    /// in `seed`.
    pub fn generate(spec: &GraphSpec, seed: u64) -> DiGraph {
        DiGraph::generate_with_stats(spec, seed).0
    }

    /// As [`DiGraph::generate`], also returning build statistics (edge
    /// totals, deterministic peak build-buffer bytes, swaps applied) for
    /// bench accounting.
    pub fn generate_with_stats(spec: &GraphSpec, seed: u64) -> (DiGraph, GraphBuildStats) {
        DiGraph::generate_with(spec, seed, &BuildOptions::default())
    }

    /// As [`DiGraph::generate_with_stats`], with explicit execution
    /// options (assembly worker count, build-phase profiling). The graph
    /// and every deterministic stat are identical for all options — only
    /// wall time and the `workers` stat field vary.
    pub fn generate_with(
        spec: &GraphSpec,
        seed: u64,
        options: &BuildOptions,
    ) -> (DiGraph, GraphBuildStats) {
        match spec.kind {
            GraphKind::Follow(ref p) => build_follow(spec.nodes, p, seed, options),
            GraphKind::Friendship(ref p) => build_friendship(spec.nodes, p, seed, options),
        }
    }
}

/// How many urn entries node `m` contributes plus everything before it:
/// during node `n`'s turn the implicit urn is `[0]` ++ for each `m < n`
/// (targets of `m`, then `m`), so its length is `estart[n] + n` where
/// `estart[m]` is the out-edge count of nodes below `m`.
#[inline]
fn urn_pick(idx: usize, node: NodeId, estart: &[u64], targets: &[NodeId]) -> NodeId {
    if idx == 0 {
        return 0;
    }
    let key = (idx - 1) as u64;
    // Smallest m in [1, node) whose segment end (estart[m+1] + m) exceeds
    // key. Always exists: at m = node-1 the segment end is the urn length
    // minus one, which is > key because key ≤ urn_len - 2. Branchless
    // halving (conditional-move `base` bump instead of a taken/not-taken
    // branch) — this search runs once per preferential draw, ~E times per
    // build, on a cold prefix-sum array; the mispredicted branch was the
    // single hottest instruction in the phase-1 profile.
    let mut base = 1usize;
    let mut len = node as usize - 1;
    while len > 1 {
        let half = len / 2;
        let probe = base + half - 1;
        base += usize::from(estart[probe + 1] + probe as u64 <= key) * half;
        len -= half;
    }
    let m = base;
    let seg_start = estart[m] + (m - 1) as u64;
    let off = key - seg_start;
    let out = estart[m + 1] - estart[m];
    if off < out {
        targets[(estart[m] + off) as usize]
    } else {
        m as NodeId
    }
}

/// Directed preferential-attachment build (phase 1 streams the degree
/// sequence + endpoints, phase 2 assembles CSR). RNG-draw-for-draw
/// compatible with the retired urn implementation.
fn build_follow(
    nodes: usize,
    p: &FollowParams,
    seed: u64,
    options: &BuildOptions,
) -> (DiGraph, GraphBuildStats) {
    assert!(nodes >= 2, "need at least two users");
    assert!(
        (0.0..=1.0).contains(&p.preferential_bias),
        "preferential_bias must be a probability"
    );
    assert!(
        (0.0..=1.0).contains(&p.triadic_closure),
        "triadic_closure must be a probability"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut peak = PeakTracker::default();
    let decide_stamp = options.profile.decide.begin();

    // Phase 1: stream RNG decisions into a source-grouped flat target
    // array. `estart[m]` = out-edges of nodes < m (so node m's targets sit
    // at `targets[estart[m]..estart[m+1]]`, insertion-ordered for now —
    // triadic-closure draws index into that order).
    let mut estart: Vec<u64> = vec![0, 0];
    let mut targets: Vec<NodeId> = Vec::new();
    let mut chosen: Vec<NodeId> = Vec::new();
    // Sorted mirror of `chosen`, reused across nodes: dedup checks are a
    // binary search instead of a linear scan of the insertion-order list
    // (which rewinds the whole list once per accepted edge — quadratic in
    // the per-node follow count, and Periscope means ~19 follows).
    let mut chosen_sorted: Vec<NodeId> = Vec::new();
    for node in 1..nodes as NodeId {
        let follows = dist::geometric(&mut rng, p.mean_follows).min(node as u64) as usize;
        chosen.clear();
        chosen_sorted.clear();
        // Bounded retries: duplicates are common when `node` is small.
        let mut attempts = 0;
        while chosen.len() < follows && attempts < follows * 20 {
            attempts += 1;
            // Triadic closure first: follow a followee of someone I
            // already follow ("friend-of-friend"), when I have followees
            // with followees of their own.
            let closed = if !chosen.is_empty() && rng.gen_bool(p.triadic_closure) {
                let via = chosen[rng.gen_range(0..chosen.len())];
                let theirs =
                    &targets[estart[via as usize] as usize..estart[via as usize + 1] as usize];
                if theirs.is_empty() {
                    None
                } else {
                    Some(theirs[rng.gen_range(0..theirs.len())])
                }
            } else {
                None
            };
            let target = closed.unwrap_or_else(|| {
                if rng.gen_bool(p.preferential_bias) {
                    let urn_len = estart[node as usize] as usize + node as usize;
                    urn_pick(rng.gen_range(0..urn_len), node, &estart, &targets)
                } else {
                    rng.gen_range(0..node)
                }
            });
            if target != node && sorted_insert(&mut chosen_sorted, target) {
                chosen.push(target);
            }
        }
        targets.extend_from_slice(&chosen);
        estart.push(estart[node as usize] + chosen.len() as u64);
        if node % 4096 == 0 {
            peak.observe(
                estart.capacity() * 8
                    + (targets.capacity() + chosen.capacity() + chosen_sorted.capacity()) * 4,
            );
        }
    }
    drop(chosen);
    drop(chosen_sorted);
    let edge_total = targets.len();

    // Segment sort so the flat array matches CSR (and rewiring's edge
    // indexing, which walks edges in CSR order).
    for m in 0..nodes {
        targets[estart[m] as usize..estart[m + 1] as usize].sort_unstable();
    }
    options.profile.decide.end(decide_stamp);

    let rewire_stamp = options.profile.rewire.begin();
    let swaps = (edge_total as f64 * p.disassortative_passes) as usize;
    let mut swaps_applied = 0u64;
    let (out_offsets, out_targets) = if swaps == 0 || edge_total < 2 {
        (estart, targets)
    } else {
        // Interim total degrees (out + in) drive the swap objective.
        let mut degrees: Vec<u64> = vec![0; nodes];
        for m in 0..nodes {
            degrees[m] += estart[m + 1] - estart[m];
        }
        for &v in &targets {
            degrees[v as usize] += 1;
        }
        // Positional target array: `pos[i]` is the current target of flat
        // edge slot i (slot order is the RNG's edge-index space and never
        // moves); the scratch mirrors the same edges with sorted segments
        // for O(log d) membership.
        let mut pos = targets.clone();
        let mut scratch = CsrScratch::new(estart, targets);
        peak.observe(scratch.heap_bytes() + pos.capacity() * 4 + degrees.capacity() * 8);
        for _ in 0..swaps {
            let i = rng.gen_range(0..edge_total);
            let j = rng.gen_range(0..edge_total);
            if i == j {
                continue;
            }
            let (a, b) = (scratch.source_of(i), pos[i]);
            let (c, d) = (scratch.source_of(j), pos[j]);
            if a == d || c == b {
                continue; // swap would create a self-loop
            }
            let current = degrees[a as usize] * degrees[b as usize]
                + degrees[c as usize] * degrees[d as usize];
            let swapped = degrees[a as usize] * degrees[d as usize]
                + degrees[c as usize] * degrees[b as usize];
            if swapped >= current {
                continue; // not disassortative
            }
            if scratch.contains(a, d) || scratch.contains(c, b) {
                continue;
            }
            scratch.replace(a, b, d);
            scratch.replace(c, d, b);
            pos[i] = d;
            pos[j] = b;
            swaps_applied += 1;
        }
        scratch.into_flat()
    };
    options.profile.rewire.end(rewire_stamp);

    let workers = options.workers.max(1);
    let assemble_stamp = options.profile.assemble.begin();
    let g = build::assemble(nodes, out_offsets, out_targets, workers, &mut peak);
    options.profile.assemble.end(assemble_stamp);
    let stats = GraphBuildStats {
        nodes,
        edges: g.edge_count(),
        peak_bytes: peak.peak(),
        swaps_applied,
        workers,
    };
    (g, stats)
}

/// Inserts `v` into a sorted list; false if already present.
fn sorted_insert(list: &mut Vec<NodeId>, v: NodeId) -> bool {
    match list.binary_search(&v) {
        Err(i) => {
            list.insert(i, v);
            true
        }
        Ok(_) => false,
    }
}

/// Removes `v` from a sorted list (must be present).
fn sorted_remove(list: &mut Vec<NodeId>, v: NodeId) {
    let i = list
        .binary_search(&v)
        .expect("sorted_remove: edge must be present");
    list.remove(i);
}

/// Symmetric friendship build. The explicit urn survives here — it grows
/// *mid-loop* (every accepted friendship pushes both endpoints before the
/// next draw) so no closed-form prefix mapping applies, and at friendship
/// scale (10⁴ nodes, not 10⁷) it is cheap. What the redesign removes is
/// the `BTreeSet` edge mirror: membership and updates run on per-node
/// sorted neighbor lists instead.
fn build_friendship(
    nodes: usize,
    p: &FriendshipParams,
    seed: u64,
    options: &BuildOptions,
) -> (DiGraph, GraphBuildStats) {
    assert!(nodes >= 3, "need at least three users");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut peak = PeakTracker::default();
    let decide_stamp = options.profile.decide.begin();
    // Undirected edges as ordered pairs (min, max), in acceptance order —
    // rewiring's RNG indexes into this order.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    // Insertion-order adjacency: triadic-closure draws index into it.
    let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); nodes];
    // Sorted adjacency: the membership structure replacing the edge set.
    let mut sorted_adj: Vec<Vec<NodeId>> = vec![Vec::new(); nodes];
    let mut urn: Vec<NodeId> = vec![0, 1];
    let push_edge = |u: NodeId,
                     v: NodeId,
                     edges: &mut Vec<(NodeId, NodeId)>,
                     adjacency: &mut [Vec<NodeId>],
                     sorted_adj: &mut [Vec<NodeId>],
                     urn: &mut Vec<NodeId>|
     -> bool {
        if u == v || !sorted_insert(&mut sorted_adj[u as usize], v) {
            return false;
        }
        sorted_insert(&mut sorted_adj[v as usize], u);
        edges.push((u.min(v), u.max(v)));
        adjacency[u as usize].push(v);
        adjacency[v as usize].push(u);
        urn.push(u);
        urn.push(v);
        true
    };
    // Seed friendship between the first two users.
    push_edge(0, 1, &mut edges, &mut adjacency, &mut sorted_adj, &mut urn);
    for node in 2..nodes as NodeId {
        let friends = dist::geometric(&mut rng, p.mean_friends).min(node as u64) as usize;
        let mut made = 0;
        let mut attempts = 0;
        while made < friends && attempts < friends * 20 {
            attempts += 1;
            let target = if made > 0 && rng.gen_bool(p.triadic_closure) {
                // Friend of an existing friend: pick one of my neighbors,
                // then one of theirs.
                let my = &adjacency[node as usize];
                let via = my[rng.gen_range(0..my.len())];
                let theirs = &adjacency[via as usize];
                theirs[rng.gen_range(0..theirs.len())]
            } else if p.community_size > 0 && rng.gen_bool(p.community_bias) {
                // A peer from my own community block.
                let community = node as usize / p.community_size;
                let lo = (community * p.community_size) as NodeId;
                let hi = node.min(lo + p.community_size as NodeId);
                if hi > lo {
                    rng.gen_range(lo..hi)
                } else {
                    urn[rng.gen_range(0..urn.len())]
                }
            } else {
                urn[rng.gen_range(0..urn.len())]
            };
            if target < node
                && push_edge(
                    node,
                    target,
                    &mut edges,
                    &mut adjacency,
                    &mut sorted_adj,
                    &mut urn,
                )
            {
                made += 1;
            }
        }
        urn.push(node);
        if node % 1024 == 0 {
            peak.observe(
                urn.capacity() * 4
                    + edges.capacity() * 8
                    + adj_heap_bytes(&adjacency)
                    + adj_heap_bytes(&sorted_adj),
            );
        }
    }
    options.profile.decide.end(decide_stamp);
    let rewire_stamp = options.profile.rewire.begin();
    let degrees: Vec<usize> = adjacency.iter().map(Vec::len).collect();
    let swaps = (edges.len() as f64 * p.rewire_passes) as usize;
    let swaps_applied = rewire_assortative(&mut edges, &mut sorted_adj, &degrees, swaps, &mut rng);
    // Post-rewiring triadic closure: rewiring sorts degrees but shreds
    // triangles; close wedges on the rewired graph to restore clustering.
    let extra = (edges.len() as f64 * p.closure_extra) as usize;
    if extra > 0 {
        // Static snapshot adjacency (not updated by the additions below —
        // the wedge draws index into the rewired graph only).
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); nodes];
        for &(u, v) in &edges {
            adjacency[u as usize].push(v);
            adjacency[v as usize].push(u);
        }
        let mut added = 0;
        let mut attempts = 0;
        while added < extra && attempts < extra * 20 {
            attempts += 1;
            let center = rng.gen_range(0..nodes);
            let neigh = &adjacency[center];
            if neigh.len() < 2 {
                continue;
            }
            let x = neigh[rng.gen_range(0..neigh.len())];
            let y = neigh[rng.gen_range(0..neigh.len())];
            if x == y || !sorted_insert(&mut sorted_adj[x as usize], y) {
                continue;
            }
            sorted_insert(&mut sorted_adj[y as usize], x);
            edges.push((x.min(y), x.max(y)));
            added += 1;
        }
        peak.observe(
            urn.capacity() * 4
                + edges.capacity() * 8
                + adj_heap_bytes(&adjacency)
                + adj_heap_bytes(&sorted_adj),
        );
    }
    options.profile.rewire.end(rewire_stamp);
    // Final assembly: `sorted_adj` already *is* the symmetric out-CSR,
    // segment-sorted; flatten and counting-sort the in-direction.
    let workers = options.workers.max(1);
    let assemble_stamp = options.profile.assemble.begin();
    let mut offsets: Vec<u64> = Vec::with_capacity(nodes + 1);
    offsets.push(0);
    let mut total = 0u64;
    for list in &sorted_adj {
        total += list.len() as u64;
        offsets.push(total);
    }
    let mut flat: Vec<NodeId> = Vec::with_capacity(total as usize);
    for list in &sorted_adj {
        flat.extend_from_slice(list);
    }
    let g = build::assemble(nodes, offsets, flat, workers, &mut peak);
    options.profile.assemble.end(assemble_stamp);
    let stats = GraphBuildStats {
        nodes,
        edges: g.edge_count(),
        peak_bytes: peak.peak(),
        swaps_applied,
        workers,
    };
    (g, stats)
}

/// Heap bytes across a Vec-of-Vec adjacency.
fn adj_heap_bytes(adj: &[Vec<NodeId>]) -> usize {
    std::mem::size_of_val(adj) + adj.iter().map(|v| v.capacity() * 4).sum::<usize>()
}

/// Xulvi-Brunet–Sokolov assortative rewiring on an undirected edge list.
///
/// Repeatedly takes two random edges, orders their four endpoints by
/// degree, and reconnects highest↔second-highest and third↔fourth. Degree
/// sequence is invariant; degree-degree correlation rises monotonically in
/// expectation. Swaps that would create self-loops or duplicate edges are
/// skipped. Membership runs on the sorted per-node adjacency lists, which
/// are kept in sync with `edges`. Returns the number of swaps applied.
fn rewire_assortative(
    edges: &mut [(NodeId, NodeId)],
    sorted_adj: &mut [Vec<NodeId>],
    degrees: &[usize],
    swaps: usize,
    rng: &mut SmallRng,
) -> u64 {
    if edges.len() < 2 {
        return 0;
    }
    let mut applied = 0u64;
    for _ in 0..swaps {
        let i = rng.gen_range(0..edges.len());
        let j = rng.gen_range(0..edges.len());
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        let mut nodes = [a, b, c, d];
        // Four distinct endpoints required.
        if nodes[0] == nodes[2]
            || nodes[0] == nodes[3]
            || nodes[1] == nodes[2]
            || nodes[1] == nodes[3]
        {
            continue;
        }
        // Stable sort: ties keep [a, b, c, d] order, which the retired
        // implementation relied on — do not switch to sort_unstable.
        nodes.sort_by_key(|&n| std::cmp::Reverse(degrees[n as usize]));
        let e1 = (nodes[0].min(nodes[1]), nodes[0].max(nodes[1]));
        let e2 = (nodes[2].min(nodes[3]), nodes[2].max(nodes[3]));
        if e1 == edges[i] && e2 == edges[j] || e1 == edges[j] && e2 == edges[i] {
            continue; // already assortative
        }
        if sorted_adj[e1.0 as usize].binary_search(&e1.1).is_ok()
            || sorted_adj[e2.0 as usize].binary_search(&e2.1).is_ok()
        {
            continue;
        }
        for (u, v) in [edges[i], edges[j]] {
            sorted_remove(&mut sorted_adj[u as usize], v);
            sorted_remove(&mut sorted_adj[v as usize], u);
        }
        for (u, v) in [e1, e2] {
            sorted_insert(&mut sorted_adj[u as usize], v);
            sorted_insert(&mut sorted_adj[v as usize], u);
        }
        edges[i] = e1;
        edges[j] = e2;
        applied += 1;
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;

    fn follow_spec(nodes: usize, p: FollowParams) -> GraphSpec {
        GraphSpec {
            nodes,
            kind: GraphKind::Follow(p),
        }
    }

    fn friendship_spec(nodes: usize, p: FriendshipParams) -> GraphSpec {
        GraphSpec {
            nodes,
            kind: GraphKind::Friendship(p),
        }
    }

    #[test]
    fn follow_graph_has_expected_scale() {
        let spec = follow_spec(
            2_000,
            FollowParams {
                mean_follows: 10.0,
                preferential_bias: 0.75,
                triadic_closure: 0.2,
                disassortative_passes: 1.0,
            },
        );
        let g = DiGraph::generate(&spec, 1);
        assert_eq!(g.node_count(), 2_000);
        let avg_out = g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            (6.0..14.0).contains(&avg_out),
            "avg out-degree {avg_out} far from mean_follows"
        );
    }

    #[test]
    fn follow_graph_is_deterministic_per_seed() {
        let spec = GraphSpec::twitter().with_nodes(500);
        let g1 = DiGraph::generate(&spec, 7);
        let g2 = DiGraph::generate(&spec, 7);
        let g3 = DiGraph::generate(&spec, 8);
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        assert_ne!(
            g1.edges().collect::<Vec<_>>(),
            g3.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn follow_graph_grows_celebrity_hubs() {
        let spec = follow_spec(
            3_000,
            FollowParams {
                mean_follows: 8.0,
                preferential_bias: 0.9,
                triadic_closure: 0.2,
                disassortative_passes: 1.0,
            },
        );
        let g = DiGraph::generate(&spec, 3);
        let max_in = g.degrees().max_in_degree();
        let avg_in = g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            max_in as f64 > avg_in * 10.0,
            "no hub formed: max {max_in}, avg {avg_in}"
        );
    }

    #[test]
    fn friendship_graph_is_symmetric() {
        let spec = friendship_spec(
            800,
            FriendshipParams {
                mean_friends: 10.0,
                triadic_closure: 0.5,
                rewire_passes: 0.5,
                community_size: 0,
                community_bias: 0.0,
                closure_extra: 0.4,
            },
        );
        let g = DiGraph::generate(&spec, 2);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u), "missing reciprocal edge {v}->{u}");
        }
    }

    #[test]
    fn rewiring_preserves_degree_sequence() {
        let params = FriendshipParams {
            mean_friends: 8.0,
            triadic_closure: 0.4,
            rewire_passes: 0.0,
            community_size: 0,
            community_bias: 0.0,
            closure_extra: 0.0,
        };
        let before = DiGraph::generate(&friendship_spec(500, params), 9);
        let after = DiGraph::generate(
            &friendship_spec(
                500,
                FriendshipParams {
                    rewire_passes: 2.0,
                    ..params
                },
            ),
            9,
        );
        let mut deg_before: Vec<usize> = (0..before.node_count() as NodeId)
            .map(|u| before.degree(u))
            .collect();
        let mut deg_after: Vec<usize> = (0..after.node_count() as NodeId)
            .map(|u| after.degree(u))
            .collect();
        deg_before.sort_unstable();
        deg_after.sort_unstable();
        assert_eq!(deg_before, deg_after);
        assert_eq!(before.edge_count(), after.edge_count());
    }

    #[test]
    fn stats_are_consistent_with_the_graph() {
        let spec = GraphSpec::twitter().with_nodes(500);
        let (g, stats) = DiGraph::generate_with_stats(&spec, 7);
        assert_eq!(stats.nodes, g.node_count());
        assert_eq!(stats.edges, g.edge_count());
        assert!(stats.peak_bytes >= g.resident_bytes() - std::mem::size_of::<DiGraph>());
        assert!(stats.swaps_applied > 0);
        // peak_bytes is part of the deterministic contract — same spec and
        // seed must reproduce it exactly.
        let (_, stats2) = DiGraph::generate_with_stats(&spec, 7);
        assert_eq!(stats.peak_bytes, stats2.peak_bytes);
        assert_eq!(stats.swaps_applied, stats2.swaps_applied);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_bias_panics() {
        DiGraph::generate(
            &follow_spec(
                10,
                FollowParams {
                    mean_follows: 2.0,
                    preferential_bias: 1.5,
                    triadic_closure: 0.2,
                    disassortative_passes: 1.0,
                },
            ),
            0,
        );
    }
}
