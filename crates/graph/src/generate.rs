//! Synthetic social-graph generators.
//!
//! Three named presets mirror the three rows of Table 2. The structural
//! contrasts the paper highlights — Periscope resembling Twitter
//! (asymmetric one-to-many follows, negative assortativity) and not
//! Facebook (mutual friendships, positive assortativity, higher
//! clustering) — fall out of two mechanisms:
//!
//! 1. **Directed preferential attachment** ([`follow_graph`]): newcomers
//!    follow already-popular accounts, creating celebrity hubs whose
//!    followers are mostly low-degree — that is exactly degree
//!    *dis*assortativity.
//! 2. **Symmetric attachment + triadic closure + Xulvi-Brunet–Sokolov
//!    assortative rewiring** ([`friendship_graph`]): friends-of-friends
//!    edges raise clustering, and XBS double-edge swaps push degree
//!    correlation positive while preserving every node's degree.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

use livescope_sim::dist;

use crate::digraph::{DiGraph, GraphBuilder, NodeId};

/// Parameters for the directed follow-graph generator.
#[derive(Clone, Copy, Debug)]
pub struct FollowGraphConfig {
    /// Number of users.
    pub nodes: usize,
    /// Mean number of accounts a new user follows.
    pub mean_follows: f64,
    /// Fraction of follow targets chosen preferentially by in-degree
    /// (the rest are uniform). Higher values → heavier celebrity tail.
    pub preferential_bias: f64,
    /// Probability that a follow target is chosen as a followee of an
    /// existing followee (triadic closure): "I follow whom my friends
    /// follow". Lifts the clustering coefficient toward Table 2's values.
    pub triadic_closure: f64,
    /// Disassortative target-swap passes, as a multiple of the edge count.
    /// Pure preferential attachment develops a densely interlinked old-node
    /// core whose hub-to-hub edges push Pearson assortativity *positive*;
    /// real follow graphs are negative (Table 2: Periscope −0.057, Twitter
    /// −0.19), and this degree-preserving pass restores that.
    pub disassortative_passes: f64,
}

impl FollowGraphConfig {
    /// Periscope-like preset: denser than Twitter (Table 2 shows avg
    /// degree 38.6 vs Twitter's 14.0), strongly preferential, mildly
    /// disassortative (−0.057).
    pub fn periscope() -> Self {
        FollowGraphConfig {
            nodes: 20_000,
            mean_follows: 19.0, // total avg degree ≈ 2×19 ≈ 38.6
            preferential_bias: 0.75,
            triadic_closure: 0.28,
            disassortative_passes: 0.6,
        }
    }

    /// Twitter-like preset: sparser, strongly disassortative (−0.19).
    pub fn twitter() -> Self {
        FollowGraphConfig {
            nodes: 20_000,
            mean_follows: 7.0,
            preferential_bias: 0.85,
            triadic_closure: 0.50,
            disassortative_passes: 3.0,
        }
    }
}

/// Generates a directed follow graph by preferential attachment.
///
/// Node `i` joins at step `i` and follows `~Geometric(mean_follows)`
/// existing accounts; each target is drawn from the "repeated nodes"
/// urn (one entry per node + one per received follow) with probability
/// `preferential_bias`, else uniformly.
pub fn follow_graph(config: &FollowGraphConfig, seed: u64) -> DiGraph {
    assert!(config.nodes >= 2, "need at least two users");
    assert!(
        (0.0..=1.0).contains(&config.preferential_bias),
        "preferential_bias must be a probability"
    );
    assert!(
        (0.0..=1.0).contains(&config.triadic_closure),
        "triadic_closure must be a probability"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(config.nodes);
    // Out-adjacency mirror for the triadic-closure lookups.
    let mut out_adj: Vec<Vec<NodeId>> = vec![Vec::new(); config.nodes];
    // The urn contains each node once per received follow plus once for
    // existing; sampling from it is sampling ∝ (in_degree + 1).
    let mut urn: Vec<NodeId> = vec![0];
    for node in 1..config.nodes as NodeId {
        let follows = dist::geometric(&mut rng, config.mean_follows).min(node as u64) as usize;
        // Ordered Vec, not a HashSet: urn pushes must happen in a
        // deterministic order or the whole generator loses reproducibility.
        let mut chosen: Vec<NodeId> = Vec::with_capacity(follows);
        // Bounded retries: duplicates are common when `node` is small.
        let mut attempts = 0;
        while chosen.len() < follows && attempts < follows * 20 {
            attempts += 1;
            // Triadic closure first: follow a followee of someone I
            // already follow ("friend-of-friend"), when I have followees
            // with followees of their own.
            let closed = if !chosen.is_empty() && rng.gen_bool(config.triadic_closure) {
                let via = chosen[rng.gen_range(0..chosen.len())];
                let theirs = &out_adj[via as usize];
                if theirs.is_empty() {
                    None
                } else {
                    Some(theirs[rng.gen_range(0..theirs.len())])
                }
            } else {
                None
            };
            let target = closed.unwrap_or_else(|| {
                if rng.gen_bool(config.preferential_bias) {
                    urn[rng.gen_range(0..urn.len())]
                } else {
                    rng.gen_range(0..node)
                }
            });
            if target != node && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &target in &chosen {
            builder.add_edge(node, target);
            urn.push(target);
        }
        out_adj[node as usize] = chosen;
        urn.push(node);
    }
    let interim = builder.build();
    let swaps = (interim.edge_count() as f64 * config.disassortative_passes) as usize;
    if swaps == 0 {
        return interim;
    }
    let degrees: Vec<usize> = (0..interim.node_count() as NodeId)
        .map(|u| interim.degree(u))
        .collect();
    let mut edges: Vec<(NodeId, NodeId)> = interim.edges().collect();
    let mut edge_set: BTreeSet<(NodeId, NodeId)> = edges.iter().copied().collect();
    rewire_targets_disassortative(&mut edges, &mut edge_set, &degrees, swaps, &mut rng);
    let mut rebuilt = GraphBuilder::new(config.nodes);
    for (u, v) in edges {
        rebuilt.add_edge(u, v);
    }
    rebuilt.build()
}

/// Disassortative target-swap rewiring for **directed** edge lists.
///
/// Takes two edges `(a→b)` and `(c→d)` and swaps their targets to
/// `(a→d)`, `(c→b)` when that lowers the degree-degree product sum (the
/// numerator of Pearson assortativity). Out-degrees of `a`,`c` and
/// in-degrees of `b`,`d` are all preserved, so the degree sequence — and
/// every degree-distribution figure — is untouched.
pub fn rewire_targets_disassortative(
    edges: &mut [(NodeId, NodeId)],
    edge_set: &mut BTreeSet<(NodeId, NodeId)>,
    degrees: &[usize],
    swaps: usize,
    rng: &mut SmallRng,
) {
    if edges.len() < 2 {
        return;
    }
    for _ in 0..swaps {
        let i = rng.gen_range(0..edges.len());
        let j = rng.gen_range(0..edges.len());
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        if a == d || c == b {
            continue; // swap would create a self-loop
        }
        let current = (degrees[a as usize] * degrees[b as usize]
            + degrees[c as usize] * degrees[d as usize]) as u64;
        let swapped = (degrees[a as usize] * degrees[d as usize]
            + degrees[c as usize] * degrees[b as usize]) as u64;
        if swapped >= current {
            continue; // not disassortative
        }
        let e1 = (a, d);
        let e2 = (c, b);
        if edge_set.contains(&e1) || edge_set.contains(&e2) {
            continue;
        }
        edge_set.remove(&edges[i]);
        edge_set.remove(&edges[j]);
        edge_set.insert(e1);
        edge_set.insert(e2);
        edges[i] = e1;
        edges[j] = e2;
    }
}

/// Parameters for the symmetric friendship-graph generator.
#[derive(Clone, Copy, Debug)]
pub struct FriendshipGraphConfig {
    /// Number of users.
    pub nodes: usize,
    /// Mutual friendships each newcomer creates.
    pub mean_friends: f64,
    /// Probability a new friendship closes a triangle (friend-of-friend)
    /// instead of attaching preferentially.
    pub triadic_closure: f64,
    /// XBS assortative-rewiring passes, as a multiple of the edge count.
    pub rewire_passes: f64,
    /// Extra triangle-closing edges added *after* rewiring, as a fraction
    /// of the edge count. Rewiring breaks triangles while it sorts degrees;
    /// this pass restores Facebook-grade clustering without disturbing the
    /// assortative degree pairing much (it connects two neighbors of one
    /// node, whose degrees are already correlated).
    pub closure_extra: f64,
    /// Community size (0 disables). Real friendship graphs are community-
    /// structured — schools, workplaces — and that, more than wedge
    /// closing, is what keeps clustering high at Facebook-scale degrees.
    pub community_size: usize,
    /// Probability a new friendship stays inside the node's community.
    pub community_bias: f64,
}

impl FriendshipGraphConfig {
    /// Facebook-like preset (Table 2 row 2: high clustering, positive
    /// assortativity, higher average degree than Twitter).
    pub fn facebook() -> Self {
        FriendshipGraphConfig {
            nodes: 10_000,
            mean_friends: 25.0,
            triadic_closure: 0.5,
            rewire_passes: 0.1,
            closure_extra: 0.35,
            community_size: 110,
            community_bias: 0.85,
        }
    }
}

/// Generates a symmetric (mutual-edge) friendship graph.
pub fn friendship_graph(config: &FriendshipGraphConfig, seed: u64) -> DiGraph {
    assert!(config.nodes >= 3, "need at least three users");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Undirected edge set as ordered pairs (min, max).
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut edge_set: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); config.nodes];
    let mut urn: Vec<NodeId> = vec![0, 1];
    let push_edge = |u: NodeId,
                     v: NodeId,
                     edges: &mut Vec<(NodeId, NodeId)>,
                     edge_set: &mut BTreeSet<(NodeId, NodeId)>,
                     adjacency: &mut Vec<Vec<NodeId>>,
                     urn: &mut Vec<NodeId>|
     -> bool {
        let key = (u.min(v), u.max(v));
        if u == v || !edge_set.insert(key) {
            return false;
        }
        edges.push(key);
        adjacency[u as usize].push(v);
        adjacency[v as usize].push(u);
        urn.push(u);
        urn.push(v);
        true
    };
    // Seed friendship between the first two users.
    push_edge(0, 1, &mut edges, &mut edge_set, &mut adjacency, &mut urn);
    for node in 2..config.nodes as NodeId {
        let friends = dist::geometric(&mut rng, config.mean_friends).min(node as u64) as usize;
        let mut made = 0;
        let mut attempts = 0;
        while made < friends && attempts < friends * 20 {
            attempts += 1;
            let target = if made > 0 && rng.gen_bool(config.triadic_closure) {
                // Friend of an existing friend: pick one of my neighbors,
                // then one of theirs.
                let my = &adjacency[node as usize];
                let via = my[rng.gen_range(0..my.len())];
                let theirs = &adjacency[via as usize];
                theirs[rng.gen_range(0..theirs.len())]
            } else if config.community_size > 0 && rng.gen_bool(config.community_bias) {
                // A peer from my own community block.
                let community = node as usize / config.community_size;
                let lo = (community * config.community_size) as NodeId;
                let hi = node.min(lo + config.community_size as NodeId);
                if hi > lo {
                    rng.gen_range(lo..hi)
                } else {
                    urn[rng.gen_range(0..urn.len())]
                }
            } else {
                urn[rng.gen_range(0..urn.len())]
            };
            if target < node
                && push_edge(
                    node,
                    target,
                    &mut edges,
                    &mut edge_set,
                    &mut adjacency,
                    &mut urn,
                )
            {
                made += 1;
            }
        }
        urn.push(node);
    }
    let degrees: Vec<usize> = adjacency.iter().map(Vec::len).collect();
    let swaps = (edges.len() as f64 * config.rewire_passes) as usize;
    rewire_assortative(&mut edges, &mut edge_set, &degrees, swaps, &mut rng);
    // Post-rewiring triadic closure: rewiring sorts degrees but shreds
    // triangles; close wedges on the rewired graph to restore clustering.
    let extra = (edges.len() as f64 * config.closure_extra) as usize;
    if extra > 0 {
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); config.nodes];
        for &(u, v) in &edges {
            adjacency[u as usize].push(v);
            adjacency[v as usize].push(u);
        }
        let mut added = 0;
        let mut attempts = 0;
        while added < extra && attempts < extra * 20 {
            attempts += 1;
            let center = rng.gen_range(0..config.nodes);
            let neigh = &adjacency[center];
            if neigh.len() < 2 {
                continue;
            }
            let x = neigh[rng.gen_range(0..neigh.len())];
            let y = neigh[rng.gen_range(0..neigh.len())];
            let key = (x.min(y), x.max(y));
            if x == y || !edge_set.insert(key) {
                continue;
            }
            edges.push(key);
            added += 1;
        }
    }
    let mut builder = GraphBuilder::new(config.nodes);
    for &(u, v) in &edges {
        builder.add_mutual(u, v);
    }
    builder.build()
}

/// Xulvi-Brunet–Sokolov assortative rewiring on an undirected edge list.
///
/// Repeatedly takes two random edges, orders their four endpoints by
/// degree, and reconnects highest↔second-highest and third↔fourth. Degree
/// sequence is invariant; degree-degree correlation rises monotonically in
/// expectation. Swaps that would create self-loops or duplicate edges are
/// skipped.
pub fn rewire_assortative(
    edges: &mut [(NodeId, NodeId)],
    edge_set: &mut BTreeSet<(NodeId, NodeId)>,
    degrees: &[usize],
    swaps: usize,
    rng: &mut SmallRng,
) {
    if edges.len() < 2 {
        return;
    }
    for _ in 0..swaps {
        let i = rng.gen_range(0..edges.len());
        let j = rng.gen_range(0..edges.len());
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        let mut nodes = [a, b, c, d];
        // Four distinct endpoints required.
        if nodes[0] == nodes[2]
            || nodes[0] == nodes[3]
            || nodes[1] == nodes[2]
            || nodes[1] == nodes[3]
        {
            continue;
        }
        nodes.sort_by_key(|&n| std::cmp::Reverse(degrees[n as usize]));
        let e1 = (nodes[0].min(nodes[1]), nodes[0].max(nodes[1]));
        let e2 = (nodes[2].min(nodes[3]), nodes[2].max(nodes[3]));
        if e1 == edges[i] && e2 == edges[j] || e1 == edges[j] && e2 == edges[i] {
            continue; // already assortative
        }
        if edge_set.contains(&e1) || edge_set.contains(&e2) {
            continue;
        }
        edge_set.remove(&edges[i]);
        edge_set.remove(&edges[j]);
        edge_set.insert(e1);
        edge_set.insert(e2);
        edges[i] = e1;
        edges[j] = e2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn follow_graph_has_expected_scale() {
        let config = FollowGraphConfig {
            nodes: 2_000,
            mean_follows: 10.0,
            preferential_bias: 0.75,
            triadic_closure: 0.2,
            disassortative_passes: 1.0,
        };
        let g = follow_graph(&config, 1);
        assert_eq!(g.node_count(), 2_000);
        let avg_out = g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            (6.0..14.0).contains(&avg_out),
            "avg out-degree {avg_out} far from mean_follows"
        );
    }

    #[test]
    fn follow_graph_is_deterministic_per_seed() {
        let config = FollowGraphConfig::twitter();
        let config = FollowGraphConfig {
            nodes: 500,
            ..config
        };
        let g1 = follow_graph(&config, 7);
        let g2 = follow_graph(&config, 7);
        let g3 = follow_graph(&config, 8);
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        assert_ne!(
            g1.edges().collect::<Vec<_>>(),
            g3.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn follow_graph_grows_celebrity_hubs() {
        let config = FollowGraphConfig {
            nodes: 3_000,
            mean_follows: 8.0,
            preferential_bias: 0.9,
            triadic_closure: 0.2,
            disassortative_passes: 1.0,
        };
        let g = follow_graph(&config, 3);
        let max_in = (0..g.node_count() as NodeId)
            .map(|u| g.in_degree(u))
            .max()
            .unwrap();
        let avg_in = g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            max_in as f64 > avg_in * 10.0,
            "no hub formed: max {max_in}, avg {avg_in}"
        );
    }

    #[test]
    fn friendship_graph_is_symmetric() {
        let config = FriendshipGraphConfig {
            nodes: 800,
            mean_friends: 10.0,
            triadic_closure: 0.5,
            rewire_passes: 0.5,
            community_size: 0,
            community_bias: 0.0,
            closure_extra: 0.4,
        };
        let g = friendship_graph(&config, 2);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u), "missing reciprocal edge {v}->{u}");
        }
    }

    #[test]
    fn rewiring_preserves_degree_sequence() {
        let config = FriendshipGraphConfig {
            nodes: 500,
            mean_friends: 8.0,
            triadic_closure: 0.4,
            rewire_passes: 0.0,
            community_size: 0,
            community_bias: 0.0,
            closure_extra: 0.0,
        };
        let before = friendship_graph(&config, 9);
        let after = friendship_graph(
            &FriendshipGraphConfig {
                rewire_passes: 2.0,
                ..config
            },
            9,
        );
        let mut deg_before: Vec<usize> = (0..before.node_count() as NodeId)
            .map(|u| before.degree(u))
            .collect();
        let mut deg_after: Vec<usize> = (0..after.node_count() as NodeId)
            .map(|u| after.degree(u))
            .collect();
        deg_before.sort_unstable();
        deg_after.sort_unstable();
        assert_eq!(deg_before, deg_after);
        assert_eq!(before.edge_count(), after.edge_count());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_bias_panics() {
        follow_graph(
            &FollowGraphConfig {
                nodes: 10,
                mean_follows: 2.0,
                preferential_bias: 1.5,
                triadic_closure: 0.2,
                disassortative_passes: 1.0,
            },
            0,
        );
    }
}
