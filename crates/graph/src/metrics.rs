//! The five Table 2 metrics: nodes, edges, average degree, clustering
//! coefficient, average shortest-path length, degree assortativity.
//!
//! Clustering and path length follow the conventions of the papers Table 2
//! cites: both are computed on the *undirected projection* of the graph
//! (an edge in either direction connects the pair), and both are sampled —
//! exact all-pairs computation is quadratic-plus and the paper's own
//! numbers for 231M-edge graphs were necessarily sampled too.

use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use std::collections::VecDeque;

use crate::digraph::{DiGraph, NodeId};

/// Table 2 row for one graph.
#[derive(Clone, Copy, Debug)]
pub struct GraphMetrics {
    pub nodes: usize,
    pub edges: usize,
    /// Average total degree (in + out), matching the paper's convention of
    /// reporting ~38.6 for 231M directed edges over 12M nodes.
    pub avg_degree: f64,
    /// Sampled average local clustering coefficient.
    pub clustering: f64,
    /// Sampled average shortest-path length over reachable pairs.
    pub avg_path: f64,
    /// Degree assortativity (Pearson correlation of endpoint degrees).
    pub assortativity: f64,
}

/// Sampling budget for the expensive metrics.
#[derive(Clone, Copy, Debug)]
pub struct MetricsConfig {
    /// Nodes sampled for the clustering coefficient.
    pub clustering_samples: usize,
    /// BFS sources sampled for average path length.
    pub path_samples: usize,
    /// Per-source cap on visited nodes (0 = unbounded).
    pub path_visit_cap: usize,
    pub seed: u64,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            clustering_samples: 2_000,
            path_samples: 64,
            path_visit_cap: 0,
            seed: 0x9E37,
        }
    }
}

/// Computes all Table 2 metrics for `graph`.
pub fn compute(graph: &DiGraph, config: &MetricsConfig) -> GraphMetrics {
    GraphMetrics {
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        avg_degree: avg_degree(graph),
        clustering: clustering_coefficient(graph, config),
        avg_path: avg_path_length(graph, config),
        assortativity: assortativity(graph),
    }
}

/// Average total degree: `2·|E| / |V|` in the directed-edge-count sense
/// (each directed edge contributes one out- and one in-degree).
pub fn avg_degree(graph: &DiGraph) -> f64 {
    if graph.node_count() == 0 {
        return 0.0;
    }
    2.0 * graph.edge_count() as f64 / graph.node_count() as f64
}

/// Undirected neighbor set of `u`, deduplicated.
fn undirected_neighbors(graph: &DiGraph, u: NodeId) -> Vec<NodeId> {
    let mut n: Vec<NodeId> = graph
        .out_neighbors(u)
        .iter()
        .chain(graph.in_neighbors(u))
        .copied()
        .filter(|&v| v != u)
        .collect();
    n.sort_unstable();
    n.dedup();
    n
}

/// True if `u` and `v` are connected in either direction.
fn connected(graph: &DiGraph, u: NodeId, v: NodeId) -> bool {
    graph.has_edge(u, v) || graph.has_edge(v, u)
}

/// Average local clustering coefficient over sampled nodes with degree ≥ 2.
pub fn clustering_coefficient(graph: &DiGraph, config: &MetricsConfig) -> f64 {
    let n = graph.node_count();
    if n == 0 {
        return 0.0;
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut nodes: Vec<NodeId> = (0..n as NodeId).collect();
    nodes.shuffle(&mut rng);
    let mut total = 0.0;
    let mut counted = 0usize;
    for &u in nodes.iter() {
        if counted >= config.clustering_samples {
            break;
        }
        let neigh = undirected_neighbors(graph, u);
        if neigh.len() < 2 {
            continue;
        }
        // For very high-degree nodes, sample neighbor pairs instead of
        // enumerating the quadratic set.
        let k = neigh.len();
        let pairs_total = k * (k - 1) / 2;
        let budget = 200.min(pairs_total);
        let mut closed = 0usize;
        if pairs_total <= budget {
            for i in 0..k {
                for j in (i + 1)..k {
                    if connected(graph, neigh[i], neigh[j]) {
                        closed += 1;
                    }
                }
            }
            total += closed as f64 / pairs_total as f64;
        } else {
            for _ in 0..budget {
                let i = rng.gen_range(0..k);
                let mut j = rng.gen_range(0..k - 1);
                if j >= i {
                    j += 1;
                }
                if connected(graph, neigh[i], neigh[j]) {
                    closed += 1;
                }
            }
            total += closed as f64 / budget as f64;
        }
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Average shortest-path length from sampled sources, over the undirected
/// projection, counting only reached pairs.
pub fn avg_path_length(graph: &DiGraph, config: &MetricsConfig) -> f64 {
    let n = graph.node_count();
    if n < 2 {
        return 0.0;
    }
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xABCD);
    let mut total = 0u64;
    let mut pairs = 0u64;
    let mut dist = vec![u32::MAX; n];
    for _ in 0..config.path_samples {
        let source = rng.gen_range(0..n as NodeId);
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[source as usize] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(source);
        let mut visited = 0usize;
        while let Some(u) = queue.pop_front() {
            visited += 1;
            if config.path_visit_cap > 0 && visited >= config.path_visit_cap {
                break;
            }
            let du = dist[u as usize];
            for &v in graph.out_neighbors(u).iter().chain(graph.in_neighbors(u)) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    total += (du + 1) as u64;
                    pairs += 1;
                    queue.push_back(v);
                }
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total as f64 / pairs as f64
    }
}

/// Degree assortativity: the Pearson correlation, over directed edges, of
/// the source's out-degree with the target's in-degree. Negative values
/// mean low-degree users attach to high-degree celebrities — the Twitter
/// (and Periscope) signature the paper points out.
pub fn assortativity(graph: &DiGraph) -> f64 {
    let m = graph.edge_count();
    if m == 0 {
        return 0.0;
    }
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    // Raw CSR walk: same edge order as `graph.edges()` (so the float sums
    // are bit-identical) without the per-node flat_map iterator overhead.
    let (offsets, targets) = graph.out_csr();
    let deg = graph.degrees();
    for u in 0..graph.node_count() {
        let x = deg.degree(u as NodeId) as f64;
        for &v in &targets[offsets.at(u)..offsets.at(u + 1)] {
            let y = deg.degree(v) as f64;
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
    }
    let n = m as f64;
    let cov = sxy / n - (sx / n) * (sy / n);
    let var_x = sxx / n - (sx / n).powi(2);
    let var_y = syy / n - (sy / n).powi(2);
    if var_x <= 0.0 || var_y <= 0.0 {
        return 0.0;
    }
    cov / (var_x * var_y).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{FollowParams, FriendshipParams, GraphKind, GraphSpec};

    fn small_config() -> MetricsConfig {
        MetricsConfig {
            clustering_samples: 500,
            path_samples: 32,
            path_visit_cap: 0,
            seed: 1,
        }
    }

    /// K_n over mutual edges, as a directed edge list.
    fn complete_mutual(n: NodeId) -> DiGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
                edges.push((v, u));
            }
        }
        DiGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn complete_graph_metrics() {
        // K5, mutual edges: clustering 1.0, path 1.0, avg degree 8.
        let g = complete_mutual(5);
        let m = compute(&g, &small_config());
        assert_eq!(m.nodes, 5);
        assert_eq!(m.edges, 20);
        assert!((m.avg_degree - 8.0).abs() < 1e-9);
        assert!((m.clustering - 1.0).abs() < 1e-9);
        assert!((m.avg_path - 1.0).abs() < 1e-9);
    }

    #[test]
    fn path_graph_metrics() {
        // 0-1-2-3 path (mutual): no triangles, known path lengths.
        let mut edges = Vec::new();
        for u in 0..3 {
            edges.push((u, u + 1));
            edges.push((u + 1, u));
        }
        let g = DiGraph::from_edges(4, &edges);
        let m = compute(&g, &small_config());
        assert_eq!(m.clustering, 0.0);
        assert!(m.avg_path > 1.0 && m.avg_path < 3.0);
    }

    #[test]
    fn star_graph_is_disassortative() {
        // Spokes follow the hub: classic negative-assortativity shape.
        let mut edges: Vec<(NodeId, NodeId)> = (1..21).map(|spoke| (spoke, 0)).collect();
        // A couple of spoke-to-spoke edges so degrees vary on both sides.
        edges.push((1, 2));
        edges.push((3, 4));
        let g = DiGraph::from_edges(21, &edges);
        assert!(assortativity(&g) < 0.0);
    }

    #[test]
    fn empty_and_tiny_graphs_do_not_panic() {
        let g = DiGraph::from_edges(0, &[]);
        let m = compute(&g, &small_config());
        assert_eq!(m.avg_degree, 0.0);
        let g1 = DiGraph::from_edges(1, &[]);
        let m1 = compute(&g1, &small_config());
        assert_eq!(m1.avg_path, 0.0);
        assert_eq!(m1.assortativity, 0.0);
    }

    #[test]
    fn follow_graph_is_disassortative_like_twitter() {
        let g = DiGraph::generate(
            &GraphSpec {
                nodes: 4_000,
                kind: GraphKind::Follow(FollowParams {
                    mean_follows: 8.0,
                    preferential_bias: 0.85,
                    triadic_closure: 0.2,
                    disassortative_passes: 1.0,
                }),
            },
            11,
        );
        let r = assortativity(&g);
        assert!(r < -0.01, "expected negative assortativity, got {r}");
    }

    #[test]
    fn friendship_graph_beats_follow_graph_on_clustering_and_assortativity() {
        // The Table 2 contrast in one test: the Facebook-like generator
        // must produce higher clustering AND higher assortativity than the
        // Twitter-like one.
        let fb = DiGraph::generate(
            &GraphSpec {
                nodes: 3_000,
                kind: GraphKind::Friendship(FriendshipParams {
                    mean_friends: 12.0,
                    triadic_closure: 0.55,
                    rewire_passes: 1.0,
                    community_size: 0,
                    community_bias: 0.0,
                    closure_extra: 0.4,
                }),
            },
            5,
        );
        let tw = DiGraph::generate(
            &GraphSpec {
                nodes: 3_000,
                kind: GraphKind::Follow(FollowParams {
                    mean_follows: 6.0,
                    preferential_bias: 0.85,
                    triadic_closure: 0.2,
                    disassortative_passes: 1.0,
                }),
            },
            5,
        );
        let cfg = small_config();
        let m_fb = compute(&fb, &cfg);
        let m_tw = compute(&tw, &cfg);
        assert!(
            m_fb.clustering > m_tw.clustering,
            "clustering: fb {} vs tw {}",
            m_fb.clustering,
            m_tw.clustering
        );
        assert!(
            m_fb.assortativity > m_tw.assortativity,
            "assortativity: fb {} vs tw {}",
            m_fb.assortativity,
            m_tw.assortativity
        );
    }

    #[test]
    fn small_world_paths_are_short() {
        let g = DiGraph::generate(
            &GraphSpec {
                nodes: 5_000,
                kind: GraphKind::Follow(FollowParams {
                    mean_follows: 10.0,
                    preferential_bias: 0.8,
                    triadic_closure: 0.2,
                    disassortative_passes: 1.0,
                }),
            },
            3,
        );
        let m = compute(&g, &small_config());
        assert!(
            m.avg_path > 1.5 && m.avg_path < 8.0,
            "avg path {} outside small-world range",
            m.avg_path
        );
    }
}
