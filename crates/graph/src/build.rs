//! Two-phase CSR assembly machinery (DESIGN.md §12).
//!
//! The generators in [`crate::generate`] stream their RNG decisions into a
//! flat, source-grouped target array plus a `u64` prefix-sum of per-node
//! out-degrees (phase 1). This module owns phase 2: turning that grouped
//! edge list into both CSR directions with counting sort in `O(V + E)`,
//! plus the in-place rewiring scratch that replaces the old per-edge
//! `BTreeSet` mirrors.
//!
//! Determinism argument: counting sort is a *stable* scatter — sources are
//! visited in ascending order, so every in-adjacency list comes out sorted
//! by source without a comparison sort, and the output depends only on the
//! input edge multiset, never on iteration order of any hashed container.
//!
//! ## Parallel assembly contract (DESIGN.md §12)
//!
//! Phase 2 is data-parallel over **disjoint target-node ranges**: with K
//! workers, worker `w` owns the contiguous node range `[t_w, t_{w+1})`
//! and fills exactly the in-CSR slice `in_sources[in_offsets[t_w] ..
//! in_offsets[t_{w+1}]]` — a `split_at_mut` partition, so workers share
//! no mutable state at the type level. Each worker scans the full
//! out-CSR in ascending-source order and keeps only edges whose target
//! falls in its range; within any single in-segment that is *the same
//! stable visit order the sequential scatter uses*, so the output bytes
//! are a pure function of the out-CSR, independent of K, of thread
//! scheduling, and of the `parallel` feature (which only decides whether
//! the K shards run on scoped threads or sequentially in shard order).
//! `tests/csr_parallel.rs` property-tests this partition invariance
//! against the sequential path and the `BTreeMap` oracle.

use crate::digraph::{DiGraph, NodeId, Offsets};

/// Build-time statistics for one [`DiGraph::generate_with_stats`]
/// (`crate::generate`) run. Everything here is deterministic for a given
/// `(spec, seed)` pair — `peak_bytes` counts buffer capacities, which are
/// fixed by the allocation pattern, not by the allocator or the worker
/// count (per-worker state is carved out of shared arrays by
/// `split_at_mut`, never allocated per shard) — so these values can be
/// pinned in regression baselines.
#[derive(Clone, Copy, Debug)]
pub struct GraphBuildStats {
    /// Nodes in the finished graph.
    pub nodes: usize,
    /// Directed edges in the finished graph.
    pub edges: usize,
    /// High-water mark of bytes held by build buffers (including the
    /// finished graph itself), sampled at phase boundaries and every few
    /// thousand nodes during generation.
    pub peak_bytes: usize,
    /// Degree-preserving rewiring swaps actually applied (not attempted).
    pub swaps_applied: u64,
    /// Assembly worker shards the build ran with (≥ 1). An execution
    /// knob, never an observable: every value produces identical graphs.
    pub workers: usize,
}

/// Running high-water mark of build-buffer bytes.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PeakTracker {
    peak: usize,
}

impl PeakTracker {
    /// Folds one sample into the high-water mark.
    pub(crate) fn observe(&mut self, bytes: usize) {
        self.peak = self.peak.max(bytes);
    }

    /// The high-water mark so far.
    pub(crate) fn peak(&self) -> usize {
        self.peak
    }
}

/// Runs one closure invocation per part — on scoped worker threads with
/// the `parallel` feature, sequentially in part order without it. Parts
/// own disjoint mutable state (enforced by `split_at_mut` at every call
/// site), so the two execution modes are observably identical.
#[cfg(feature = "parallel")]
fn run_parts<T: Send, F: Fn(T) + Sync>(parts: Vec<T>, f: F) {
    if parts.len() <= 1 {
        for part in parts {
            f(part);
        }
        return;
    }
    let f = &f;
    crossbeam::thread::scope(|scope| {
        for part in parts {
            scope.spawn(move |_| f(part));
        }
    })
    .expect("graph assembly worker scope");
}

#[cfg(not(feature = "parallel"))]
fn run_parts<T: Send, F: Fn(T) + Sync>(parts: Vec<T>, f: F) {
    for part in parts {
        f(part);
    }
}

/// Even node-space boundary `w` of `K` over `n` nodes.
fn node_bound(w: usize, workers: usize, n: usize) -> usize {
    w * n / workers
}

/// Parallel in-degree count: worker `w` owns the count slots of node
/// range `[node_bound(w), node_bound(w+1))` (a disjoint sub-slice of
/// `in_offsets[1..]`) and scans the full target array, counting only
/// targets in its range. Commutative per-slot addition with a single
/// writer per slot — identical to the sequential count for any K.
fn count_in_degrees(
    node_count: usize,
    out_targets: &[NodeId],
    in_offsets: &mut [u64],
    workers: usize,
) {
    let mut parts: Vec<(std::ops::Range<usize>, &mut [u64])> = Vec::with_capacity(workers);
    let mut rest: &mut [u64] = &mut in_offsets[1..];
    for w in 0..workers {
        let (start, end) = (
            node_bound(w, workers, node_count),
            node_bound(w + 1, workers, node_count),
        );
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(end - start);
        parts.push((start..end, head));
        rest = tail;
    }
    run_parts(parts, |(range, counts)| {
        for &v in out_targets {
            let v = v as usize;
            if range.contains(&v) {
                counts[v - range.start] += 1;
            }
        }
    });
}

/// Parallel prefix pass over the per-node counts: independent in-place
/// prefix sums per block, one sequential carry walk over the K block
/// totals, then a parallel base-offset pass. Pure `u64` addition in a
/// fixed association, so the result is bit-identical to the sequential
/// prefix sum for any K.
fn prefix_sum(in_offsets: &mut [u64], workers: usize) {
    let node_count = in_offsets.len() - 1;
    fn split(in_offsets: &mut [u64], workers: usize, node_count: usize) -> Vec<&mut [u64]> {
        let mut blocks: Vec<&mut [u64]> = Vec::with_capacity(workers);
        let mut rest: &mut [u64] = &mut in_offsets[1..];
        for w in 0..workers {
            let len = node_bound(w + 1, workers, node_count) - node_bound(w, workers, node_count);
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(len);
            blocks.push(head);
            rest = tail;
        }
        blocks
    }
    run_parts(split(in_offsets, workers, node_count), |block| {
        let mut acc = 0u64;
        for x in block.iter_mut() {
            acc += *x;
            *x = acc;
        }
    });
    // Carry walk: block w's base is the sum of all earlier block totals
    // (each block's total now sits in its last element).
    let mut bases = Vec::with_capacity(workers);
    let mut carry = 0u64;
    for w in 0..workers {
        bases.push(carry);
        let end = node_bound(w + 1, workers, node_count);
        if end > node_bound(w, workers, node_count) {
            carry += in_offsets[end];
        }
    }
    run_parts(
        split(in_offsets, workers, node_count)
            .into_iter()
            .zip(bases)
            .collect(),
        |(block, base)| {
            if base != 0 {
                for x in block.iter_mut() {
                    *x += base;
                }
            }
        },
    );
}

/// Parallel stable scatter: worker `w` owns target range
/// `[tbounds[w], tbounds[w+1])` — boundaries chosen so each range holds
/// ~`E/K` in-edges — and fills the corresponding disjoint `in_sources`
/// slice by scanning the full out-CSR in ascending-source order. See the
/// module docs for the byte-identity argument.
#[allow(clippy::too_many_arguments)]
fn scatter(
    node_count: usize,
    out_offsets: &[u64],
    out_targets: &[NodeId],
    in_offsets: &[u64],
    cursor: &mut [u64],
    in_sources: &mut [NodeId],
    workers: usize,
) {
    let edge_total = in_offsets[node_count];
    let mut tbounds = Vec::with_capacity(workers + 1);
    tbounds.push(0usize);
    for w in 1..workers {
        let want = edge_total * w as u64 / workers as u64;
        let t = in_offsets.partition_point(|&e| e < want);
        tbounds.push(t.max(tbounds[w - 1]).min(node_count));
    }
    tbounds.push(node_count);

    type Part<'a> = (std::ops::Range<usize>, &'a mut [u64], &'a mut [NodeId], u64);
    let mut parts: Vec<Part<'_>> = Vec::with_capacity(workers);
    let mut cur_rest: &mut [u64] = &mut cursor[..node_count];
    let mut src_rest: &mut [NodeId] = in_sources;
    for w in 0..workers {
        let (t0, t1) = (tbounds[w], tbounds[w + 1]);
        let (cur, cr) = std::mem::take(&mut cur_rest).split_at_mut(t1 - t0);
        let (dst, sr) =
            std::mem::take(&mut src_rest).split_at_mut((in_offsets[t1] - in_offsets[t0]) as usize);
        parts.push((t0..t1, cur, dst, in_offsets[t0]));
        cur_rest = cr;
        src_rest = sr;
    }
    run_parts(parts, |(range, cur, dst, base)| {
        for u in 0..node_count {
            let (s, e) = (out_offsets[u] as usize, out_offsets[u + 1] as usize);
            for &v in &out_targets[s..e] {
                let vi = v as usize;
                if range.contains(&vi) {
                    let c = &mut cur[vi - range.start];
                    dst[(*c - base) as usize] = u as NodeId;
                    *c += 1;
                }
            }
        }
    });
}

/// Phase 2: assembles a [`DiGraph`] from an out-CSR whose segments are
/// already sorted and deduplicated. The in-direction is built by counting
/// sort: one counting pass over the targets, a prefix sum, and a stable
/// scatter in ascending-source order (so in-lists are sorted by source
/// with no per-list sort).
///
/// `workers > 1` splits every pass over disjoint target-node ranges (see
/// the module docs); the single-worker path keeps the branch-free
/// sequential loops. Output bytes are identical for every `workers`
/// value, with or without the `parallel` feature.
pub(crate) fn assemble(
    node_count: usize,
    out_offsets: Vec<u64>,
    out_targets: Vec<NodeId>,
    workers: usize,
    peak: &mut PeakTracker,
) -> DiGraph {
    debug_assert_eq!(out_offsets.len(), node_count + 1);
    let edge_total = *out_offsets.last().unwrap_or(&0) as usize;
    debug_assert_eq!(edge_total, out_targets.len());
    let workers = workers.clamp(1, node_count.max(1));

    let mut in_offsets = vec![0u64; node_count + 1];
    if workers == 1 {
        for &v in &out_targets {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..node_count {
            in_offsets[i + 1] += in_offsets[i];
        }
    } else {
        count_in_degrees(node_count, &out_targets, &mut in_offsets, workers);
        prefix_sum(&mut in_offsets, workers);
    }

    let mut cursor: Vec<u64> = in_offsets.clone();
    let mut in_sources = vec![0 as NodeId; edge_total];
    if workers == 1 {
        for u in 0..node_count {
            let (s, e) = (out_offsets[u] as usize, out_offsets[u + 1] as usize);
            for &v in &out_targets[s..e] {
                let c = &mut cursor[v as usize];
                in_sources[*c as usize] = u as NodeId;
                *c += 1;
            }
        }
    } else {
        scatter(
            node_count,
            &out_offsets,
            &out_targets,
            &in_offsets,
            &mut cursor,
            &mut in_sources,
            workers,
        );
    }
    peak.observe(
        out_offsets.capacity() * 8
            + out_targets.capacity() * std::mem::size_of::<NodeId>()
            + in_offsets.capacity() * 8
            + cursor.capacity() * 8
            + in_sources.capacity() * std::mem::size_of::<NodeId>(),
    );
    drop(cursor);
    DiGraph::from_parts(
        node_count,
        Offsets::from_u64(out_offsets),
        out_targets,
        Offsets::from_u64(in_offsets),
        in_sources,
    )
}

/// Flat edges per `source_of` hint block (`1 << BLOCK_SHIFT`).
const BLOCK_SHIFT: usize = 8;

/// The rewiring scratch: a flat CSR whose per-node segments are kept
/// sorted under degree-preserving target swaps. Membership tests are a
/// binary search inside one segment and updates are a bounded `memmove`
/// within it — this replaces the old `BTreeSet<(NodeId, NodeId)>` edge
/// mirror, whose per-edge nodes dominated both the memory and the wall
/// time of paper-scale builds.
///
/// Because the swaps it supports never change any node's degree, the
/// offsets are immutable and the scratch *is* the final out-CSR once
/// rewiring ends ([`CsrScratch::into_flat`]). Immutable offsets also
/// mean the `block_src` hint table (source of every 256th flat edge)
/// never goes stale: `source_of` narrows its search to the couple of
/// nodes between two adjacent block anchors instead of binary-searching
/// all `V + 1` offsets — the rewiring loop's hottest read at paper
/// scale, where the offsets array alone is ~96 MiB of cache misses.
pub(crate) struct CsrScratch {
    offsets: Vec<u64>,
    sorted: Vec<NodeId>,
    /// `block_src[b]` = source node of flat edge `b << BLOCK_SHIFT`,
    /// with one trailing `node_count - 1` sentinel so every lookup has
    /// an upper anchor.
    block_src: Vec<NodeId>,
}

impl CsrScratch {
    /// Wraps an offsets/targets pair whose segments are already sorted.
    pub(crate) fn new(offsets: Vec<u64>, sorted: Vec<NodeId>) -> CsrScratch {
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, sorted.len());
        let node_count = offsets.len().saturating_sub(1);
        let blocks = (sorted.len() >> BLOCK_SHIFT) + 1;
        let mut block_src = Vec::with_capacity(blocks + 1);
        let mut u = 0usize;
        for b in 0..blocks {
            let first = (b << BLOCK_SHIFT) as u64;
            while u + 1 < node_count && offsets[u + 1] <= first {
                u += 1;
            }
            block_src.push(u as NodeId);
        }
        block_src.push(node_count.saturating_sub(1) as NodeId);
        CsrScratch {
            offsets,
            sorted,
            block_src,
        }
    }

    /// The node owning flat edge position `edge_idx` (positions never
    /// move because degrees never change). The block anchors bound the
    /// answer to `[block_src[b], block_src[b + 1]]`, leaving a short
    /// partition-point search over at most one block's worth of nodes.
    pub(crate) fn source_of(&self, edge_idx: usize) -> NodeId {
        let b = edge_idx >> BLOCK_SHIFT;
        let lo = self.block_src[b] as usize;
        let hi = self.block_src[b + 1] as usize;
        let idx = edge_idx as u64;
        lo as NodeId + self.offsets[lo + 1..hi + 1].partition_point(|&e| e <= idx) as NodeId
    }

    /// The sorted neighbor segment of `u`.
    pub(crate) fn segment(&self, u: NodeId) -> &[NodeId] {
        &self.sorted[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// True if `v` is in `u`'s segment.
    pub(crate) fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.segment(u).binary_search(&v).is_ok()
    }

    /// Swaps neighbor `old` of `u` for `new`, keeping the segment sorted
    /// (a shift of the elements between the two positions).
    pub(crate) fn replace(&mut self, u: NodeId, old: NodeId, new: NodeId) {
        if old == new {
            return;
        }
        let (s, e) = (
            self.offsets[u as usize] as usize,
            self.offsets[u as usize + 1] as usize,
        );
        let seg = &mut self.sorted[s..e];
        let io = seg
            .binary_search(&old)
            .expect("CsrScratch::replace: old neighbor must be present");
        if new > old {
            let ip = io + 1 + seg[io + 1..].partition_point(|&x| x < new);
            seg.copy_within(io + 1..ip, io);
            seg[ip - 1] = new;
        } else {
            let ip = seg[..io].partition_point(|&x| x < new);
            seg.copy_within(ip..io, ip + 1);
            seg[ip] = new;
        }
    }

    /// Bytes held by the scratch buffers.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * 8
            + self.sorted.capacity() * std::mem::size_of::<NodeId>()
            + self.block_src.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Consumes the scratch, yielding the (still sorted) out-CSR parts.
    pub(crate) fn into_flat(self) -> (Vec<u64>, Vec<NodeId>) {
        (self.offsets, self.sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch() -> CsrScratch {
        // Node 0: [2, 5, 9]; node 1: []; node 2: [0, 7].
        CsrScratch::new(vec![0, 3, 3, 5], vec![2, 5, 9, 0, 7])
    }

    #[test]
    fn source_of_skips_empty_segments() {
        let s = scratch();
        assert_eq!(s.source_of(0), 0);
        assert_eq!(s.source_of(2), 0);
        assert_eq!(s.source_of(3), 2);
        assert_eq!(s.source_of(4), 2);
    }

    #[test]
    fn source_of_agrees_with_full_binary_search_across_blocks() {
        // > one block of edges so the hint table has interior anchors:
        // 1000 nodes, node u owning u % 3 edges (some segments empty).
        let mut offsets = vec![0u64];
        for u in 0..1000u64 {
            offsets.push(offsets[u as usize] + u % 3);
        }
        let total = *offsets.last().unwrap() as usize;
        let sorted = vec![0 as NodeId; total];
        let s = CsrScratch::new(offsets.clone(), sorted);
        for idx in 0..total {
            let want = (offsets.partition_point(|&e| e <= idx as u64) - 1) as NodeId;
            assert_eq!(s.source_of(idx), want, "edge {idx}");
        }
    }

    #[test]
    fn contains_and_replace_keep_segments_sorted() {
        let mut s = scratch();
        assert!(s.contains(0, 5));
        assert!(!s.contains(0, 7));
        s.replace(0, 5, 11); // upward move
        assert_eq!(s.segment(0), &[2, 9, 11]);
        s.replace(0, 11, 1); // downward move
        assert_eq!(s.segment(0), &[1, 2, 9]);
        s.replace(0, 2, 3); // in-place slot
        assert_eq!(s.segment(0), &[1, 3, 9]);
        assert_eq!(s.segment(2), &[0, 7]);
    }

    #[test]
    fn assemble_builds_sorted_in_lists() {
        let mut peak = PeakTracker::default();
        // 0→1, 0→2, 2→1 grouped by source with sorted segments.
        let g = assemble(3, vec![0, 2, 2, 3], vec![1, 2, 1], 1, &mut peak);
        assert_eq!(g.in_neighbors(1), &[0, 2]);
        assert_eq!(g.in_neighbors(2), &[0]);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert!(peak.peak() > 0);
    }

    #[test]
    fn parallel_assemble_matches_sequential_for_every_worker_count() {
        // 0→{1,2}, 1→{0,2,3}, 2→{1}, 3→{} plus heavy in-degree on 2.
        let offsets = vec![0u64, 2, 5, 6, 6, 8, 10];
        let targets = vec![1, 2, 0, 2, 3, 1, 2, 4, 2, 5];
        let mut peak = PeakTracker::default();
        let seq = assemble(6, offsets.clone(), targets.clone(), 1, &mut peak);
        for workers in [2, 3, 4, 6, 9] {
            let mut peak = PeakTracker::default();
            let par = assemble(6, offsets.clone(), targets.clone(), workers, &mut peak);
            assert_eq!(
                seq.adjacency_checksum(),
                par.adjacency_checksum(),
                "workers={workers}"
            );
            for u in 0..6 {
                assert_eq!(
                    seq.in_neighbors(u),
                    par.in_neighbors(u),
                    "workers={workers}"
                );
            }
        }
    }

    #[test]
    fn parallel_assemble_peak_bytes_is_worker_invariant() {
        let offsets = vec![0u64, 2, 5, 6, 6, 8, 10];
        let targets = vec![1, 2, 0, 2, 3, 1, 2, 4, 2, 5];
        let mut peak1 = PeakTracker::default();
        assemble(6, offsets.clone(), targets.clone(), 1, &mut peak1);
        let mut peak6 = PeakTracker::default();
        assemble(6, offsets, targets, 6, &mut peak6);
        assert_eq!(peak1.peak(), peak6.peak());
    }
}
