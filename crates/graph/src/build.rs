//! Two-phase CSR assembly machinery (DESIGN.md §12).
//!
//! The generators in [`crate::generate`] stream their RNG decisions into a
//! flat, source-grouped target array plus a `u64` prefix-sum of per-node
//! out-degrees (phase 1). This module owns phase 2: turning that grouped
//! edge list into both CSR directions with counting sort in `O(V + E)`,
//! plus the in-place rewiring scratch that replaces the old per-edge
//! `BTreeSet` mirrors.
//!
//! Determinism argument: counting sort is a *stable* scatter — sources are
//! visited in ascending order, so every in-adjacency list comes out sorted
//! by source without a comparison sort, and the output depends only on the
//! input edge multiset, never on iteration order of any hashed container.

use crate::digraph::{DiGraph, NodeId, Offsets};

/// Build-time statistics for one [`DiGraph::generate_with_stats`]
/// (`crate::generate`) run. Everything here is deterministic for a given
/// `(spec, seed)` pair — `peak_bytes` counts buffer capacities, which are
/// fixed by the allocation pattern, not by the allocator — so these values
/// can be pinned in regression baselines.
#[derive(Clone, Copy, Debug)]
pub struct GraphBuildStats {
    /// Nodes in the finished graph.
    pub nodes: usize,
    /// Directed edges in the finished graph.
    pub edges: usize,
    /// High-water mark of bytes held by build buffers (including the
    /// finished graph itself), sampled at phase boundaries and every few
    /// thousand nodes during generation.
    pub peak_bytes: usize,
    /// Degree-preserving rewiring swaps actually applied (not attempted).
    pub swaps_applied: u64,
}

/// Running high-water mark of build-buffer bytes.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PeakTracker {
    peak: usize,
}

impl PeakTracker {
    /// Folds one sample into the high-water mark.
    pub(crate) fn observe(&mut self, bytes: usize) {
        self.peak = self.peak.max(bytes);
    }

    /// The high-water mark so far.
    pub(crate) fn peak(&self) -> usize {
        self.peak
    }
}

/// Phase 2: assembles a [`DiGraph`] from an out-CSR whose segments are
/// already sorted and deduplicated. The in-direction is built by counting
/// sort: one counting pass over the targets, a prefix sum, and a stable
/// scatter in ascending-source order (so in-lists are sorted by source
/// with no per-list sort).
pub(crate) fn assemble(
    node_count: usize,
    out_offsets: Vec<u64>,
    out_targets: Vec<NodeId>,
    peak: &mut PeakTracker,
) -> DiGraph {
    debug_assert_eq!(out_offsets.len(), node_count + 1);
    let edge_total = *out_offsets.last().unwrap_or(&0) as usize;
    debug_assert_eq!(edge_total, out_targets.len());

    let mut in_offsets = vec![0u64; node_count + 1];
    for &v in &out_targets {
        in_offsets[v as usize + 1] += 1;
    }
    for i in 0..node_count {
        in_offsets[i + 1] += in_offsets[i];
    }
    let mut cursor: Vec<u64> = in_offsets.clone();
    let mut in_sources = vec![0 as NodeId; edge_total];
    for u in 0..node_count {
        let (s, e) = (out_offsets[u] as usize, out_offsets[u + 1] as usize);
        for &v in &out_targets[s..e] {
            let c = &mut cursor[v as usize];
            in_sources[*c as usize] = u as NodeId;
            *c += 1;
        }
    }
    peak.observe(
        out_offsets.capacity() * 8
            + out_targets.capacity() * std::mem::size_of::<NodeId>()
            + in_offsets.capacity() * 8
            + cursor.capacity() * 8
            + in_sources.capacity() * std::mem::size_of::<NodeId>(),
    );
    drop(cursor);
    DiGraph::from_parts(
        node_count,
        Offsets::from_u64(out_offsets),
        out_targets,
        Offsets::from_u64(in_offsets),
        in_sources,
    )
}

/// The rewiring scratch: a flat CSR whose per-node segments are kept
/// sorted under degree-preserving target swaps. Membership tests are a
/// binary search inside one segment and updates are a bounded `memmove`
/// within it — this replaces the old `BTreeSet<(NodeId, NodeId)>` edge
/// mirror, whose per-edge nodes dominated both the memory and the wall
/// time of paper-scale builds.
///
/// Because the swaps it supports never change any node's degree, the
/// offsets are immutable and the scratch *is* the final out-CSR once
/// rewiring ends ([`CsrScratch::into_flat`]).
pub(crate) struct CsrScratch {
    offsets: Vec<u64>,
    sorted: Vec<NodeId>,
}

impl CsrScratch {
    /// Wraps an offsets/targets pair whose segments are already sorted.
    pub(crate) fn new(offsets: Vec<u64>, sorted: Vec<NodeId>) -> CsrScratch {
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, sorted.len());
        CsrScratch { offsets, sorted }
    }

    /// The node owning flat edge position `edge_idx` (binary search over
    /// the offsets — positions never move because degrees never change).
    pub(crate) fn source_of(&self, edge_idx: usize) -> NodeId {
        let idx = edge_idx as u64;
        (self.offsets.partition_point(|&e| e <= idx) - 1) as NodeId
    }

    /// The sorted neighbor segment of `u`.
    pub(crate) fn segment(&self, u: NodeId) -> &[NodeId] {
        &self.sorted[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// True if `v` is in `u`'s segment.
    pub(crate) fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.segment(u).binary_search(&v).is_ok()
    }

    /// Swaps neighbor `old` of `u` for `new`, keeping the segment sorted
    /// (a shift of the elements between the two positions).
    pub(crate) fn replace(&mut self, u: NodeId, old: NodeId, new: NodeId) {
        if old == new {
            return;
        }
        let (s, e) = (
            self.offsets[u as usize] as usize,
            self.offsets[u as usize + 1] as usize,
        );
        let seg = &mut self.sorted[s..e];
        let io = seg
            .binary_search(&old)
            .expect("CsrScratch::replace: old neighbor must be present");
        if new > old {
            let ip = io + 1 + seg[io + 1..].partition_point(|&x| x < new);
            seg.copy_within(io + 1..ip, io);
            seg[ip - 1] = new;
        } else {
            let ip = seg[..io].partition_point(|&x| x < new);
            seg.copy_within(ip..io, ip + 1);
            seg[ip] = new;
        }
    }

    /// Bytes held by the scratch buffers.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * 8 + self.sorted.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Consumes the scratch, yielding the (still sorted) out-CSR parts.
    pub(crate) fn into_flat(self) -> (Vec<u64>, Vec<NodeId>) {
        (self.offsets, self.sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch() -> CsrScratch {
        // Node 0: [2, 5, 9]; node 1: []; node 2: [0, 7].
        CsrScratch::new(vec![0, 3, 3, 5], vec![2, 5, 9, 0, 7])
    }

    #[test]
    fn source_of_skips_empty_segments() {
        let s = scratch();
        assert_eq!(s.source_of(0), 0);
        assert_eq!(s.source_of(2), 0);
        assert_eq!(s.source_of(3), 2);
        assert_eq!(s.source_of(4), 2);
    }

    #[test]
    fn contains_and_replace_keep_segments_sorted() {
        let mut s = scratch();
        assert!(s.contains(0, 5));
        assert!(!s.contains(0, 7));
        s.replace(0, 5, 11); // upward move
        assert_eq!(s.segment(0), &[2, 9, 11]);
        s.replace(0, 11, 1); // downward move
        assert_eq!(s.segment(0), &[1, 2, 9]);
        s.replace(0, 2, 3); // in-place slot
        assert_eq!(s.segment(0), &[1, 3, 9]);
        assert_eq!(s.segment(2), &[0, 7]);
    }

    #[test]
    fn assemble_builds_sorted_in_lists() {
        let mut peak = PeakTracker::default();
        // 0→1, 0→2, 2→1 grouped by source with sorted segments.
        let g = assemble(3, vec![0, 2, 2, 3], vec![1, 2, 1], &mut peak);
        assert_eq!(g.in_neighbors(1), &[0, 2]);
        assert_eq!(g.in_neighbors(2), &[0]);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert!(peak.peak() > 0);
    }
}
