//! smoltcp-style fault injection.
//!
//! Every simulated link can be configured to drop payloads, corrupt one
//! octet, or rate-limit with a token bucket — the same three knobs the
//! smoltcp examples expose (`--drop-chance`, `--corrupt-chance`,
//! `--tx-rate-limit`/`--shaping-interval`). The failure-injection tests use
//! these to check that playback, crawling and delay accounting degrade
//! gracefully instead of wedging.

use livescope_sim::{SimDuration, SimTime};
use rand::Rng;

/// Fault configuration for a link direction.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that a payload is silently dropped.
    pub drop_chance: f64,
    /// Probability in `[0, 1]` that one octet of the payload is flipped.
    pub corrupt_chance: f64,
    /// Token-bucket capacity in payloads; `None` disables shaping.
    pub rate_limit: Option<u32>,
    /// Token-bucket refill interval.
    pub shaping_interval: SimDuration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            rate_limit: None,
            shaping_interval: SimDuration::from_millis(50),
        }
    }
}

impl FaultConfig {
    /// No faults at all (the common case for controlled experiments).
    pub fn none() -> Self {
        Self::default()
    }

    /// The smoltcp README's "good starting value" for adverse conditions:
    /// 15% drop, 15% corrupt.
    pub fn adverse() -> Self {
        FaultConfig {
            drop_chance: 0.15,
            corrupt_chance: 0.15,
            ..Self::default()
        }
    }

    /// Validates probabilities; call at scenario construction.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop_chance", self.drop_chance),
            ("corrupt_chance", self.corrupt_chance),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!("{name} must be in [0,1], got {p}"));
            }
        }
        if self.shaping_interval.is_zero() && self.rate_limit.is_some() {
            return Err("shaping_interval must be non-zero when rate limiting".into());
        }
        Ok(())
    }
}

/// What happened to a payload passing through the injector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Delivered unmodified.
    Pass,
    /// Delivered with one octet flipped at the given offset.
    Corrupted { offset: usize },
    /// Dropped by random loss.
    Dropped,
    /// Dropped by the rate limiter.
    RateLimited,
}

/// Stateful fault injector for one link direction.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    tokens: u32,
    last_refill: SimTime,
    /// Counters for observability in tests and reports.
    pub passed: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub rate_limited: u64,
}

impl FaultInjector {
    /// Builds an injector; panics on an invalid config (configs are code,
    /// not user input).
    pub fn new(config: FaultConfig) -> Self {
        config.validate().expect("invalid FaultConfig");
        FaultInjector {
            config,
            tokens: config.rate_limit.unwrap_or(0),
            last_refill: SimTime::ZERO,
            passed: 0,
            dropped: 0,
            corrupted: 0,
            rate_limited: 0,
        }
    }

    /// Injector configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decides the fate of a payload of `len` bytes sent at `now`.
    ///
    /// The caller applies the verdict (drops the event, flips the byte).
    /// Keeping the mutation outside lets zero-copy paths skip it.
    pub fn judge<R: Rng>(&mut self, rng: &mut R, now: SimTime, len: usize) -> Verdict {
        if let Some(cap) = self.config.rate_limit {
            // Refill whole intervals elapsed since the last refill.
            let elapsed = now.saturating_since(self.last_refill);
            let interval_us = self.config.shaping_interval.as_micros();
            if let Some(refills) = elapsed.as_micros().checked_div(interval_us) {
                if refills > 0 {
                    self.tokens = cap;
                    self.last_refill += SimDuration::from_micros(refills * interval_us);
                }
            }
            if self.tokens == 0 {
                self.rate_limited += 1;
                return Verdict::RateLimited;
            }
            self.tokens -= 1;
        }
        if self.config.drop_chance > 0.0 && rng.gen_bool(self.config.drop_chance) {
            self.dropped += 1;
            return Verdict::Dropped;
        }
        if len > 0 && self.config.corrupt_chance > 0.0 && rng.gen_bool(self.config.corrupt_chance) {
            self.corrupted += 1;
            return Verdict::Corrupted {
                offset: rng.gen_range(0..len),
            };
        }
        self.passed += 1;
        Verdict::Pass
    }

    /// Applies a [`Verdict::Corrupted`] to a byte buffer by flipping the
    /// lowest bit at the chosen offset (guaranteed to change the payload).
    pub fn apply_corruption(payload: &mut [u8], offset: usize) {
        if let Some(b) = payload.get_mut(offset) {
            *b ^= 0x01;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn clean_config_always_passes() {
        let mut inj = FaultInjector::new(FaultConfig::none());
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..1000 {
            assert_eq!(
                inj.judge(&mut rng, SimTime::from_millis(i), 100),
                Verdict::Pass
            );
        }
        assert_eq!(inj.passed, 1000);
        assert_eq!(inj.dropped + inj.corrupted + inj.rate_limited, 0);
    }

    #[test]
    fn drop_rate_converges_to_configured_chance() {
        let mut inj = FaultInjector::new(FaultConfig {
            drop_chance: 0.15,
            ..FaultConfig::none()
        });
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 20_000;
        for i in 0..n {
            inj.judge(&mut rng, SimTime::from_millis(i), 100);
        }
        let rate = inj.dropped as f64 / n as f64;
        assert!((rate - 0.15).abs() < 0.01, "drop rate {rate}");
    }

    #[test]
    fn corruption_offset_is_in_bounds_and_mutates() {
        let mut inj = FaultInjector::new(FaultConfig {
            corrupt_chance: 1.0,
            ..FaultConfig::none()
        });
        let mut rng = SmallRng::seed_from_u64(3);
        for len in [1usize, 2, 100] {
            match inj.judge(&mut rng, SimTime::ZERO, len) {
                Verdict::Corrupted { offset } => {
                    assert!(offset < len);
                    let mut buf = vec![0xAB; len];
                    let orig = buf.clone();
                    FaultInjector::apply_corruption(&mut buf, offset);
                    assert_ne!(buf, orig);
                }
                v => panic!("expected corruption, got {v:?}"),
            }
        }
    }

    #[test]
    fn zero_length_payload_is_never_corrupted() {
        let mut inj = FaultInjector::new(FaultConfig {
            corrupt_chance: 1.0,
            ..FaultConfig::none()
        });
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(inj.judge(&mut rng, SimTime::ZERO, 0), Verdict::Pass);
    }

    #[test]
    fn token_bucket_limits_within_interval_and_refills() {
        let mut inj = FaultInjector::new(FaultConfig {
            rate_limit: Some(4),
            shaping_interval: SimDuration::from_millis(50),
            ..FaultConfig::none()
        });
        let mut rng = SmallRng::seed_from_u64(5);
        let t0 = SimTime::from_millis(10);
        // 4 tokens pass, the 5th is limited.
        for _ in 0..4 {
            assert_eq!(inj.judge(&mut rng, t0, 10), Verdict::Pass);
        }
        assert_eq!(inj.judge(&mut rng, t0, 10), Verdict::RateLimited);
        // After the shaping interval the bucket is full again.
        let t1 = t0 + SimDuration::from_millis(50);
        assert_eq!(inj.judge(&mut rng, t1, 10), Verdict::Pass);
    }

    #[test]
    fn drop_takes_priority_over_corrupt_statistically() {
        // With drop=1.0 nothing should ever be corrupted.
        let mut inj = FaultInjector::new(FaultConfig {
            drop_chance: 1.0,
            corrupt_chance: 1.0,
            ..FaultConfig::none()
        });
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..100 {
            assert_eq!(inj.judge(&mut rng, SimTime::ZERO, 10), Verdict::Dropped);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(FaultConfig {
            drop_chance: 1.5,
            ..FaultConfig::none()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            corrupt_chance: -0.1,
            ..FaultConfig::none()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            rate_limit: Some(1),
            shaping_interval: SimDuration::ZERO,
            ..FaultConfig::none()
        }
        .validate()
        .is_err());
        assert!(FaultConfig::adverse().validate().is_ok());
    }
}
