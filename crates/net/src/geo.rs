//! Geographic primitives: points, great-circle distance, continents.

use std::fmt;

/// Mean Earth radius in kilometres (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

/// A point on the Earth's surface in decimal degrees.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GeoPoint {
    /// Latitude, degrees north, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude, degrees east, in `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Constructs a point, panicking on out-of-range coordinates — these
    /// come from static tables or generators, so a bad value is a bug.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!(
            (-90.0..=90.0).contains(&lat),
            "latitude out of range: {lat}"
        );
        assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude out of range: {lon}"
        );
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.lat, self.lon)
    }
}

/// Continent classification used by the Fig 15 distance-bucket analysis and
/// the Fig 9 co-location summary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Continent {
    NorthAmerica,
    SouthAmerica,
    Europe,
    Asia,
    Oceania,
    Africa,
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Continent::NorthAmerica => "North America",
            Continent::SouthAmerica => "South America",
            Continent::Europe => "Europe",
            Continent::Asia => "Asia",
            Continent::Oceania => "Oceania",
            Continent::Africa => "Africa",
        };
        f.write_str(name)
    }
}

/// Distance buckets used by Fig 15 ("co-located", "(0, 500 km]", ...).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum DistanceBucket {
    /// Same city (the paper treats same-city datacenter pairs specially:
    /// the co-located Fastly site acts as the replication gateway).
    CoLocated,
    /// (0, 500] km.
    UpTo500,
    /// (500, 5 000] km.
    UpTo5000,
    /// (5 000, 10 000] km.
    UpTo10000,
    /// > 10 000 km.
    Beyond10000,
}

impl DistanceBucket {
    /// Buckets a distance, with `co_located` overriding the zero-ish range
    /// (two datacenters in the same city are a few km apart; co-location is
    /// a fact about the registry, not the raw distance).
    pub fn classify(distance_km: f64, co_located: bool) -> Self {
        if co_located {
            DistanceBucket::CoLocated
        } else if distance_km <= 500.0 {
            DistanceBucket::UpTo500
        } else if distance_km <= 5_000.0 {
            DistanceBucket::UpTo5000
        } else if distance_km <= 10_000.0 {
            DistanceBucket::UpTo10000
        } else {
            DistanceBucket::Beyond10000
        }
    }

    /// All buckets in increasing-distance order.
    pub fn all() -> [DistanceBucket; 5] {
        [
            DistanceBucket::CoLocated,
            DistanceBucket::UpTo500,
            DistanceBucket::UpTo5000,
            DistanceBucket::UpTo10000,
            DistanceBucket::Beyond10000,
        ]
    }

    /// Label matching the paper's Fig 15 legend.
    pub fn label(&self) -> &'static str {
        match self {
            DistanceBucket::CoLocated => "Co-located (0km)",
            DistanceBucket::UpTo500 => "(0, 500km]",
            DistanceBucket::UpTo5000 => "(500, 5,000km]",
            DistanceBucket::UpTo10000 => "(5,000, 10,000km]",
            DistanceBucket::Beyond10000 => ">10,000km",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf() -> GeoPoint {
        GeoPoint::new(37.7749, -122.4194)
    }
    fn la() -> GeoPoint {
        GeoPoint::new(34.0522, -118.2437)
    }
    fn tokyo() -> GeoPoint {
        GeoPoint::new(35.6762, 139.6503)
    }

    #[test]
    fn distance_is_zero_to_self() {
        assert!(sf().distance_km(&sf()) < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let d1 = sf().distance_km(&tokyo());
        let d2 = tokyo().distance_km(&sf());
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn known_distances_are_approximately_right() {
        // SF–LA ≈ 559 km, SF–Tokyo ≈ 8 280 km.
        let sf_la = sf().distance_km(&la());
        assert!((540.0..580.0).contains(&sf_la), "SF-LA: {sf_la}");
        let sf_tokyo = sf().distance_km(&tokyo());
        assert!(
            (8_100.0..8_500.0).contains(&sf_tokyo),
            "SF-Tokyo: {sf_tokyo}"
        );
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(&b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "antipodal: {d} vs {half}");
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn bad_latitude_panics() {
        GeoPoint::new(91.0, 0.0);
    }

    #[test]
    fn bucket_classification_matches_fig15_legend() {
        assert_eq!(
            DistanceBucket::classify(3.0, true),
            DistanceBucket::CoLocated
        );
        assert_eq!(
            DistanceBucket::classify(3.0, false),
            DistanceBucket::UpTo500
        );
        assert_eq!(
            DistanceBucket::classify(559.0, false),
            DistanceBucket::UpTo5000
        );
        assert_eq!(
            DistanceBucket::classify(8_280.0, false),
            DistanceBucket::UpTo10000
        );
        assert_eq!(
            DistanceBucket::classify(16_000.0, false),
            DistanceBucket::Beyond10000
        );
    }

    #[test]
    fn bucket_labels_cover_all() {
        for b in DistanceBucket::all() {
            assert!(!b.label().is_empty());
        }
    }
}
