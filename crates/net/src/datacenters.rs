//! The datacenter map from Fig 9 of the paper.
//!
//! The paper located Periscope's video CDN at **8 Wowza sites running on
//! Amazon EC2** (found via 273 PlanetLab vantage points resolving stream
//! URLs) and **23 Fastly POPs** (from Fastly's published network map at
//! measurement time, i.e. before the December 2015 additions of Perth,
//! Wellington and São Paulo). Two facts drive the §5.3 analysis and we
//! encode them as tests here:
//!
//! * 6 of 8 Wowza sites have a Fastly POP *in the same city*;
//! * 7 of 8 are on the same continent as some Fastly POP — the exception is
//!   South America (São Paulo EC2), where Fastly had no site.

use crate::geo::{Continent, GeoPoint};
use std::fmt;

/// Which CDN operates a site.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Provider {
    /// Ingest CDN: RTMP push, runs on EC2.
    Wowza,
    /// Edge CDN: HLS chunk delivery.
    Fastly,
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Provider::Wowza => "Wowza",
            Provider::Fastly => "Fastly",
        })
    }
}

/// Index of a datacenter within [`all_datacenters`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DatacenterId(pub u16);

/// A CDN site.
#[derive(Clone, Copy, Debug)]
pub struct Datacenter {
    pub id: DatacenterId,
    pub provider: Provider,
    /// City name; same-city pairs across providers are "co-located".
    pub city: &'static str,
    pub continent: Continent,
    pub location: GeoPoint,
}

impl Datacenter {
    /// True when `other` is in the same city (the co-location relation used
    /// by the gateway replication model and Fig 15).
    pub fn co_located_with(&self, other: &Datacenter) -> bool {
        self.city == other.city
    }
}

macro_rules! dc {
    ($id:expr, $prov:ident, $city:expr, $cont:ident, $lat:expr, $lon:expr) => {
        Datacenter {
            id: DatacenterId($id),
            provider: Provider::$prov,
            city: $city,
            continent: Continent::$cont,
            location: GeoPoint {
                lat: $lat,
                lon: $lon,
            },
        }
    };
}

/// The 8 Wowza sites (2015-era EC2 regions) followed by the 23 Fastly POPs.
///
/// Coordinates are city centroids — precise enough for great-circle delay
/// modelling, where a few km inside a metro is noise against inter-city
/// distances.
pub const DATACENTERS: [Datacenter; 31] = [
    // --- Wowza on EC2 (8) ---
    dc!(0, Wowza, "Ashburn", NorthAmerica, 39.0438, -77.4874),
    dc!(1, Wowza, "San Jose", NorthAmerica, 37.3382, -121.8863),
    dc!(2, Wowza, "Portland", NorthAmerica, 45.5152, -122.6784),
    dc!(3, Wowza, "Sao Paulo", SouthAmerica, -23.5505, -46.6333),
    dc!(4, Wowza, "Dublin", Europe, 53.3498, -6.2603),
    dc!(5, Wowza, "Frankfurt", Europe, 50.1109, 8.6821),
    dc!(6, Wowza, "Singapore", Asia, 1.3521, 103.8198),
    dc!(7, Wowza, "Tokyo", Asia, 35.6762, 139.6503),
    // --- Fastly POPs (23) ---
    dc!(8, Fastly, "Ashburn", NorthAmerica, 39.0438, -77.4874),
    dc!(9, Fastly, "New York", NorthAmerica, 40.7128, -74.0060),
    dc!(10, Fastly, "Boston", NorthAmerica, 42.3601, -71.0589),
    dc!(11, Fastly, "Atlanta", NorthAmerica, 33.7490, -84.3880),
    dc!(12, Fastly, "Miami", NorthAmerica, 25.7617, -80.1918),
    dc!(13, Fastly, "Chicago", NorthAmerica, 41.8781, -87.6298),
    dc!(14, Fastly, "Dallas", NorthAmerica, 32.7767, -96.7970),
    dc!(15, Fastly, "Denver", NorthAmerica, 39.7392, -104.9903),
    dc!(16, Fastly, "Los Angeles", NorthAmerica, 34.0522, -118.2437),
    dc!(17, Fastly, "San Jose", NorthAmerica, 37.3382, -121.8863),
    dc!(18, Fastly, "Seattle", NorthAmerica, 47.6062, -122.3321),
    dc!(19, Fastly, "Minneapolis", NorthAmerica, 44.9778, -93.2650),
    dc!(20, Fastly, "Toronto", NorthAmerica, 43.6532, -79.3832),
    dc!(21, Fastly, "London", Europe, 51.5074, -0.1278),
    dc!(22, Fastly, "Amsterdam", Europe, 52.3676, 4.9041),
    dc!(23, Fastly, "Frankfurt", Europe, 50.1109, 8.6821),
    dc!(24, Fastly, "Paris", Europe, 48.8566, 2.3522),
    dc!(25, Fastly, "Stockholm", Europe, 59.3293, 18.0686),
    dc!(26, Fastly, "Dublin", Europe, 53.3498, -6.2603),
    dc!(27, Fastly, "Tokyo", Asia, 35.6762, 139.6503),
    dc!(28, Fastly, "Singapore", Asia, 1.3521, 103.8198),
    dc!(29, Fastly, "Hong Kong", Asia, 22.3193, 114.1694),
    dc!(30, Fastly, "Sydney", Oceania, -33.8688, 151.2093),
];

/// All sites.
pub fn all_datacenters() -> &'static [Datacenter] {
    &DATACENTERS
}

/// Sites operated by `provider`.
pub fn by_provider(provider: Provider) -> impl Iterator<Item = &'static Datacenter> {
    DATACENTERS.iter().filter(move |d| d.provider == provider)
}

/// Looks a site up by id.
///
/// # Panics
/// Panics on an unknown id; ids only come from this module.
pub fn datacenter(id: DatacenterId) -> &'static Datacenter {
    &DATACENTERS[id.0 as usize]
}

/// The nearest site of `provider` to `point` (IP-anycast approximation the
/// paper observed for Fastly viewers and Wowza broadcasters).
pub fn nearest(provider: Provider, point: &GeoPoint) -> &'static Datacenter {
    by_provider(provider)
        .min_by(|a, b| {
            a.location
                .distance_km(point)
                .partial_cmp(&b.location.distance_km(point))
                .expect("distances are finite")
        })
        .expect("registry is non-empty")
}

/// The Fastly POP co-located with the given Wowza site, if any. The paper
/// infers (§5.3) that chunk replication flows Wowza → co-located Fastly
/// gateway → other Fastly POPs; this lookup is that first hop.
pub fn co_located_fastly(wowza: &Datacenter) -> Option<&'static Datacenter> {
    assert_eq!(wowza.provider, Provider::Wowza);
    by_provider(Provider::Fastly).find(|f| f.co_located_with(wowza))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_8_wowza_and_23_fastly() {
        assert_eq!(by_provider(Provider::Wowza).count(), 8);
        assert_eq!(by_provider(Provider::Fastly).count(), 23);
    }

    #[test]
    fn ids_match_positions() {
        for (i, dc) in DATACENTERS.iter().enumerate() {
            assert_eq!(dc.id.0 as usize, i);
            assert_eq!(datacenter(dc.id).city, dc.city);
        }
    }

    #[test]
    fn six_of_eight_wowza_sites_are_co_located() {
        // The paper: "for 6 out of 8 Wowza datacenters, there is a Fastly
        // datacenter co-located in the same city".
        let co_located = by_provider(Provider::Wowza)
            .filter(|w| co_located_fastly(w).is_some())
            .count();
        assert_eq!(co_located, 6);
    }

    #[test]
    fn seven_of_eight_wowza_sites_share_a_continent_with_fastly() {
        // "7 out of 8 are co-located in the same continent. The only
        // exception is South America where Fastly has no site."
        let same_continent = by_provider(Provider::Wowza)
            .filter(|w| by_provider(Provider::Fastly).any(|f| f.continent == w.continent))
            .count();
        assert_eq!(same_continent, 7);
        let exception = by_provider(Provider::Wowza)
            .find(|w| !by_provider(Provider::Fastly).any(|f| f.continent == w.continent))
            .unwrap();
        assert_eq!(exception.continent, Continent::SouthAmerica);
    }

    #[test]
    fn fastly_covers_four_continents() {
        // "covering North America, Europe, Asia, and Oceania".
        use std::collections::HashSet;
        let continents: HashSet<_> = by_provider(Provider::Fastly).map(|d| d.continent).collect();
        assert_eq!(continents.len(), 4);
        assert!(continents.contains(&Continent::NorthAmerica));
        assert!(continents.contains(&Continent::Europe));
        assert!(continents.contains(&Continent::Asia));
        assert!(continents.contains(&Continent::Oceania));
        assert!(!continents.contains(&Continent::SouthAmerica));
    }

    #[test]
    fn nearest_picks_the_obvious_site() {
        // A client in Oakland should hit San Jose for both providers.
        let oakland = GeoPoint::new(37.8044, -122.2712);
        assert_eq!(nearest(Provider::Wowza, &oakland).city, "San Jose");
        assert_eq!(nearest(Provider::Fastly, &oakland).city, "San Jose");
        // A client in Rio should hit São Paulo Wowza but a US Fastly POP.
        let rio = GeoPoint::new(-22.9068, -43.1729);
        assert_eq!(nearest(Provider::Wowza, &rio).city, "Sao Paulo");
        assert_eq!(
            nearest(Provider::Fastly, &rio).continent,
            Continent::NorthAmerica
        );
    }

    #[test]
    fn co_located_lookup_is_exact_city_match() {
        let portland = by_provider(Provider::Wowza)
            .find(|d| d.city == "Portland")
            .unwrap();
        // Seattle is close to Portland but NOT co-located.
        assert!(co_located_fastly(portland).is_none());
        let tokyo = by_provider(Provider::Wowza)
            .find(|d| d.city == "Tokyo")
            .unwrap();
        assert_eq!(co_located_fastly(tokyo).unwrap().city, "Tokyo");
    }

    #[test]
    #[should_panic]
    fn co_located_fastly_rejects_fastly_input() {
        let fastly = by_provider(Provider::Fastly).next().unwrap();
        let _ = co_located_fastly(fastly);
    }
}
