//! A simulated unidirectional link: latency model + optional access link +
//! fault injection, combined into one sampler.
//!
//! The CDN and client crates call [`Link::transmit`] for every payload and
//! schedule the arrival event (or don't, on a drop). The link itself never
//! touches the scheduler, so it can be exercised exhaustively in unit and
//! property tests.

use livescope_sim::{SimDuration, SimTime};
use rand::Rng;

use crate::fault::{FaultConfig, FaultInjector, Verdict};
use crate::geo::GeoPoint;
use crate::latency::{AccessLink, LatencyModel};

/// Outcome of pushing a payload onto a link.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Delivery {
    /// Arrives after `delay`; `corrupt_offset` is `Some` when the fault
    /// injector flipped an octet and the receiver should see mutated bytes.
    Arrives {
        delay: SimDuration,
        corrupt_offset: Option<usize>,
    },
    /// Lost in transit (random drop or rate limiting).
    Lost,
}

impl Delivery {
    /// Convenience: the delay if the payload arrives.
    pub fn delay(&self) -> Option<SimDuration> {
        match self {
            Delivery::Arrives { delay, .. } => Some(*delay),
            Delivery::Lost => None,
        }
    }
}

/// A unidirectional path between two fixed points.
#[derive(Clone, Debug)]
pub struct Link {
    /// Endpoint coordinates (used once, to fix the distance).
    distance_km: f64,
    wide_area: LatencyModel,
    /// Access link on the client end, if one endpoint is a device rather
    /// than a datacenter.
    access: Option<AccessLink>,
    faults: FaultInjector,
}

impl Link {
    /// A clean datacenter-to-datacenter link.
    pub fn between_datacenters(a: &GeoPoint, b: &GeoPoint) -> Self {
        Link {
            distance_km: a.distance_km(b),
            wide_area: LatencyModel::inter_datacenter(),
            access: None,
            faults: FaultInjector::new(FaultConfig::none()),
        }
    }

    /// A device↔datacenter link over the given access class.
    pub fn device_path(device: &GeoPoint, datacenter: &GeoPoint, access: AccessLink) -> Self {
        Link {
            distance_km: device.distance_km(datacenter),
            wide_area: LatencyModel::default(),
            access: Some(access),
            faults: FaultInjector::new(FaultConfig::none()),
        }
    }

    /// Replaces the wide-area model (used by calibration sweeps).
    pub fn with_latency_model(mut self, model: LatencyModel) -> Self {
        self.wide_area = model;
        self
    }

    /// Installs fault injection on this link.
    pub fn with_faults(mut self, config: FaultConfig) -> Self {
        self.faults = FaultInjector::new(config);
        self
    }

    /// Great-circle distance of this link in km.
    pub fn distance_km(&self) -> f64 {
        self.distance_km
    }

    /// Fault counters, for observability in tests.
    pub fn fault_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.faults.passed,
            self.faults.dropped,
            self.faults.corrupted,
            self.faults.rate_limited,
        )
    }

    /// Jitter- and fault-free delay for a payload: the calibration anchor.
    pub fn expected_delay(&self, payload_bytes: usize) -> SimDuration {
        let mut d = self
            .wide_area
            .expected_delay(self.distance_km, payload_bytes);
        if let Some(access) = self.access {
            d += access.expected_delay(payload_bytes);
        }
        d
    }

    /// Samples the fate of one payload sent at `now`.
    pub fn transmit<R: Rng>(
        &mut self,
        rng: &mut R,
        now: SimTime,
        payload_bytes: usize,
    ) -> Delivery {
        match self.faults.judge(rng, now, payload_bytes) {
            Verdict::Dropped | Verdict::RateLimited => Delivery::Lost,
            verdict => {
                let mut delay = self
                    .wide_area
                    .sample_delay(rng, self.distance_km, payload_bytes);
                if let Some(access) = self.access {
                    delay += access.sample_delay(rng, payload_bytes);
                }
                let corrupt_offset = match verdict {
                    Verdict::Corrupted { offset } => Some(offset),
                    _ => None,
                };
                Delivery::Arrives {
                    delay,
                    corrupt_offset,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sf() -> GeoPoint {
        GeoPoint::new(37.7749, -122.4194)
    }
    fn ashburn() -> GeoPoint {
        GeoPoint::new(39.0438, -77.4874)
    }

    #[test]
    fn clean_link_always_arrives() {
        let mut link = Link::between_datacenters(&sf(), &ashburn());
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            match link.transmit(&mut rng, SimTime::ZERO, 1400) {
                Delivery::Arrives {
                    delay,
                    corrupt_offset,
                } => {
                    assert!(delay >= link.expected_delay(1400));
                    assert!(corrupt_offset.is_none());
                }
                Delivery::Lost => panic!("clean link lost a payload"),
            }
        }
    }

    #[test]
    fn device_path_is_slower_than_datacenter_path() {
        let dc = Link::between_datacenters(&sf(), &ashburn());
        let dev = Link::device_path(&sf(), &ashburn(), AccessLink::StableWifi);
        assert!(dev.expected_delay(1400) > dc.expected_delay(1400));
    }

    #[test]
    fn lossy_link_loses_roughly_the_configured_fraction() {
        let mut link = Link::between_datacenters(&sf(), &ashburn()).with_faults(FaultConfig {
            drop_chance: 0.25,
            ..FaultConfig::none()
        });
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 10_000;
        let lost = (0..n)
            .filter(|i| link.transmit(&mut rng, SimTime::from_millis(*i), 100) == Delivery::Lost)
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn corruption_surfaces_in_delivery() {
        let mut link = Link::between_datacenters(&sf(), &ashburn()).with_faults(FaultConfig {
            corrupt_chance: 1.0,
            ..FaultConfig::none()
        });
        let mut rng = SmallRng::seed_from_u64(3);
        match link.transmit(&mut rng, SimTime::ZERO, 64) {
            Delivery::Arrives { corrupt_offset, .. } => {
                assert!(corrupt_offset.unwrap() < 64);
            }
            Delivery::Lost => panic!("corrupting link should still deliver"),
        }
    }

    #[test]
    fn delivery_delay_accessor() {
        assert_eq!(Delivery::Lost.delay(), None);
        let d = Delivery::Arrives {
            delay: SimDuration::from_millis(5),
            corrupt_offset: None,
        };
        assert_eq!(d.delay(), Some(SimDuration::from_millis(5)));
    }
}
