//! Delay models: wide-area propagation and last-mile access links.
//!
//! One-way wide-area delay is modelled as
//!
//! ```text
//! delay = base + distance / (c_fiber / inflation) + transmission + jitter
//! ```
//!
//! where `c_fiber ≈ 200 000 km/s` (speed of light in glass), `inflation`
//! captures non-great-circle routing (typical internet paths are 1.5–2.5×
//! longer than geodesics), `transmission = bytes / bandwidth`, and jitter is
//! exponential with a configurable mean. The defaults are calibrated so the
//! controlled-experiment figures land in the paper's ranges (upload ≈
//! 0.2 s including access link, last-mile ≈ 0.1–0.2 s).

use livescope_sim::SimDuration;
use rand::Rng;

/// Speed of light in fibre, km/s.
pub const FIBER_KM_PER_SEC: f64 = 200_000.0;

/// Wide-area one-way latency model between two geographic points.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Fixed per-path overhead (forwarding, queuing floors), seconds.
    pub base_s: f64,
    /// Route inflation over the great-circle path (≥ 1).
    pub route_inflation: f64,
    /// Path bandwidth in bytes/second for transmission delay.
    pub bandwidth_bps: f64,
    /// Mean of the exponential jitter term, seconds.
    pub jitter_mean_s: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base_s: 0.010,
            route_inflation: 1.8,
            bandwidth_bps: 12.5e6, // 100 Mbit/s backbone share
            jitter_mean_s: 0.004,
        }
    }
}

impl LatencyModel {
    /// A model for well-provisioned inter-datacenter paths: lower base,
    /// straighter routes, fatter pipes. Used for Wowza→Fastly replication.
    pub fn inter_datacenter() -> Self {
        LatencyModel {
            base_s: 0.005,
            route_inflation: 1.5,
            bandwidth_bps: 125e6, // 1 Gbit/s
            jitter_mean_s: 0.002,
        }
    }

    /// Deterministic (jitter-free) one-way delay for `payload_bytes` over
    /// `distance_km`.
    pub fn expected_delay(&self, distance_km: f64, payload_bytes: usize) -> SimDuration {
        let prop = distance_km * self.route_inflation / FIBER_KM_PER_SEC;
        let tx = payload_bytes as f64 / self.bandwidth_bps;
        SimDuration::from_secs_f64(self.base_s + prop + tx)
    }

    /// Samples a one-way delay including exponential jitter.
    pub fn sample_delay<R: Rng>(
        &self,
        rng: &mut R,
        distance_km: f64,
        payload_bytes: usize,
    ) -> SimDuration {
        let jitter = sample_exponential(rng, self.jitter_mean_s);
        self.expected_delay(distance_km, payload_bytes) + SimDuration::from_secs_f64(jitter)
    }
}

/// Samples from Exp(mean) via inverse transform; returns 0 for zero mean.
pub fn sample_exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    // Guard the open interval so ln(0) never happens.
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Last-mile access-link classes the controlled experiments ran over
/// ("stable WiFi connections") plus the degraded classes used for fault
/// studies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessLink {
    /// Stable home/office WiFi — the paper's controlled setup.
    StableWifi,
    /// LTE: slightly higher base delay, more jitter.
    Lte,
    /// Congested public WiFi: heavy jitter, occasional spikes.
    CongestedWifi,
}

impl AccessLink {
    /// (base seconds, mean jitter seconds, uplink bytes/sec) for the class.
    fn params(&self) -> (f64, f64, f64) {
        match self {
            AccessLink::StableWifi => (0.015, 0.008, 2.5e6),
            AccessLink::Lte => (0.040, 0.020, 1.5e6),
            AccessLink::CongestedWifi => (0.060, 0.120, 0.8e6),
        }
    }

    /// Samples the access-link contribution for a payload.
    pub fn sample_delay<R: Rng>(&self, rng: &mut R, payload_bytes: usize) -> SimDuration {
        let (base, jitter_mean, bw) = self.params();
        let jitter = sample_exponential(rng, jitter_mean);
        let tx = payload_bytes as f64 / bw;
        SimDuration::from_secs_f64(base + jitter + tx)
    }

    /// Jitter-free expectation, used in tests and capacity planning.
    pub fn expected_delay(&self, payload_bytes: usize) -> SimDuration {
        let (base, jitter_mean, bw) = self.params();
        SimDuration::from_secs_f64(base + jitter_mean + payload_bytes as f64 / bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn expected_delay_grows_with_distance_and_size() {
        let m = LatencyModel::default();
        let near = m.expected_delay(10.0, 1_000);
        let far = m.expected_delay(8_000.0, 1_000);
        assert!(far > near);
        let small = m.expected_delay(100.0, 100);
        let big = m.expected_delay(100.0, 1_000_000);
        assert!(big > small);
    }

    #[test]
    fn transcontinental_delay_is_tens_of_ms() {
        // SF → Ashburn ≈ 3 900 km: expect ~40-60 ms one-way with inflation.
        let m = LatencyModel::default();
        let d = m.expected_delay(3_900.0, 1_400).as_secs_f64();
        assert!((0.03..0.08).contains(&d), "one-way delay {d}");
    }

    #[test]
    fn co_located_delay_is_single_digit_ms_class() {
        let m = LatencyModel::inter_datacenter();
        let d = m.expected_delay(3.0, 10_000).as_secs_f64();
        assert!(d < 0.010, "co-located delay {d}");
    }

    #[test]
    fn sampled_delay_is_at_least_expected() {
        let m = LatencyModel::default();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = m.sample_delay(&mut rng, 500.0, 1_000);
            assert!(s >= m.expected_delay(500.0, 1_000));
        }
    }

    #[test]
    fn exponential_sample_mean_converges() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let mean = 0.05;
        let total: f64 = (0..n).map(|_| sample_exponential(&mut rng, mean)).sum();
        let observed = total / n as f64;
        assert!(
            (observed - mean).abs() < 0.005,
            "exp mean drifted: {observed}"
        );
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(sample_exponential(&mut rng, 0.0), 0.0);
        assert_eq!(sample_exponential(&mut rng, -1.0), 0.0);
    }

    #[test]
    fn access_links_rank_as_expected() {
        let payload = 10_000;
        let wifi = AccessLink::StableWifi.expected_delay(payload);
        let lte = AccessLink::Lte.expected_delay(payload);
        let bad = AccessLink::CongestedWifi.expected_delay(payload);
        assert!(wifi < lte && lte < bad);
    }

    #[test]
    fn access_link_samples_are_positive_and_bounded_sane() {
        let mut rng = SmallRng::seed_from_u64(3);
        for link in [
            AccessLink::StableWifi,
            AccessLink::Lte,
            AccessLink::CongestedWifi,
        ] {
            for _ in 0..200 {
                let d = link.sample_delay(&mut rng, 5_000).as_secs_f64();
                assert!(d > 0.0 && d < 10.0, "{link:?} sample {d}");
            }
        }
    }
}
