//! # livescope-net — geo-aware network model with fault injection
//!
//! The IMC'16 paper's delay analysis hinges on *where* things are: each
//! broadcaster uploads to the nearest Wowza datacenter, each HLS viewer is
//! anycast to the nearest Fastly POP, and chunk replication between CDNs is
//! dominated by inter-datacenter distance plus a co-located-gateway hop
//! (§5.3, Fig 15). This crate provides:
//!
//! * [`geo`] — coordinates, great-circle distances, continents;
//! * [`datacenters`] — the 8 Wowza/EC2 sites and 23 Fastly POPs the paper
//!   mapped (Fig 9), including the co-location facts it reports (6/8 same
//!   city, 7/8 same continent, the exception being South America);
//! * [`latency`] — propagation + route-inflation + jitter delay model and a
//!   last-mile access-link model (WiFi / LTE / congested);
//! * [`fault`] — smoltcp-style fault injection: drop chance, corrupt
//!   chance, token-bucket rate limiting;
//! * [`link`] — a [`link::Link`] combining all of the above into a single
//!   "what happens to this payload?" sampler that the CDN simulation feeds
//!   into the event scheduler.
//!
//! The crate is *pure*: it computes delays and verdicts but never touches
//! the scheduler, which keeps the layering simple and every sample unit
//! testable.

#![forbid(unsafe_code)]

pub mod datacenters;
pub mod fault;
pub mod geo;
pub mod latency;
pub mod link;

pub use datacenters::{Datacenter, DatacenterId, Provider};
pub use fault::{FaultConfig, FaultInjector, Verdict};
pub use geo::{Continent, GeoPoint};
pub use latency::{AccessLink, LatencyModel};
pub use link::{Delivery, Link};
